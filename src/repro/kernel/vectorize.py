"""NumPy batch evaluation of AM ``delay()`` amounts for the compiled backend.

A delay-only loop whose amount uses batch-safe arithmetic is evaluated
as one NumPy wave per loop entry instead of once per iteration; when the
loop bounds and every free variable are fixed at program start, the wave
is precomputed for **all ranks in a single 2-D batch** (rank × iteration)
before the run begins — the SPMD case the paper's AM mode targets.

Byte-identity discipline
------------------------

The scalar interpreter evaluates amounts with Python numbers; Python
keeps integer subexpressions exact while float64 rounds every operation.
The two agree exactly as long as every integer-valued intermediate stays
below 2**53, so:

* :func:`batch_safe` statically bounds every integer-pure subexpression
  assuming variables stay within ``±2**16``, and admits only operators
  whose scalar and NumPy forms round identically (``+ * / min max``);
* :func:`delay_wave` re-checks those magnitude assumptions against the
  live argument values at run time and returns ``None`` — sending the
  caller down the scalar loop — whenever they do not hold.

Float arguments only need to be finite (IEEE ops are correctly rounded
identically on both paths); NaN propagation through ``min``/``max``
differs between Python and NumPy, which is why non-finite values bail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as _np

from ..symbolic.expr import Add, Const, Div, Expr, Max, Min, Mul, Var

__all__ = [
    "SitePlan",
    "batch_safe",
    "emit_numpy",
    "delay_wave",
    "static_waves",
    "wave_stats",
    "reset_wave_stats",
]

# Magnitude cap assumed for every variable in the static bound analysis
# and re-checked against live integer arguments before batching.
_VAR_LIMIT = 65536
# Largest integer float64 represents exactly (2**53); any integer-pure
# subexpression that could reach it disqualifies the site.
_EXACT = 9007199254740992.0

_STATS = {"waves": 0, "vector_delays": 0, "static_batches": 0}


def wave_stats() -> dict:
    return dict(_STATS)


def reset_wave_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


@dataclass(frozen=True)
class SitePlan:
    """How one delay loop vectorizes (emitted by the lowering pass)."""

    helper: str  # generated wave-helper name, e.g. "_vd3"
    callargs: str  # ", v_a, v_b" — outer-scope argument snippet
    static_id: int | None  # STATIC_SITES id when precomputable per run


class _Unsafe(Exception):
    pass


def _int_bound(e: Expr):
    """Max |value| of *e* when integer-typed, or None when float-typed.

    Raises :class:`_Unsafe` for non-batchable operators, non-finite
    constants, or integer subexpressions that could leave float64's
    exact range under the ``±2**16`` variable assumption.
    """
    ty = type(e)
    if ty is Const:
        v = e.value
        if isinstance(v, float):
            if not math.isfinite(v):
                raise _Unsafe
            return None
        if abs(v) >= _EXACT:
            raise _Unsafe
        return float(abs(v))
    if ty is Var:
        return float(_VAR_LIMIT)
    if ty is Add:
        bounds = [_int_bound(t) for t in e.args]
        if any(b is None for b in bounds):
            return None
        total = sum(bounds)
        if total >= _EXACT:
            raise _Unsafe
        return total
    if ty is Mul:
        bounds = [_int_bound(t) for t in e.args]
        if any(b is None for b in bounds):
            return None
        prod = 1.0
        for b in bounds:
            prod *= b
        if prod >= _EXACT:
            raise _Unsafe
        return prod
    if ty is Max or ty is Min:  # Max subclasses Min; same bound either way
        bounds = [_int_bound(t) for t in e.args]
        if any(b is None for b in bounds):
            return None
        return max(bounds)
    if ty is Div:
        _int_bound(e.a)
        _int_bound(e.b)
        return None  # true division is float-typed
    raise _Unsafe


def batch_safe(e: Expr) -> bool:
    """True when *e* evaluates identically via NumPy and the scalar path."""
    try:
        _int_bound(e)
    except _Unsafe:
        return False
    return True


def emit_numpy(e: Expr, loopvar: str | None, argnames: set) -> str:
    """Emit *e* as NumPy source over ``_np``, ``_i`` and ``v_<name>`` args."""
    ty = type(e)
    if ty is Const:
        return f"({e.value!r})"
    if ty is Var:
        if loopvar is not None and e.name == loopvar:
            return "_i"
        if e.name == "myid":
            return "v_myid"
        if e.name not in argnames:
            raise RuntimeError(f"emit_numpy: unbound variable {e.name!r}")
        return f"v_{e.name}"
    if ty is Add:
        return "(" + " + ".join(emit_numpy(t, loopvar, argnames) for t in e.args) + ")"
    if ty is Mul:
        return "(" + " * ".join(emit_numpy(t, loopvar, argnames) for t in e.args) + ")"
    if ty is Max:
        return _fold("_np.maximum", [emit_numpy(t, loopvar, argnames) for t in e.args])
    if ty is Min:
        return _fold("_np.minimum", [emit_numpy(t, loopvar, argnames) for t in e.args])
    if ty is Div:
        num = emit_numpy(e.a, loopvar, argnames)
        den = emit_numpy(e.b, loopvar, argnames)
        return f"({num} / {den})"
    raise RuntimeError(f"emit_numpy: node {ty.__name__} is not batch-safe")


def _fold(fn: str, parts: list[str]) -> str:
    # Python's max(a, b, c) folds left; mirror it pairwise.
    out = parts[0]
    for p in parts[1:]:
        out = f"{fn}({out}, {p})"
    return out


def _arg_ok(value) -> bool:
    if isinstance(value, int):  # bool included, exact either way
        return -_VAR_LIMIT <= value <= _VAR_LIMIT
    if isinstance(value, float):
        return math.isfinite(value)
    return False


def delay_wave(lo: int, hi: int, args: tuple, fn):
    """Evaluate one delay loop's amounts as a single NumPy batch.

    Returns a list of Python floats (already clamped at zero like the
    interpreter's ``max(float(a), 0.0)``) or ``None`` when the live
    arguments violate the exactness guard — the generated caller then
    falls back to its scalar loop.
    """
    if not (-_VAR_LIMIT <= lo <= _VAR_LIMIT and -_VAR_LIMIT <= hi <= _VAR_LIMIT):
        return None
    for a in args:
        if not _arg_ok(a):
            return None
    n = hi - lo + 1
    if n <= 0:
        return []
    ivec = _np.arange(lo, hi + 1, dtype=_np.float64)
    out = fn(_np, ivec, *args)
    if not isinstance(out, _np.ndarray):  # amount free of the loop variable
        out = _np.full(n, float(out))
    out = _np.maximum(out, 0.0)
    _STATS["waves"] += 1
    _STATS["vector_delays"] += n
    return out.tolist()


def static_waves(nprocs: int, inputs: dict, wparams, sites) -> dict:
    """Precompute per-rank delay rows for every fixed-at-start site.

    Returns ``{site_id: [row_for_rank_0, row_for_rank_1, ...]}``; sites
    whose live values fail the exactness guard are simply omitted (the
    generated code then computes its own per-rank wave, or runs scalar).
    """
    waves: dict[int, list] = {}
    if not -_VAR_LIMIT <= nprocs <= _VAR_LIMIT:
        return waves
    for sid, lo_fn, hi_fn, body_fn, spec in sites:
        vals = []
        ok = True
        for name, src in spec:
            if src == "input":
                if name not in inputs:
                    ok = False
                    break
                v = inputs[name]
            elif src == "wparam":
                if not wparams or name not in wparams:
                    ok = False
                    break
                v = wparams[name]
            elif src == "builtin":  # only P reaches here
                v = nprocs
            else:
                ok = False
                break
            if not _arg_ok(v):
                ok = False
                break
            vals.append(v)
        if not ok:
            continue
        try:
            lo = int(lo_fn(_np, *vals))
            hi = int(hi_fn(_np, *vals))
        except Exception:
            continue
        if not (-_VAR_LIMIT <= lo <= _VAR_LIMIT and -_VAR_LIMIT <= hi <= _VAR_LIMIT):
            continue
        n = hi - lo + 1
        if n <= 0:
            waves[sid] = [[] for _ in range(nprocs)]
            _STATS["static_batches"] += 1
            continue
        ivec = _np.arange(lo, hi + 1, dtype=_np.float64)[None, :]
        myid = _np.arange(nprocs, dtype=_np.float64)[:, None]
        try:
            out = body_fn(_np, ivec, myid, *vals)
        except Exception:
            continue
        out = _np.maximum(_np.asarray(out, dtype=_np.float64), 0.0)
        full = _np.broadcast_to(out, (nprocs, n))
        waves[sid] = [row.tolist() for row in full]
        _STATS["static_batches"] += 1
        _STATS["waves"] += 1
        _STATS["vector_delays"] += nprocs * n
    return waves
