"""Flat event loop for compiled programs (the fast half of ``repro.kernel``).

When a run needs none of the engine's optional machinery — no faults, no
timeouts, no budget, no trace, and every observability singleton off —
the generated ``fast_gen`` per-rank state machines can be driven by a
much flatter scheduler than the general heap-of-actions engine:

* the priority queue holds **distinct timestamps only**; all events at
  one virtual time live in a FIFO bucket list, so the heap shrinks by
  the (large) same-time fan-out factor and each event is one integer,
  not a tuple;
* events are encoded as ``rank * 4 + kind`` integers (0 = resume with
  the bucket time, 1 = process the rank's pending comm op, 2 = resume
  with a payload — a handle id or collective result);
* matching, rendezvous, waits and world collectives are inlined over
  plain lists, mirroring :class:`repro.sim.engine.Simulator`'s handlers
  line for line so every float accumulates in the same order.

The produced :class:`~repro.sim.engine.SimResult` — stats, memory
report, deadlock diagnosis — is byte-identical to the interpreted
engine's by construction; the differential fuzz harness holds it to
that.
"""

from __future__ import annotations

from heapq import heappop, heappush

from ..mpi.matching import ANY_SOURCE, ANY_TAG
from ..sim.faults import DeadlockReport, WaitInfo
from . import vectorize

__all__ = ["run_fast"]

_REDUCE_FNS = {"sum": lambda a, b: a + b, "max": max, "min": min}


def run_fast(sim):
    """Run *sim* (a ``Simulator`` with a resolved compiled kernel) flat out."""
    from ..sim.engine import (  # local import: engine imports this module lazily
        CollectiveMismatchError,
        DeadlockError,
        SimResult,
    )
    from ..sim.stats import ProcessStats, SimStats

    kernel = sim._kernel
    inputs, wparams = sim._kernel_args
    nprocs = sim.nprocs
    net = sim.net
    send_overhead = net.send_overhead
    transit_time = net.transit_time
    collective_time = net.collective_time
    ov_cache = sim._ov_cache
    tr_cache = sim._tr_cache
    net_flat = sim._net_flat
    EVOH = sim._event_overhead
    MHB = sim._msg_host_base
    MHPB = sim._msg_host_per_byte
    EAGER = sim._eager_limit
    allocate = sim.memory.allocate
    free = sim.memory.free
    world_key = tuple(range(nprocs))

    # rank-shared stat cells the generated code flushes into around each
    # yield: [clock, events, compute_time, comm_time, host_cost].  Indexes
    # 0/1/2 are generator-owned, 3 runtime-owned, 4 shared (reloaded after
    # every yield) — this keeps host-cost accumulation in the engine's
    # exact floating-point order.
    st = [[0.0, 0, 0.0, 0.0, 0.0] for _ in range(nprocs)]
    rt = (
        sim._task_time,
        sim._compute_host_factor,
        EVOH,
        sim._delay_host_cost,
        sim.cpu.timer_cost(),
    )
    waves = vectorize.static_waves(nprocs, inputs, wparams, kernel.static_wave_sites)
    fast_gen = kernel.fast_gen
    gens = []
    steps = []
    for r in range(nprocs):
        wv = {sid: rows[r] for sid, rows in waves.items()}
        g = fast_gen(r, nprocs, inputs, wparams, rt, st[r], wv)
        gens.append(g)
        steps.append(g.send)

    finish = [0.0] * nprocs
    msent = [0] * nprocs
    mrecv = [0] * nprocs
    bsent = [0] * nprocs
    ncoll = [0] * nprocs
    done = [False] * nprocs
    blocked = [None] * nprocs
    pend = [None] * nprocs
    rv = [None] * nprocs  # payload of the rank's (single) scheduled resume
    handles = [dict() for _ in range(nprocs)]  # hid -> [done, ready_time]
    next_hid = [0] * nprocs
    waiting = [None] * nprocs
    wait_time = [0.0] * nprocs
    # q_msgs[dst]: [seq, source, tag, nbytes, eager, send_time, ready, sender_handle]
    q_msgs = [[] for _ in range(nprocs)]
    # q_recvs[rank]: [seq, source, tag, post_time, handle_or_None]
    q_recvs = [[] for _ in range(nprocs)]
    colls: dict[int, list] = {}  # call index -> [op, root, nbytes, arrivals, reduce_fn]
    coll_index = [0] * nprocs
    mseq = 0

    timeheap: list[float] = []
    buckets: dict[float, list[int]] = {}
    bget = buckets.get

    def push(at: float, code: int) -> None:
        b = bget(at)
        if b is None:
            buckets[at] = [code]
            heappush(timeheap, at)
        else:
            b.append(code)

    # Prime every generator (engine: one initial resume per rank at t=0,
    # rank order; each comm event lands at the yielding rank's clock —
    # the generator advances it inline through compute/delay).
    for rank in range(nprocs):
        value = None
        step = steps[rank]
        while True:
            try:
                op = step(value)
            except StopIteration:
                done[rank] = True
                finish[rank] = st[rank][0]
                break
            if op[0] != 7:
                pend[rank] = op
                blocked[rank] = op[0]
                push(op[1], rank * 4 + 1)
                break
            allocate(rank, op[2], op[3])
            value = op[1]

    def complete_handle(rank: int, hid: int, ready_time: float) -> None:
        hs = handles[rank]
        h = hs[hid]
        h[0] = True
        h[1] = ready_time
        w = waiting[rank]
        if w is not None and all(hs[x][0] for x in w):
            release_wait(rank)

    def release_wait(rank: int) -> None:
        hids = waiting[rank]
        waiting[rank] = None
        hs = handles[rank]
        pop = hs.pop
        resume_at = wait_time[rank]
        for h in hids:
            rt_ = pop(h)[1]
            if rt_ > resume_at:
                resume_at = rt_
        blocked_for = resume_at - wait_time[rank]
        if blocked_for > 0:
            st[rank][3] += blocked_for
        push(resume_at, rank * 4)

    def complete_recv(posted: list, prank: int, msg: list) -> None:
        nbytes = msg[3]
        overhead = ov_cache.get(nbytes)
        if overhead is None:
            overhead = net.recv_overhead(nbytes)
            ov_cache[nbytes] = overhead
        post_time = posted[3]
        ready = msg[6]
        completion = (post_time if post_time > ready else ready) + overhead
        mrecv[prank] += 1
        st[prank][4] += MHB + nbytes * MHPB
        if posted[4] is not None:
            complete_handle(prank, posted[4], completion)
        else:
            st[prank][3] += completion - post_time
            push(completion, prank * 4)

    def finish_rendezvous(msg: list, posted: list, prank: int) -> None:
        src = msg[1]
        transfer_start = msg[5] if msg[5] > posted[3] else posted[3]
        msg[6] = transfer_start + transit_time(msg[3], src, prank, nprocs)
        if msg[7] is not None:
            complete_handle(src, msg[7], transfer_start)
        else:
            waited = transfer_start - msg[5]
            if waited > 0:
                st[src][3] += waited
            push(transfer_start, src * 4)
        complete_recv(posted, prank, msg)

    while timeheap:
        t = heappop(timeheap)
        # the bucket stays live in the dict while draining: same-time
        # events pushed mid-drain append to this very list, and Python's
        # list iterator observes appends — exactly the engine's FIFO
        # order among equal timestamps
        bucket = buckets[t]
        for code in bucket:
            rank = code >> 2
            kind = code & 3
            if kind != 1:
                # resume: run the rank's generator until its next comm yield
                if kind == 0:
                    value = t
                else:
                    value = (t, rv[rank])
                step = steps[rank]
                while True:
                    try:
                        op = step(value)
                    except StopIteration:
                        done[rank] = True
                        finish[rank] = st[rank][0]
                        break
                    if op[0] != 7:
                        pend[rank] = op
                        blocked[rank] = op[0]
                        at = op[1]
                        b = bget(at)
                        if b is None:
                            buckets[at] = [rank * 4 + 1]
                            heappush(timeheap, at)
                        else:
                            b.append(rank * 4 + 1)
                        break
                    # Alloc: handled inline, like the engine's _resume
                    allocate(rank, op[2], op[3])
                    value = op[1]
                continue
            # communication event at time t
            op = pend[rank]
            o = op[0]
            if o == 1 or o == 3:  # send / isend
                dest = op[2]
                nbytes = op[3]
                tag = op[4]
                if dest >= nprocs:
                    raise ValueError(
                        f"rank {rank} sends to nonexistent rank {dest} "
                        f"(world size {nprocs})"
                    )
                overhead = ov_cache.get(nbytes)
                if overhead is None:
                    overhead = send_overhead(nbytes)
                    ov_cache[nbytes] = overhead
                cost = MHB + nbytes * MHPB
                mseq += 1
                seq = mseq
                t_inject = t + overhead
                srow = st[rank]
                srow[3] += overhead
                srow[4] += cost
                msent[rank] += 1
                bsent[rank] += nbytes
                eager = nbytes <= EAGER
                if eager:
                    key = nbytes if net_flat else (nbytes, rank, dest)
                    transit = tr_cache.get(key)
                    if transit is None:
                        transit = transit_time(nbytes, rank, dest, nprocs)
                        tr_cache[key] = transit
                    ready = t_inject + transit
                else:
                    ready = None
                if o == 3:
                    next_hid[rank] += 1
                    hid = next_hid[rank]
                    handles[rank][hid] = [False, 0.0]
                else:
                    hid = None
                msg = [seq, rank, tag, nbytes, eager, t_inject, ready, hid]
                # matching: first posted recv in list order that accepts it
                matched = None
                rq = q_recvs[dest]
                if rq:
                    for j, pr in enumerate(rq):
                        pso = pr[1]
                        if (pso == ANY_SOURCE or pso == rank) and (
                            pr[2] == ANY_TAG or pr[2] == tag
                        ):
                            matched = rq.pop(j)
                            break
                if matched is None:
                    q_msgs[dest].append(msg)
                if eager:
                    if hid is not None:
                        h = handles[rank][hid]
                        h[0] = True
                        h[1] = t_inject
                    b = bget(t_inject)
                    if b is None:
                        buckets[t_inject] = [rank * 4]
                        heappush(timeheap, t_inject)
                    else:
                        b.append(rank * 4)
                    if matched is not None:
                        # inline complete_recv (hot path: matched eager send)
                        post_time = matched[3]
                        completion = (post_time if post_time > ready else ready) + overhead
                        mrecv[dest] += 1
                        drow = st[dest]
                        drow[4] += cost
                        if matched[4] is not None:
                            complete_handle(dest, matched[4], completion)
                        else:
                            drow[3] += completion - post_time
                            b = bget(completion)
                            if b is None:
                                buckets[completion] = [dest * 4]
                                heappush(timeheap, completion)
                            else:
                                b.append(dest * 4)
                else:
                    if hid is not None:
                        push(t_inject, rank * 4)
                    if matched is not None:
                        finish_rendezvous(msg, matched, dest)
            elif o == 2 or o == 4:  # recv / irecv
                source = op[2]
                tag = op[3]
                if source >= nprocs:
                    raise ValueError(
                        f"rank {rank} receives from nonexistent rank {source} "
                        f"(world size {nprocs})"
                    )
                mseq += 1
                if o == 4:
                    next_hid[rank] += 1
                    hid = next_hid[rank]
                    handles[rank][hid] = [False, 0.0]
                else:
                    hid = None
                posted = [mseq, source, tag, t, hid]
                # matching: lowest-seq queued message that this recv accepts
                msg = None
                mq = q_msgs[rank]
                if mq:
                    best = -1
                    bseq = 0
                    for j, m in enumerate(mq):
                        if (source == ANY_SOURCE or source == m[1]) and (
                            tag == ANY_TAG or tag == m[2]
                        ):
                            if best < 0 or m[0] < bseq:
                                best = j
                                bseq = m[0]
                    if best >= 0:
                        msg = mq.pop(best)
                if msg is None:
                    q_recvs[rank].append(posted)
                if hid is not None:
                    # handle resume lands at this very timestamp: the
                    # live bucket is buckets[t], append directly
                    bucket.append(rank * 4)
                if msg is None:
                    continue
                if msg[4]:
                    # inline complete_recv (hot path: recv matches queued eager)
                    nbytes = msg[3]
                    overhead = ov_cache.get(nbytes)
                    if overhead is None:
                        overhead = net.recv_overhead(nbytes)
                        ov_cache[nbytes] = overhead
                    ready = msg[6]
                    completion = (t if t > ready else ready) + overhead
                    mrecv[rank] += 1
                    rrow = st[rank]
                    rrow[4] += MHB + nbytes * MHPB
                    if hid is not None:
                        complete_handle(rank, hid, completion)
                    else:
                        rrow[3] += completion - t
                        b = bget(completion)
                        if b is None:
                            buckets[completion] = [rank * 4]
                            heappush(timeheap, completion)
                        else:
                            b.append(rank * 4)
                else:
                    finish_rendezvous(msg, posted, rank)
            elif o == 5:  # waitall
                st[rank][4] += EVOH
                hs = handles[rank]
                for hid in op[2]:
                    if hid not in hs:
                        raise ValueError(
                            f"rank {rank} waits on unknown or already-completed "
                            f"handle {hid}"
                        )
                waiting[rank] = op[2]  # the generator never reuses the list
                wait_time[rank] = t
                if all(hs[h][0] for h in op[2]):
                    release_wait(rank)
            else:  # o == 6: collective (world only: IR never forms groups)
                cop = op[2]
                nbytes = op[3]
                root = op[4]
                data = op[5]
                rkind = op[6]
                if root >= nprocs:
                    raise ValueError(
                        f"rank {rank} issued {cop!r} with root {root} "
                        f"but the world has {nprocs} ranks"
                    )
                seq = coll_index[rank]
                coll_index[rank] = seq + 1
                state = colls.get(seq)
                if state is None:
                    state = colls[seq] = [cop, root, 0, {}, None]
                elif state[0] != cop or state[1] != root:
                    raise CollectiveMismatchError(
                        f"collective #{(None, seq)}: rank {rank} called {cop!r} "
                        f"(root {root}) but others called {state[0]!r} "
                        f"(root {state[1]})"
                    )
                arrivals = state[3]
                if rank in arrivals:
                    raise CollectiveMismatchError(
                        f"rank {rank} issued collective #{(None, seq)} twice"
                    )
                arrivals[rank] = (t, data)
                if nbytes > state[2]:
                    state[2] = nbytes
                if rkind is not None:
                    state[4] = _REDUCE_FNS[rkind]
                if len(arrivals) < nprocs:
                    continue
                del colls[seq]
                start_max = max(at for at, _ in arrivals.values())
                completion = start_max + collective_time(state[0], state[2], nprocs)
                cop = state[0]
                # uniform-result ops skip the per-rank results dict
                uniform = None
                results = None
                if cop == "allreduce" or cop == "reduce":
                    fn = state[4]
                    acc = None
                    first = True
                    for r in sorted(arrivals):
                        d = arrivals[r][1]
                        if d is None:
                            continue
                        if first:
                            if fn is None:
                                raise CollectiveMismatchError(
                                    f"{cop} with data requires a reduce_fn"
                                )
                            acc = d
                            first = False
                        else:
                            acc = fn(acc, d)
                    if cop == "allreduce":
                        uniform = acc
                    else:
                        results = {
                            r: (acc if r == state[1] else None) for r in arrivals
                        }
                elif cop == "bcast":
                    uniform = arrivals[state[1]][1]
                elif cop != "barrier" and cop != "alltoall":
                    results = _collective_results(state, CollectiveMismatchError)
                cost = MHB + state[2] * MHPB
                b = bget(completion)
                if b is None:
                    b = buckets[completion] = []
                    heappush(timeheap, completion)
                append = b.append
                if results is None:
                    for crank, (arrival, _) in arrivals.items():
                        crow = st[crank]
                        crow[3] += completion - arrival
                        crow[4] += cost
                        ncoll[crank] += 1
                        rv[crank] = uniform
                        append(crank * 4 + 2)
                else:
                    for crank, (arrival, _) in arrivals.items():
                        crow = st[crank]
                        crow[3] += completion - arrival
                        crow[4] += cost
                        ncoll[crank] += 1
                        rv[crank] = results[crank]
                        append(crank * 4 + 2)
        del buckets[t]

    remaining = [r for r in range(nprocs) if not done[r]]
    if remaining:
        report = _deadlock_report(
            nprocs, remaining, blocked, st, q_msgs, q_recvs, colls,
            waiting, wait_time, handles,
        )
        for r in remaining:
            try:
                gens[r].close()
            except Exception:
                pass  # a raising close() must not mask the deadlock itself
        raise DeadlockError(report.format(), report=report)
    leftover = [r for r in range(nprocs) if q_msgs[r]]
    if leftover:
        raise DeadlockError(f"unconsumed messages at ranks {leftover}")

    procs = []
    for r in range(nprocs):
        row = st[r]
        procs.append(
            ProcessStats(
                rank=r,
                compute_time=row[2],
                comm_time=row[3],
                finish_time=finish[r],
                messages_sent=msent[r],
                messages_received=mrecv[r],
                bytes_sent=bsent[r],
                collectives=ncoll[r],
                events=row[1],
                host_cost=row[4],
            )
        )
    return SimResult(sim.mode, SimStats(procs), sim.memory.report(), sim.trace)


_BLOCKED = {1: "send", 2: "recv", 3: "isend", 4: "irecv", 5: "wait", 6: "collective"}


def _collective_results(state: list, mismatch_error) -> dict:
    """Per-rank payloads; mirrors ``Simulator._collective_results``."""
    op, root, _nbytes, arrivals, fn = state
    ranks = sorted(arrivals)
    datas = {r: arrivals[r][1] for r in ranks}
    if op == "bcast":
        return {r: datas[root] for r in ranks}
    if op in ("reduce", "allreduce"):
        contributions = [datas[r] for r in ranks if datas[r] is not None]
        acc = None
        if contributions:
            if fn is None:
                raise mismatch_error(f"{op} with data requires a reduce_fn")
            acc = contributions[0]
            for c in contributions[1:]:
                acc = fn(acc, c)
        if op == "allreduce":
            return {r: acc for r in ranks}
        return {r: (acc if r == root else None) for r in ranks}
    if op == "gather":
        gathered = [datas[r] for r in ranks]
        return {r: (gathered if r == root else None) for r in ranks}
    if op == "allgather":
        gathered = [datas[r] for r in ranks]
        return {r: gathered for r in ranks}
    if op == "scatter":
        chunks = datas[root]
        if chunks is not None and len(chunks) != len(ranks):
            raise mismatch_error(
                f"scatter payload has {len(chunks)} chunks for {len(ranks)} ranks"
            )
        return {r: (None if chunks is None else chunks[i]) for i, r in enumerate(ranks)}
    return {r: None for r in ranks}


def _deadlock_report(
    nprocs, remaining, blocked, st, q_msgs, q_recvs, colls, waiting, wait_time, handles
) -> DeadlockReport:
    """Rebuild the engine's deadlock diagnosis from the flat structures."""
    unmatched_sends = []
    unmatched_recvs = []
    sends_by_src: dict[int, list] = {}
    for dst in range(nprocs):
        for m in q_msgs[dst]:
            unmatched_sends.append((m[1], dst, m[2], m[3], m[5]))
            sends_by_src.setdefault(m[1], []).append((dst, m))
        for r in q_recvs[dst]:
            unmatched_recvs.append((dst, r[1], r[2], r[3]))
    stragglers = []
    coll_waits: dict[int, tuple] = {}
    members = tuple(range(nprocs))
    for _cidx, state in colls.items():
        arrivals = state[3]
        arrived = tuple(sorted(arrivals))
        missing = tuple(r for r in members if r not in arrivals)
        stragglers.append((state[0], state[1], members, arrived, missing))
        for r in arrived:
            coll_waits[r] = (state[0], arrivals[r][0], missing)
    infos = []
    for rank in remaining:
        state_name = _BLOCKED.get(blocked[rank], "unknown")
        since = st[rank][0]
        detail = f"blocked in {state_name}"
        waiting_on: tuple = ()
        if state_name == "recv":
            mine = [r for r in q_recvs[rank] if r[4] is None]
            if mine:
                r = mine[0]
                since = r[3]
                who = "ANY_SOURCE" if r[1] < 0 else str(r[1])
                tag = "ANY_TAG" if r[2] < 0 else str(r[2])
                detail = f"recv(source={who}, tag={tag}) posted at t={r[3]:.6g}"
                if r[1] >= 0:
                    waiting_on = (r[1],)
        elif state_name == "send":
            mine = [(dst, m) for dst, m in sends_by_src.get(rank, ()) if m[7] is None]
            if mine:
                dst, m = mine[0]
                since = m[5]
                detail = (
                    f"send(dest={dst}, tag={m[2]}, nbytes={m[3]}) awaiting a "
                    f"matching recv since t={m[5]:.6g}"
                )
                waiting_on = (dst,)
        elif state_name == "wait":
            hs = handles[rank]
            pending = sorted(h for h in (waiting[rank] or ()) if not hs[h][0])
            parts = []
            on = set()
            for r in q_recvs[rank]:
                if r[4] in pending:
                    who = "ANY_SOURCE" if r[1] < 0 else str(r[1])
                    parts.append(f"irecv(source={who})")
                    if r[1] >= 0:
                        on.add(r[1])
            for dst, m in sends_by_src.get(rank, ()):
                if m[7] in pending:
                    parts.append(f"isend(dest={dst})")
                    on.add(dst)
            since = wait_time[rank]
            what = ", ".join(parts) if parts else f"{len(pending)} pending handle(s)"
            detail = f"wait on {what} since t={wait_time[rank]:.6g}"
            waiting_on = tuple(sorted(on))
        elif state_name == "collective":
            if rank in coll_waits:
                cop, arrival, missing = coll_waits[rank]
                since = arrival
                detail = (
                    f"collective {cop!r} entered at t={arrival:.6g}, "
                    f"missing ranks {list(missing)}"
                )
                waiting_on = missing
        infos.append(
            WaitInfo(
                rank=rank, state=state_name, since=since, detail=detail,
                waiting_on=waiting_on,
            )
        )
    return DeadlockReport(
        nprocs=nprocs,
        blocked=tuple(infos),
        crashed=(),
        unmatched_sends=tuple(unmatched_sends),
        unmatched_recvs=tuple(unmatched_recvs),
        stragglers=tuple(stragglers),
    )
