"""Lower an IR :class:`~repro.ir.nodes.Program` to a generated Python module.

The interpreted kernel (:mod:`repro.ir.interp`) walks the statement tree
once per rank per run, paying a generator suspension plus a tree dispatch
per statement.  This pass walks the tree **once per program** instead and
emits flat Python source — one module per program, content-addressed by
the SHA-256 of its printed IR — with two entry points:

``request_gen(rank, size, inputs, wparams)``
    A drop-in replacement for the interpreter's per-rank generator: it
    yields the same :mod:`repro.sim.requests` objects in the same order
    with the same values, so every engine feature (tracing, faults,
    budgets, supervision, MEASURED mode) works unchanged and the results
    are byte-identical by construction.

``fast_gen(rank, size, inputs, wparams, rt, st, wv)``
    The perf variant consumed by :mod:`repro.kernel.runtime`: compute,
    delay and timer requests are folded into inline clock arithmetic and
    only communication points yield (small tuples, not request objects).
    Shared-state flushes keep per-rank stats accumulation in exactly the
    engine's floating-point order.

Anything the emitter cannot reproduce bit-for-bit raises
:class:`UnsupportedConstructError`; ``backend="auto"`` catches it and
falls back to the interpreter for that program (with a logged reason).

Delay loops whose amount uses only batch-safe arithmetic additionally get
a NumPy wave helper (see :mod:`repro.kernel.vectorize`); loops whose
bounds and amounts are fixed at program start are precomputed for **all
ranks in one 2-D batch** before the run starts (the SPMD case).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from ..ir.nodes import (
    AllocStmt,
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    DelayStmt,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    ReadParams,
    RecvStmt,
    SendStmt,
    StartTimer,
    StopTimer,
    WaitAllStmt,
    IRValidationError,
    walk,
)
from ..ir.printer import format_program
from ..obs.logging import get_logger
from ..obs.metrics import METRICS
from ..symbolic.boolean import And, BoolConst, BoolExpr, Cmp, Not, Or
from ..symbolic.expr import (
    Add,
    CeilDiv,
    Const,
    Div,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Var,
)
from ..symbolic.extended import Cond, Sum
from . import vectorize

__all__ = [
    "UnsupportedConstructError",
    "CompiledKernel",
    "program_fingerprint",
    "lower_program",
    "kernel_for",
    "load_kernel_source",
    "set_warm_dir",
    "cache_stats",
    "clear_cache",
    "cached_kernels",
]

log = get_logger("kernel.lower")


class UnsupportedConstructError(Exception):
    """The program uses a construct the compiled backend cannot reproduce."""


# Builtin names the interpreter injects into every rank's environment.
_BUILTINS = ("myid", "P")

# In-process content-addressed cache: fingerprint -> CompiledKernel.
_CACHE: dict[str, "CompiledKernel"] = {}

# Optional on-disk warm cache (a ResultStore's warm/ directory).  When
# set, kernel_for consults it on an in-process miss and persists every
# fresh lowering — campaign --resume and repro serve skip lowering for
# programs any earlier process already compiled.
_WARM_DIR: str | None = None

# Plain aggregate counters (always on; published to METRICS when enabled).
_STATS = {
    "lowered": 0,
    "cache_hits": 0,
    "cache_misses": 0,
    "warm_loads": 0,
    "fallbacks": 0,
    "lowering_seconds": 0.0,
}


def _count(name: str, amount: float = 1) -> None:
    _STATS[name] += amount
    if METRICS.enabled:
        METRICS.counter(f"kernel_{name}", "compiled-backend lowering counters").inc(amount)


def record_fallback(program_name: str, reason: str) -> None:
    """Log and count one auto-mode fallback to the interpreted kernel."""
    _count("fallbacks")
    log.info("backend=auto: %s falls back to interpreted kernel: %s", program_name, reason)


def cache_stats() -> dict:
    """Snapshot of lowering/cache counters (for ``repro profile``)."""
    out = dict(_STATS)
    out["cached_programs"] = len(_CACHE)
    out.update(vectorize.wave_stats())
    return out


def clear_cache() -> None:
    _CACHE.clear()
    for key in _STATS:
        _STATS[key] = 0.0 if key == "lowering_seconds" else 0
    vectorize.reset_wave_stats()


def cached_kernels() -> dict[str, "CompiledKernel"]:
    return dict(_CACHE)


def program_fingerprint(program: Program) -> str:
    """Content address of a program: SHA-256 of its printed IR."""
    return hashlib.sha256(format_program(program).encode("utf-8")).hexdigest()


@dataclass
class CompiledKernel:
    """A lowered program: generated source plus its executable entry points."""

    program_name: str
    fingerprint: str
    source: str
    lowering_seconds: float
    vector_sites: int
    static_sites: int
    _ns: dict = field(repr=False, default_factory=dict)

    @property
    def request_gen(self):
        return self._ns["request_gen"]

    @property
    def fast_gen(self):
        return self._ns["fast_gen"]

    @property
    def static_wave_sites(self):
        return self._ns.get("STATIC_SITES", ())


def _execute_source(source: str, name: str, fingerprint: str) -> dict:
    ns: dict = {}
    code = compile(source, f"<repro.kernel:{name}:{fingerprint[:12]}>", "exec")
    exec(code, ns)
    return ns


def set_warm_dir(path=None) -> None:
    """Point the kernel cache at a store's ``warm/`` directory (or detach)."""
    global _WARM_DIR
    _WARM_DIR = str(path) if path is not None else None


def kernel_for(program: Program) -> CompiledKernel:
    """Lower *program*, going through the content-addressed caches.

    Lookup order: in-process cache, then the warm directory (when
    attached via :func:`set_warm_dir`), then a fresh lowering — which
    is persisted back to the warm directory, best-effort.
    """
    fp = program_fingerprint(program)
    hit = _CACHE.get(fp)
    if hit is not None:
        _count("cache_hits")
        return hit
    _count("cache_misses")
    if _WARM_DIR is not None:
        from ..store import load_warm_kernel  # lazy: store pulls in the api layer

        source = load_warm_kernel(_WARM_DIR, fp)
        if source is not None:
            try:
                warm = load_kernel_source(source)
                if warm.fingerprint == fp:  # hand-edited entries must not alias
                    return warm
                log.warning("warm kernel %s embeds a different fingerprint; re-lowering", fp[:12])
            except UnsupportedConstructError as exc:
                log.warning("warm kernel %s unusable, re-lowering: %s", fp[:12], exc)
    kernel = lower_program(program, fingerprint=fp)
    _CACHE[fp] = kernel
    if _WARM_DIR is not None:
        from ..store import save_warm_kernel

        try:
            save_warm_kernel(
                _WARM_DIR, program=kernel.program_name,
                fingerprint=fp, source=kernel.source,
            )
        except OSError as exc:  # warm cache is an optimization, never fatal
            log.warning("cannot save warm kernel %s: %s", fp[:12], exc)
    return kernel


def load_kernel_source(source: str) -> CompiledKernel:
    """Warm-load a previously generated module (from the result store).

    The module carries its own ``PROGRAM``/``FINGERPRINT`` constants, so a
    warm load skips lowering entirely and seeds the in-process cache.
    """
    probe: dict = {}
    try:
        exec(compile(source, "<repro.kernel:warm>", "exec"), probe)
    except Exception as exc:  # corrupt store entry: refuse, caller re-lowers
        raise UnsupportedConstructError(f"stored kernel module failed to load: {exc}") from exc
    fp = probe.get("FINGERPRINT")
    name = probe.get("PROGRAM")
    if not isinstance(fp, str) or not isinstance(name, str) or "request_gen" not in probe:
        raise UnsupportedConstructError("stored kernel module lacks kernel entry points")
    kernel = CompiledKernel(
        program_name=name,
        fingerprint=fp,
        source=source,
        lowering_seconds=0.0,
        vector_sites=int(probe.get("VECTOR_SITES", 0)),
        static_sites=len(probe.get("STATIC_SITES", ())),
        _ns=probe,
    )
    _CACHE[fp] = kernel
    _count("warm_loads")
    return kernel


def lower_program(program: Program, fingerprint: str | None = None) -> CompiledKernel:
    """Lower one program to a generated module (no cache involvement)."""
    t0 = time.perf_counter()
    try:
        program.validate()
    except IRValidationError as exc:
        raise UnsupportedConstructError(f"program does not validate: {exc}") from exc
    lowerer = _Lowerer(program)
    source = lowerer.emit_module()
    fp = fingerprint if fingerprint is not None else program_fingerprint(program)
    source = source.replace("__FINGERPRINT__", fp)
    ns = _execute_source(source, program.name, fp)
    dt = time.perf_counter() - t0
    _count("lowered")
    _count("lowering_seconds", dt)
    if METRICS.enabled:
        METRICS.histogram("kernel_lowering_time", "seconds spent lowering one program").observe(dt)
    return CompiledKernel(
        program_name=program.name,
        fingerprint=fp,
        source=source,
        lowering_seconds=dt,
        vector_sites=lowerer.vector_site_count,
        static_sites=len(lowerer.static_sites),
        _ns=ns,
    )


# --------------------------------------------------------------------------
# expression emission
# --------------------------------------------------------------------------


def _mangle(name: str) -> str:
    if not name.isidentifier():
        raise UnsupportedConstructError(f"variable name {name!r} is not an identifier")
    return f"v_{name}"


def _emit_expr(e: Expr) -> str:
    """Emit *e* as flat Python over ``v_<name>`` locals.

    Mirrors :meth:`Expr._emit` (the interpreter's compiled form) operator
    for operator so scalar results are bit-identical.
    """
    ty = type(e)
    if ty is Const:
        return f"({e.value!r})"
    if ty is Var:
        return _mangle(e.name)
    if ty is Add:
        return "(" + " + ".join(_emit_expr(t) for t in e.args) + ")"
    if ty is Mul:
        return "(" + " * ".join(_emit_expr(t) for t in e.args) + ")"
    if ty is Max:  # Max subclasses Min: test first
        return "max(" + ", ".join(_emit_expr(t) for t in e.args) + ")"
    if ty is Min:
        return "min(" + ", ".join(_emit_expr(t) for t in e.args) + ")"
    if ty is Div:
        return f"({_emit_expr(e.a)} / {_emit_expr(e.b)})"
    if ty is FloorDiv:
        return f"_fd({_emit_expr(e.a)}, {_emit_expr(e.b)})"
    if ty is CeilDiv:
        return f"_cd({_emit_expr(e.a)}, {_emit_expr(e.b)})"
    if ty is Mod:
        return f"({_emit_expr(e.a)} % {_emit_expr(e.b)})"
    if ty is Sum:
        body = _emit_expr(e.body)
        lo = _emit_expr(e.lo)
        hi = _emit_expr(e.hi)
        var = _mangle(e.var)
        return f"sum({body} for {var} in range(int({lo}), int({hi}) + 1))"
    if ty is Cond:
        return (
            f"(({_emit_expr(e.then)}) if ({_emit_bool(e.cond)}) "
            f"else ({_emit_expr(e.orelse)}))"
        )
    raise UnsupportedConstructError(f"expression node {ty.__name__} is not lowerable")


def _emit_bool(e: BoolExpr) -> str:
    ty = type(e)
    if ty is BoolConst:
        return "True" if e.value else "False"
    if ty is Cmp:
        return f"({_emit_expr(e.a)} {e.op} {_emit_expr(e.b)})"
    if ty is And:
        return "(" + " and ".join(_emit_bool(t) for t in e.args) + ")"
    if ty is Or:
        return "(" + " or ".join(_emit_bool(t) for t in e.args) + ")"
    if ty is Not:
        return f"(not {_emit_bool(e.arg)})"
    raise UnsupportedConstructError(f"boolean node {ty.__name__} is not lowerable")


# --------------------------------------------------------------------------
# statement walker
# --------------------------------------------------------------------------

_PREAMBLE = '''\
"""Generated by repro.kernel.lower — do not edit.

Program {name!r}; content address (SHA-256 of printed IR) in FINGERPRINT.
"""
import math

from repro.ir.interp import InterpreterError
from repro.kernel import vectorize as _vec
from repro.sim.requests import (
    Alloc,
    Collective,
    Compute,
    Delay,
    Irecv,
    Isend,
    Now,
    Recv,
    Send,
    Wait,
)
from repro.symbolic.expr import CeilDiv as _CeilDiv, FloorDiv as _FloorDiv

_fd = _FloorDiv._apply
_cd = _CeilDiv._apply
_INF = math.inf
_UNSET = object()
_NOW_T = Now(charge_timer=True)
_R_sum = lambda a, b: a + b
_R_max = max
_R_min = min

PROGRAM = {name!r}
FINGERPRINT = "__FINGERPRINT__"
'''


class _Lowerer:
    """Walks a validated program twice, emitting both generator variants."""

    def __init__(self, program: Program):
        self.program = program
        self.vector_site_count = 0
        self.static_sites: list[str] = []  # emitted STATIC_SITES tuple entries
        self.helper_lines: list[str] = []
        self._site_seq = 0
        self._vec_plans: dict[int, vectorize.SitePlan] = {}  # id(stmt) -> plan
        # Names a handle variable: these must never be read as scalars
        # (the interpreter pops them from env; locals cannot replicate that).
        self.handle_vars: set[str] = set()
        for stmt in walk(program.body):
            if isinstance(stmt, (IsendStmt, IrecvStmt)):
                self.handle_vars.add(stmt.handle_var)
            elif isinstance(stmt, WaitAllStmt):
                self.handle_vars.update(stmt.handle_vars)
        # Working-set caches are keyed by statement sid in the interpreter;
        # replicate the keying (including collisions on unnumbered trees).
        self._ws_names: dict[int, str] = {}
        # Names whose values are fixed at rank start (for static wave sites):
        # params and builtins, extended by top-level ReadParams.
        self._known: dict[str, str] = {n: "input" for n in program.params}
        self._write_counts: dict[str, int] = {}
        for stmt in walk(program.body):
            for name in stmt.writes():
                self._write_counts[name] = self._write_counts.get(name, 0) + 1

    # -- small helpers -----------------------------------------------------

    def _check_expr_reads(self, *exprs) -> None:
        for e in exprs:
            if e is None:
                continue
            names = e.free_vars()
            bad = names & self.handle_vars
            if bad:
                raise UnsupportedConstructError(
                    f"handle variable(s) {sorted(bad)} read as scalars"
                )

    def _ws_name(self, sid: int) -> str:
        name = self._ws_names.get(sid)
        if name is None:
            name = f"_wsc{len(self._ws_names)}"
            self._ws_names[sid] = name
        return name

    # -- module assembly ---------------------------------------------------

    def emit_module(self) -> str:
        prog = self.program
        req_lines = self._emit_gen("req")
        fast_lines = self._emit_gen("fast")
        parts = [_PREAMBLE.format(name=prog.name)]
        parts.append("")
        parts.extend(self.helper_lines)
        parts.append(f"VECTOR_SITES = {self.vector_site_count}")
        if self.static_sites:
            parts.append("STATIC_SITES = (")
            for entry in self.static_sites:
                parts.append(f"    {entry},")
            parts.append(")")
        else:
            parts.append("STATIC_SITES = ()")
        parts.append("")
        parts.append("def request_gen(rank, size, inputs, wparams):")
        parts.extend(req_lines)
        parts.append("")
        parts.append("def fast_gen(rank, size, inputs, wparams, _rt, _st, _wv):")
        parts.extend(fast_lines)
        parts.append("")
        return "\n".join(parts)

    def _emit_gen(self, mode: str) -> list[str]:
        prog = self.program
        w = _Writer()
        w.line("if False:")
        w.line("    yield None  # ensures a generator even for yield-free bodies")
        if mode == "fast":
            w.line("_tt, _CHF, _EVOH, _DHC, _TIC = _rt")
            w.line("clock = 0.0")
            w.line("ev = 0")
            w.line("ct = 0.0")
            w.line("hc = 0.0")
            # handle ids are assigned in program order on both sides, so
            # the generator mirrors the runtime's per-rank counter and
            # never needs the id sent back through the resume value
            w.line("_hid = 0")
        # Interpreter order: env = dict(inputs), then builtins overwrite.
        for name in prog.params:
            w.line(f"{_mangle(name)} = inputs[{name!r}]")
        w.line("v_myid = rank")
        w.line("v_P = size")
        w.line("_wp = wparams")
        w.line("_sz = {}")
        w.line("_tm = {}")
        for name in sorted(self.handle_vars):
            w.line(f"{_mangle(name)} = _UNSET")
        for ws in dict.fromkeys(self._collect_ws_names(prog)):
            w.line(f"{ws} = None")
        # Array declaration prologue (interp order: program.arrays.values()).
        for decl in prog.arrays.values():
            if decl.materialize:
                raise UnsupportedConstructError(
                    f"array {decl.name!r} is materialized (data-dependent control flow)"
                )
            self._check_expr_reads(decl.size)
            w.line(f"_n = int({_emit_expr(decl.size)})")
            w.line("if _n < 0:")
            w.line(
                f'    raise InterpreterError(f"array {decl.name!r} '
                'has negative size {_n}")'
            )
            w.line(f"_nb = _n * {decl.itemsize!r}")
            w.line(f"_sz[{decl.name!r}] = _nb")
            if mode == "req":
                w.line(f"yield Alloc({decl.name!r}, _nb)")
            else:
                self._fast_alloc_yield(w, decl.name)
        for stmt in prog.body:
            self._emit_stmt(w, stmt, mode, depth=0)
        if mode == "fast":
            w.line("_st[0] = clock")
            w.line("_st[1] = ev")
            w.line("_st[2] = ct")
            w.line("_st[4] = hc")
        else:
            w.line("return")
        return w.lines

    def _collect_ws_names(self, prog: Program) -> list[str]:
        names = []
        for stmt in walk(prog.body):
            if isinstance(stmt, CompBlock):
                names.append(self._ws_name(stmt.sid))
        return names

    # -- fast-mode plumbing ------------------------------------------------

    def _fast_flush(self, w: "_Writer") -> None:
        # Only the cells the runtime reads mid-run: clock (deadlock
        # diagnosis) and host_cost (shared accumulator — the runtime
        # adds message costs between yields, so the float order of
        # engine accumulation survives).  events/compute_time are
        # generator-only and flush once at body end.
        w.line("_st[0] = clock")
        w.line("_st[4] = hc")

    def _fast_alloc_yield(self, w: "_Writer", name: str) -> None:
        # Engine processes Alloc inline inside _resume; the fast runtime
        # does the same in its step loop, so this round-trips without an
        # event-queue hop.  Memory errors surface from the runtime.
        w.line("ev += 1")
        self._fast_flush(w)
        w.line(f"clock = yield (7, clock, {name!r}, _nb)")
        w.line("hc = _st[4]")

    # -- statement dispatch ------------------------------------------------

    def _emit_stmt(self, w: "_Writer", stmt, mode: str, depth: int) -> None:
        ty = type(stmt)
        if ty is Assign:
            self._check_expr_reads(stmt.expr)
            w.line(f"{_mangle(stmt.var)} = {_emit_expr(stmt.expr)}")
            if depth == 0 and self._write_counts.get(stmt.var, 0) == 1:
                srcs = self._static_sources(stmt.expr.free_vars())
                if srcs is not None:
                    # Single-write top-level assign over fixed names is
                    # itself fixed; unlocks static waves further down.
                    self._known[stmt.var] = "derived"
            return
        if ty is CompBlock:
            self._emit_comp(w, stmt, mode)
            return
        if ty is For:
            self._emit_for(w, stmt, mode, depth)
            return
        if ty is If:
            bad = stmt.cond.free_vars() & self.handle_vars
            if bad:
                raise UnsupportedConstructError(
                    f"handle variable(s) {sorted(bad)} read as scalars"
                )
            w.line(f"if {_emit_bool(stmt.cond)}:")
            if stmt.then:
                with w.indented():
                    for s in stmt.then:
                        self._emit_stmt(w, s, mode, depth + 1)
            else:
                w.line("    pass")
            if stmt.orelse:
                w.line("else:")
                with w.indented():
                    for s in stmt.orelse:
                        self._emit_stmt(w, s, mode, depth + 1)
            return
        if ty is SendStmt:
            self._emit_send(w, stmt, mode, blocking=True)
            return
        if ty is RecvStmt:
            self._emit_recv(w, stmt, mode, blocking=True)
            return
        if ty is IsendStmt:
            self._emit_send(w, stmt, mode, blocking=False)
            return
        if ty is IrecvStmt:
            self._emit_recv(w, stmt, mode, blocking=False)
            return
        if ty is WaitAllStmt:
            self._emit_wait(w, stmt, mode)
            return
        if ty is CollectiveStmt:
            self._emit_collective(w, stmt, mode)
            return
        if ty is DelayStmt:
            self._emit_delay(w, stmt, mode)
            return
        if ty is ReadParams:
            self._emit_read_params(w, stmt, mode, depth)
            return
        if ty is StartTimer:
            if mode == "req":
                w.line(f"_tm[{stmt.task!r}] = yield _NOW_T")
            else:
                w.line("clock += _TIC")
                w.line("ev += 1")
                w.line(f"_tm[{stmt.task!r}] = clock")
            return
        if ty is StopTimer:
            w.line("try:")
            w.line(f"    _t0 = _tm.pop({stmt.task!r})")
            w.line("except KeyError:")
            w.line(
                f'    raise InterpreterError("timer_stop({stmt.task!r}) '
                'without timer_start") from None'
            )
            if mode == "req":
                w.line("_t1 = yield _NOW_T")
            else:
                w.line("clock += _TIC")
                w.line("ev += 1")
            return
        if ty is AllocStmt:
            self._check_expr_reads(stmt.nbytes)
            w.line(f"_nb = int({_emit_expr(stmt.nbytes)})")
            if mode == "req":
                w.line(f"yield Alloc({stmt.name!r}, _nb)")
            else:
                w.line("if _nb < 0:")
                w.line(f"    Alloc({stmt.name!r}, _nb)")
                self._fast_alloc_yield(w, stmt.name)
            w.line(f"_sz[{stmt.name!r}] = _nb")
            return
        if ty is ArrayAssign:
            raise UnsupportedConstructError(
                f"ArrayAssign to {stmt.array!r} requires materialized arrays"
            )
        raise UnsupportedConstructError(f"statement kind {ty.__name__} is not lowerable")

    # -- individual statements ---------------------------------------------

    def _emit_comp(self, w: "_Writer", stmt: CompBlock, mode: str) -> None:
        if stmt.kernel is not None:
            raise UnsupportedConstructError(
                f"comp block {stmt.name!r} carries a Python kernel callable"
            )
        self._check_expr_reads(stmt.work)
        ws = self._ws_name(stmt.sid)
        w.line(f"_w = {_emit_expr(stmt.work)}")
        w.line("if _w < 0:")
        w.line("    _w = 0")
        w.line("if _w > 0:")
        with w.indented():
            w.line(f"if {ws} is None:")
            with w.indented():
                if stmt.arrays:
                    refs = " + ".join(f"_sz[{a!r}]" for a in stmt.arrays)
                    w.line("try:")
                    w.line(f"    {ws} = float({refs})")
                    w.line("except KeyError as _e:")
                    w.line(
                        f'    raise InterpreterError(f"task {stmt.name!r} references '
                        'undeclared array {_e.args[0]!r}") from None'
                    )
                else:
                    w.line(f"{ws} = 0.0")
            if mode == "req":
                w.line(
                    f"yield Compute(ops=_w * {stmt.ops_per_iter!r}, "
                    f"working_set_bytes={ws}, task={stmt.name!r})"
                )
            else:
                w.line(f"_ops = _w * {stmt.ops_per_iter!r}")
                w.line(f"if 0 <= _ops < _INF and 0 <= {ws} < _INF:")
                with w.indented():
                    w.line(f"_dt = _tt(_ops, {ws})")
                    w.line("clock += _dt")
                    w.line("ct += _dt")
                    w.line("hc += _ops * _CHF + _EVOH")
                    w.line("ev += 1")
                w.line("else:")
                w.line(f"    Compute(ops=_ops, working_set_bytes={ws}, task={stmt.name!r})")

    def _emit_send(self, w: "_Writer", stmt, mode: str, blocking: bool) -> None:
        self._check_expr_reads(stmt.dest, stmt.nbytes)
        w.line(f"_d = int({_emit_expr(stmt.dest)})")
        w.line(f"_nb = int({_emit_expr(stmt.nbytes)})")
        tag = int(stmt.tag)
        if mode == "req":
            if blocking:
                w.line(f"yield Send(dest=_d, nbytes=_nb, tag={tag!r})")
            else:
                w.line(
                    f"{_mangle(stmt.handle_var)} = "
                    f"yield Isend(dest=_d, nbytes=_nb, tag={tag!r})"
                )
            return
        w.line("if _d < 0 or not (0 <= _nb < _INF):")
        cls = "Send" if blocking else "Isend"
        w.line(f"    {cls}(dest=_d, nbytes=_nb, tag={tag!r})")
        w.line("ev += 1")
        self._fast_flush(w)
        if blocking:
            w.line(f"clock = yield (1, clock, _d, _nb, {tag!r})")
        else:
            w.line("_hid += 1")
            w.line(f"{_mangle(stmt.handle_var)} = _hid")
            w.line(f"clock = yield (3, clock, _d, _nb, {tag!r})")
        w.line("hc = _st[4]")

    def _emit_recv(self, w: "_Writer", stmt, mode: str, blocking: bool) -> None:
        self._check_expr_reads(stmt.source, stmt.nbytes)
        w.line(f"_s = int({_emit_expr(stmt.source)})")
        w.line(f"_nb = int({_emit_expr(stmt.nbytes)})")
        tag = int(stmt.tag)
        if mode == "req":
            if blocking:
                w.line(f"yield Recv(source=_s, tag={tag!r}, nbytes_hint=_nb)")
            else:
                w.line(
                    f"{_mangle(stmt.handle_var)} = "
                    f"yield Irecv(source=_s, tag={tag!r}, nbytes_hint=_nb)"
                )
            return
        w.line("if _s < 0 and _s != -1:")
        cls = "Recv" if blocking else "Irecv"
        w.line(f"    {cls}(source=_s, tag={tag!r}, nbytes_hint=_nb)")
        w.line("ev += 1")
        self._fast_flush(w)
        if blocking:
            w.line(f"clock = yield (2, clock, _s, {tag!r})")
        else:
            w.line("_hid += 1")
            w.line(f"{_mangle(stmt.handle_var)} = _hid")
            w.line(f"clock = yield (4, clock, _s, {tag!r})")
        w.line("hc = _st[4]")

    def _emit_wait(self, w: "_Writer", stmt: WaitAllStmt, mode: str) -> None:
        names = ", ".join(_mangle(v) for v in stmt.handle_vars)
        trail = "," if len(stmt.handle_vars) == 1 else ""
        w.line(f"_hl = [_h for _h in ({names}{trail}) if _h is not _UNSET]")
        w.line("if _hl:")
        with w.indented():
            if mode == "req":
                w.line("yield Wait(handles=tuple(_hl))")
            else:
                w.line("ev += 1")
                self._fast_flush(w)
                w.line("clock = yield (5, clock, _hl)")
                w.line("hc = _st[4]")
        for v in stmt.handle_vars:
            w.line(f"{_mangle(v)} = _UNSET")

    def _emit_collective(self, w: "_Writer", stmt: CollectiveStmt, mode: str) -> None:
        self._check_expr_reads(stmt.nbytes, stmt.root, stmt.contrib)
        w.line(f"_nb = int({_emit_expr(stmt.nbytes)})")
        w.line(f"_rt = int({_emit_expr(stmt.root)})")
        if stmt.contrib is not None:
            w.line(f"_cv = {_emit_expr(stmt.contrib)}")
        else:
            w.line("_cv = None")
        kind = stmt.reduce_kind if stmt.op in ("reduce", "allreduce") else None
        if mode == "req":
            rfn = f"_R_{kind}" if kind is not None else "None"
            w.line(
                f"_res = yield Collective(op={stmt.op!r}, nbytes=_nb, root=_rt, "
                f"data=_cv, reduce_fn={rfn})"
            )
            if stmt.result_var is not None:
                w.line(f"{_mangle(stmt.result_var)} = _res.data")
            return
        w.line("if not (0 <= _nb < _INF) or _rt < 0:")
        w.line(f"    Collective(op={stmt.op!r}, nbytes=_nb, root=_rt)")
        w.line("ev += 1")
        self._fast_flush(w)
        w.line(f"_tmp = yield (6, clock, {stmt.op!r}, _nb, _rt, _cv, {kind!r})")
        w.line("clock = _tmp[0]")
        if stmt.result_var is not None:
            w.line(f"{_mangle(stmt.result_var)} = _tmp[1]")
        w.line("hc = _st[4]")

    def _emit_read_params(self, w: "_Writer", stmt: ReadParams, mode: str, depth: int) -> None:
        names = tuple(stmt.names)
        w.line(f"_ms = [n for n in {names!r} if n not in _wp]")
        w.line("if _ms:")
        w.line(
            '    raise InterpreterError(f"{PROGRAM}: parameter file lacks {_ms}; '
            'run the timer-instrumented version first (Fig. 2 workflow)")'
        )
        nbytes = 8 * len(names)
        w.line(f"_pl = {{n: _wp[n] for n in {names!r}}} if v_myid == 0 else None")
        if mode == "req":
            w.line(
                f'_res = yield Collective(op="bcast", nbytes={nbytes!r}, root=0, data=_pl)'
            )
            w.line("_rd = _res.data")
        else:
            w.line("ev += 1")
            self._fast_flush(w)
            w.line(f'_tmp = yield (6, clock, "bcast", {nbytes!r}, 0, _pl, None)')
            w.line("clock = _tmp[0]")
            w.line("_rd = _tmp[1]")
            w.line("hc = _st[4]")
        for n in names:
            w.line(f"{_mangle(n)} = _rd[{n!r}]")
        if depth == 0:
            for n in names:
                if self._write_counts.get(n, 0) == 1:
                    self._known[n] = "wparam"

    def _emit_delay(self, w: "_Writer", stmt: DelayStmt, mode: str) -> None:
        self._check_expr_reads(stmt.amount)
        w.line(f"_a = {_emit_expr(stmt.amount)}")
        if mode == "req":
            w.line(f"yield Delay(seconds=max(float(_a), 0.0), task={stmt.task!r})")
            return
        w.line("_dy = max(float(_a), 0.0)")
        w.line("if _dy < _INF:")
        with w.indented():
            w.line("clock += _dy")
            w.line("ct += _dy")
            w.line("hc += _DHC")
            w.line("ev += 1")
        w.line("else:")
        w.line(f"    Delay(seconds=_dy, task={stmt.task!r})")

    # -- loops and vectorization -------------------------------------------

    def _emit_for(self, w: "_Writer", stmt: For, mode: str, depth: int) -> None:
        self._check_expr_reads(stmt.lo, stmt.hi)
        plan = self._vec_plan(stmt) if mode == "fast" else None
        if plan is None:
            w.line(
                f"for {_mangle(stmt.var)} in "
                f"range(int({_emit_expr(stmt.lo)}), int({_emit_expr(stmt.hi)}) + 1):"
            )
            with w.indented():
                for s in stmt.body:
                    self._emit_stmt(w, s, mode, depth + 1)
            return
        # Vectorizable delay loop: one NumPy wave per entry (and, when the
        # site is fixed at program start, one 2-D batch across all ranks).
        delay = stmt.body[0]
        w.line(f"_lo = int({_emit_expr(stmt.lo)})")
        w.line(f"_hi = int({_emit_expr(stmt.hi)})")
        if plan.static_id is not None:
            w.line(f"_dl = _wv.get({plan.static_id})")
            w.line("if _dl is None:")
            w.line(f"    _dl = {plan.helper}(_lo, _hi{plan.callargs})")
        else:
            w.line(f"_dl = {plan.helper}(_lo, _hi{plan.callargs})")
        w.line("if _dl is not None:")
        with w.indented():
            w.line("for _dy in _dl:")
            with w.indented():
                w.line("if _dy < _INF:")
                with w.indented():
                    w.line("clock += _dy")
                    w.line("ct += _dy")
                    w.line("hc += _DHC")
                    w.line("ev += 1")
                w.line("else:")
                w.line(f"    Delay(seconds=_dy, task={delay.task!r})")
        w.line("else:")
        with w.indented():
            w.line(f"for {_mangle(stmt.var)} in range(_lo, _hi + 1):")
            with w.indented():
                self._emit_delay(w, delay, mode)

    def _vec_plan(self, stmt: For) -> vectorize.SitePlan | None:
        """Build (once) and return the wave plan for a delay-only loop."""
        key = id(stmt)
        if key in self._vec_plans:
            return self._vec_plans[key]
        plan = None
        if (
            len(stmt.body) == 1
            and type(stmt.body[0]) is DelayStmt
            and vectorize.batch_safe(stmt.body[0].amount)
        ):
            delay = stmt.body[0]
            outer = sorted(
                (delay.amount.free_vars() | stmt.lo.free_vars() | stmt.hi.free_vars())
                - {stmt.var}
            )
            if all(n.isidentifier() for n in outer):
                self._site_seq += 1
                n = self._site_seq
                helper = f"_vd{n}"
                args = "".join(f", {_mangle(a)}" for a in outer)
                body_np = vectorize.emit_numpy(delay.amount, stmt.var, set(outer))
                self.helper_lines.append(f"def _vdf{n}(_np, _i{args}):")
                self.helper_lines.append(f"    return {body_np}")
                self.helper_lines.append(f"def {helper}(_lo, _hi{args}):")
                argtuple = ", ".join(_mangle(a) for a in outer)
                if outer:
                    argtuple += ","
                self.helper_lines.append(
                    f"    return _vec.delay_wave(_lo, _hi, ({argtuple}), _vdf{n})"
                )
                self.helper_lines.append("")
                static_id = self._maybe_static_site(n, stmt, delay, outer)
                plan = vectorize.SitePlan(helper=helper, callargs=args, static_id=static_id)
                self.vector_site_count += 1
        self._vec_plans[key] = plan
        return plan

    def _static_sources(self, names) -> list[tuple[str, str]] | None:
        """Resolve *names* to fixed-at-start sources, or None if any varies."""
        out = []
        for n in sorted(names):
            if n == "myid" or n == "P":
                out.append((n, "builtin"))
                continue
            src = self._known.get(n)
            if src is None or self._write_counts.get(n, 0) > 1:
                return None
            if src == "derived":
                return None  # conservatively skip derived chains in waves
            out.append((n, src))
        return out

    def _maybe_static_site(self, n: int, stmt: For, delay: DelayStmt, outer) -> int | None:
        """Emit a STATIC_SITES entry if the whole site is fixed at start.

        Bounds must not depend on ``myid`` (rows would go ragged); the
        amount may (that is the SPMD cross-rank axis).
        """
        bound_vars = (stmt.lo.free_vars() | stmt.hi.free_vars()) - {stmt.var}
        if "myid" in bound_vars:
            return None
        srcs = self._static_sources(set(outer))
        if srcs is None:
            return None
        if not (vectorize.batch_safe(stmt.lo) and vectorize.batch_safe(stmt.hi)):
            return None
        # ``myid`` is the cross-rank axis (a column vector at precompute
        # time); everything else arrives as a scalar argument.
        args = [(a, s) for a, s in srcs if a != "myid"]
        arg_list = ", ".join(_mangle(a) for a, _ in args)
        prefix = f", {arg_list}" if arg_list else ""
        names = {a for a, _ in srcs}
        lo_np = vectorize.emit_numpy(stmt.lo, None, names)
        hi_np = vectorize.emit_numpy(stmt.hi, None, names)
        body_np = vectorize.emit_numpy(delay.amount, stmt.var, names)
        self.helper_lines.append(f"def _sl{n}(_np{prefix}):")
        self.helper_lines.append(f"    return {lo_np}")
        self.helper_lines.append(f"def _sh{n}(_np{prefix}):")
        self.helper_lines.append(f"    return {hi_np}")
        self.helper_lines.append(f"def _sb{n}(_np, _i, v_myid{prefix}):")
        self.helper_lines.append(f"    return {body_np}")
        self.helper_lines.append("")
        spec = tuple(args)
        self.static_sites.append(f"({n}, _sl{n}, _sh{n}, _sb{n}, {spec!r})")
        return n


class _Writer:
    def __init__(self):
        self.lines: list[str] = []
        self._depth = 1

    def line(self, text: str) -> None:
        self.lines.append("    " * self._depth + text)

    def indented(self):
        return _Indent(self)


class _Indent:
    def __init__(self, writer: _Writer):
        self.w = writer

    def __enter__(self):
        self.w._depth += 1
        return self.w

    def __exit__(self, *exc):
        self.w._depth -= 1
        return False
