"""Compiled per-program kernel backend.

``repro.kernel.lower`` turns a validated IR program into a generated
Python module (content-addressed by the SHA-256 of its printed IR) with
two entry points: a request-yielding generator byte-compatible with the
interpreter, and a flat fast-mode state machine consumed by
``repro.kernel.runtime``'s bucket-queue event loop.
``repro.kernel.vectorize`` batch-evaluates AM ``delay()`` amounts in
NumPy — per loop entry, or across all ranks at once for SPMD sites
fixed at program start.

Select it per run with ``Simulator(..., backend="compiled")`` (or
``"auto"``, which falls back per-program on unsupported constructs).
"""

from .lower import (
    CompiledKernel,
    UnsupportedConstructError,
    cache_stats,
    cached_kernels,
    clear_cache,
    kernel_for,
    load_kernel_source,
    lower_program,
    program_fingerprint,
    record_fallback,
    set_warm_dir,
)
from .runtime import run_fast

__all__ = [
    "CompiledKernel",
    "UnsupportedConstructError",
    "cache_stats",
    "cached_kernels",
    "clear_cache",
    "kernel_for",
    "load_kernel_source",
    "lower_program",
    "program_fingerprint",
    "record_fallback",
    "run_fast",
    "set_warm_dir",
]
