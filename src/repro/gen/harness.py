"""The differential harness: measured vs DE vs AM on one generated program.

For a valid scenario the harness runs all three estimators and checks
every invariant the paper and the kernel promise:

* **Error structure** — percentage errors against measurement satisfy
  ``err_AM >= err_DE >= 0`` within a noise tolerance, and neither
  simulator strays beyond its ceiling (DE only differs from measurement
  by modeled noise; AM adds the calibration approximation).
* **Deterministic replay** — re-running every estimator under the same
  seed reproduces byte-identical statistics (the determinism contract
  in ``docs/robustness.md``, now enforced program-by-program).
* **Conservation** — across each completed fault-free run: every
  message sent is received, virtual time is non-negative and monotone
  (``elapsed == max(finish_time)``), and the kernel executed events.

For an intentionally *faulty* scenario, :func:`classify_faulty` instead
demands the kernel diagnose the bug — a :class:`DeadlockError` whose
report names the broken idiom (unmatched sends, wait-chain cycles,
collective stragglers) or a :class:`CollectiveMismatchError` — rather
than completing, crashing or hanging.

Any violated invariant yields a :class:`DiffVerdict` with ``ok=False``
and a machine-readable ``failure`` kind — the unit the auto-minimizer
(:mod:`repro.gen.minimize`) shrinks against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..ir.nodes import Program, walk
from ..machine import get_machine
from ..sim.engine import CollectiveMismatchError, DeadlockError, SimResult
from ..workflow.pipeline import ModelingWorkflow
from .generator import GeneratedProgram

__all__ = ["DiffConfig", "DiffVerdict", "check_program", "classify_faulty", "run_case"]

#: machine-readable failure kinds a verdict can carry
FAILURES = (
    "deadlock",          # valid program deadlocked (or faulty one did not)
    "mismatch",          # collective mismatch on a valid program
    "exception",         # any other crash inside the pipeline
    "error_structure",   # err_AM < err_DE beyond tolerance
    "de_error",          # DE strayed beyond its noise ceiling
    "am_error",          # AM strayed beyond its approximation ceiling
    "nondeterministic",  # same seed, different stats
    "conservation",      # messages or virtual time not conserved
    "misclassified",     # faulty program not diagnosed as expected
    "backend_divergence",  # compiled backend disagrees with interpreted
)


@dataclass(frozen=True)
class DiffConfig:
    """Thresholds and run configuration for the differential harness.

    ``tolerance_pct`` is the slack (in percentage points) on the
    ``err_AM >= err_DE`` ordering: measurement noise moves both errors
    by a few points per sample, so the paper's structural claim only
    holds beyond the noise floor.  The ceilings are deliberately loose —
    they exist to catch *wild* mispredictions (a broken slicing pass,
    a condensation bug), not to re-litigate the paper's error tables.
    """

    nprocs: int = 4
    calib_nprocs: int = 4
    machine: str = "IBM-SP"
    tolerance_pct: float = 15.0
    max_err_de_pct: float = 35.0
    max_err_am_pct: float = 60.0
    check_replay: bool = True
    #: "interpreted" checks one kernel; "compiled"/"auto" additionally
    #: re-runs DE and AM on that backend and demands byte-identical
    #: statistics and traces (failure kind ``backend_divergence``).
    backend: str = "interpreted"

    def __post_init__(self):
        if self.nprocs < 1 or self.calib_nprocs < 1:
            raise ValueError("nprocs and calib_nprocs must be >= 1")
        if self.backend not in ("interpreted", "compiled", "auto"):
            raise ValueError(
                f"backend must be 'interpreted', 'compiled' or 'auto', got {self.backend!r}"
            )
        for name in ("tolerance_pct", "max_err_de_pct", "max_err_am_pct"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")


@dataclass(frozen=True)
class DiffVerdict:
    """The harness's judgement of one scenario."""

    seed: int
    pattern: str
    n_stmts: int
    ok: bool
    failure: str | None = None
    detail: str = ""
    err_de: float | None = None
    err_am: float | None = None
    elapsed_measured: float | None = None
    elapsed_de: float | None = None
    elapsed_am: float | None = None
    expect: str = "ok"

    def to_record(self) -> dict:
        """Flat JSON-safe form (fuzz journal / report rows)."""
        return {
            "seed": self.seed,
            "pattern": self.pattern,
            "n_stmts": self.n_stmts,
            "ok": self.ok,
            "failure": self.failure,
            "detail": self.detail,
            "err_de": self.err_de,
            "err_am": self.err_am,
            "elapsed_measured": self.elapsed_measured,
            "elapsed_de": self.elapsed_de,
            "elapsed_am": self.elapsed_am,
            "expect": self.expect,
        }


def _stats_fingerprint(result: SimResult) -> str:
    """Canonical byte string of a run's complete statistics."""
    return json.dumps(
        [p.to_dict() for p in result.stats.procs], sort_keys=True, separators=(",", ":")
    )


def _conservation_violation(result: SimResult) -> str | None:
    """Check fault-free kernel invariants on one completed run."""
    stats = result.stats
    sent = sum(p.messages_sent for p in stats.procs)
    received = sum(p.messages_received for p in stats.procs)
    if sent != received:
        return f"message conservation violated: {sent} sent != {received} received"
    for p in stats.procs:
        if not (p.finish_time >= 0.0):
            return f"rank {p.rank} finished at negative virtual time {p.finish_time}"
        if p.events < 0:
            return f"rank {p.rank} reports negative event count {p.events}"
    if stats.elapsed != max((p.finish_time for p in stats.procs), default=0.0):
        return "elapsed is not the maximum rank finish time"
    if stats.total_events <= 0:
        return "run executed no kernel events"
    return None


def _workflow(
    program: Program, inputs: dict, config: DiffConfig, seed: int,
    backend: str | None = None,
) -> ModelingWorkflow:
    return ModelingWorkflow(
        program,
        get_machine(config.machine),
        calib_inputs=dict(inputs),
        calib_nprocs=config.calib_nprocs,
        seed=seed,
        backend=backend,
    )


def _backend_divergence(
    program: Program, inputs: dict, config: DiffConfig, seed: int,
    de: SimResult, am: SimResult,
) -> str | None:
    """Re-run DE and AM on the configured backend; describe any divergence.

    Three things count: different statistics bytes, a different event
    trace, or the compiled path crashing on a program the interpreted
    kernel just completed.  The statistics runs exercise the fast
    bucket-queue runtime (observability off); the trace run exercises
    the request-replay path through the tracing engine.  A strict
    ``compiled`` backend refusing a non-lowerable program is not a
    divergence — ``auto`` covers that program via its fallback.
    """
    try:
        wf = _workflow(program, inputs, config, seed, backend=config.backend)
        de_c = wf.run_de(inputs, config.nprocs)
        am_c = wf.run_am(inputs, config.nprocs)
    except ValueError as exc:
        if config.backend == "compiled" and "cannot run this program" in str(exc):
            return None
        return f"{config.backend} backend crashed: {type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - crash parity is the invariant
        return f"{config.backend} backend crashed: {type(exc).__name__}: {exc}"
    if _stats_fingerprint(de_c) != _stats_fingerprint(de):
        return "DE statistics differ between interpreted and compiled backends"
    if _stats_fingerprint(am_c) != _stats_fingerprint(am):
        return "AM statistics differ between interpreted and compiled backends"
    try:
        tr_i = _workflow(program, inputs, config, seed).run_de(
            inputs, config.nprocs, collect_trace=True)
        tr_c = wf.run_de(inputs, config.nprocs, collect_trace=True)
    except Exception as exc:  # noqa: BLE001
        return f"trace comparison crashed: {type(exc).__name__}: {exc}"
    if repr(tr_i.trace.events) != repr(tr_c.trace.events):
        return "DE traces differ between interpreted and compiled backends"
    return None


def _n_stmts(program: Program) -> int:
    return sum(1 for _ in walk(program.body))


def check_program(
    scenario: GeneratedProgram, config: DiffConfig | None = None
) -> DiffVerdict:
    """Run one scenario through the harness and return its verdict.

    Dispatches on the scenario's expectation: valid programs go through
    the three-estimator differential check, faulty ones through
    :func:`classify_faulty`.
    """
    config = config if config is not None else DiffConfig()
    if scenario.expect != "ok":
        return classify_faulty(scenario, config)
    return run_case(
        scenario.program, scenario.inputs, config,
        seed=scenario.seed, pattern=scenario.pattern, expect="ok",
    )


def run_case(
    program: Program,
    inputs: dict,
    config: DiffConfig,
    seed: int = 0,
    pattern: str = "",
    expect: str = "ok",
) -> DiffVerdict:
    """The valid-program differential check (used by fuzzing, regression
    replay and the minimizer's predicate alike)."""
    n = _n_stmts(program)

    def fail(kind: str, detail: str, **kw) -> DiffVerdict:
        return DiffVerdict(
            seed=seed, pattern=pattern, n_stmts=n, ok=False,
            failure=kind, detail=detail, expect=expect, **kw,
        )

    try:
        wf = _workflow(program, inputs, config, seed)
        measured = wf.run_measured(inputs, config.nprocs, seed=seed + 101)
        de = wf.run_de(inputs, config.nprocs)
        am = wf.run_am(inputs, config.nprocs)
    except DeadlockError as exc:
        head = str(exc).splitlines()[0]
        return fail("deadlock", f"valid program deadlocked: {head}")
    except CollectiveMismatchError as exc:
        return fail("mismatch", f"valid program hit a collective mismatch: {exc}")
    except Exception as exc:  # noqa: BLE001 - the whole point is catching pipeline crashes
        return fail("exception", f"{type(exc).__name__}: {exc}")

    for label, result in (("measured", measured), ("de", de), ("am", am)):
        violation = _conservation_violation(result)
        if violation:
            return fail("conservation", f"{label}: {violation}")

    if measured.elapsed <= 0.0:
        return fail("conservation", "measured run has non-positive elapsed time")
    err_de = 100.0 * abs(de.elapsed - measured.elapsed) / measured.elapsed
    err_am = 100.0 * abs(am.elapsed - measured.elapsed) / measured.elapsed
    errs = {
        "err_de": err_de, "err_am": err_am,
        "elapsed_measured": measured.elapsed,
        "elapsed_de": de.elapsed, "elapsed_am": am.elapsed,
    }
    if err_de > config.max_err_de_pct:
        return fail(
            "de_error",
            f"DE error {err_de:.2f}% exceeds ceiling {config.max_err_de_pct:.2f}%",
            **errs,
        )
    if err_am > config.max_err_am_pct:
        return fail(
            "am_error",
            f"AM error {err_am:.2f}% exceeds ceiling {config.max_err_am_pct:.2f}%",
            **errs,
        )
    if err_am < err_de - config.tolerance_pct:
        return fail(
            "error_structure",
            f"error structure inverted: AM {err_am:.2f}% < DE {err_de:.2f}% "
            f"- tolerance {config.tolerance_pct:.2f}%",
            **errs,
        )

    if config.check_replay:
        try:
            wf2 = _workflow(program, inputs, config, seed)
            measured2 = wf2.run_measured(inputs, config.nprocs, seed=seed + 101)
            de2 = wf2.run_de(inputs, config.nprocs)
            am2 = wf2.run_am(inputs, config.nprocs)
        except Exception as exc:  # noqa: BLE001
            return fail("nondeterministic", f"replay crashed: {type(exc).__name__}: {exc}", **errs)
        for label, a, b in (
            ("measured", measured, measured2), ("de", de, de2), ("am", am, am2)
        ):
            if _stats_fingerprint(a) != _stats_fingerprint(b):
                return fail(
                    "nondeterministic",
                    f"{label} replay under the same seed produced different statistics",
                    **errs,
                )

    if config.backend != "interpreted":
        divergence = _backend_divergence(program, inputs, config, seed, de, am)
        if divergence is not None:
            return fail("backend_divergence", divergence, **errs)

    return DiffVerdict(
        seed=seed, pattern=pattern, n_stmts=n, ok=True, expect=expect, **errs
    )


def classify_faulty(
    scenario: GeneratedProgram, config: DiffConfig | None = None
) -> DiffVerdict:
    """Check that a deliberately faulty program is *diagnosed*, not run.

    The DE estimator executes the original program, so it is the one
    whose kernel must classify the bug.  ``expect == "deadlock"``
    demands a :class:`DeadlockError` carrying a report that names the
    broken idiom (kind-specific: unmatched sends for orphan sends,
    wait-chain cycles for circular waits, collective stragglers for
    arity bugs); ``expect == "mismatch"`` demands a
    :class:`CollectiveMismatchError`.
    """
    config = config if config is not None else DiffConfig()
    n = _n_stmts(scenario.program)

    def verdict(ok: bool, failure: str | None = None, detail: str = "") -> DiffVerdict:
        return DiffVerdict(
            seed=scenario.seed, pattern=scenario.pattern, n_stmts=n, ok=ok,
            failure=failure, detail=detail, expect=scenario.expect,
        )

    try:
        wf = _workflow(scenario.program, scenario.inputs, config, scenario.seed)
        wf.run_de(scenario.inputs, config.nprocs)
    except DeadlockError as exc:
        if scenario.expect != "deadlock":
            return verdict(False, "misclassified",
                           f"expected {scenario.expect}, got deadlock")
        report = exc.report
        if report is None:
            return verdict(False, "misclassified", "deadlock raised without a report")
        kind = scenario.faulty
        if kind == "orphan_send" and not report.unmatched_sends and not any(
            w.state == "send" for w in report.blocked
        ):
            return verdict(False, "misclassified",
                           "orphan send not visible in the deadlock report")
        if kind == "circular_wait" and not report.cycles():
            return verdict(False, "misclassified",
                           "no wait-chain cycle in the deadlock report")
        if kind == "collective_arity" and not report.stragglers:
            return verdict(False, "misclassified",
                           "no collective stragglers in the deadlock report")
        return verdict(True)
    except CollectiveMismatchError as exc:
        if scenario.expect != "mismatch":
            return verdict(False, "misclassified",
                           f"expected {scenario.expect}, got mismatch: {exc}")
        return verdict(True)
    except Exception as exc:  # noqa: BLE001
        return verdict(False, "exception", f"{type(exc).__name__}: {exc}")
    return verdict(
        False, "misclassified",
        f"faulty program ({scenario.faulty}) completed without a diagnosis",
    )
