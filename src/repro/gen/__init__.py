"""Scenario generation and differential fuzzing of the compiler pipeline.

The paper's validation exercises the slicing/condensation/simulation
pipeline with exactly four friendly benchmarks.  This package hardens
the pipeline against the input space those benchmarks never touch:

* :mod:`repro.gen.grammar` — the configurable grammar of generated
  programs: size/depth budgets, message-size ranges, communication-
  pattern weights (nearest-neighbour, wavefront, butterfly,
  master/worker, random composition), feature toggles (collectives,
  non-blocking pairs, wildcard receives, branches).
* :mod:`repro.gen.generator` — a seeded, fully deterministic
  property-based generator of valid :mod:`repro.ir` programs drawn from
  the grammar, plus intentionally *faulty* programs (orphan sends,
  collective mismatches, circular waits) for the fault subsystem.
* :mod:`repro.gen.harness` — the differential harness: run one program
  through measured ground truth, MPI-SIM-DE and MPI-SIM-AM and check
  the paper's error structure (AM >= DE >= 0 within tolerance),
  byte-identical replay under the same seed, ``SimStats`` conservation
  invariants, and correct deadlock/mismatch classification of faulty
  programs.
* :mod:`repro.gen.minimize` — delta-debugging auto-minimizer: shrink a
  divergent program (statements, loop trip counts, message sizes,
  inputs) while it still reproduces the divergence.
* :mod:`repro.gen.corpus` — JSON (de)serialization of generated
  programs; the format of the committed regression corpus under
  ``repro/apps/regressions/``.
* :mod:`repro.gen.fuzz` — the resumable fuzz campaign driver behind
  ``python -m repro fuzz`` (crash-consistent journal, wall-clock
  budget, auto-minimized divergence artifacts).
"""

from .corpus import (
    CorpusError,
    RegressionCase,
    discover_corpus,
    load_case,
    program_from_json,
    program_to_json,
    save_case,
)
from .generator import (
    FAULT_KINDS,
    PATTERNS,
    GeneratedProgram,
    generate_faulty_program,
    generate_program,
)
from .grammar import GrammarConfig, GrammarError
from .harness import DiffConfig, DiffVerdict, check_program, classify_faulty
from .minimize import minimize_program
from .fuzz import FuzzConfig, FuzzError, FuzzReport, FuzzRunner

__all__ = [
    "GrammarConfig",
    "GrammarError",
    "GeneratedProgram",
    "generate_program",
    "generate_faulty_program",
    "PATTERNS",
    "FAULT_KINDS",
    "DiffConfig",
    "DiffVerdict",
    "check_program",
    "classify_faulty",
    "minimize_program",
    "CorpusError",
    "RegressionCase",
    "program_to_json",
    "program_from_json",
    "save_case",
    "load_case",
    "discover_corpus",
    "FuzzConfig",
    "FuzzError",
    "FuzzReport",
    "FuzzRunner",
]
