"""Delta-debugging auto-minimizer for divergent generated programs.

Given a program and a *reproduces* predicate (typically "the harness
still returns this failure kind"), shrink the program while the
predicate holds.  Three reduction passes run to a joint fixpoint:

1. **Statement deletion** — classic ddmin over every statement list in
   the program (top level and the bodies of ``For``/``If`` recursively):
   try dropping chunks of geometrically decreasing size, keeping any
   deletion that still reproduces.
2. **Loop-trip reduction** — rewrite constant ``For`` bounds so loops
   run fewer iterations (down to a single trip).
3. **Constant shrinking** — message sizes and compute grains shrink
   toward small round values.

Every candidate is re-validated (``number()`` + ``validate()``) before
the predicate sees it; candidates that no longer form a valid program
are rejected outright, so the minimizer can never "reduce" a divergence
into a different bug class by emitting garbage.

The result is small enough to read and commit: the acceptance bar in
ISSUE.md (an injected divergence reduced to <= 25% of its original
statement count) is covered by ``tests/gen/test_minimize.py``.
"""

from __future__ import annotations

import copy
from typing import Callable

from ..ir.nodes import For, If, Program, Stmt, walk
from ..symbolic import Const

__all__ = ["minimize_program", "MinimizeResult"]


def _count_stmts(program: Program) -> int:
    return sum(1 for _ in walk(program.body))


def _revalidate(program: Program) -> Program | None:
    """Renumber + re-validate a candidate; None if it is no longer well-formed."""
    if not program.body:
        return None
    try:
        program.number()
        program.validate()
    except Exception:  # noqa: BLE001 - any validation failure disqualifies the candidate
        return None
    return program


def _stmt_lists(program: Program) -> list[list[Stmt]]:
    """Every statement list in the program, outermost first."""
    lists = [program.body]
    for stmt in walk(program.body):
        if isinstance(stmt, For):
            lists.append(stmt.body)
        elif isinstance(stmt, If):
            lists.append(stmt.then)
            if stmt.orelse:
                lists.append(stmt.orelse)
    return lists


class _Minimizer:
    def __init__(
        self,
        program: Program,
        reproduces: Callable[[Program], bool],
        max_checks: int,
    ):
        self.best = program
        self.reproduces = reproduces
        self.max_checks = max_checks
        self.checks = 0

    def _try(self, candidate: Program) -> bool:
        """Accept ``candidate`` as the new best if it still reproduces."""
        if self.checks >= self.max_checks:
            return False
        candidate = _revalidate(candidate)
        if candidate is None:
            return False
        self.checks += 1
        try:
            ok = bool(self.reproduces(candidate))
        except Exception:  # noqa: BLE001 - predicate crashes count as "does not reproduce"
            ok = False
        if ok:
            self.best = candidate
        return ok

    # -- pass 1: ddmin over statement lists -----------------------------------
    def _delete_statements(self) -> bool:
        """One full ddmin sweep over every statement list; True if shrunk."""
        shrunk = False
        # Address lists by index so each candidate mutates a fresh deepcopy
        # of `best`; _stmt_lists order is deterministic (DFS, outermost
        # first), so index i names the same list in the copy.
        list_idx = 0
        while list_idx < len(_stmt_lists(self.best)):
            chunk = max(len(_stmt_lists(self.best)[list_idx]) // 2, 1)
            while chunk >= 1:
                progressed = False
                start = 0
                while True:
                    # An accepted deletion can remove a For/If and with it
                    # a nested list, so re-check the index every pass.
                    lists = _stmt_lists(self.best)
                    if list_idx >= len(lists) or start >= len(lists[list_idx]):
                        break
                    candidate = copy.deepcopy(self.best)
                    del _stmt_lists(candidate)[list_idx][start : start + chunk]
                    if self._try(candidate):
                        shrunk = progressed = True
                        # keep `start`: the next chunk slid into this slot
                    else:
                        start += chunk
                    if self.checks >= self.max_checks:
                        return shrunk
                if list_idx >= len(_stmt_lists(self.best)):
                    break
                if not progressed:
                    if chunk == 1:
                        break
                    chunk //= 2
            list_idx += 1
        return shrunk

    # -- pass 2: loop trip counts ---------------------------------------------
    def _shrink_loops(self) -> bool:
        shrunk = False
        idx = 0
        while True:
            loops = [s for s in walk(self.best.body) if isinstance(s, For)]
            if idx >= len(loops):
                break
            loop = loops[idx]
            lo = loop.lo.value if isinstance(loop.lo, Const) else None
            hi = loop.hi.value if isinstance(loop.hi, Const) else None
            # Bounds are inclusive: hi == lo is already a single trip.
            if lo is not None and hi is not None and hi > lo:
                # Try collapsing to a single trip, then halving the range.
                for new_hi in (lo, lo + (hi - lo) // 2):
                    if new_hi >= hi:
                        continue
                    candidate = copy.deepcopy(self.best)
                    cand_loop = [
                        s for s in walk(candidate.body) if isinstance(s, For)
                    ][idx]
                    cand_loop.hi = Const(new_hi)
                    if self._try(candidate):
                        shrunk = True
                        break
            if self.checks >= self.max_checks:
                return shrunk
            idx += 1
        return shrunk

    # -- pass 3: shrink constants (message sizes, grains) ---------------------
    _CONST_FLOOR = 8

    def _shrink_constants(self) -> bool:
        shrunk = False
        attr_sites: list[tuple[int, str]] = []
        for i, stmt in enumerate(walk(self.best.body)):
            for attr in ("nbytes", "work"):
                e = getattr(stmt, attr, None)
                if isinstance(e, Const) and e.value > self._CONST_FLOOR:
                    attr_sites.append((i, attr))
        for site_i, attr in attr_sites:
            while True:
                stmts = list(walk(self.best.body))
                value = getattr(stmts[site_i], attr).value
                new_value = max(value // 4, self._CONST_FLOOR)
                if new_value >= value:
                    break
                candidate = copy.deepcopy(self.best)
                cand_stmt = list(walk(candidate.body))[site_i]
                setattr(cand_stmt, attr, Const(new_value))
                if not self._try(candidate):
                    break
                shrunk = True
            if self.checks >= self.max_checks:
                return shrunk
        return shrunk


class MinimizeResult:
    """The outcome of a minimization: the reduced program plus bookkeeping."""

    def __init__(self, program: Program, original_stmts: int, checks: int):
        self.program = program
        self.original_stmts = original_stmts
        self.final_stmts = _count_stmts(program)
        self.checks = checks

    @property
    def reduction(self) -> float:
        """Fraction of statements removed (0.0 when nothing shrank)."""
        if self.original_stmts == 0:
            return 0.0
        return 1.0 - self.final_stmts / self.original_stmts


def minimize_program(
    program: Program,
    reproduces: Callable[[Program], bool],
    max_checks: int = 400,
) -> MinimizeResult:
    """Shrink ``program`` while ``reproduces(candidate)`` stays true.

    ``reproduces`` must be true for ``program`` itself — the minimizer
    asserts this up front (one predicate call) so a flaky repro fails
    loudly instead of silently returning the input unshrunk.
    ``max_checks`` bounds total predicate invocations across all passes.
    """
    original = _count_stmts(program)
    work = _revalidate(copy.deepcopy(program))
    if work is None:
        raise ValueError("cannot minimize: input program does not validate")
    if not reproduces(work):
        raise ValueError("cannot minimize: input program does not reproduce the failure")

    mm = _Minimizer(work, reproduces, max_checks)
    # Run passes to a joint fixpoint: deletion opens up loop shrinks and
    # vice versa (e.g. removing a recv lets the matching loop collapse).
    while mm.checks < mm.max_checks:
        changed = mm._delete_statements()
        changed |= mm._shrink_loops()
        changed |= mm._shrink_constants()
        if not changed:
            break
    return MinimizeResult(mm.best, original, mm.checks)
