"""Seeded property-based generator of message-passing IR programs.

``generate_program(seed, grammar)`` is a pure function: the same
(seed, grammar) pair always produces the same :class:`GeneratedProgram`
(all randomness flows through one ``random.Random(seed)``), so any
fuzzing discovery is replayable from its seed alone.

Valid programs are built exclusively from *deadlock-free communication
idioms* — pipelined wavefront shifts, even/odd-ordered halo exchanges,
non-blocking ring shifts, arithmetic butterfly stages, master/worker
farms with wildcard receives, and rank-symmetric collectives — composed
under loops and branches within the grammar's size/depth budgets.  Any
generated program that completes the builder's static validation is
guaranteed (by construction) to terminate for every ``P >= 1``.

``generate_faulty_program`` deliberately breaks those idioms — orphan
rendezvous sends, circular waits, collectives guarded by rank-dependent
branches, mismatched collective ops — producing programs the fault
subsystem (:mod:`repro.sim.faults`) must *classify* (deadlock report /
collective mismatch) rather than hang on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..ir.builder import P, ProgramBuilder, myid
from ..ir.nodes import Program, walk
from ..symbolic import Eq, Gt, Le, Lt, Mod, Var
from .grammar import GrammarConfig, GrammarError

__all__ = [
    "PATTERNS",
    "FAULT_KINDS",
    "GeneratedProgram",
    "generate_program",
    "generate_faulty_program",
]

#: Valid-program communication patterns (the MP-net-style taxonomy).
PATTERNS = ("nearest_neighbour", "wavefront", "butterfly", "master_worker", "random_mix")

#: Intentionally faulty idioms and the classification each must produce.
FAULT_KINDS: dict[str, str] = {
    "orphan_send": "deadlock",
    "circular_wait": "deadlock",
    "collective_arity": "deadlock",
    "collective_op_mismatch": "mismatch",
}

#: Message size that always takes the rendezvous path (> every preset's
#: eager limit), so an unmatched send blocks instead of buffering.
RENDEZVOUS_BYTES = 1 << 20


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated scenario: the program plus how to run and judge it."""

    seed: int
    pattern: str  # pattern name, or fault kind for faulty programs
    program: Program
    inputs: dict[str, int] = field(default_factory=dict)
    #: fault kind when intentionally faulty, else None
    faulty: str | None = None
    #: expected differential outcome: "ok" | "deadlock" | "mismatch"
    expect: str = "ok"

    @property
    def n_stmts(self) -> int:
        return sum(1 for _ in walk(self.program.body))


class _Gen:
    """Mutable generation state: builder + budgets + unique ids."""

    def __init__(self, name: str, rng: random.Random, cfg: GrammarConfig):
        self.rng = rng
        self.cfg = cfg
        self.b = ProgramBuilder(name, params=())
        self.b.array("buf", size=(cfg.msg_max // 8) + 1)
        self.b.array("wk", size=2048)
        self.stmts = 0
        self._tag = 0
        self._uid = 0

    # -- budgets ---------------------------------------------------------------
    def room(self, n: int) -> bool:
        """Is there budget for *n* more statements?"""
        return self.stmts + n <= self.cfg.max_stmts

    def spend(self, n: int) -> None:
        self.stmts += n

    def tag(self) -> int:
        self._tag += 1
        return self._tag

    def uid(self) -> int:
        self._uid += 1
        return self._uid

    # -- random draws ----------------------------------------------------------
    def msg(self) -> int:
        return self.rng.randint(self.cfg.msg_min, self.cfg.msg_max)

    def grain(self) -> int:
        return self.rng.randint(self.cfg.grain_min, self.cfg.grain_max)

    def trip(self) -> int:
        return self.rng.randint(1, self.cfg.max_trip)

    def coin(self, p: float) -> bool:
        return self.rng.random() < p

    # -- deadlock-free communication idioms ------------------------------------
    # Each emits a self-contained exchange; `recv_source` honours the
    # wildcard probability only where exactly one in-flight message can
    # match the (source, tag) pair, so a wildcard never changes matching.
    def recv_source(self, src):
        return -1 if self.coin(self.cfg.p_wildcard) else src

    def compute(self) -> None:
        self.b.compute(
            f"comp{self.uid()}",
            work=self.grain(),
            ops_per_iter=float(self.rng.randint(1, 4)),
            arrays=("wk",),
        )
        self.spend(1)

    def assign(self) -> None:
        a = self.rng.randint(1, 7)
        c = self.rng.randint(2, 5)
        self.b.assign(f"s{self.uid()}", (myid * a + self.rng.randint(0, 9)) % c)
        self.spend(1)

    def collective(self) -> None:
        kind = self.rng.choice(("barrier", "bcast", "allreduce", "reduce"))
        u = self.uid()
        if kind == "barrier":
            self.b.barrier()
        elif kind == "bcast":
            self.b.bcast(self.msg(), root=0, array="buf")
        elif kind == "allreduce":
            self.b.allreduce(
                8, contrib=myid + 1, result_var=f"red{u}",
                reduce_kind=self.rng.choice(("sum", "max", "min")),
            )
        else:
            self.b.reduce(
                8, root=0, contrib=myid * 2 + 1, result_var=f"red{u}",
                reduce_kind=self.rng.choice(("sum", "max", "min")),
            )
        self.spend(1)

    def wavefront_shift(self) -> None:
        """Guarded pipeline step: recv from the left, send to the right."""
        t, nbytes = self.tag(), self.msg()
        with self.b.if_(Gt(myid, 0)):
            self.b.recv(source=self.recv_source(myid - 1), nbytes=nbytes, tag=t, array="buf")
        with self.b.if_(Lt(myid, P - 1)):
            self.b.send(dest=myid + 1, nbytes=nbytes, tag=t, array="buf")
        self.spend(4)

    def halo_exchange(self) -> None:
        """Bidirectional neighbour exchange, even/odd ordered (blocking)
        or via isend/irecv + waitall (non-blocking)."""
        t, nbytes = self.tag(), self.msg()
        if self.coin(self.cfg.p_nonblocking):
            u = self.uid()
            sl, sr, rl, rr = f"sl{u}", f"sr{u}", f"rl{u}", f"rr{u}"
            with self.b.if_(Gt(myid, 0)):
                self.b.isend(dest=myid - 1, nbytes=nbytes, tag=t, array="buf", handle=sl)
            with self.b.if_(Lt(myid, P - 1)):
                self.b.isend(dest=myid + 1, nbytes=nbytes, tag=t, array="buf", handle=sr)
            with self.b.if_(Gt(myid, 0)):
                self.b.irecv(source=myid - 1, nbytes=nbytes, tag=t, array="buf", handle=rl)
            with self.b.if_(Lt(myid, P - 1)):
                self.b.irecv(source=myid + 1, nbytes=nbytes, tag=t, array="buf", handle=rr)
            self.b.waitall(sl, sr, rl, rr)
            self.spend(9)
        else:
            # even ranks talk first to the right, then to the left —
            # the classic deadlock-free ordering for blocking exchanges
            even = Eq(Mod.make(myid, 2), 0)
            with self.b.if_(even):
                with self.b.if_(Lt(myid, P - 1)):
                    self.b.send(dest=myid + 1, nbytes=nbytes, tag=t, array="buf")
                    self.b.recv(source=myid + 1, nbytes=nbytes, tag=t, array="buf")
            with self.b.if_(Eq(Mod.make(myid, 2), 1)):
                self.b.recv(source=self.recv_source(myid - 1), nbytes=nbytes, tag=t, array="buf")
                self.b.send(dest=myid - 1, nbytes=nbytes, tag=t, array="buf")
            self.spend(7)

    def ring_shift(self) -> None:
        """Everyone isends to (myid+1) mod P, receives from the left."""
        t, nbytes = self.tag(), self.msg()
        h = f"ring{self.uid()}"
        self.b.isend(dest=Mod.make(myid + 1, P), nbytes=nbytes, tag=t, array="buf", handle=h)
        self.b.recv(source=Mod.make(myid - 1 + P, P), nbytes=nbytes, tag=t, array="buf")
        self.b.waitall(h)
        self.spend(3)

    def butterfly_stage(self, dist: int) -> None:
        """One hypercube stage: exchange with ``myid XOR dist`` — for
        power-of-two *dist* the XOR is pure arithmetic on ``myid``."""
        t, nbytes = self.tag(), self.msg()
        u = self.uid()
        lower = Eq(Mod.make(myid // dist, 2), 0)
        with self.b.if_(lower):
            with self.b.if_(Lt(myid + dist, P)):
                self.b.isend(dest=myid + dist, nbytes=nbytes, tag=t, array="buf",
                             handle=f"bf{u}")
                self.b.recv(source=myid + dist, nbytes=nbytes, tag=t, array="buf")
                self.b.waitall(f"bf{u}")
        with self.b.else_():
            self.b.isend(dest=myid - dist, nbytes=nbytes, tag=t, array="buf",
                         handle=f"bg{u}")
            self.b.recv(source=myid - dist, nbytes=nbytes, tag=t, array="buf")
            self.b.waitall(f"bg{u}")
        self.spend(9)

    def master_worker_round(self) -> None:
        """Workers compute and report to rank 0; the master drains them
        (optionally with a wildcard receive) and broadcasts back."""
        t, nbytes = self.tag(), self.msg()
        wildcard = self.coin(self.cfg.p_wildcard)
        wvar = f"w{self.uid()}"
        with self.b.if_(Eq(myid, 0)):
            with self.b.loop(wvar, 1, P - 1):
                self.b.recv(source=-1 if wildcard else Var(wvar),
                            nbytes=nbytes, tag=t, array="buf")
        with self.b.else_():
            self.compute()
            self.b.send(dest=0, nbytes=nbytes, tag=t, array="buf")
        self.spend(5)
        if self.coin(0.6) and self.room(1):
            self.b.bcast(nbytes, root=0, array="buf")
            self.spend(1)


# -- valid-program patterns ----------------------------------------------------


def _gen_wavefront(g: _Gen) -> None:
    with g.b.loop("step", 1, g.trip()):
        g.spend(1)
        g.wavefront_shift()
        g.compute()
        if g.coin(g.cfg.p_collective) and g.room(1):
            g.collective()


def _gen_nearest_neighbour(g: _Gen) -> None:
    with g.b.loop("step", 1, g.trip()):
        g.spend(1)
        g.halo_exchange()
        g.compute()
        if g.coin(g.cfg.p_collective) and g.room(1):
            g.collective()


def _gen_butterfly(g: _Gen) -> None:
    stages = g.rng.randint(1, 3)
    with g.b.loop("step", 1, g.trip()):
        g.spend(1)
        g.compute()
        for s in range(stages):
            if g.room(9):
                g.butterfly_stage(1 << s)
    if g.room(1):
        g.collective()


def _gen_master_worker(g: _Gen) -> None:
    with g.b.loop("round", 1, g.trip()):
        g.spend(1)
        g.master_worker_round()


def _gen_random_mix(g: _Gen, depth: int = 0) -> None:
    """Free composition of blocks under the depth/size budgets."""
    n_blocks = g.rng.randint(2, 5)
    for _ in range(n_blocks):
        if not g.room(2):
            return
        roll = g.rng.random()
        if depth < g.cfg.max_depth and roll < 0.2 and g.room(6):
            with g.b.loop(f"i{g.uid()}", 1, g.trip()):
                g.spend(1)
                _gen_random_mix(g, depth + 1)
        elif depth < g.cfg.max_depth and roll < 0.2 + g.cfg.p_branch and g.room(4):
            # rank-dependent branches contain only *local* work — a
            # collective or unpaired p2p in here would be a real bug
            # (exactly what the faulty generator emits on purpose)
            cond = g.rng.choice(
                (Lt(myid, P - 1), Gt(myid, 0), Eq(Mod.make(myid, 2), 0),
                 Le(myid, Mod.make(P, 3)))
            )
            with g.b.if_(cond):
                g.spend(1)
                g.compute()
            with g.b.else_():
                g.assign()
        elif roll < 0.2 + g.cfg.p_branch + g.cfg.p_collective:
            g.collective()
        else:
            choice = g.rng.choice(("wavefront", "halo", "ring", "compute", "assign"))
            if choice == "wavefront" and g.room(4):
                g.wavefront_shift()
            elif choice == "halo" and g.room(9):
                g.halo_exchange()
            elif choice == "ring" and g.room(3):
                g.ring_shift()
            elif choice == "assign":
                g.assign()
            else:
                g.compute()


_PATTERN_FNS = {
    "wavefront": _gen_wavefront,
    "nearest_neighbour": _gen_nearest_neighbour,
    "butterfly": _gen_butterfly,
    "master_worker": _gen_master_worker,
    "random_mix": _gen_random_mix,
}


def _pick_pattern(rng: random.Random, cfg: GrammarConfig) -> str:
    names = sorted(cfg.pattern_weights)
    weights = [cfg.pattern_weights[n] for n in names]
    return rng.choices(names, weights=weights, k=1)[0]


def generate_program(
    seed: int, grammar: GrammarConfig | None = None, pattern: str | None = None
) -> GeneratedProgram:
    """Generate one valid program, fully determined by (seed, grammar).

    *pattern* forces a specific communication pattern; by default it is
    drawn from the grammar's pattern weights.
    """
    cfg = grammar if grammar is not None else GrammarConfig()
    rng = random.Random(seed)
    if pattern is None:
        pattern = _pick_pattern(rng, cfg)
    if pattern not in _PATTERN_FNS:
        raise GrammarError(f"unknown pattern {pattern!r}; known: {sorted(_PATTERN_FNS)}")
    g = _Gen(f"fuzz{seed:08d}_{pattern}", rng, cfg)
    _PATTERN_FNS[pattern](g)
    if g.stmts == 0:  # degenerate budget: never emit an empty program
        g.compute()
    return GeneratedProgram(seed=seed, pattern=pattern, program=g.b.build())


# -- intentionally faulty programs ---------------------------------------------


def generate_faulty_program(
    seed: int, grammar: GrammarConfig | None = None, kind: str | None = None
) -> GeneratedProgram:
    """Generate a program with a deliberate communication bug.

    The returned scenario's ``expect`` says how the kernel must classify
    it: ``"deadlock"`` (a :class:`repro.sim.DeadlockError` whose report
    names the broken idiom) or ``"mismatch"`` (a
    :class:`repro.sim.CollectiveMismatchError`).  Classification needs
    ``nprocs >= 2`` — on one rank several of these idioms degenerate to
    valid programs.
    """
    cfg = grammar if grammar is not None else GrammarConfig()
    rng = random.Random(seed)
    if kind is None:
        kind = rng.choice(sorted(FAULT_KINDS))
    if kind not in FAULT_KINDS:
        raise GrammarError(f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}")
    g = _Gen(f"faulty{seed:08d}_{kind}", rng, cfg)
    g.compute()
    if kind == "orphan_send":
        # a rendezvous-sized send no rank ever receives: the sender
        # blocks forever and must show up as an unmatched send
        g.wavefront_shift()
        with g.b.if_(Eq(myid, 0)):
            g.b.send(dest=P - 1, nbytes=RENDEZVOUS_BYTES, tag=97, array="buf")
        g.spend(2)
    elif kind == "circular_wait":
        # every rank receives from its right neighbour before sending:
        # the wait-chain is one big cycle
        t = g.tag()
        g.b.recv(source=Mod.make(myid + 1, P), nbytes=g.msg(), tag=t, array="buf")
        g.b.send(dest=Mod.make(myid + 1, P), nbytes=g.msg(), tag=t, array="buf")
        g.spend(2)
    elif kind == "collective_arity":
        # a collective inside a rank-dependent branch: rank 0 never
        # joins, the rest become collective stragglers
        with g.b.if_(Gt(myid, 0)):
            g.b.allreduce(8, contrib=myid, result_var="red_bad")
        g.spend(2)
        g.compute()
    else:  # collective_op_mismatch
        # ranks disagree on which collective comes next at the same
        # call index — the kernel must refuse, not guess
        with g.b.if_(Eq(Mod.make(myid, 2), 0)):
            g.b.barrier()
        with g.b.else_():
            g.b.allreduce(8, contrib=myid, result_var="red_odd")
        g.spend(3)
    return GeneratedProgram(
        seed=seed,
        pattern=kind,
        program=g.b.build(),
        faulty=kind,
        expect=FAULT_KINDS[kind],
    )
