"""JSON (de)serialization of IR programs: the regression-corpus format.

A minimized divergence is only useful if it can be *committed*: this
module round-trips the generator's IR subset (every statement kind
except Python-kernel-bearing ``ArrayAssign``/``CompBlock`` kernels)
through a stable JSON schema, so divergent programs shrink into small
reviewable files under ``repro/apps/regressions/`` that the test suite
auto-discovers.

The schema is versioned (``"format": 1``) and strict: unknown node
kinds, missing fields and malformed expressions all raise
:class:`CorpusError` with the offending path, never a bare traceback.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..ir.nodes import (
    AllocStmt,
    ArrayDecl,
    Assign,
    CollectiveStmt,
    CompBlock,
    DelayStmt,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    ReadParams,
    RecvStmt,
    SendStmt,
    StartTimer,
    Stmt,
    StopTimer,
    WaitAllStmt,
)
from ..symbolic import (
    Add,
    And,
    BoolConst,
    BoolExpr,
    CeilDiv,
    Cmp,
    Const,
    Div,
    Expr,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Var,
)
from ..util.atomic_io import atomic_write_text

__all__ = [
    "CorpusError",
    "FORMAT_VERSION",
    "expr_to_json",
    "expr_from_json",
    "program_to_json",
    "program_from_json",
    "RegressionCase",
    "save_case",
    "load_case",
    "discover_corpus",
]

FORMAT_VERSION = 1


class CorpusError(ValueError):
    """A corpus file or case is malformed / not serializable."""


# -- expressions ---------------------------------------------------------------

_NARY = {"add": Add, "mul": Mul, "min": Min, "max": Max}
_BINARY = {"div": Div, "floordiv": FloorDiv, "ceildiv": CeilDiv, "mod": Mod}
_JUNCTION = {"and": And, "or": Or}


def expr_to_json(e: Expr | BoolExpr):
    """Serialize an arithmetic or boolean expression tree."""
    if isinstance(e, Const):
        return e.value  # compact: bare numbers are constants
    if isinstance(e, Var):
        return {"k": "var", "name": e.name}
    for key, cls in _NARY.items():
        # Max subclasses Min: test exact type, most-derived first
        if type(e) is cls:
            return {"k": key, "args": [expr_to_json(a) for a in e.args]}
    for key, cls in _BINARY.items():
        if type(e) is cls:
            return {"k": key, "a": expr_to_json(e.a), "b": expr_to_json(e.b)}
    if isinstance(e, BoolConst):
        return {"k": "bool", "v": e.value}
    if isinstance(e, Cmp):
        return {"k": "cmp", "op": e.op, "a": expr_to_json(e.a), "b": expr_to_json(e.b)}
    for key, cls in _JUNCTION.items():
        if type(e) is cls:
            return {"k": key, "args": [expr_to_json(a) for a in e.args]}
    if isinstance(e, Not):
        return {"k": "not", "arg": expr_to_json(e.arg)}
    raise CorpusError(f"cannot serialize expression node {type(e).__name__}: {e}")


def expr_from_json(data) -> Expr | BoolExpr:
    """Rebuild an expression tree; inverse of :func:`expr_to_json`."""
    if isinstance(data, bool):
        raise CorpusError("bare booleans are not valid expression JSON")
    if isinstance(data, (int, float)):
        return Const(data)
    if not isinstance(data, dict) or "k" not in data:
        raise CorpusError(f"malformed expression node: {data!r}")
    k = data["k"]
    try:
        if k == "var":
            return Var(data["name"])
        if k in _NARY:
            return _NARY[k].make(*(expr_from_json(a) for a in data["args"]))
        if k in _BINARY:
            return _BINARY[k].make(expr_from_json(data["a"]), expr_from_json(data["b"]))
        if k == "bool":
            return BoolConst(data["v"])
        if k == "cmp":
            return Cmp.make(data["op"], expr_from_json(data["a"]), expr_from_json(data["b"]))
        if k in _JUNCTION:
            return _JUNCTION[k].make(*(expr_from_json(a) for a in data["args"]))
        if k == "not":
            return Not.make(expr_from_json(data["arg"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise CorpusError(f"malformed {k!r} expression node: {exc}") from None
    raise CorpusError(f"unknown expression kind {k!r}")


# -- statements ----------------------------------------------------------------


def _stmt_to_json(s: Stmt) -> dict:
    if isinstance(s, Assign):
        return {"k": "assign", "var": s.var, "expr": expr_to_json(s.expr)}
    if isinstance(s, CompBlock):
        if s.kernel is not None:
            raise CorpusError(f"CompBlock {s.name!r} has a Python kernel; not serializable")
        return {
            "k": "compute", "name": s.name, "work": expr_to_json(s.work),
            "ops_per_iter": s.ops_per_iter, "arrays": list(s.arrays),
            "reads": sorted(s.reads_), "writes": sorted(s.writes_),
        }
    if isinstance(s, For):
        return {
            "k": "for", "var": s.var, "lo": expr_to_json(s.lo),
            "hi": expr_to_json(s.hi), "body": [_stmt_to_json(c) for c in s.body],
        }
    if isinstance(s, If):
        return {
            "k": "if", "cond": expr_to_json(s.cond),
            "then": [_stmt_to_json(c) for c in s.then],
            "orelse": [_stmt_to_json(c) for c in s.orelse],
            "data_dependent": s.data_dependent,
        }
    if isinstance(s, SendStmt):
        return {"k": "send", "dest": expr_to_json(s.dest),
                "nbytes": expr_to_json(s.nbytes), "tag": s.tag, "array": s.array}
    if isinstance(s, RecvStmt):
        return {"k": "recv", "source": expr_to_json(s.source),
                "nbytes": expr_to_json(s.nbytes), "tag": s.tag, "array": s.array}
    if isinstance(s, IsendStmt):
        return {"k": "isend", "dest": expr_to_json(s.dest),
                "nbytes": expr_to_json(s.nbytes), "tag": s.tag, "array": s.array,
                "handle": s.handle_var}
    if isinstance(s, IrecvStmt):
        return {"k": "irecv", "source": expr_to_json(s.source),
                "nbytes": expr_to_json(s.nbytes), "tag": s.tag, "array": s.array,
                "handle": s.handle_var}
    if isinstance(s, WaitAllStmt):
        return {"k": "waitall", "handles": list(s.handle_vars)}
    if isinstance(s, CollectiveStmt):
        return {
            "k": "collective", "op": s.op, "nbytes": expr_to_json(s.nbytes),
            "root": expr_to_json(s.root), "array": s.array,
            "contrib": None if s.contrib is None else expr_to_json(s.contrib),
            "result_var": s.result_var, "reduce_kind": s.reduce_kind,
        }
    if isinstance(s, DelayStmt):
        return {"k": "delay", "amount": expr_to_json(s.amount), "task": s.task}
    if isinstance(s, ReadParams):
        return {"k": "read_params", "names": list(s.names)}
    if isinstance(s, StartTimer):
        return {"k": "start_timer", "task": s.task}
    if isinstance(s, StopTimer):
        return {"k": "stop_timer", "task": s.task}
    if isinstance(s, AllocStmt):
        return {"k": "alloc", "name": s.name, "nbytes": expr_to_json(s.nbytes)}
    raise CorpusError(f"cannot serialize statement kind {type(s).__name__}")


def _stmt_from_json(data) -> Stmt:
    if not isinstance(data, dict) or "k" not in data:
        raise CorpusError(f"malformed statement node: {data!r}")
    k = data["k"]
    try:
        if k == "assign":
            return Assign(data["var"], expr_from_json(data["expr"]))
        if k == "compute":
            return CompBlock(
                data["name"], expr_from_json(data["work"]),
                ops_per_iter=data.get("ops_per_iter", 1.0),
                arrays=tuple(data.get("arrays", ())),
                reads=frozenset(data.get("reads", ())),
                writes=frozenset(data.get("writes", ())),
            )
        if k == "for":
            return For(data["var"], expr_from_json(data["lo"]), expr_from_json(data["hi"]),
                       [_stmt_from_json(c) for c in data["body"]])
        if k == "if":
            return If(expr_from_json(data["cond"]),
                      [_stmt_from_json(c) for c in data["then"]],
                      [_stmt_from_json(c) for c in data.get("orelse", [])],
                      data_dependent=data.get("data_dependent", False))
        if k == "send":
            return SendStmt(expr_from_json(data["dest"]), expr_from_json(data["nbytes"]),
                            tag=data.get("tag", 0), array=data.get("array"))
        if k == "recv":
            return RecvStmt(expr_from_json(data["source"]), expr_from_json(data["nbytes"]),
                            tag=data.get("tag", 0), array=data.get("array"))
        if k == "isend":
            return IsendStmt(expr_from_json(data["dest"]), expr_from_json(data["nbytes"]),
                             tag=data.get("tag", 0), array=data.get("array"),
                             handle_var=data.get("handle", "req"))
        if k == "irecv":
            return IrecvStmt(expr_from_json(data["source"]), expr_from_json(data["nbytes"]),
                             tag=data.get("tag", 0), array=data.get("array"),
                             handle_var=data.get("handle", "req"))
        if k == "waitall":
            return WaitAllStmt(tuple(data["handles"]))
        if k == "collective":
            contrib = data.get("contrib")
            return CollectiveStmt(
                data["op"], expr_from_json(data.get("nbytes", 0)),
                expr_from_json(data.get("root", 0)), array=data.get("array"),
                contrib=None if contrib is None else expr_from_json(contrib),
                result_var=data.get("result_var"),
                reduce_kind=data.get("reduce_kind", "sum"),
            )
        if k == "delay":
            return DelayStmt(expr_from_json(data["amount"]), data["task"])
        if k == "read_params":
            return ReadParams(tuple(data["names"]))
        if k == "start_timer":
            return StartTimer(data["task"])
        if k == "stop_timer":
            return StopTimer(data["task"])
        if k == "alloc":
            return AllocStmt(data["name"], expr_from_json(data["nbytes"]))
    except CorpusError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CorpusError(f"malformed {k!r} statement node: {exc}") from None
    raise CorpusError(f"unknown statement kind {k!r}")


# -- programs ------------------------------------------------------------------


def program_to_json(prog: Program) -> dict:
    """Serialize a program (name, params, arrays, body, JSON-safe meta)."""
    meta = {}
    for key, value in prog.meta.items():
        try:
            json.dumps(value)
        except TypeError:
            raise CorpusError(f"program meta {key!r} is not JSON-serializable") from None
        meta[key] = value
    return {
        "name": prog.name,
        "params": list(prog.params),
        "arrays": [
            {
                "name": d.name, "size": expr_to_json(d.size),
                "itemsize": d.itemsize, "materialize": d.materialize,
            }
            for d in prog.arrays.values()
        ],
        "body": [_stmt_to_json(s) for s in prog.body],
        "meta": meta,
    }


def program_from_json(data: dict) -> Program:
    """Rebuild a numbered, validated program from its JSON form."""
    if not isinstance(data, dict):
        raise CorpusError(f"program must be a JSON object, got {type(data).__name__}")
    try:
        arrays = {}
        for d in data.get("arrays", ()):
            decl = ArrayDecl(
                d["name"], expr_from_json(d["size"]),
                itemsize=d.get("itemsize", 8), materialize=d.get("materialize", False),
            )
            arrays[decl.name] = decl
        prog = Program(
            name=data["name"],
            params=tuple(data.get("params", ())),
            arrays=arrays,
            body=[_stmt_from_json(s) for s in data["body"]],
            meta=dict(data.get("meta", {})),
        )
    except CorpusError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CorpusError(f"malformed program object: {exc}") from None
    prog.number()
    try:
        prog.validate()
    except ValueError as exc:
        raise CorpusError(f"deserialized program fails validation: {exc}") from None
    return prog


# -- regression cases ----------------------------------------------------------


@dataclass(frozen=True)
class RegressionCase:
    """One committed corpus entry: a program plus how to run and judge it.

    ``expect`` mirrors :class:`repro.gen.generator.GeneratedProgram`:
    ``"ok"`` cases must satisfy the differential invariants; ``"deadlock"``
    / ``"mismatch"`` cases must be classified as such by the kernel.
    """

    name: str
    program: Program
    expect: str = "ok"
    nprocs: int = 4
    inputs: dict = field(default_factory=dict)
    seed: int = 0
    pattern: str = ""
    reason: str = ""
    path: Path | None = None

    def to_dict(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "kind": "regression",
            "name": self.name,
            "expect": self.expect,
            "nprocs": self.nprocs,
            "inputs": dict(self.inputs),
            "seed": self.seed,
            "pattern": self.pattern,
            "reason": self.reason,
            "program": program_to_json(self.program),
        }


_EXPECTS = ("ok", "deadlock", "mismatch")


def save_case(case: RegressionCase, path: str | Path) -> None:
    """Atomically write a regression case as pretty-printed JSON."""
    text = json.dumps(case.to_dict(), indent=2, sort_keys=True)
    atomic_write_text(Path(path), text + "\n")


def load_case(path: str | Path) -> RegressionCase:
    """Load one corpus file; raises :class:`CorpusError` on any defect."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise CorpusError(f"cannot read corpus file {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise CorpusError(f"{path}: not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise CorpusError(f"{path}: corpus case must be a JSON object")
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise CorpusError(
            f"{path}: unsupported corpus format {version!r} (expected {FORMAT_VERSION})"
        )
    expect = data.get("expect", "ok")
    if expect not in _EXPECTS:
        raise CorpusError(f"{path}: unknown expect {expect!r} (one of {_EXPECTS})")
    nprocs = data.get("nprocs", 4)
    if not isinstance(nprocs, int) or nprocs < 1:
        raise CorpusError(f"{path}: nprocs must be a positive integer, got {nprocs!r}")
    try:
        program = program_from_json(data["program"])
    except KeyError:
        raise CorpusError(f"{path}: missing 'program' object") from None
    except CorpusError as exc:
        raise CorpusError(f"{path}: {exc}") from None
    return RegressionCase(
        name=str(data.get("name", path.stem)),
        program=program,
        expect=expect,
        nprocs=nprocs,
        inputs=dict(data.get("inputs", {})),
        seed=int(data.get("seed", 0)),
        pattern=str(data.get("pattern", "")),
        reason=str(data.get("reason", "")),
        path=path,
    )


def discover_corpus(directory: str | Path) -> list[RegressionCase]:
    """Load every ``*.json`` case under *directory*, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_case(p) for p in sorted(directory.glob("*.json"))]
