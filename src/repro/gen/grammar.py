"""The grammar of generated programs: budgets, weights and toggles.

A :class:`GrammarConfig` pins down *everything* the generator is allowed
to emit, so a (seed, grammar) pair fully determines the generated
program.  The config round-trips through JSON (``--grammar`` on the
``repro fuzz`` CLI) with strict unknown-key rejection, matching the
fault-plan schema convention.

The pattern vocabulary follows the MP-net communication-model taxonomy
and MPIrigen's MPI-idiom catalog (see PAPERS.md): pipelined wavefronts,
halo exchanges, butterfly (hypercube) stages, master/worker farms with
wildcard receives, and free compositions of those under loops, branches
and collectives.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace

__all__ = ["GrammarError", "GrammarConfig", "DEFAULT_PATTERN_WEIGHTS"]


class GrammarError(ValueError):
    """The grammar configuration is malformed."""


#: Default sampling weight per communication pattern.
DEFAULT_PATTERN_WEIGHTS: dict[str, float] = {
    "nearest_neighbour": 1.0,
    "wavefront": 1.0,
    "butterfly": 1.0,
    "master_worker": 1.0,
    "random_mix": 2.0,
}


def _check_positive(name: str, value, *, minimum=1) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise GrammarError(f"{name} must be an integer >= {minimum}, got {value!r}")


def _check_prob(name: str, value) -> None:
    if not isinstance(value, (int, float)) or not (0.0 <= float(value) <= 1.0):
        raise GrammarError(f"{name} must be a probability in [0, 1], got {value!r}")


@dataclass(frozen=True)
class GrammarConfig:
    """Budgets and feature weights for one fuzzing grammar.

    ``max_stmts`` bounds the statement count of a generated program
    (communication scaffolding included); ``max_depth`` bounds loop /
    branch nesting; ``max_trip`` bounds any generated loop trip count.
    Message sizes are drawn from ``[msg_min, msg_max]`` — keep
    ``msg_max`` above the machine's eager limit (16 KiB on the default
    presets) so rendezvous-path sends get generated too.
    """

    max_stmts: int = 40
    max_depth: int = 3
    max_trip: int = 4
    msg_min: int = 8
    msg_max: int = 32768
    grain_min: int = 200
    grain_max: int = 20000
    #: probability that a random_mix block is wrapped in a branch
    p_branch: float = 0.3
    #: probability that a random_mix block is a collective
    p_collective: float = 0.35
    #: probability that a point-to-point exchange uses isend/irecv+waitall
    p_nonblocking: float = 0.4
    #: probability that an always-determined receive uses ANY_SOURCE
    p_wildcard: float = 0.25
    #: fraction of fuzzed seeds that generate an intentionally faulty program
    p_faulty: float = 0.15
    pattern_weights: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_PATTERN_WEIGHTS)
    )

    def __post_init__(self):
        _check_positive("max_stmts", self.max_stmts, minimum=4)
        _check_positive("max_depth", self.max_depth)
        _check_positive("max_trip", self.max_trip)
        _check_positive("msg_min", self.msg_min)
        _check_positive("msg_max", self.msg_max)
        _check_positive("grain_min", self.grain_min)
        _check_positive("grain_max", self.grain_max)
        if self.msg_max < self.msg_min:
            raise GrammarError(
                f"msg_max ({self.msg_max}) must be >= msg_min ({self.msg_min})"
            )
        if self.grain_max < self.grain_min:
            raise GrammarError(
                f"grain_max ({self.grain_max}) must be >= grain_min ({self.grain_min})"
            )
        for name in ("p_branch", "p_collective", "p_nonblocking", "p_wildcard", "p_faulty"):
            _check_prob(name, getattr(self, name))
        if not isinstance(self.pattern_weights, dict) or not self.pattern_weights:
            raise GrammarError("pattern_weights must be a non-empty mapping")
        unknown = set(self.pattern_weights) - set(DEFAULT_PATTERN_WEIGHTS)
        if unknown:
            raise GrammarError(
                f"unknown pattern(s) in pattern_weights: {sorted(unknown)}; "
                f"known: {sorted(DEFAULT_PATTERN_WEIGHTS)}"
            )
        total = 0.0
        for name, w in self.pattern_weights.items():
            if not isinstance(w, (int, float)) or w < 0:
                raise GrammarError(f"pattern weight for {name!r} must be >= 0, got {w!r}")
            total += float(w)
        if total <= 0:
            raise GrammarError("pattern_weights must have positive total weight")

    # -- (de)serialization: the --grammar file schema -------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "GrammarConfig":
        if not isinstance(data, dict):
            raise GrammarError(f"grammar config must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise GrammarError(f"unknown grammar key(s): {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise GrammarError(f"bad grammar config: {exc}") from None

    @classmethod
    def load(cls, path: str) -> "GrammarConfig":
        """Load a grammar config from a JSON file."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise GrammarError(f"cannot read grammar file {path!r}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise GrammarError(f"grammar file {path!r} is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def with_(self, **kwargs) -> "GrammarConfig":
        """A copy with the given fields replaced (validated anew)."""
        return replace(self, **kwargs)
