"""The resumable differential-fuzzing campaign behind ``repro fuzz``.

A fuzz run walks a contiguous seed range through the grammar-driven
generator and the differential harness, journaling one record per seed
with the same crash-consistency machinery as experiment campaigns
(:mod:`repro.util.atomic_io`): a header record pins the configuration
hash, each completed seed appends one durable record, and re-running
with ``--resume`` skips every seed the journal already holds.  A
journal whose header hash disagrees with the current configuration is
refused, never silently reused.

Determinism contract: the report (``report.json``) is a pure function
of (configuration, completed seed set) — it contains no timestamps, no
wall-clock durations and no absolute paths, so two runs of the same
configuration produce byte-identical reports.  Wall-clock state exists
only in the optional ``--budget`` stop, which can truncate the seed
range early (the report then says so in ``stopped``).

Each divergence (a non-faulty program failing a harness invariant) is
auto-minimized with :func:`repro.gen.minimize.minimize_program` against
the predicate "still fails with the same failure kind", and the shrunk
scenario is serialized via :mod:`repro.gen.corpus` into
``<out>/minimized/`` — ready to be reviewed and promoted into the
committed regression corpus under ``repro/apps/regressions/``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..api import content_hash
from ..ir.nodes import Program, walk
from ..sim.flightrec import FLIGHT
from ..util.atomic_io import AtomicJournal, atomic_write_text
from .corpus import RegressionCase, save_case
from .generator import GeneratedProgram, generate_faulty_program, generate_program
from .grammar import GrammarConfig
from .harness import DiffConfig, DiffVerdict, check_program, run_case
from .minimize import minimize_program

__all__ = ["FuzzError", "FuzzConfig", "FuzzReport", "FuzzRunner", "REPORT_FORMAT"]

REPORT_FORMAT = 1
_JOURNAL_KIND = "repro-fuzz"


class FuzzError(ValueError):
    """A fuzz campaign cannot start or continue (CLI-surfaced, one line)."""


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that determines a fuzz campaign's behaviour.

    ``budget_seconds`` is the only wall-clock input; it bounds how long
    the campaign keeps *starting* seeds and never affects any record's
    content.  ``inject_seed`` forces one seed to report a synthetic
    divergence — an end-to-end smoke of the minimize-and-serialize path
    used by tests and the CI ``fuzz-smoke`` job.
    """

    seeds: int = 100
    seed0: int = 0
    out_dir: str = "fuzz-out"
    grammar: GrammarConfig = field(default_factory=GrammarConfig)
    diff: DiffConfig = field(default_factory=DiffConfig)
    minimize: bool = True
    budget_seconds: float | None = None
    minimize_checks: int = 200
    inject_seed: int | None = None

    def __post_init__(self):
        if self.seeds < 1:
            raise FuzzError(f"seeds must be >= 1, got {self.seeds}")
        if self.seed0 < 0:
            raise FuzzError(f"seed0 must be >= 0, got {self.seed0}")
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise FuzzError(f"budget must be positive seconds, got {self.budget_seconds}")
        if self.minimize_checks < 1:
            raise FuzzError(f"minimize_checks must be >= 1, got {self.minimize_checks}")

    def config_hash(self) -> str:
        """Hash of every report-determining field (resume compatibility)."""
        payload = {
            "seeds": self.seeds,
            "seed0": self.seed0,
            "grammar": self.grammar.to_dict(),
            "diff": {
                "nprocs": self.diff.nprocs,
                "calib_nprocs": self.diff.calib_nprocs,
                "machine": self.diff.machine,
                "tolerance_pct": self.diff.tolerance_pct,
                "max_err_de_pct": self.diff.max_err_de_pct,
                "max_err_am_pct": self.diff.max_err_am_pct,
                "check_replay": self.diff.check_replay,
                # backend shapes which checks run (and thus the report),
                # so unlike campaign journals it must feed the hash
                "backend": self.diff.backend,
            },
            "minimize": self.minimize,
            "minimize_checks": self.minimize_checks,
            "inject_seed": self.inject_seed,
        }
        return content_hash(payload)


@dataclass(frozen=True)
class FuzzReport:
    """Deterministic summary of a (possibly truncated) campaign."""

    config_hash: str
    seeds: int
    seed0: int
    completed: int
    ok: int
    stopped: str  # "complete" | "budget"
    failures: dict[str, int]
    patterns: dict[str, int]
    divergences: list[dict]
    minimized: list[dict]

    def to_json(self) -> str:
        data = {
            "format": REPORT_FORMAT,
            "config_hash": self.config_hash,
            "seeds": self.seeds,
            "seed0": self.seed0,
            "completed": self.completed,
            "ok": self.ok,
            "stopped": self.stopped,
            "failures": dict(sorted(self.failures.items())),
            "patterns": dict(sorted(self.patterns.items())),
            "divergences": self.divergences,
            "minimized": self.minimized,
        }
        return json.dumps(data, sort_keys=True, indent=2) + "\n"

    def summary(self) -> str:
        """One-paragraph human summary for the CLI."""
        lines = [
            f"fuzz: {self.completed}/{self.seeds} seeds completed "
            f"({self.stopped}), {self.ok} ok, "
            f"{self.completed - self.ok} failing"
        ]
        for kind, count in sorted(self.failures.items()):
            lines.append(f"  {kind}: {count}")
        for entry in self.minimized:
            lines.append(
                f"  minimized seed {entry['seed']} ({entry['failure']}): "
                f"{entry['original_stmts']} -> {entry['final_stmts']} stmts "
                f"-> {entry['file']}"
            )
        return "\n".join(lines)


def _is_faulty_seed(seed: int, grammar: GrammarConfig) -> bool:
    """Deterministic, order-independent per-seed fault draw."""
    if grammar.p_faulty <= 0.0:
        return False
    return random.Random(f"repro-fuzz-fault:{seed}").random() < grammar.p_faulty


def _has_comm(program: Program) -> bool:
    return any(s.is_comm() for s in walk(program.body))


class FuzzRunner:
    """Drives one campaign: generate -> check -> journal -> minimize."""

    def __init__(self, config: FuzzConfig):
        self.config = config
        self.out_dir = Path(config.out_dir)
        self.journal_path = self.out_dir / "journal.jsonl"
        self.report_path = self.out_dir / "report.json"
        self.minimized_dir = self.out_dir / "minimized"

    # -- journal ---------------------------------------------------------------
    def _open_journal(self, resume: bool) -> tuple[AtomicJournal, dict[int, dict]]:
        try:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            self.minimized_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise FuzzError(f"cannot create output directory {self.out_dir}: {exc}") from None
        if self.journal_path.exists() and not resume:
            raise FuzzError(
                f"{self.journal_path} already exists; pass --resume to continue it "
                "or choose a fresh --out directory"
            )
        try:
            journal = AtomicJournal(self.journal_path)
            records = journal.records()
        except OSError as exc:
            raise FuzzError(f"cannot open journal {self.journal_path}: {exc}") from None
        except ValueError as exc:
            raise FuzzError(f"corrupt fuzz journal: {exc}") from None

        done: dict[int, dict] = {}
        want_hash = self.config.config_hash()
        if records:
            header = records[0]
            if header.get("kind") != _JOURNAL_KIND:
                raise FuzzError(
                    f"{self.journal_path} is not a fuzz journal "
                    f"(header kind {header.get('kind')!r})"
                )
            if header.get("config_hash") != want_hash:
                raise FuzzError(
                    f"{self.journal_path} belongs to a different fuzz configuration "
                    f"(journal {header.get('config_hash')}, current {want_hash}); "
                    "refusing to mix results"
                )
            for rec in records[1:]:
                if rec.get("kind") == "case":
                    done[int(rec["seed"])] = rec
        else:
            journal.append(
                {
                    "kind": _JOURNAL_KIND,
                    "format": REPORT_FORMAT,
                    "config_hash": want_hash,
                    "seeds": self.config.seeds,
                    "seed0": self.config.seed0,
                    "grammar": self.config.grammar.to_dict(),
                }
            )
        return journal, done

    # -- one seed --------------------------------------------------------------
    def _generate(self, seed: int) -> GeneratedProgram:
        # The injected-divergence seed is always a valid program so the
        # synthetic failure exercises the minimize-and-serialize path.
        if seed != self.config.inject_seed and _is_faulty_seed(seed, self.config.grammar):
            return generate_faulty_program(seed, self.config.grammar)
        return generate_program(seed, self.config.grammar)

    def _check(self, scenario: GeneratedProgram) -> DiffVerdict:
        if scenario.seed == self.config.inject_seed and scenario.expect == "ok":
            return DiffVerdict(
                seed=scenario.seed,
                pattern=scenario.pattern,
                n_stmts=scenario.n_stmts,
                ok=False,
                failure="injected",
                detail="synthetic divergence injected for minimizer smoke",
                expect="ok",
            )
        return check_program(scenario, self.config.diff)

    def _minimize(self, scenario: GeneratedProgram, verdict: DiffVerdict) -> dict | None:
        """Shrink a divergent valid program; returns the report entry."""
        if scenario.expect != "ok":
            return None  # faulty-program misclassifications are already tiny

        if verdict.failure == "injected":
            # The synthetic divergence "reproduces" while any
            # communication statement survives — a deterministic stand-in
            # predicate that still exercises every reduction pass.
            def reproduces(candidate: Program) -> bool:
                return _has_comm(candidate)
        else:
            cfg = self.config.diff

            def reproduces(candidate: Program) -> bool:
                v = run_case(
                    candidate, scenario.inputs, cfg,
                    seed=scenario.seed, pattern=scenario.pattern,
                )
                return v.failure == verdict.failure

        try:
            result = minimize_program(
                scenario.program, reproduces, max_checks=self.config.minimize_checks
            )
        except ValueError:
            return None  # flaky repro: keep the unminimized divergence record

        name = f"seed{scenario.seed:06d}_{verdict.failure}"
        case = RegressionCase(
            name=name,
            program=result.program,
            expect="ok",
            nprocs=self.config.diff.nprocs,
            inputs=dict(scenario.inputs),
            seed=scenario.seed,
            pattern=scenario.pattern,
            reason=f"auto-minimized fuzz divergence: {verdict.failure}: {verdict.detail}",
        )
        path = self.minimized_dir / f"{name}.json"
        save_case(case, path)
        return {
            "seed": scenario.seed,
            "failure": verdict.failure,
            "file": f"minimized/{name}.json",
            "original_stmts": result.original_stmts,
            "final_stmts": result.final_stmts,
            "checks": result.checks,
        }

    # -- the campaign ----------------------------------------------------------
    def run(self, resume: bool = False, progress=None) -> FuzzReport:
        """Run (or resume) the campaign and write ``report.json``.

        ``progress`` is an optional callable ``(seed, verdict)`` invoked
        after each newly-completed seed (the CLI's live ticker).
        """
        journal, done = self._open_journal(resume)
        t0 = time.monotonic()
        stopped = "complete"
        seed_range = range(self.config.seed0, self.config.seed0 + self.config.seeds)

        for seed in seed_range:
            if seed in done:
                continue
            if (
                self.config.budget_seconds is not None
                and time.monotonic() - t0 >= self.config.budget_seconds
            ):
                stopped = "budget"
                break
            scenario = self._generate(seed)
            # Arm the flight recorder across the differential check: its
            # events are (virtual_time, rank, kind) tuples — pure
            # functions of the seed — so attaching the dump to failure
            # records keeps the report byte-deterministic.
            FLIGHT.enable()
            try:
                verdict = self._check(scenario)
                flight = (
                    FLIGHT.dump(error=verdict.detail)
                    if not verdict.ok and FLIGHT.events_seen else None
                )
            finally:
                FLIGHT.disable()
            minimized = None
            if not verdict.ok and self.config.minimize:
                minimized = self._minimize(scenario, verdict)
            record = {"kind": "case", **verdict.to_record()}
            if flight is not None:
                record["flight"] = flight
            if minimized is not None:
                record["minimized"] = minimized
            journal.append(record)
            done[seed] = record
            if progress is not None:
                progress(seed, verdict)

        report = self._build_report(done, stopped)
        atomic_write_text(self.report_path, report.to_json())
        return report

    def _build_report(self, done: dict[int, dict], stopped: str) -> FuzzReport:
        failures: dict[str, int] = {}
        patterns: dict[str, int] = {}
        divergences: list[dict] = []
        minimized: list[dict] = []
        ok = 0
        for seed in sorted(done):
            rec = done[seed]
            patterns[rec["pattern"]] = patterns.get(rec["pattern"], 0) + 1
            if rec["ok"]:
                ok += 1
                continue
            kind = rec.get("failure") or "unknown"
            failures[kind] = failures.get(kind, 0) + 1
            entry = {
                "seed": rec["seed"],
                "pattern": rec["pattern"],
                "expect": rec.get("expect", "ok"),
                "failure": kind,
                "detail": rec.get("detail", ""),
                "n_stmts": rec.get("n_stmts"),
            }
            if rec.get("flight"):
                # deterministic post-mortem context: virtual-time event
                # tail recorded while the failing check ran
                entry["flight"] = rec["flight"]
            divergences.append(entry)
            if rec.get("minimized"):
                minimized.append(rec["minimized"])
        if len(done) >= self.config.seeds:
            stopped = "complete"
        return FuzzReport(
            config_hash=self.config.config_hash(),
            seeds=self.config.seeds,
            seed0=self.config.seed0,
            completed=len(done),
            ok=ok,
            stopped=stopped,
            failures=failures,
            patterns=patterns,
            divergences=divergences,
            minimized=minimized,
        )
