"""Memory feasibility: which configurations can each simulator run?

"Since the simulator uses at least as much memory as the application,
decreasing the amount of memory for the application decreases the
simulator's memory requirements, thus allowing us to simulate large
problem sizes and systems." (Sec. 4.3)

This module estimates a program version's total simulator memory for a
configuration *without running it* — array declarations are symbolic,
so per-rank footprints can be evaluated directly — and finds the
largest simulable target system under a host memory budget, which is
how the DE/AM scalability limits of Figs. 10/11 arise.
"""

from __future__ import annotations

import numpy as np

from ..ir.nodes import AllocStmt, ArrayAssign, Assign, Program
from ..machine import HostParams

__all__ = ["estimate_program_memory", "max_feasible_procs"]


def _rank_bytes(program: Program, inputs: dict, rank: int, nprocs: int) -> int:
    """Per-rank application bytes: declared arrays plus top-level
    dynamic allocations (the simplified program's dummy buffer)."""
    env: dict = dict(inputs)
    env["myid"] = rank
    env["P"] = nprocs
    total = 0
    arrays: dict[str, np.ndarray] = {}
    for decl in program.arrays.values():
        n = int(decl.size.evaluate(env))
        total += n * decl.itemsize
        if decl.materialize:
            arr = np.zeros(n)
            arrays[decl.name] = arr
            env[decl.name] = arr
    # evaluate the top-level prologue (grid coordinates, block sizes,
    # cell-size tables) so dynamic allocation sizes can be computed
    for s in program.body:
        if isinstance(s, Assign):
            env[s.var] = s.expr.evaluate(env)
        elif isinstance(s, ArrayAssign) and s.array in arrays:
            s.kernel(env, arrays)
        elif isinstance(s, AllocStmt):
            total += int(s.nbytes.evaluate(env))
    return total


def estimate_program_memory(
    program: Program,
    inputs: dict,
    nprocs: int,
    host: HostParams,
    sample_ranks: int = 4,
    include_kernel: bool = True,
) -> int:
    """Total simulator memory for *program* at this configuration.

    Per-rank footprints are sampled at a few ranks (they can differ at
    block boundaries) and the maximum is charged for every rank — the
    Fortran-style max-size allocation the generated code uses — plus the
    kernel's per-thread overhead (set ``include_kernel=False`` for the
    application-only footprint, isolating the compiler's effect).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    ranks = sorted({0, nprocs - 1, *np.linspace(0, nprocs - 1, sample_ranks, dtype=int).tolist()})
    per_rank = max(_rank_bytes(program, inputs, r, nprocs) for r in ranks)
    total = per_rank * nprocs
    if include_kernel:
        total += host.thread_overhead_bytes * nprocs
    return total


def max_feasible_procs(
    program: Program,
    inputs_for: "callable",
    budget_bytes: int,
    host: HostParams,
    candidates: list[int],
) -> int | None:
    """Largest process count in *candidates* whose simulation fits.

    ``inputs_for(nprocs)`` builds the configuration (e.g. fixed per-
    processor problem size).  Returns None when even the smallest
    candidate exceeds the budget.
    """
    best = None
    for nprocs in sorted(candidates):
        need = estimate_program_memory(program, inputs_for(nprocs), nprocs, host)
        if need <= budget_bytes:
            best = nprocs
    return best
