"""Host-machine model: how long does the *simulator itself* take?

MPI-Sim executes on a host machine with H processors, each running the
simulation kernel over a partition of the target threads under a
conservative parallel simulation protocol (Sec. 2.1).  The paper's
Figures 12–16 report the simulator's own runtimes and speedups; this
module predicts them by replaying the dependency-annotated event trace
of a simulation run onto H modelled host processors:

* each event costs its recorded host CPU time (direct-execution cost
  for computation under DE, delay-call cost under AM, per-message
  simulation overheads for communication);
* events are processed per host in virtual-timestamp order (the
  conservative discipline);
* a cross-host message dependency adds protocol latency and
  null-message bookkeeping — with many small cross-host messages this
  is the term that saturates speedup (a null-message protocol's
  synchronization traffic follows the application's channel traffic);
* collectives synchronize all hosts through a log-tree release.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine import MachineParams
from ..sim.trace import Trace

__all__ = ["HostEstimate", "simulate_host_execution", "sequential_host_time"]


@dataclass(frozen=True)
class HostEstimate:
    """Predicted execution of the simulator on *n_hosts* processors."""

    n_hosts: int
    wall_time: float  # predicted simulator runtime
    busy_time: float  # total host CPU seconds across hosts
    sync_time: float  # conservative-protocol synchronization share
    events: int

    @property
    def efficiency(self) -> float:
        """Parallel efficiency: busy work over allotted host time."""
        denom = self.wall_time * self.n_hosts
        return self.busy_time / denom if denom > 0 else 1.0


def sequential_host_time(trace: Trace, machine: MachineParams | None = None) -> float:
    """Host time of a one-processor simulation: the sum of event costs."""
    return trace.total_host_cost()


def simulate_host_execution(
    trace: Trace,
    n_hosts: int,
    machine: MachineParams,
) -> HostEstimate:
    """Replay *trace* onto *n_hosts* host processors.

    Target processes are block-partitioned over hosts (MPI-Sim maps
    target threads statically).  Each host works through its events in
    virtual-timestamp order — the conservative discipline — stalling
    when the next event's cross-host dependency has not been simulated
    yet.  Returns the predicted wall time.
    """
    if n_hosts < 1:
        raise ValueError("n_hosts must be >= 1")
    host = machine.host
    nprocs = trace.nprocs
    n_hosts = min(n_hosts, nprocs)
    if not trace.events:
        return HostEstimate(n_hosts=n_hosts, wall_time=0.0, busy_time=0.0, sync_time=0.0, events=0)

    def host_of(proc: int) -> int:
        return proc * n_hosts // nprocs

    # per-process program order = virtual completion order (non-blocking
    # completions slot in when their message arrives, which is exactly
    # when the kernel handles them)
    order_key = {ev.eid: (ev.end, ev.eid) for ev in trace.events}
    per_proc: dict[int, list] = {}
    for ev in trace.events:
        per_proc.setdefault(ev.proc, []).append(ev)
    proc_pred: dict[int, int | None] = {}
    for events in per_proc.values():
        events.sort(key=lambda e: order_key[e.eid])
        prev = None
        for ev in events:
            proc_pred[ev.eid] = prev
            if not ev.nonblocking:
                prev = ev.eid

    # per-host queues in virtual-timestamp order
    queues: list[list] = [[] for _ in range(n_hosts)]
    for ev in trace.events:
        queues[host_of(ev.proc)].append(ev)
    for q in queues:
        q.sort(key=lambda e: order_key[e.eid])

    coll_members: dict[int, list] = {}
    for ev in trace.events:
        if ev.coll_id is not None:
            coll_members.setdefault(ev.coll_id, []).append(ev)
    coll_release: dict[int, float] = {}

    done: dict[int, float] = {}
    host_free = [0.0] * n_hosts
    idx = [0] * n_hosts
    busy = 0.0
    sync = 0.0
    remaining = len(trace.events)

    def readiness(ev, h) -> float | None:
        """Wall time at which *ev* may start, or None if blocked."""
        ready = 0.0
        pred = proc_pred[ev.eid]
        if pred is not None:
            t = done.get(pred)
            if t is None:
                return None
            ready = t
        for dep in ev.deps:
            t = done.get(dep)
            if t is None:
                return None
            if host_of(trace.events[dep].proc) != h:
                t += host.host_latency + host.null_message_overhead
            ready = max(ready, t)
        if ev.coll_id is not None:
            rel = coll_release.get(ev.coll_id)
            if rel is None:
                members = coll_members[ev.coll_id]
                rel = 0.0
                for m in members:
                    p = proc_pred[m.eid]
                    if p is not None:
                        t = done.get(p)
                        if t is None:
                            return None
                        rel = max(rel, t)
                hosts_involved = {host_of(m.proc) for m in members}
                if len(hosts_involved) > 1:
                    rel += host.host_latency * math.ceil(math.log2(len(hosts_involved)))
                coll_release[ev.coll_id] = rel
            ready = max(ready, rel)
        return ready

    while remaining:
        progress = False
        for h in range(n_hosts):
            q = queues[h]
            while idx[h] < len(q):
                ev = q[idx[h]]
                ready = readiness(ev, h)
                if ready is None:
                    break  # conservative: the host stalls on its next event
                if ev.deps and any(
                    host_of(trace.events[d].proc) != h for d in ev.deps
                ):
                    sync += host.null_message_overhead
                start = max(ready, host_free[h])
                end = start + ev.host_cost
                busy += ev.host_cost
                host_free[h] = end
                done[ev.eid] = end
                idx[h] += 1
                remaining -= 1
                progress = True
        if not progress:
            stuck = [q[idx[h]].eid for h, q in enumerate(queues) if idx[h] < len(q)]
            raise RuntimeError(
                f"host replay deadlocked; first stuck events: {stuck[:8]} "
                "(trace dependencies are cyclic under virtual-time ordering)"
            )

    return HostEstimate(
        n_hosts=n_hosts,
        wall_time=max(host_free),
        busy_time=busy,
        sync_time=sync,
        events=len(trace.events),
    )
