"""Parallel-simulator host model: runtime prediction and memory limits."""

from .feasibility import estimate_program_memory, max_feasible_procs
from .hostmodel import HostEstimate, sequential_host_time, simulate_host_execution

__all__ = [
    "HostEstimate",
    "simulate_host_execution",
    "sequential_host_time",
    "estimate_program_memory",
    "max_feasible_procs",
]
