"""``repro.api`` — the typed facade every layer speaks.

See :mod:`repro.api.types` for the contract dataclasses and
:mod:`repro.api.compat` for the deprecated dict adapters.
"""

from .compat import (
    campaign_config_from_dict,
    run_spec_from_dict,
    workflow_spec_from_dict,
)
from .types import (
    MODES,
    SCHEMA_VERSION,
    ApiError,
    CampaignRequest,
    CampaignResult,
    RunRequest,
    RunResult,
    canonical_json,
    content_hash,
)

__all__ = [
    "SCHEMA_VERSION",
    "MODES",
    "canonical_json",
    "content_hash",
    "ApiError",
    "RunRequest",
    "RunResult",
    "CampaignRequest",
    "CampaignResult",
    "run_spec_from_dict",
    "campaign_config_from_dict",
    "workflow_spec_from_dict",
]
