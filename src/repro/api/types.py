"""Typed, versioned request/result contracts for the simulation service.

Every layer that names a run — the campaign runner, the CLI, the fuzz
harness, the result store and the HTTP service — used to pass ad-hoc
kwargs and dicts between each other, and three of them computed their
own content hashes.  This module is the single vocabulary instead:

* :class:`RunRequest` — one simulation to perform (app, mode, nprocs,
  inputs, seed, fault plan, timeout).  Its :meth:`~RunRequest.content_hash`
  is **the** run identity: journals, checkpoints, quarantine artifacts
  and store entries are all keyed by it, and it is byte-compatible with
  the ``RunSpec.run_id`` hashes of earlier releases (same canonical
  identity document, same sha256 prefix), so existing journals resume
  under the new types.
* :class:`CampaignRequest` — an ordered set of runs plus the execution
  context that shapes their results (machine, budgets, calibration,
  retry policy).  Its :meth:`~CampaignRequest.content_hash` reproduces
  the old ``CampaignConfig.config_hash``; :meth:`~CampaignRequest.context_hash`
  hashes the context *without* the run list — the result store uses it
  to shard entries by execution context, so a result computed under one
  machine/budget regime can never answer a query made under another.
* :class:`RunResult` / :class:`CampaignResult` — the serving-side
  answers, JSON-canonical and round-trippable.
* :class:`ApiError` — the one error shape every boundary speaks,
  carrying an HTTP status and an optional ``retry_after`` for
  admission-control rejections.

All documents carry ``schema_version``; :func:`canonical_json` and
:func:`content_hash` are the only canonicalization and hashing
primitives — nothing else in the tree may roll its own.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "MODES",
    "canonical_json",
    "content_hash",
    "ApiError",
    "RunRequest",
    "RunResult",
    "CampaignRequest",
    "CampaignResult",
]

#: version stamped into every serialized document; bump on any change
#: to a document layout (golden-hash tests freeze the identity layouts
#: separately — those may never change within a schema version)
SCHEMA_VERSION = 1

#: the three estimators a run may ask for (paper Fig. 2)
MODES = ("de", "am", "measured")

#: outcomes considered successful when serving cached results
_OK_OUTCOMES = ("ok",)


def canonical_json(obj) -> str:
    """The one canonical JSON encoding: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(doc: dict) -> str:
    """Content-address a canonical identity document (16 hex chars)."""
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()[:16]


class ApiError(Exception):
    """A typed, serializable API failure.

    ``http_status`` maps the error onto the wire (400 bad request, 404
    not found, 429 quota, 500 internal); ``retry_after`` rides along on
    admission-control rejections so clients can back off precisely.
    """

    def __init__(self, code: str, message: str, *, http_status: int = 400,
                 retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.http_status = http_status
        self.retry_after = retry_after

    def to_json(self) -> dict:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "kind": "error",
            "code": self.code,
            "message": self.message,
        }
        if self.retry_after is not None:
            doc["retry_after"] = self.retry_after
        return doc

    @classmethod
    def from_json(cls, doc: dict, http_status: int = 400) -> ApiError:
        return cls(
            str(doc.get("code", "unknown")),
            str(doc.get("message", "unknown error")),
            http_status=http_status,
            retry_after=doc.get("retry_after"),
        )


def _bad(message: str) -> ApiError:
    return ApiError("bad_request", message)


def _check_version(doc: dict, kind: str) -> None:
    if not isinstance(doc, dict):
        raise _bad(f"{kind} document must be a JSON object")
    version = doc.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or version < 1:
        raise _bad(f"bad schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ApiError(
            "unsupported_version",
            f"{kind} document has schema_version {version}; "
            f"this server speaks {SCHEMA_VERSION}",
        )
    if "kind" in doc and doc["kind"] != kind:
        raise _bad(f"expected a {kind!r} document, got kind={doc['kind']!r}")


def _normalize_inputs(inputs) -> tuple[tuple[str, float], ...]:
    """Accept a mapping or pair-iterable; return the sorted tuple form.

    Values keep their Python type (int stays int): the identity hash
    feeds on the JSON encoding, where ``20000`` and ``20000.0`` differ.
    """
    items = inputs.items() if isinstance(inputs, dict) else tuple(inputs)
    out = []
    for pair in items:
        try:
            key, value = pair
        except (TypeError, ValueError):
            raise _bad(f"input override {pair!r} is not a (name, value) pair") from None
        if not isinstance(key, str) or not key:
            raise _bad(f"input name {key!r} is not a non-empty string")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _bad(f"input {key}={value!r} is not a number")
        if not math.isfinite(value):
            raise _bad(f"input {key}={value!r} is not finite")
        out.append((key, value))
    return tuple(sorted(out))


def _canonical_fault_plan(plan) -> str | None:
    """Normalize a fault plan (dict or canonical string) and validate it."""
    if plan is None:
        return None
    if isinstance(plan, str):
        try:
            plan = json.loads(plan)
        except json.JSONDecodeError as exc:
            raise _bad(f"fault_plan is not valid JSON: {exc}") from None
    if not isinstance(plan, dict):
        raise _bad("fault_plan must be a JSON object")
    from ..sim.faults import FaultPlan  # deferred: keep api importable early

    try:
        FaultPlan.from_dict(plan)
    except (TypeError, ValueError) as exc:
        raise _bad(f"bad fault_plan: {exc}") from None
    return canonical_json(plan)


@dataclass(frozen=True)
class RunRequest:
    """One simulation to perform, identified by its content hash.

    This is the type formerly known as ``RunSpec``; the identity
    document and hash are unchanged, so ids in existing journals,
    checkpoints and quarantine artifacts still name the same runs.
    """

    app: str
    mode: str  # "de" | "am" | "measured"
    nprocs: int
    inputs: tuple[tuple[str, float], ...] = ()  # input overrides, sorted
    seed: int = 0
    fault_plan: str | None = None  # canonical JSON of the plan, if any
    timeout: float | None = None

    # -- identity ------------------------------------------------------------
    def _identity(self) -> dict:
        # Frozen layout: byte-compatible with pre-api RunSpec._identity.
        # Never add, remove or rename a key within a schema version —
        # the golden-hash test (tests/api/golden_hashes.json) enforces it.
        return {
            "app": self.app,
            "mode": self.mode,
            "nprocs": self.nprocs,
            "inputs": dict(self.inputs),
            "seed": self.seed,
            "fault_plan": self.fault_plan,
            "timeout": self.timeout,
        }

    def content_hash(self) -> str:
        """The single source of run identity: same request ⇒ same id."""
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            cached = content_hash(self._identity())
            object.__setattr__(self, "_content_hash", cached)
        return cached

    @property
    def run_id(self) -> str:
        """Compatibility alias for :meth:`content_hash`."""
        return self.content_hash()

    # -- validation ----------------------------------------------------------
    def validate(self) -> RunRequest:
        """Raise :class:`ApiError` unless every field is well-formed."""
        if not isinstance(self.app, str) or not self.app:
            raise _bad(f"app must be a non-empty string, got {self.app!r}")
        if self.mode not in MODES:
            raise _bad(f"unknown mode {self.mode!r} (expected de/am/measured)")
        if not isinstance(self.nprocs, int) or isinstance(self.nprocs, bool) \
                or self.nprocs < 1:
            raise _bad(f"nprocs must be an integer >= 1, got {self.nprocs!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise _bad(f"seed must be an integer, got {self.seed!r}")
        _normalize_inputs(self.inputs)
        if self.timeout is not None and not (
                isinstance(self.timeout, (int, float)) and self.timeout > 0):
            raise _bad(f"timeout must be a positive number, got {self.timeout!r}")
        if self.fault_plan is not None:
            _canonical_fault_plan(self.fault_plan)
        return self

    # -- serialization -------------------------------------------------------
    def to_json(self) -> dict:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "kind": "run_request",
            "app": self.app,
            "mode": self.mode,
            "nprocs": self.nprocs,
            "inputs": dict(self.inputs),
            "seed": self.seed,
        }
        if self.fault_plan is not None:
            doc["fault_plan"] = json.loads(self.fault_plan)
        if self.timeout is not None:
            doc["timeout"] = self.timeout
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> RunRequest:
        """Parse and validate a request document; raise :class:`ApiError`."""
        _check_version(doc, "run_request")
        for key in ("app", "mode", "nprocs"):
            if key not in doc:
                raise _bad(f"run_request is missing {key!r}")
        req = cls(
            app=doc["app"],
            mode=doc["mode"],
            nprocs=doc["nprocs"],
            inputs=_normalize_inputs(doc.get("inputs", ())),
            seed=doc.get("seed", 0),
            fault_plan=_canonical_fault_plan(doc.get("fault_plan")),
            timeout=doc.get("timeout"),
        )
        return req.validate()

    # -- presentation --------------------------------------------------------
    def describe(self) -> str:
        extras = [f"{k}={v:g}" if isinstance(v, float) else f"{k}={v}"
                  for k, v in self.inputs]
        text = f"{self.app}/{self.mode} P={self.nprocs}"
        if extras:
            text += " " + ",".join(extras)
        if self.fault_plan is not None:
            text += " +faults"
        return text


@dataclass(frozen=True)
class RunResult:
    """The journaled outcome of one run, in serving form.

    ``stats`` is the flat :class:`~repro.sim.stats.SimStats` dict of an
    ``ok`` (or budget-tripped) run; failed runs carry ``error`` and the
    outcome class instead.  Content-addressed by ``run_id`` — the hash
    of the request that produced it.
    """

    run_id: str
    outcome: str
    attempts: int = 1
    elapsed: float | None = None
    stats: dict | None = None
    error: str | None = None
    budget_kind: str | None = None

    @property
    def ok(self) -> bool:
        return self.outcome in _OK_OUTCOMES

    @property
    def events(self) -> int:
        """Kernel events this run cost (0 when unknown): quota currency."""
        if not self.stats:
            return 0
        return int(self.stats.get("total_events", 0) or 0)

    def to_json(self) -> dict:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "kind": "run_result",
            "run_id": self.run_id,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "stats": self.stats,
            "error": self.error,
        }
        if self.budget_kind is not None:
            doc["budget_kind"] = self.budget_kind
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> RunResult:
        _check_version(doc, "run_result")
        for key in ("run_id", "outcome"):
            if key not in doc:
                raise _bad(f"run_result is missing {key!r}")
        stats = doc.get("stats")
        if stats is not None and not isinstance(stats, dict):
            raise _bad("run_result stats must be an object or null")
        return cls(
            run_id=str(doc["run_id"]),
            outcome=str(doc["outcome"]),
            attempts=int(doc.get("attempts", 1)),
            elapsed=doc.get("elapsed"),
            stats=stats,
            error=doc.get("error"),
            budget_kind=doc.get("budget_kind"),
        )

    @classmethod
    def from_record(cls, rec) -> RunResult:
        """Lift a campaign :class:`~repro.workflow.campaign.RunRecord`."""
        return cls(
            run_id=rec.run_id,
            outcome=rec.outcome,
            attempts=rec.attempts,
            elapsed=rec.elapsed,
            stats=rec.stats,
            error=rec.error,
            budget_kind=rec.budget_kind,
        )


@dataclass(frozen=True)
class CampaignRequest:
    """An ordered set of runs plus the context that shapes their results.

    The identity split matters: :meth:`content_hash` covers context
    *and* runs (the old ``config_hash`` — journal compatibility), while
    :meth:`context_hash` covers context only, so the result store can
    share cached runs between different grids executed under the same
    machine/budget/calibration regime.
    """

    name: str
    machine: str
    runs: tuple[RunRequest, ...]
    calib_procs: int | None = None
    max_events: int | None = None
    max_virtual_time: float | None = None
    max_wall_seconds: float | None = None
    retries: int = 0
    backoff: float = 0.1
    retry_policy: str | None = None  # canonical JSON of the RetryPolicy

    # -- identity ------------------------------------------------------------
    def _context(self) -> dict:
        return {
            "machine": self.machine,
            "budgets": [self.max_events, self.max_virtual_time,
                        self.max_wall_seconds],
            "calib_procs": self.calib_procs,
            "retry_policy": self.retry_policy,
        }

    def content_hash(self) -> str:
        """Hash of everything that shapes the campaign's results.

        Byte-compatible with the pre-api ``CampaignConfig.config_hash``.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            doc = dict(self._context())
            doc["runs"] = [r.content_hash() for r in self.runs]
            cached = content_hash(doc)
            object.__setattr__(self, "_content_hash", cached)
        return cached

    def context_hash(self) -> str:
        """Hash of the execution context alone (no run list).

        Two campaigns with the same machine, budgets, calibration and
        retry policy share a context — and therefore share store
        entries for any overlapping cells.
        """
        return content_hash(self._context())

    # -- validation ----------------------------------------------------------
    def validate(self) -> CampaignRequest:
        if not isinstance(self.name, str) or not self.name:
            raise _bad(f"campaign name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.machine, str) or not self.machine:
            raise _bad(f"machine must be a non-empty string, got {self.machine!r}")
        if not self.runs:
            raise _bad("campaign has no runs")
        seen: set[str] = set()
        for run in self.runs:
            run.validate()
            rid = run.content_hash()
            if rid in seen:
                raise _bad(f"duplicate run {rid} ({run.describe()}) in campaign")
            seen.add(rid)
        if self.calib_procs is not None and (
                not isinstance(self.calib_procs, int) or self.calib_procs < 1):
            raise _bad(f"calib_procs must be an integer >= 1, got {self.calib_procs!r}")
        for label, value in (("max_events", self.max_events),
                             ("max_virtual_time", self.max_virtual_time),
                             ("max_wall_seconds", self.max_wall_seconds)):
            if value is not None and not (
                    isinstance(value, (int, float)) and value > 0):
                raise _bad(f"{label} must be a positive number, got {value!r}")
        if not isinstance(self.retries, int) or self.retries < 0:
            raise _bad(f"retries must be an integer >= 0, got {self.retries!r}")
        return self

    # -- serialization -------------------------------------------------------
    def to_json(self) -> dict:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "kind": "campaign_request",
            "name": self.name,
            "machine": self.machine,
            "runs": [r.to_json() for r in self.runs],
            "retries": self.retries,
            "backoff": self.backoff,
        }
        for key, value in (
            ("calib_procs", self.calib_procs),
            ("max_events", self.max_events),
            ("max_virtual_time", self.max_virtual_time),
            ("max_wall_seconds", self.max_wall_seconds),
        ):
            if value is not None:
                doc[key] = value
        if self.retry_policy is not None:
            doc["retry_policy"] = json.loads(self.retry_policy)
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> CampaignRequest:
        _check_version(doc, "campaign_request")
        runs = doc.get("runs")
        if not isinstance(runs, list) or not runs:
            raise _bad("campaign_request needs a non-empty 'runs' list")
        retry = doc.get("retry_policy")
        if retry is not None:
            if not isinstance(retry, dict):
                raise _bad("retry_policy must be a JSON object")
            from ..sim.faults import RetryPolicy

            try:
                RetryPolicy(**retry)
            except (TypeError, ValueError) as exc:
                raise _bad(f"bad retry_policy: {exc}") from None
            retry = canonical_json(retry)
        req = cls(
            name=str(doc.get("name", "campaign")),
            machine=str(doc.get("machine", "IBM-SP")),
            runs=tuple(RunRequest.from_json(r) for r in runs),
            calib_procs=doc.get("calib_procs"),
            max_events=doc.get("max_events"),
            max_virtual_time=doc.get("max_virtual_time"),
            max_wall_seconds=doc.get("max_wall_seconds"),
            retries=int(doc.get("retries", 0)),
            backoff=float(doc.get("backoff", 0.1)),
            retry_policy=retry,
        )
        return req.validate()


@dataclass(frozen=True)
class CampaignResult:
    """What serving one campaign produced: results plus cache economics.

    ``hits`` were answered from the store without simulating anything;
    ``misses`` were executed (costing ``executed_events`` kernel
    events) and stored.  A warm re-submission of the same request is
    ``hits == len(results)`` and ``executed_events == 0``.
    """

    name: str
    config_hash: str
    hits: int
    misses: int
    executed_events: int
    results: tuple[RunResult, ...] = field(default_factory=tuple)

    @property
    def outcomes(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for res in self.results:
            counts[res.outcome] = counts.get(res.outcome, 0) + 1
        return counts

    def to_json(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "campaign_result",
            "name": self.name,
            "config_hash": self.config_hash,
            "hits": self.hits,
            "misses": self.misses,
            "executed_events": self.executed_events,
            "outcomes": self.outcomes,
            "results": [r.to_json() for r in self.results],
        }

    @classmethod
    def from_json(cls, doc: dict) -> CampaignResult:
        _check_version(doc, "campaign_result")
        results = doc.get("results")
        if not isinstance(results, list):
            raise _bad("campaign_result needs a 'results' list")
        return cls(
            name=str(doc.get("name", "campaign")),
            config_hash=str(doc.get("config_hash", "")),
            hits=int(doc.get("hits", 0)),
            misses=int(doc.get("misses", 0)),
            executed_events=int(doc.get("executed_events", 0)),
            results=tuple(RunResult.from_json(r) for r in results),
        )
