"""Deprecation shims: the old dict-shaped entry points, for one release.

Before ``repro.api`` existed, callers handed bare dicts to the workflow
layer — run-spec dicts mirroring ``RunSpec``'s fields, grid dicts for
campaigns, and ``WorkflowSpec``-style recipe dicts for the parallel
executor.  These adapters keep those call shapes working while steering
callers to the typed replacements: each emits a single
:class:`DeprecationWarning` naming the ``repro.api`` construct to use
instead, then delegates.  Identity is preserved exactly — a run spec
adapted here hashes to the same id as the :class:`~repro.api.RunRequest`
built directly (the compat test asserts it) — so downstream journals
and stores cannot tell the difference.

Scheduled for removal one release after ``repro.api`` ships.
"""

from __future__ import annotations

import warnings

from .types import RunRequest, _normalize_inputs

__all__ = [
    "run_spec_from_dict",
    "campaign_config_from_dict",
    "workflow_spec_from_dict",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; build a {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_spec_from_dict(doc: dict) -> RunRequest:
    """Adapt an old run-spec dict to a :class:`repro.api.RunRequest`.

    .. deprecated:: use :meth:`repro.api.RunRequest.from_json`.
    """
    _deprecated("run_spec_from_dict()", "repro.api.RunRequest (from_json)")
    return RunRequest.from_json(doc)


def campaign_config_from_dict(doc: dict):
    """Adapt an old grid dict to an expanded campaign configuration.

    .. deprecated:: use :func:`repro.workflow.campaign.expand_grid` for
       grids, or :meth:`repro.api.CampaignRequest.from_json` for
       explicit run lists.
    """
    _deprecated(
        "campaign_config_from_dict()",
        "repro.api.CampaignRequest (from_json), or expand_grid for grids",
    )
    from ..workflow.campaign import expand_grid

    return expand_grid(doc)


def workflow_spec_from_dict(doc: dict):
    """Adapt an old workflow-recipe dict to a ``WorkflowSpec``.

    .. deprecated:: construct
       :class:`repro.workflow.parallel.WorkflowSpec` directly (its
       fields are the ``repro.api`` vocabulary).
    """
    _deprecated(
        "workflow_spec_from_dict()", "repro.workflow.parallel.WorkflowSpec"
    )
    from ..workflow.parallel import WorkflowSpec

    known = {"app", "machine", "calib_nprocs", "overrides", "seed"}
    unknown = set(doc) - known
    if unknown:
        raise ValueError(f"unknown workflow-spec keys {sorted(unknown)}")
    return WorkflowSpec(
        app=doc["app"],
        machine=doc["machine"],
        calib_nprocs=int(doc["calib_nprocs"]),
        overrides=_normalize_inputs(doc.get("overrides", ())),
        seed=int(doc.get("seed", 0)),
    )
