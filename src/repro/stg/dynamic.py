"""Dynamic task graph: the expanded, per-process task DAG of one run.

The POEMS environment pairs the static task graph with its dynamic
expansion for a concrete configuration.  Here the expansion is obtained
from the simulator's event trace: program order per process, message
edges between send/recv events, and collective events fused into
synchronization cliques.  networkx is used for graph algorithms
(critical path, reachability), which downstream modeling tools consume.
"""

from __future__ import annotations

import networkx as nx

from ..sim.trace import Trace

__all__ = ["trace_to_dag", "critical_path", "critical_path_length"]


def trace_to_dag(trace: Trace, weight: str = "virtual") -> nx.DiGraph:
    """Build the dynamic task DAG of a traced run.

    Node weights (``weight`` attribute) are either the event's virtual
    duration (``weight="virtual"``) or its host simulation cost
    (``weight="host"``).  Edges: per-process program order, message
    dependencies, and collective synchronization (all participants of a
    collective are pairwise ordered through a zero-cost join node).
    """
    if weight not in ("virtual", "host"):
        raise ValueError("weight must be 'virtual' or 'host'")
    g = nx.DiGraph()
    for ev in trace.events:
        w = (ev.end - ev.start) if weight == "virtual" else ev.host_cost
        g.add_node(ev.eid, weight=w, kind=ev.kind, proc=ev.proc)
    # program order
    for events in trace.by_proc():
        for a, b in zip(events, events[1:]):
            g.add_edge(a.eid, b.eid)
    # message dependencies
    for ev in trace.events:
        for dep in ev.deps:
            g.add_edge(dep, ev.eid)
    # collective synchronization: join node per collective id
    colls: dict[int, list[int]] = {}
    for ev in trace.events:
        if ev.coll_id is not None:
            colls.setdefault(ev.coll_id, []).append(ev.eid)
    for cid, members in colls.items():
        join = f"coll_{cid}"
        g.add_node(join, weight=0.0, kind="join", proc=-1)
        for eid in members:
            # every member's *predecessor work* must finish before any
            # member completes: route through the join node
            for pred in list(g.predecessors(eid)):
                g.add_edge(pred, join)
            g.add_edge(join, eid)
    return g


def critical_path(g: nx.DiGraph) -> list:
    """Longest weighted path through the DAG (node weights)."""
    order = list(nx.topological_sort(g))
    dist: dict = {}
    parent: dict = {}
    for n in order:
        w = g.nodes[n]["weight"]
        best, bestp = 0.0, None
        for p in g.predecessors(n):
            if dist[p] > best:
                best, bestp = dist[p], p
        dist[n] = best + w
        parent[n] = bestp
    end = max(dist, key=dist.get)
    path = [end]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    return list(reversed(path))


def critical_path_length(g: nx.DiGraph) -> float:
    """Total weight along the critical path."""
    path = critical_path(g)
    return sum(g.nodes[n]["weight"] for n in path)
