"""Static task graph: model, synthesis, condensation, dynamic expansion."""

from .condense import (
    CondensePlan,
    PlanRegion,
    PlanRetain,
    Region,
    condense,
    w_param,
)
from .dynamic import critical_path, critical_path_length, trace_to_dag
from .export import to_dot, write_dot
from .graph import NODE_KINDS, STG, STGEdge, STGNode
from .synthesis import synthesize_stg

__all__ = [
    "STG",
    "STGNode",
    "STGEdge",
    "NODE_KINDS",
    "synthesize_stg",
    "condense",
    "CondensePlan",
    "Region",
    "PlanRetain",
    "PlanRegion",
    "w_param",
    "trace_to_dag",
    "critical_path",
    "critical_path_length",
    "to_dot",
    "write_dot",
]
