"""Graphviz (DOT) export of static task graphs.

The POEMS environment visualizes task graphs; this writer needs no
graphviz installation — it emits DOT text that any renderer accepts.
Control-flow edges are solid, communication edges dashed and annotated
with their rank mappings (the paper's Fig. 1(b) styling).
"""

from __future__ import annotations

from pathlib import Path

from .graph import STG

__all__ = ["to_dot", "write_dot"]

_SHAPES = {
    "compute": "box",
    "condensed": "box3d",
    "send": "cds",
    "recv": "cds",
    "collective": "doubleoctagon",
    "loop": "diamond",
    "branch": "diamond",
    "assign": "ellipse",
}

_COLORS = {
    "compute": "lightblue",
    "condensed": "steelblue",
    "send": "palegreen",
    "recv": "palegreen",
    "collective": "gold",
    "loop": "lightgray",
    "branch": "lightgray",
    "assign": "white",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(stg: STG) -> str:
    """Render *stg* as DOT source."""
    lines = [f'digraph "{_escape(stg.program_name)}" {{']
    lines.append("  rankdir=TB;")
    lines.append('  node [style=filled, fontname="Helvetica"];')
    for n in stg.nodes:
        label = f"{n.label}\\n{n.pset}"
        if n.work is not None:
            label += f"\\nwork: {n.work}"
        if n.comm_bytes is not None:
            label += f"\\nbytes: {n.comm_bytes}"
        shape = _SHAPES.get(n.kind, "ellipse")
        color = _COLORS.get(n.kind, "white")
        lines.append(
            f'  n{n.nid} [label="{_escape(label)}", shape={shape}, fillcolor={color}];'
        )
    for e in stg.edges:
        if e.kind == "control":
            lines.append(f"  n{e.src} -> n{e.dst};")
        else:
            label = _escape(str(e.mapping)) if e.mapping else ""
            lines.append(
                f'  n{e.src} -> n{e.dst} [style=dashed, color=red, label="{label}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(stg: STG, path: str | Path) -> None:
    """Write the DOT rendering of *stg* to *path*."""
    Path(path).write_text(to_dot(stg))
