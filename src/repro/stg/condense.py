"""Task-graph condensation: collapse computation/control regions.

"The next stage is to identify contiguous regions of computational
tasks and/or control-flow in the STG that can be collapsed into a
single condensed task [...].  First, a collapsed region must not
include any branches that exit the region [our structured IR has no
early exits, so this holds by construction].  Second, a collapsed
region must contain no communication tasks because we aim to simulate
communication precisely.  Finally, deciding whether to collapse
conditional branches involves a difficult tradeoff [...]" (Sec. 3.1)

For data-dependent branches (conditions derived from large-array
values) we implement both of the paper's approaches:

* the default *statistical* approach — eliminate the branch and weight
  the arm costs by the profiled taken-probability;
* the *directive* approach — ``directives[sid] = probability`` lets the
  user pin a probability (or effectively disable an arm with 0.0/1.0).

Branches on retained variables (``myid`` tests etc.) condense exactly,
as a :class:`repro.symbolic.Cond` cost expression.

While collapsing, "we also compute a scaling expression for each
collapsed task" — built from per-block time variables ``w_<task>``
multiplied by each block's symbolic iteration count, summed over
enclosing loops (:class:`repro.symbolic.Sum`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.interp import BranchProfile
from ..ir.nodes import (
    ArrayAssign,
    Assign,
    CompBlock,
    For,
    If,
    Program,
    Stmt,
)
from ..symbolic import Cond, Const, Expr, Sum, Var, as_expr

__all__ = ["Region", "PlanRetain", "PlanRegion", "CondensePlan", "condense", "w_param"]


def w_param(task: str) -> str:
    """Parameter name of a task's per-iteration time coefficient."""
    return f"w_{task}"


@dataclass(frozen=True)
class Region:
    """One condensed task: a contiguous, communication-free region."""

    name: str
    sids: tuple[int, ...]  # every statement id inside the region
    cost: Expr  # scaling function over w_<task> params and retained vars
    blocks: tuple[str, ...]  # contributing CompBlock names (-> w params)


@dataclass
class PlanRetain:
    """A retained statement; loops/branches carry plans for their bodies."""

    stmt: Stmt
    body_plans: tuple[list, ...] = ()


@dataclass
class PlanRegion:
    """A condensable region replacing the original statements."""

    region: Region
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class CondensePlan:
    """The condensed task graph, structured parallel to the program IR."""

    program: Program
    root: list  # list[PlanRetain | PlanRegion]
    regions: list[Region] = field(default_factory=list)
    eliminated_branches: list[int] = field(default_factory=list)  # If sids
    pinned: frozenset[int] = frozenset()

    def w_params(self) -> tuple[str, ...]:
        """All w_i parameter names the condensed cost expressions use."""
        names: list[str] = []
        for r in self.regions:
            for b in r.blocks:
                p = w_param(b)
                if p not in names:
                    names.append(p)
        return tuple(names)

    def region_for(self, sid: int) -> Region | None:
        for r in self.regions:
            if sid in r.sids:
                return r
        return None


def condense(
    program: Program,
    profile: BranchProfile | None = None,
    directives: dict[int, float] | None = None,
    pinned: frozenset[int] | set[int] = frozenset(),
) -> CondensePlan:
    """Condense *program*'s computation/control regions.

    ``pinned`` statement ids are never condensed (slicing pins blocks
    whose computed values the retained code needs — they stay directly
    executed).  ``directives`` overrides branch probabilities per the
    paper's precise approach; otherwise ``profile`` supplies them.
    """
    directives = dict(program.meta.get("eliminate_branches", {})) | dict(directives or {})
    pinned = frozenset(pinned)
    builder = _Condenser(profile, directives, pinned)
    root = builder.plan_block(program.body)
    return CondensePlan(
        program=program,
        root=root,
        regions=builder.regions,
        eliminated_branches=builder.eliminated,
        pinned=pinned,
    )


def _all_sids(stmts: list[Stmt]) -> list[int]:
    from ..ir.nodes import walk

    return [s.sid for s in walk(stmts)]


def _block_names(stmts: list[Stmt]) -> list[str]:
    from ..ir.nodes import walk

    names = []
    for s in walk(stmts):
        if isinstance(s, CompBlock) and s.name not in names:
            names.append(s.name)
    return names


class _Condenser:
    def __init__(self, profile, directives, pinned):
        self.profile = profile
        self.directives = directives
        self.pinned = pinned
        self.regions: list[Region] = []
        self.eliminated: list[int] = []
        self._elim_candidates: list[int] = []

    # -- cost computation (None = not condensable) ----------------------------
    def cost_of(self, s: Stmt) -> Expr | None:
        if s.is_comm():
            return None
        if isinstance(s, (Assign, ArrayAssign)):
            return Const(0)
        if isinstance(s, CompBlock):
            if s.sid in self.pinned:
                return None
            return Var(w_param(s.name)) * s.work
        if isinstance(s, For):
            body = self.cost_of_list(s.body)
            if body is None:
                return None
            return Sum.make(s.var, s.lo, s.hi, body)
        if isinstance(s, If):
            then = self.cost_of_list(s.then)
            orelse = self.cost_of_list(s.orelse)
            if then is None or orelse is None:
                return None
            if s.data_dependent:
                p = self.directives.get(s.sid)
                if p is None:
                    p = self.profile.probability(s.sid) if self.profile else 0.5
                self._elim_candidates.append(s.sid)
                return as_expr(p) * then + as_expr(1.0 - p) * orelse
            return Cond.make(s.cond, then, orelse)
        return None  # timers, delays, generated statements: never condensed

    def cost_of_list(self, stmts: list[Stmt]) -> Expr | None:
        total: Expr = Const(0)
        for s in stmts:
            c = self.cost_of(s)
            if c is None:
                return None
            total = total + c
        return total

    # -- region segmentation ----------------------------------------------------------
    def plan_block(self, stmts: list[Stmt]) -> list:
        items: list = []
        run: list[tuple[Stmt, Expr]] = []
        run_elims: list[int] = []

        def flush():
            if not run:
                return
            region_stmts = [s for s, _ in run]
            cost: Expr = Const(0)
            for _, c in run:
                cost = cost + c
            region = Region(
                name=f"T{len(self.regions)}",
                sids=tuple(_all_sids(region_stmts)),
                cost=cost,
                blocks=tuple(_block_names(region_stmts)),
            )
            if region.cost != Const(0):
                # zero-cost runs (pure scalar code) need no condensed task;
                # slicing alone decides what survives of them
                self.regions.append(region)
                self.eliminated.extend(run_elims)
            run_elims.clear()
            items.append(PlanRegion(region=region, stmts=region_stmts))
            run.clear()

        for s in stmts:
            self._elim_candidates = []
            c = self.cost_of(s)
            if c is not None:
                run.append((s, c))
                run_elims.extend(self._elim_candidates)
                continue
            flush()
            body_plans = tuple(self.plan_block(b) for b in s.children())
            items.append(PlanRetain(stmt=s, body_plans=body_plans))
        flush()
        return items
