"""The static task graph (STG) data model.

"Each node of the STG represents a set of possible parallel tasks,
typically one per process, identified by a symbolic set of integer
process identifiers. [...] Each edge of the graph represents a set of
parallel edges connecting pairs of parallel tasks described by a
symbolic integer mapping." (paper, Sec. 2.2)

Nodes fall into control-flow, computation and communication categories;
computational nodes carry a symbolic scaling function, communication
nodes carry pattern and volume information.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..symbolic import Expr, ProcessSet, RankMapping

__all__ = ["STGNode", "STGEdge", "STG", "NODE_KINDS"]

NODE_KINDS = ("compute", "send", "recv", "collective", "loop", "branch", "assign", "condensed")


@dataclass(frozen=True)
class STGNode:
    """One STG node: a symbolic set of parallel tasks.

    ``work`` is the scaling function for compute/condensed nodes;
    ``comm_bytes`` the symbolic message volume for communication nodes;
    ``mapping`` the partner mapping for point-to-point nodes; ``sids``
    the source-region marker (IR statement ids the node covers).
    """

    nid: int
    kind: str
    label: str
    pset: ProcessSet
    sids: tuple[int, ...] = ()
    work: Expr | None = None
    comm_bytes: Expr | None = None
    mapping: RankMapping | None = None

    def __post_init__(self):
        if self.kind not in NODE_KINDS:
            raise ValueError(f"unknown STG node kind {self.kind!r}")

    def __str__(self):
        base = f"[{self.nid}] {self.kind} {self.label} {self.pset}"
        if self.work is not None:
            base += f" work={self.work}"
        if self.comm_bytes is not None:
            base += f" bytes={self.comm_bytes}"
        if self.mapping is not None:
            base += f" map={self.mapping}"
        return base


@dataclass(frozen=True)
class STGEdge:
    """Control-flow or communication edge between two STG nodes."""

    src: int
    dst: int
    kind: str  # "control" | "communication"
    mapping: RankMapping | None = None

    def __post_init__(self):
        if self.kind not in ("control", "communication"):
            raise ValueError(f"unknown STG edge kind {self.kind!r}")


@dataclass
class STG:
    """A static task graph: symbolic nodes plus control/communication edges."""

    program_name: str
    nodes: list[STGNode] = field(default_factory=list)
    edges: list[STGEdge] = field(default_factory=list)

    def add_node(self, **kwargs) -> STGNode:
        node = STGNode(nid=len(self.nodes), **kwargs)
        self.nodes.append(node)
        return node

    def add_edge(self, src: STGNode | int, dst: STGNode | int, kind: str, mapping=None) -> STGEdge:
        s = src.nid if isinstance(src, STGNode) else src
        d = dst.nid if isinstance(dst, STGNode) else dst
        edge = STGEdge(s, d, kind, mapping)
        self.edges.append(edge)
        return edge

    def nodes_of_kind(self, kind: str) -> list[STGNode]:
        return [n for n in self.nodes if n.kind == kind]

    def control_edges(self) -> list[STGEdge]:
        return [e for e in self.edges if e.kind == "control"]

    def communication_edges(self) -> list[STGEdge]:
        return [e for e in self.edges if e.kind == "communication"]

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export for analysis/visualization (POEMS-style tooling hook)."""
        g = nx.MultiDiGraph(name=self.program_name)
        for n in self.nodes:
            g.add_node(n.nid, kind=n.kind, label=n.label, pset=str(n.pset))
        for e in self.edges:
            g.add_edge(e.src, e.dst, kind=e.kind)
        return g

    def __str__(self):
        lines = [f"STG({self.program_name}): {len(self.nodes)} nodes, {len(self.edges)} edges"]
        lines.extend(f"  {n}" for n in self.nodes)
        for e in self.edges:
            arrow = "->" if e.kind == "control" else "~>"
            lines.append(f"  {e.src} {arrow} {e.dst}" + (f" {e.mapping}" if e.mapping else ""))
        return "\n".join(lines)
