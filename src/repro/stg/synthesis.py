"""STG synthesis: derive the static task graph from a program's IR.

Mirrors what the modified dhpf compiler does for MPI code it generates
(paper Sec. 2.2 / [3]): every computational task, communication call and
control construct becomes a node annotated with the *symbolic* set of
processes that execute it — derived from the enclosing ``myid`` guards —
and point-to-point nodes get a symbolic rank mapping recovered from the
destination/source expressions.
"""

from __future__ import annotations

from ..ir.nodes import (
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    RecvStmt,
    SendStmt,
    Stmt,
)
from ..symbolic import RANK, And, BoolExpr, Not, ProcessSet, RankMapping, Var, all_processes
from .graph import STG, STGNode

__all__ = ["synthesize_stg"]


def _rankify(expr_or_cond, mapping=None):
    """Rewrite an expression over ``myid`` into one over the symbolic rank
    variable ``p`` used in process sets and mappings.

    ``mapping`` defaults to ``{"myid": RANK}`` and is built fresh per
    call — a shared mutable default here would let one caller's edits
    leak into every later substitution.
    """
    if mapping is None:
        mapping = {"myid": RANK}
    return expr_or_cond.subs(mapping)


def synthesize_stg(program: Program) -> STG:
    """Build the static task graph of *program*."""
    stg = STG(program.name)
    ctx = _Ctx(stg)
    entry = ctx.add_control("entry", "assign", ())
    _walk(program.body, ctx, entry, guard=None)
    _pair_communication(stg)
    return stg


class _Ctx:
    def __init__(self, stg: STG):
        self.stg = stg

    def pset(self, guard: BoolExpr | None) -> ProcessSet:
        base = all_processes(Var("P"))
        if guard is None:
            return base
        return base.restrict(guard)

    def add_control(self, label: str, kind: str, sids, guard=None, work=None):
        return self.stg.add_node(kind=kind, label=label, pset=self.pset(guard), sids=tuple(sids), work=work)


def _conj(guard: BoolExpr | None, cond: BoolExpr) -> BoolExpr:
    return cond if guard is None else And.make(guard, cond)


def _walk(stmts: list[Stmt], ctx: _Ctx, pred: STGNode, guard: BoolExpr | None) -> STGNode:
    """Append nodes for *stmts*, chaining control edges from *pred*;
    returns the last node in control-flow order."""
    stg = ctx.stg
    for s in stmts:
        if isinstance(s, Assign):
            node = stg.add_node(
                kind="assign", label=f"{s.var}=...", pset=ctx.pset(guard), sids=(s.sid,)
            )
            stg.add_edge(pred, node, "control")
            pred = node
        elif isinstance(s, ArrayAssign):
            node = stg.add_node(
                kind="assign", label=f"{s.array}[:]=...", pset=ctx.pset(guard), sids=(s.sid,),
                work=s.work,
            )
            stg.add_edge(pred, node, "control")
            pred = node
        elif isinstance(s, CompBlock):
            node = stg.add_node(
                kind="compute", label=s.name, pset=ctx.pset(guard), sids=(s.sid,),
                work=s.work * s.ops_per_iter,
            )
            stg.add_edge(pred, node, "control")
            pred = node
        elif isinstance(s, (SendStmt, IsendStmt)):
            nb = "i" if isinstance(s, IsendStmt) else ""
            mapping = RankMapping(
                target=_rankify(s.dest),
                guard=True if guard is None else guard,
            )
            node = stg.add_node(
                kind="send", label=f"{nb}send tag={s.tag}", pset=ctx.pset(guard), sids=(s.sid,),
                comm_bytes=s.nbytes, mapping=mapping,
            )
            stg.add_edge(pred, node, "control")
            pred = node
        elif isinstance(s, (RecvStmt, IrecvStmt)):
            nb = "i" if isinstance(s, IrecvStmt) else ""
            node = stg.add_node(
                kind="recv", label=f"{nb}recv tag={s.tag}", pset=ctx.pset(guard), sids=(s.sid,),
                comm_bytes=s.nbytes,
                mapping=RankMapping(target=_rankify(s.source), guard=True if guard is None else guard),
            )
            stg.add_edge(pred, node, "control")
            pred = node
        elif isinstance(s, CollectiveStmt):
            node = stg.add_node(
                kind="collective", label=s.op, pset=ctx.pset(guard), sids=(s.sid,),
                comm_bytes=s.nbytes,
            )
            stg.add_edge(pred, node, "control")
            pred = node
        elif isinstance(s, For):
            head = stg.add_node(
                kind="loop", label=f"do {s.var}={s.lo},{s.hi}", pset=ctx.pset(guard), sids=(s.sid,)
            )
            stg.add_edge(pred, head, "control")
            tail = _walk(s.body, ctx, head, guard)
            if tail is not head:
                stg.add_edge(tail, head, "control")  # back edge
            pred = head
        elif isinstance(s, If):
            head = stg.add_node(
                kind="branch", label=f"if {s.cond}", pset=ctx.pset(guard), sids=(s.sid,)
            )
            stg.add_edge(pred, head, "control")
            then_guard = _conj(guard, _rankify(s.cond))
            else_guard = _conj(guard, Not.make(_rankify(s.cond)))
            then_tail = _walk(s.then, ctx, head, then_guard)
            else_tail = _walk(s.orelse, ctx, head, else_guard) if s.orelse else head
            join = stg.add_node(kind="branch", label="endif", pset=ctx.pset(guard), sids=(s.sid,))
            stg.add_edge(then_tail, join, "control")
            if else_tail is not then_tail:
                stg.add_edge(else_tail, join, "control")
            pred = join
        else:
            # generated statements (timers, delays) may appear when
            # synthesizing STGs of transformed programs
            node = stg.add_node(
                kind="assign", label=type(s).__name__, pset=ctx.pset(guard), sids=(s.sid,)
            )
            stg.add_edge(pred, node, "control")
            pred = node
    return pred


def _pair_communication(stg: STG) -> None:
    """Add communication edges pairing send nodes with recv nodes of the
    same tag (conservative: one edge per compatible pair)."""
    existing = {(e.src, e.dst) for e in stg.communication_edges()}
    sends = stg.nodes_of_kind("send")
    recvs = stg.nodes_of_kind("recv")
    for snd in sends:
        stag = snd.label.split("tag=")[1]
        for rcv in recvs:
            if rcv.label.split("tag=")[1] == stag and (snd.nid, rcv.nid) not in existing:
                stg.add_edge(snd, rcv, "communication", mapping=snd.mapping)
                existing.add((snd.nid, rcv.nid))
