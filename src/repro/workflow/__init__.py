"""End-to-end modeling workflow (Fig. 2), validation and reporting."""

from .pipeline import ModelingWorkflow
from .reporting import format_bytes, format_table, format_validation, write_validation_csv
from .validation import ValidationPoint, ValidationSeries, validate

__all__ = [
    "ModelingWorkflow",
    "validate",
    "ValidationPoint",
    "ValidationSeries",
    "format_table",
    "format_validation",
    "format_bytes",
    "write_validation_csv",
]
