"""End-to-end modeling workflow (Fig. 2), validation, faults, campaigns, reporting."""

from .campaign import (
    CampaignConfig,
    CampaignError,
    CampaignInterrupted,
    CampaignReport,
    CampaignRunner,
    RunRecord,
    RunSpec,
    expand_grid,
    format_campaign_report,
    load_grid,
)
from .parallel import WorkerPoolError, WorkflowSpec, calibrate_many, resolve_jobs
from .pipeline import ModelingWorkflow
from .supervisor import minimize_poison, run_supervised
from .reporting import (
    format_bytes,
    format_fault_sweep,
    format_resilience,
    format_table,
    format_validation,
    write_fault_sweep_csv,
    write_stats_csv,
    write_validation_csv,
)
from .validation import (
    FaultSweepPoint,
    FaultSweepSeries,
    ValidationPoint,
    ValidationSeries,
    fault_sweep,
    validate,
)

__all__ = [
    "ModelingWorkflow",
    "CampaignConfig",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignReport",
    "CampaignRunner",
    "RunRecord",
    "RunSpec",
    "expand_grid",
    "format_campaign_report",
    "load_grid",
    "WorkflowSpec",
    "WorkerPoolError",
    "calibrate_many",
    "resolve_jobs",
    "run_supervised",
    "minimize_poison",
    "validate",
    "ValidationPoint",
    "ValidationSeries",
    "fault_sweep",
    "FaultSweepPoint",
    "FaultSweepSeries",
    "format_table",
    "format_validation",
    "format_bytes",
    "format_resilience",
    "format_fault_sweep",
    "write_validation_csv",
    "write_fault_sweep_csv",
    "write_stats_csv",
]
