"""Text-table and CSV reporting of experiment results."""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path

from ..sim.engine import SimResult
from ..sim.stats import ProcessStats, SimStats
from ..util.atomic_io import atomic_write
from .validation import FaultSweepSeries, ValidationSeries

__all__ = [
    "format_table",
    "format_validation",
    "format_bytes",
    "write_validation_csv",
    "format_resilience",
    "format_fault_sweep",
    "write_fault_sweep_csv",
    "write_stats_csv",
]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a plain-text table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_validation(series: ValidationSeries) -> str:
    """The paper's validation-figure table: measured / DE / AM / errors."""
    headers = ["procs", "measured(s)", "MPI-SIM-DE(s)", "MPI-SIM-AM(s)", "%err DE", "%err AM"]
    rows = []
    for p in series.points:
        rows.append([p.label, p.measured, p.de, p.am, p.err_de, p.err_am])
    table = format_table(headers, rows, title=f"Validation: {series.name}")
    footer = (
        f"max AM error {series.max_err_am:.1f}%  "
        f"mean AM error {series.mean_err_am:.1f}%"
    )
    return table + "\n" + footer


def write_validation_csv(series: ValidationSeries, path: str | Path) -> None:
    """Write a validation series as CSV (for external plotting tools)."""
    with atomic_write(path, newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["label", "nprocs", "measured_s", "de_s", "am_s", "err_de_pct", "err_am_pct"])
        for p in series.points:
            writer.writerow(
                [p.label, p.nprocs, p.measured, p.de, p.am, p.err_de, p.err_am]
            )


def format_resilience(result: SimResult, title: str = "") -> str:
    """Human-readable resilience report of one fault-injected run."""
    s = result.stats
    lines = [title or f"Resilience report ({result.mode.value})"]
    lines.append(f"  elapsed           : {s.elapsed:.6f}s")
    lines.append(f"  messages          : {s.total_messages} sent / {s.total_bytes} bytes")
    lines.append(f"  retries           : {s.total_retries}")
    lines.append(f"  timeouts          : {s.total_timeouts}")
    lines.append(f"  messages lost     : {s.total_messages_lost}")
    lines.append(f"  duplicates        : {s.total_duplicates}")
    lines.append(f"  failed sends      : {s.total_send_failures}")
    crashed = s.crashed_ranks
    lines.append(
        f"  crashed ranks     : {', '.join(str(r) for r in crashed) if crashed else 'none'}"
    )
    return "\n".join(lines)


def format_fault_sweep(series: FaultSweepSeries) -> str:
    """The fault-sweep table: elapsed / slowdown / counters per loss rate."""
    headers = [
        "loss rate", "elapsed (s)", "slowdown %", "retries", "timeouts",
        "lost", "failed sends",
    ]
    base = series.baseline
    rows = []
    for p in series.points:
        if p.deadlocked:
            rows.append([p.loss_rate, "DEADLOCK", None, None, None, None, None])
        else:
            rows.append([
                p.loss_rate, p.elapsed, p.slowdown_pct(base), p.retries,
                p.timeouts, p.messages_lost, p.send_failures,
            ])
    return format_table(
        headers, rows,
        title=f"Fault sweep: {series.name} ({series.mode}, {series.nprocs} procs)",
    )


def write_fault_sweep_csv(series: FaultSweepSeries, path: str | Path) -> None:
    """Write a fault-sweep series as CSV (for external plotting tools)."""
    base = series.baseline
    with atomic_write(path, newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([
            "loss_rate", "elapsed_s", "slowdown_pct", "retries", "timeouts",
            "messages_lost", "send_failures", "deadlocked",
        ])
        for p in series.points:
            writer.writerow([
                p.loss_rate, p.elapsed, p.slowdown_pct(base), p.retries,
                p.timeouts, p.messages_lost, p.send_failures, int(p.deadlocked),
            ])


def write_stats_csv(stats: SimStats, path: str | Path) -> None:
    """Write one run's per-rank statistics as CSV, one row per rank.

    Every :class:`ProcessStats` field is a column — including the
    fault/resilience counters (retries, timeouts, losses, duplicates,
    send failures, crashes), which previously never reached any report.
    """
    fieldnames = [f.name for f in dataclasses.fields(ProcessStats)]
    with atomic_write(path, newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        for p in stats.procs:
            writer.writerow(p.to_dict())


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (KB/MB/GB, decimal as in the paper)."""
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(nbytes) >= scale:
            return f"{nbytes / scale:.1f}{unit}"
    return f"{nbytes:.0f}B"
