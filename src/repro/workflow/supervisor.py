"""Supervised execution runtime: heartbeats, hang kills, poison quarantine.

The bare :class:`~concurrent.futures.ProcessPoolExecutor` fan-out in
:mod:`repro.workflow.parallel` has three failure modes that each take
down a whole campaign: a worker that *dies* breaks the pool, a worker
that *wedges* is only caught by the coarse wall budget (or never), and
a *poison* spec — one whose run reliably kills or hangs its worker —
turns every retry into another casualty.  This module replaces the
executor with an explicitly supervised pool of
:class:`multiprocessing.Process` workers connected by pipes, and turns
each failure mode into a journaled, bounded, recoverable event:

* **Heartbeats.**  Every worker arms the kernel's
  :data:`~repro.sim.heartbeat.HEARTBEAT` emitter per run; the event
  loop streams small progress cursors (event count, virtual time, a
  flight-ring tail) down the worker's pipe.  Cost rides the same
  zero-cost dispatch switch as TRACER/FLIGHT — disabled kernels never
  see it, enabled ones pay two compares per event.
* **Hang detection.**  A busy worker whose cursor goes stale past the
  heartbeat deadline is SIGKILLed and its run journaled as ``hung`` —
  with the last cursor and synthesized flight tail attached — instead
  of waiting out the wall budget.  The cell is retried (it may have
  been unlucky) until the poison threshold says otherwise.
* **Poison quarantine.**  A spec that crashes or hangs its worker
  ``poison_threshold`` times is journaled as ``poison`` — terminal on
  resume — and a quarantine artifact is written with the flight dump
  and, when the program survives a pickle round-trip, a **minimized
  reproducer** produced by handing the program to
  :func:`repro.gen.minimize.minimize_program` with a fresh-subprocess
  crash/hang probe as the predicate.  The rest of the campaign
  completes.
* **Bounded retry + graceful degradation.**  A worker death re-enqueues
  the in-flight cell (journaling an intermediate ``error`` record that
  names it) and respawns the worker with exponential backoff.  Pool
  breakage *not* attributable to a cell — spawn failures, idle worker
  deaths — is bounded separately; past the limit the supervisor stops
  using processes entirely and runs the remaining cells in-process,
  sequentially, with byte-identical outputs (same specs, same seeds,
  spec-order artifacts).

Attribution is the load-bearing rule: deaths *while running a cell*
strike that cell (→ quarantine), deaths while idle strike the pool
(→ degrade).  Cells with strikes are never run in-process after
degradation — a poison cell would take the parent down — they are
quarantined instead.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path

from ..obs.logging import get_logger
from ..sim.heartbeat import HEARTBEAT
from ..util.atomic_io import atomic_write
from ..api import RunRequest as RunSpec
from .campaign import CampaignConfig, RunRecord

__all__ = ["run_supervised", "minimize_poison"]

_log = get_logger("workflow.supervisor")

#: quarantine artifact schema version
QUARANTINE_FORMAT = 1

#: heartbeat emission throttles armed in workers (module constants so
#: tests can tighten them; forked workers inherit the patched values)
HB_INTERVAL_EVENTS = 2048
HB_MIN_INTERVAL_S = 0.25

#: consecutive non-cell-attributable pool failures before degradation
POOL_RETRIES = 3

#: base seconds of the exponential respawn backoff
RESPAWN_BACKOFF = 0.1

#: predicate-call bound handed to the delta-debugger per poison spec
MINIMIZE_CHECKS = 12

#: seconds a reproducer probe subprocess may run before "hang"
PROBE_TIMEOUT = 5.0


# -- worker side ---------------------------------------------------------------


def _worker_main(conn, config: CampaignConfig, resolver, sleep, telemetry,
                 checkpoint_dir) -> None:
    """One supervised worker: receive cells, stream heartbeats, ship records.

    SIGINT is masked (the parent owns interruption) and observability
    is quiet, exactly like the bare pool's initializer.  The runner —
    and with it the expensive calibration/compile state — is built once
    and reused across cells.
    """
    from .campaign import CampaignRunner
    from .parallel import _quiet_worker

    _quiet_worker()
    runner = CampaignRunner(
        config, out_dir=os.devnull, resolver=resolver, sleep=sleep,
        telemetry=telemetry, checkpoint_dir=checkpoint_dir,
    )
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, index, spec = msg
            rec = _execute_cell(runner, conn, spec, index, config)
            conn.send(("done", index, rec))
    except (EOFError, BrokenPipeError, OSError, KeyboardInterrupt):
        pass  # the parent died or killed us; nothing to clean up
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass


def _execute_cell(runner, conn, spec: RunSpec, index: int,
                  config: CampaignConfig) -> RunRecord:
    """Run one cell with heartbeats armed.

    A separate hook (rather than inline in the worker loop) so tests
    can monkeypatch wedged / crashing cells into forked workers.
    """
    if config.heartbeat_timeout is not None:
        run_id = spec.run_id

        def sink(cursor, _conn=conn, _rid=run_id):
            _conn.send(("hb", _rid, cursor))

        HEARTBEAT.configure(
            sink, interval_events=HB_INTERVAL_EVENTS,
            min_interval_s=HB_MIN_INTERVAL_S, run_id=run_id,
        )
        HEARTBEAT.enable()
    try:
        return runner.run_one(spec, index)
    finally:
        HEARTBEAT.disable()


# -- parent side ---------------------------------------------------------------


@dataclass
class _Worker:
    proc: multiprocessing.Process
    conn: object
    busy: tuple[int, RunSpec] | None = None
    last_beat: float = 0.0
    had_beat: bool = False
    cursor: dict | None = None


def _cursor_summary(cursor: dict | None, staleness: float | None = None) -> dict | None:
    """Distill a heartbeat cursor for a journal record (drop the tail)."""
    doc = {}
    if cursor is not None:
        doc = {
            "events": cursor.get("events"),
            "virtual_time": cursor.get("virtual_time"),
            "wall_seconds": cursor.get("wall_seconds"),
        }
    if staleness is not None:
        doc["staleness_s"] = round(staleness, 3)
    return doc or None


def _flight_from_cursor(cursor: dict | None, error: str) -> dict | None:
    """Synthesize a flight-dump-shaped dict from a cursor's flight tail.

    The worker is dead; its in-memory ring died with it.  The last
    heartbeat carried a bounded tail of that ring, which is exactly the
    "what led up to it" a post-mortem needs.
    """
    if cursor is None:
        return None
    tail = cursor.get("flight_tail") or []
    return {
        "format": 1,
        "capacity": len(tail),
        "events_seen": cursor.get("events", 0),
        "events_dropped": max(0, cursor.get("events", 0) - len(tail)),
        "events": tail,
        "error": error,
        "meta": {"source": "heartbeat", "run_id": cursor.get("run_id")},
    }


def run_supervised(config: CampaignConfig, pending, jobs: int, on_record,
                   *, resolver=None, sleep=None, telemetry: bool = False,
                   checkpoint_dir: Path | None = None,
                   quarantine_dir: Path | None = None,
                   inline_run=None) -> int:
    """Fan *pending* ``(index, spec)`` cells across a supervised pool.

    ``on_record(spec, record)`` is called in completion order for every
    journaled record — terminal outcomes *and* the intermediate
    ``hung`` / ``error`` strike records whose cells are then retried
    (the journal's last-record-wins rule makes the final outcome
    authoritative).  Returns the number of cells driven to a terminal
    record this invocation.  *inline_run* — ``inline_run(spec, index)
    -> RunRecord`` — executes a cell in-process after degradation.
    """
    sleep = sleep if sleep is not None else time.sleep
    ctx = multiprocessing.get_context()
    queue: deque[tuple[int, RunSpec]] = deque(pending)
    workers: list[_Worker] = []
    strikes: dict[str, tuple[int, str]] = {}  # run_id -> (count, last failure)
    executed = 0
    pool_strikes = 0
    degraded = False
    timeout = config.heartbeat_timeout
    # before the first beat a worker may be compiling/calibrating, which
    # legitimately takes longer than steady-state beat spacing
    grace = timeout * 2 if timeout is not None else None

    def quarantine(spec: RunSpec, index: int, count: int, desc: str,
                   flight: dict | None, cursor: dict | None) -> None:
        nonlocal executed
        error = f"quarantined after {count} worker strike(s); last: {desc}"
        _log.warning("run %s poisoned: %s", spec.describe(), error)
        on_record(spec, RunRecord(
            run_id=spec.run_id, index=index, outcome="poison",
            attempts=count, error=error, flight=flight, cursor=cursor,
        ))
        executed += 1
        if quarantine_dir is not None:
            try:
                _write_quarantine(
                    quarantine_dir, config, spec, count, desc, flight,
                    cursor, resolver,
                )
            except Exception as exc:  # never let forensics kill the campaign
                _log.warning(
                    "could not write quarantine artifact for %s: %s",
                    spec.run_id, exc,
                )

    def strike(item: tuple[int, RunSpec], desc: str, outcome: str,
               flight: dict | None, cursor: dict | None) -> int:
        """Journal a strike record; re-enqueue or quarantine the cell."""
        index, spec = item
        count = strikes.get(spec.run_id, (0, ""))[0] + 1
        strikes[spec.run_id] = (count, desc)
        on_record(spec, RunRecord(
            run_id=spec.run_id, index=index, outcome=outcome,
            attempts=count, error=desc, flight=flight, cursor=cursor,
        ))
        if count >= config.poison_threshold:
            quarantine(spec, index, count, desc, flight, cursor)
        else:
            _log.warning(
                "run %s %s (strike %d/%d); re-enqueueing",
                spec.describe(), outcome, count, config.poison_threshold,
            )
            queue.append((index, spec))
        return count

    def retire(w: _Worker, kill: bool = False) -> None:
        workers.remove(w)
        if kill and w.proc.is_alive():
            w.proc.kill()
        try:
            w.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        w.proc.join(timeout=5)

    def on_death(w: _Worker) -> None:
        """A worker process died (EOF on its pipe / dead on assignment)."""
        nonlocal pool_strikes, degraded
        item, cursor = w.busy, w.cursor
        retire(w, kill=True)  # joins, so the exitcode below is real
        exitcode = w.proc.exitcode
        if item is None:
            # idle deaths are pool breakage, not a cell's fault
            pool_strikes += 1
            _log.warning(
                "idle campaign worker died (exit %s; pool strike %d/%d)",
                exitcode, pool_strikes, POOL_RETRIES,
            )
            if pool_strikes >= POOL_RETRIES:
                degraded = True
            else:
                sleep(RESPAWN_BACKOFF * 2 ** (pool_strikes - 1))
            return
        _, spec = item
        desc = (
            f"worker process died (exit {exitcode}) while running "
            f"run {spec.run_id}"
        )
        count = strike(item, desc, "error",
                       _flight_from_cursor(cursor, desc),
                       _cursor_summary(cursor))
        sleep(RESPAWN_BACKOFF * 2 ** (count - 1))

    def on_hang(w: _Worker, stale: float, deadline: float) -> None:
        """A busy worker's heartbeats went stale: kill + classify hung."""
        item, cursor = w.busy, w.cursor
        pid = w.proc.pid
        retire(w, kill=True)
        _, spec = item
        desc = (
            f"no heartbeat for {stale:.1f}s (deadline {deadline:g}s); "
            f"killed worker pid {pid}"
        )
        strike(item, desc, "hung",
               _flight_from_cursor(cursor, desc),
               _cursor_summary(cursor, staleness=stale))

    def spawn() -> bool:
        nonlocal pool_strikes, degraded
        try:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, config, resolver, sleep, telemetry,
                      checkpoint_dir),
                daemon=True,
            )
            proc.start()
            child_conn.close()
        except OSError as exc:
            pool_strikes += 1
            _log.warning(
                "cannot spawn campaign worker (%s; pool strike %d/%d)",
                exc, pool_strikes, POOL_RETRIES,
            )
            if pool_strikes >= POOL_RETRIES:
                degraded = True
            else:
                sleep(RESPAWN_BACKOFF * 2 ** (pool_strikes - 1))
            return False
        workers.append(_Worker(proc=proc, conn=parent_conn,
                               last_beat=time.monotonic()))
        return True

    try:
        while queue or any(w.busy is not None for w in workers):
            if degraded:
                break
            # keep the pool at strength (bounded by outstanding work)
            busy_n = sum(1 for w in workers if w.busy is not None)
            want = min(jobs, len(queue) + busy_n)
            while len(workers) < want and not degraded:
                if not spawn():
                    break
            # hand cells to idle workers
            for w in list(workers):
                if w.busy is not None or not queue:
                    continue
                item = queue.popleft()
                try:
                    w.conn.send(("run",) + item)
                except (BrokenPipeError, OSError):
                    queue.appendleft(item)
                    on_death(w)
                    continue
                w.busy = item
                w.last_beat = time.monotonic()
                w.had_beat = False
                w.cursor = None
            if not workers:
                continue  # spawn failed; retry or degrade next pass
            # drain messages: heartbeats refresh cursors, dones journal
            poll = 0.05 if timeout is None else min(0.05, timeout / 4)
            by_conn = {w.conn: w for w in workers}
            for conn in _conn_wait(list(by_conn), timeout=poll):
                w = by_conn[conn]
                try:
                    while True:
                        msg = w.conn.recv()
                        if msg[0] == "hb":
                            w.last_beat = time.monotonic()
                            w.had_beat = True
                            w.cursor = msg[2]
                        elif msg[0] == "done":
                            _, index, rec = msg
                            _, spec = w.busy
                            w.busy = None
                            strikes.pop(spec.run_id, None)
                            on_record(spec, rec)
                            executed += 1
                            pool_strikes = 0
                        if not w.conn.poll():
                            break
                except (EOFError, OSError):
                    on_death(w)
            # stale-heartbeat sweep
            if timeout is not None:
                now = time.monotonic()
                for w in list(workers):
                    if w.busy is None:
                        continue
                    deadline = timeout if w.had_beat else grace
                    if now - w.last_beat > deadline:
                        on_hang(w, now - w.last_beat, deadline)
        if degraded:
            # reclaim cells still in flight on surviving workers — they
            # did nothing wrong and re-run in-process below
            for w in list(workers):
                if w.busy is not None:
                    queue.appendleft(w.busy)
                retire(w, kill=True)
        if queue:
            # degraded: no more worker processes.  Run clean cells
            # in-process (byte-identical outputs: same specs, same
            # seeds, artifacts derived in spec order); quarantine cells
            # that already struck a worker — re-running one of those in
            # the parent could take the campaign down with it.
            _log.warning(
                "supervised pool degraded after %d pool strike(s); running "
                "%d remaining cell(s) in-process",
                pool_strikes, len(queue),
            )
            while queue:
                index, spec = queue.popleft()
                prior = strikes.get(spec.run_id)
                if prior is not None:
                    count, desc = prior
                    quarantine(
                        spec, index, count,
                        f"pool degraded while cell had {count} strike(s); "
                        f"last: {desc}", None, None,
                    )
                    continue
                rec = inline_run(spec, index)
                on_record(spec, rec)
                executed += 1
        return executed
    finally:
        for w in list(workers):
            try:
                w.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for w in workers:
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=5)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


# -- poison forensics ----------------------------------------------------------


def _probe_main(payload: bytes) -> None:
    """Reproducer probe child: run the candidate; die only if *it* kills us.

    Simulator-level failures (deadlock, validation errors) are campaign
    ``error`` outcomes, not poison — they exit 0 here.  The failures
    this probe exists for — hard process death, a wedge — either
    bypass ``except`` entirely or trip the parent's join timeout.
    """
    from .parallel import _quiet_worker

    _quiet_worker()
    try:
        candidate, inputs, nprocs, machine_name, mode, seed = pickle.loads(payload)
        from ..machine import get_machine
        from .pipeline import ModelingWorkflow

        wf = ModelingWorkflow(
            candidate, get_machine(machine_name),
            calib_inputs=inputs, calib_nprocs=nprocs, seed=seed,
        )
        if mode == "am":
            wf.run_am(inputs, nprocs)
        elif mode == "measured":
            wf.run_measured(inputs, nprocs, seed=seed)
        else:
            wf.run_de(inputs, nprocs)
    except BaseException:
        pass
    os._exit(0)


def _subprocess_probe(candidate, inputs, spec: RunSpec, machine_name: str,
                      timeout: float) -> bool:
    """Does *candidate* still crash or hang a fresh process?"""
    payload = pickle.dumps(
        (candidate, inputs, spec.nprocs, machine_name, spec.mode, spec.seed)
    )
    ctx = multiprocessing.get_context()
    proc = ctx.Process(target=_probe_main, args=(payload,), daemon=True)
    proc.start()
    proc.join(timeout)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=5)
        return True  # the hang reproduces
    return proc.exitcode != 0  # the crash reproduces


def minimize_poison(spec: RunSpec, machine_name: str, resolver, *,
                    max_checks: int | None = None,
                    probe_timeout: float | None = None,
                    probe=None) -> dict:
    """Try to shrink a poison spec's program to a minimal reproducer.

    Returns a JSON-safe summary dict; ``minimized`` is only true when
    the delta-debugger confirmed the failure in a fresh subprocess and
    shrank the program.  Every bail-out path records *why* in ``note``
    — a quarantine artifact must never silently pretend it tried.
    *probe* overrides the subprocess crash/hang predicate (tests).
    """
    from ..gen.minimize import minimize_program

    max_checks = MINIMIZE_CHECKS if max_checks is None else max_checks
    probe_timeout = PROBE_TIMEOUT if probe_timeout is None else probe_timeout
    info: dict = {"minimized": False}
    try:
        program, default_inputs = resolver(spec.app)
        inputs = default_inputs(spec.nprocs)
        inputs.update(dict(spec.inputs))
    except Exception as exc:
        info["note"] = f"resolver failed: {type(exc).__name__}: {exc}"
        return info
    if probe is None:
        try:
            pickle.dumps(program)
        except Exception:
            info["note"] = "program is not picklable; minimization skipped"
            return info

        def probe(candidate, _inputs=inputs):
            return _subprocess_probe(
                candidate, _inputs, spec, machine_name, probe_timeout
            )

    try:
        result = minimize_program(program, probe, max_checks=max_checks)
    except ValueError as exc:
        info["note"] = f"minimization declined: {exc}"
        return info
    from ..ir.printer import format_program

    info.update(
        minimized=True,
        original_stmts=result.original_stmts,
        final_stmts=result.final_stmts,
        reduction=result.reduction,
        checks=result.checks,
        program=format_program(result.program),
    )
    return info


def _write_quarantine(quarantine_dir: Path, config: CampaignConfig,
                      spec: RunSpec, count: int, desc: str,
                      flight: dict | None, cursor: dict | None,
                      resolver) -> None:
    """Write ``quarantine/<run_id>.json``: spec, forensics, reproducer."""
    from .campaign import _cli_resolver

    quarantine_dir.mkdir(parents=True, exist_ok=True)
    doc = {
        "format": QUARANTINE_FORMAT,
        "run_id": spec.run_id,
        "spec": spec._identity(),
        "machine": config.machine,
        "strikes": count,
        "error": desc,
        "cursor": cursor,
        "flight": flight,
        "reproducer": minimize_poison(
            spec, config.machine,
            resolver if resolver is not None else _cli_resolver,
        ),
    }
    path = quarantine_dir / f"{spec.run_id}.json"
    with atomic_write(path) as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    _log.info("quarantine artifact written to %s", path)
