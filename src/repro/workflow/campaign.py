"""Resumable experiment campaigns: checkpoint/restart for multi-run sweeps.

The paper's headline experiments are *campaigns* — grids of simulation
runs over processor counts × problem sizes × fault plans.  A single
OOM, runaway configuration or Ctrl-C used to lose the whole sweep and
could leave truncated artifacts behind.  This module makes campaigns
crash-safe:

* A campaign is a **declarative grid** (:func:`load_grid` /
  :func:`expand_grid`) expanded into :class:`RunSpec` entries, each with
  a content-hash ``run_id``; the whole configuration has a
  ``config_hash`` so a journal can prove it belongs to this grid.
* Progress is journaled to an append-only JSONL journal
  (:class:`repro.util.atomic_io.AtomicJournal`, tmp + fsync + rename
  per record), so the on-disk journal is a complete prefix of the
  logical one at every instant.
* ``resume=True`` replays the journal, verifies the config hash, skips
  runs that already completed ``ok`` and re-runs only failed or missing
  ones.  The engine is deterministic under a fixed seed, so a resumed
  campaign's results are **bit-identical** to an uninterrupted one.
* Each run executes under watchdog budgets
  (:class:`repro.sim.BudgetGuard`) and bounded retry with exponential
  backoff; outcomes are classified ``ok / deadlock / timeout / budget /
  error / hung / poison`` (``timeout`` = the wall-clock budget tripped,
  ``budget`` = the event or virtual-time budget tripped, ``hung`` = the
  supervisor killed a run whose heartbeats went stale, ``poison`` = a
  spec that repeatedly killed or hung its worker was quarantined — see
  :mod:`repro.workflow.supervisor`).
* With ``checkpoint_interval`` set, every run writes periodic atomic
  **replay cursors** (:mod:`repro.sim.checkpoint`) to
  ``checkpoints/<run_id>.json``; a killed or preempted run resumes by
  deterministic fast-forward — the replayed prefix is verified against
  the cursor and the wall budget is credited with the wall time the
  dead attempt already spent.
* SIGINT/SIGTERM interrupt the campaign *between* journal records: the
  journal stays consistent, an ``interrupted`` marker is appended, and
  the CLI prints a resume hint.
* With ``telemetry=True`` every run executes inside a
  :class:`~repro.obs.capsule.capture_run` with the flight recorder armed:
  the worker ships a :class:`~repro.obs.capsule.TelemetryCapsule` back to
  the parent, which journals it to ``telemetry.jsonl`` (O_APPEND +
  fsync, torn-tail tolerant) and, once the campaign completes, fuses all
  capsules into ``campaign.perfetto.json`` — one merged timeline with a
  track per worker process and per run.  Failed runs additionally attach
  the flight-recorder dump (last-N kernel events, wait chains, budget
  state) to their journal record for ``repro inspect``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from ..api import CampaignRequest, RunRequest, canonical_json
from ..machine import get_machine
from ..obs.logging import get_logger
from ..obs.metrics import METRICS
from ..obs.spans import TRACER
from ..sim.budget import BudgetExceededError
from ..sim.checkpoint import CHECKPOINT, CheckpointMismatchError, load_checkpoint
from ..sim.engine import DeadlockError, ExecMode
from ..sim.faults import FaultPlan, RetryPolicy
from ..sim.flightrec import FLIGHT
from ..util.atomic_io import AtomicJournal, append_jsonl, atomic_write
from .pipeline import ModelingWorkflow

__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "RunSpec",
    "CampaignConfig",
    "RunRecord",
    "CampaignReport",
    "CampaignRunner",
    "load_grid",
    "expand_grid",
    "execute_request",
    "format_campaign_report",
    "JOURNAL_NAME",
    "RESULTS_NAME",
    "TELEMETRY_NAME",
    "MERGED_PERFETTO_NAME",
    "CHECKPOINT_DIR_NAME",
    "QUARANTINE_DIR_NAME",
    "OUTCOMES",
    "TERMINAL_OUTCOMES",
]

_log = get_logger("workflow.campaign")

JOURNAL_NAME = "campaign.journal.jsonl"
RESULTS_NAME = "results.csv"
TELEMETRY_NAME = "telemetry.jsonl"
MERGED_PERFETTO_NAME = "campaign.perfetto.json"
CHECKPOINT_DIR_NAME = "checkpoints"
QUARANTINE_DIR_NAME = "quarantine"
_JOURNAL_VERSION = 1

#: outcome classes a run record may carry; ``hung`` = the supervisor
#: killed the run when its heartbeats went stale, ``poison`` = the spec
#: repeatedly killed or hung its worker and was quarantined.  ``ok``
#: and ``poison`` are terminal on resume; everything else re-runs.
OUTCOMES = ("ok", "deadlock", "timeout", "budget", "error", "hung", "poison")

#: outcomes a resumed campaign does not re-run
TERMINAL_OUTCOMES = ("ok", "poison")


class CampaignError(RuntimeError):
    """A campaign cannot proceed: bad grid, corrupt or foreign journal.

    The CLI renders these as a one-line ``error: ...`` message."""


class CampaignInterrupted(BaseException):
    """Raised by the signal handlers to stop a campaign between runs.

    Deliberately a ``BaseException`` so the per-run ``error`` classifier
    (which catches ``Exception``) can never swallow an interrupt.
    """

    def __init__(self, signum: int):
        super().__init__(f"interrupted by signal {signum}")
        self.signum = signum


#: the one canonical JSON encoding, shared with :mod:`repro.api`
_canonical = canonical_json


# -- the declarative grid ------------------------------------------------------

#: One cell of the campaign grid.  ``RunSpec`` is now exactly the typed
#: :class:`repro.api.RunRequest` — same fields, same content-hash
#: identity (``run_id``/``content_hash()``), so journals written by
#: earlier releases resume unchanged.  The alias stays for one release.
RunSpec = RunRequest


@dataclass
class CampaignConfig:
    """A fully-expanded campaign: the runs plus how to execute them."""

    name: str
    machine: str
    specs: list[RunSpec]
    calib_procs: int | None = None
    max_events: int | None = None
    max_virtual_time: float | None = None
    max_wall_seconds: float | None = None
    retries: int = 0  # campaign-level re-run attempts for "error" outcomes
    backoff: float = 0.1  # base seconds of the exponential backoff
    retry_policy: str | None = None  # canonical JSON of the sim-level RetryPolicy
    # -- supervision policy (execution-side, like ``jobs``: deliberately
    # excluded from config_hash — it decides how pathological runs are
    # scheduled/killed, never what a healthy run computes, and records
    # are keyed by run_id so non-terminal outcomes simply re-run) -----------
    supervise: bool = True  # jobs > 1: supervised pool vs bare executor
    heartbeat_timeout: float | None = 30.0  # stale-cursor deadline; None = off
    poison_threshold: int = 2  # worker deaths/hangs before quarantine
    checkpoint_interval: int | None = None  # events between cursors; None = off
    # -- serving policy (set by repro.serve / execute_request, never by
    # the grid CLI): calib_from_spec makes every run calibrate from its
    # *own* spec (single-cell semantics) instead of the first grid cell
    # of its (app, seed) group, so a run's result is a pure function of
    # (request, context) — the property the content-addressed store
    # needs; warm_dir points at the store's warm-start calibration
    # cache.  Like the supervision knobs these never feed config_hash.
    calib_from_spec: bool = False
    warm_dir: str | None = None
    # -- kernel backend ("interpreted" | "compiled" | "auto"; None =
    # Simulator's default).  Execution policy, deliberately excluded
    # from config_hash: results are byte-identical across backends, so
    # a journal written interpreted resumes compiled and vice versa.
    backend: str | None = None

    @property
    def config_hash(self) -> str:
        """Hash of everything that shapes the campaign's results.

        Delegates to :meth:`repro.api.CampaignRequest.content_hash` —
        the single source of campaign identity."""
        return self.to_request().content_hash()

    def to_request(self) -> CampaignRequest:
        """The result-shaping core of this config, as the typed API."""
        return CampaignRequest(
            name=self.name,
            machine=self.machine,
            runs=tuple(self.specs),
            calib_procs=self.calib_procs,
            max_events=self.max_events,
            max_virtual_time=self.max_virtual_time,
            max_wall_seconds=self.max_wall_seconds,
            retries=self.retries,
            backoff=self.backoff,
            retry_policy=self.retry_policy,
        )

    @classmethod
    def from_request(cls, request: CampaignRequest, **policy) -> CampaignConfig:
        """Build a config from the typed API plus execution policy.

        *policy* takes the execution-side knobs (``supervise``,
        ``heartbeat_timeout``, ``poison_threshold``,
        ``checkpoint_interval``, ``calib_from_spec``, ``warm_dir``,
        ``backend``) — everything result-shaping comes from *request*.
        """
        return cls(
            name=request.name,
            machine=request.machine,
            specs=list(request.runs),
            calib_procs=request.calib_procs,
            max_events=request.max_events,
            max_virtual_time=request.max_virtual_time,
            max_wall_seconds=request.max_wall_seconds,
            retries=request.retries,
            backoff=request.backoff,
            retry_policy=request.retry_policy,
            **policy,
        )


def load_grid(path: str | Path) -> CampaignConfig:
    """Load and expand a JSON grid file; raise :class:`CampaignError`."""
    path = Path(path)
    try:
        grid = json.loads(path.read_text())
    except OSError as exc:
        raise CampaignError(f"cannot read grid file {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise CampaignError(f"grid file {path} is not valid JSON: {exc}") from None
    if not isinstance(grid, dict):
        raise CampaignError(f"grid file {path} must contain a JSON object")
    grid.setdefault("name", path.stem)
    return expand_grid(grid)


def expand_grid(grid: dict) -> CampaignConfig:
    """Expand a grid dict into the cross-product of its axes.

    Axes: ``apps`` × ``modes`` × ``nprocs`` × ``input_sets`` ×
    ``fault_plans``; everything else configures execution.  Raises
    :class:`CampaignError` on a malformed grid.
    """

    def bad(msg: str) -> CampaignError:
        return CampaignError(f"invalid grid: {msg}")

    known = {
        "name", "machine", "app", "apps", "modes", "nprocs", "inputs",
        "input_sets", "fault_plans", "seed", "timeout", "retry", "budgets",
        "retries", "backoff", "calib_procs", "supervision",
    }
    unknown = set(grid) - known
    if unknown:
        raise bad(f"unknown keys {sorted(unknown)}")
    apps = grid.get("apps", grid.get("app"))
    if apps is None:
        raise bad("missing 'app' (or 'apps')")
    if isinstance(apps, str):
        apps = [apps]
    nprocs_list = grid.get("nprocs")
    if not isinstance(nprocs_list, list) or not nprocs_list:
        raise bad("'nprocs' must be a non-empty list of processor counts")
    for p in nprocs_list:
        if not isinstance(p, int) or p < 1:
            raise bad(f"bad processor count {p!r}")
    modes = grid.get("modes", ["de"])
    for m in modes:
        if m not in ("de", "am", "measured"):
            raise bad(f"unknown mode {m!r} (expected de/am/measured)")
    common = grid.get("inputs", {})
    input_sets = grid.get("input_sets", [{}])
    if not isinstance(input_sets, list) or not input_sets:
        raise bad("'input_sets' must be a non-empty list of override dicts")
    fault_plans = grid.get("fault_plans", [None])
    plans: list[str | None] = []
    for fp in fault_plans:
        if fp is None:
            plans.append(None)
            continue
        try:
            FaultPlan.from_dict(fp)  # validate now, fail before any run
        except (TypeError, ValueError) as exc:
            raise bad(f"bad fault plan {fp!r}: {exc}") from None
        plans.append(_canonical(fp))
    seed = int(grid.get("seed", 0))
    timeout = grid.get("timeout")
    retry = grid.get("retry")
    if retry is not None:
        try:
            RetryPolicy(**retry)
        except (TypeError, ValueError) as exc:
            raise bad(f"bad retry policy {retry!r}: {exc}") from None
        retry = _canonical(retry)
    budgets = grid.get("budgets", {})
    extra = set(budgets) - {"max_events", "max_virtual_time", "max_wall_seconds"}
    if extra:
        raise bad(f"unknown budget keys {sorted(extra)}")
    sup = grid.get("supervision", {})
    if not isinstance(sup, dict):
        raise bad("'supervision' must be an object")
    extra = set(sup) - {
        "supervise", "heartbeat_timeout", "poison_threshold",
        "checkpoint_interval",
    }
    if extra:
        raise bad(f"unknown supervision keys {sorted(extra)}")
    poison_threshold = int(sup.get("poison_threshold", 2))
    if poison_threshold < 1:
        raise bad(f"poison_threshold must be >= 1, got {poison_threshold}")
    specs = []
    for app in apps:
        for mode in modes:
            for overrides in input_sets:
                if not isinstance(overrides, dict):
                    raise bad(f"input set {overrides!r} is not a dict")
                merged = dict(common)
                merged.update(overrides)
                for nprocs in nprocs_list:
                    for plan in plans:
                        specs.append(
                            RunSpec(
                                app=app,
                                mode=mode,
                                nprocs=nprocs,
                                inputs=tuple(sorted(merged.items())),
                                seed=seed,
                                fault_plan=plan,
                                timeout=timeout,
                            )
                        )
    ids = [s.run_id for s in specs]
    if len(set(ids)) != len(ids):
        raise bad("duplicate runs in the grid (identical spec cells)")
    return CampaignConfig(
        name=str(grid.get("name", "campaign")),
        machine=str(grid.get("machine", "IBM-SP")),
        specs=specs,
        calib_procs=grid.get("calib_procs"),
        max_events=budgets.get("max_events"),
        max_virtual_time=budgets.get("max_virtual_time"),
        max_wall_seconds=budgets.get("max_wall_seconds"),
        retries=int(grid.get("retries", 0)),
        backoff=float(grid.get("backoff", 0.1)),
        retry_policy=retry,
        supervise=bool(sup.get("supervise", True)),
        heartbeat_timeout=(
            float(sup["heartbeat_timeout"])
            if sup.get("heartbeat_timeout") is not None else
            (None if "heartbeat_timeout" in sup else 30.0)
        ),
        poison_threshold=poison_threshold,
        checkpoint_interval=(
            int(sup["checkpoint_interval"])
            if sup.get("checkpoint_interval") else None
        ),
    )


# -- journal records -----------------------------------------------------------


@dataclass
class RunRecord:
    """One journaled run outcome (the unit of checkpointing)."""

    run_id: str
    index: int
    outcome: str  # one of OUTCOMES
    attempts: int
    elapsed: float | None = None
    stats: dict | None = None
    error: str | None = None
    budget_kind: str | None = None
    flight: dict | None = None  # flight-recorder dump, on failed runs
    cursor: dict | None = None  # last heartbeat/checkpoint cursor (hung/poison)
    capsule: dict | None = None  # transient: journaled to telemetry.jsonl, not here

    def to_json(self) -> dict:
        doc = {
            "type": "run",
            "run_id": self.run_id,
            "index": self.index,
            "outcome": self.outcome,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "stats": self.stats,
            "error": self.error,
        }
        if self.budget_kind is not None:
            doc["budget_kind"] = self.budget_kind
        if self.flight is not None:
            doc["flight"] = self.flight
        if self.cursor is not None:
            doc["cursor"] = self.cursor
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> RunRecord:
        try:
            return cls(
                run_id=doc["run_id"],
                index=int(doc["index"]),
                outcome=doc["outcome"],
                attempts=int(doc["attempts"]),
                elapsed=doc.get("elapsed"),
                stats=doc.get("stats"),
                error=doc.get("error"),
                budget_kind=doc.get("budget_kind"),
                flight=doc.get("flight"),
                cursor=doc.get("cursor"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CampaignError(f"corrupt journal run record: {exc}") from None


@dataclass
class CampaignReport:
    """What one :meth:`CampaignRunner.execute` call did and found."""

    config: CampaignConfig
    records: dict[str, RunRecord]  # run_id -> latest record
    executed: int  # runs executed in *this* invocation
    skipped: int  # runs skipped because the journal already had them ok
    interrupted: bool = False  # a signal stopped the campaign
    stopped: bool = False  # --max-runs stopped it early (smoke / incremental)
    journal_path: Path | None = None
    results_path: Path | None = None

    @property
    def outcomes(self) -> dict[str, int]:
        counts = {o: 0 for o in OUTCOMES}
        for rec in self.records.values():
            counts[rec.outcome] = counts.get(rec.outcome, 0) + 1
        return counts

    @property
    def complete(self) -> bool:
        """Every grid cell has a journaled outcome."""
        return len(self.records) == len(self.config.specs)


def format_campaign_report(report: CampaignReport) -> str:
    """Human-readable campaign summary for the CLI."""
    cfg = report.config
    counts = report.outcomes
    lines = [
        f"Campaign: {cfg.name} ({len(cfg.specs)} runs on {cfg.machine}, "
        f"config {cfg.config_hash})"
    ]
    lines.append(
        f"  executed {report.executed}, skipped {report.skipped} already-complete"
    )
    summary = ", ".join(f"{counts[o]} {o}" for o in OUTCOMES if counts.get(o))
    lines.append(f"  outcomes: {summary or 'none'}")
    if report.interrupted or report.stopped:
        done = len(report.records)
        why = "INTERRUPTED" if report.interrupted else "STOPPED (--max-runs)"
        lines.append(
            f"  {why} after {done}/{len(cfg.specs)} runs — "
            f"re-run with --resume to continue"
        )
    elif report.results_path is not None:
        lines.append(f"  results written to {report.results_path}")
    return "\n".join(lines)


# -- the runner ----------------------------------------------------------------


class CampaignRunner:
    """Execute a :class:`CampaignConfig` with journaling and budgets.

    Parameters
    ----------
    config:
        The expanded campaign.
    out_dir:
        Output directory; holds the journal (``campaign.journal.jsonl``)
        and, once the campaign completes, ``results.csv``.
    resolver:
        ``resolver(app_name) -> (program, default_inputs_fn)`` where
        ``default_inputs_fn(nprocs)`` returns the app's baseline inputs.
        Defaults to the CLI's application registry.
    sleep:
        Injection point for the backoff sleep (tests pass a no-op).
    telemetry:
        Capture a :class:`~repro.obs.capsule.TelemetryCapsule` per run
        (spans, metrics, stats, flight dump) and journal it to
        ``telemetry.jsonl``; on completion, fuse the capsules into the
        merged ``campaign.perfetto.json`` timeline.
    progress:
        ``progress(spec, record, done, total)`` called after every
        journaled run (completion order).  Drives ``--live``.
    """

    def __init__(self, config: CampaignConfig, out_dir: str | Path,
                 resolver=None, sleep=time.sleep, telemetry: bool = False,
                 progress=None, checkpoint_dir: str | Path | None = None):
        self.config = config
        self.out_dir = Path(out_dir)
        self.resolver = resolver if resolver is not None else _cli_resolver
        self.sleep = sleep
        self.telemetry = telemetry
        self.progress = progress
        # replay-cursor checkpoints: supervised workers receive the dir
        # explicitly (their out_dir is the null device); the sequential
        # parent derives it from out_dir when checkpointing is on
        if checkpoint_dir is not None:
            self.checkpoint_dir: Path | None = Path(checkpoint_dir)
        elif config.checkpoint_interval and str(out_dir) != os.devnull:
            self.checkpoint_dir = self.out_dir / CHECKPOINT_DIR_NAME
        else:
            self.checkpoint_dir = None
        self._workflows: dict[tuple, ModelingWorkflow] = {}
        self._warm_pending: dict[tuple, tuple[str, str]] = {}
        self._stop_signal: int | None = None
        # compiled-backend warm start: point the kernel cache at the
        # store's warm/ directory so lowering is skipped for programs
        # any earlier process (or a resumed campaign) already compiled
        if config.warm_dir and config.backend in ("compiled", "auto"):
            from ..kernel import set_warm_dir

            set_warm_dir(config.warm_dir)

    @property
    def journal_path(self) -> Path:
        return self.out_dir / JOURNAL_NAME

    @property
    def results_path(self) -> Path:
        return self.out_dir / RESULTS_NAME

    @property
    def telemetry_path(self) -> Path:
        return self.out_dir / TELEMETRY_NAME

    @property
    def merged_perfetto_path(self) -> Path:
        return self.out_dir / MERGED_PERFETTO_NAME

    # -- journal ----------------------------------------------------------------
    def _open_journal(self, resume: bool) -> tuple[AtomicJournal, dict[str, RunRecord]]:
        """Load or create the journal; return it plus completed records."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        journal = AtomicJournal(self.journal_path)
        if not len(journal):
            if resume and not journal.exists():
                _log.warning(
                    "--resume requested but no journal at %s; starting fresh",
                    self.journal_path,
                )
            # fresh campaign: a telemetry stream left by an earlier journal
            # would pollute the merged timeline with foreign runs
            self.telemetry_path.unlink(missing_ok=True)
            self.merged_perfetto_path.unlink(missing_ok=True)
            journal.append(
                {
                    "type": "campaign",
                    "version": _JOURNAL_VERSION,
                    "name": self.config.name,
                    "config_hash": self.config.config_hash,
                    "total_runs": len(self.config.specs),
                }
            )
            return journal, {}
        if not resume:
            raise CampaignError(
                f"journal {self.journal_path} already exists; "
                f"pass --resume to continue it or choose a new --out directory"
            )
        try:
            records = journal.records()
        except ValueError as exc:
            raise CampaignError(str(exc)) from None
        header = records[0]
        if header.get("type") != "campaign" or "config_hash" not in header:
            raise CampaignError(
                f"journal {self.journal_path} has no campaign header; "
                f"it was not written by 'repro campaign'"
            )
        if header.get("version") != _JOURNAL_VERSION:
            raise CampaignError(
                f"journal {self.journal_path} has unsupported version "
                f"{header.get('version')!r}"
            )
        if header["config_hash"] != self.config.config_hash:
            raise CampaignError(
                f"journal {self.journal_path} belongs to a different campaign "
                f"(journal config {header['config_hash']}, "
                f"grid config {self.config.config_hash}); "
                f"refusing to mix results"
            )
        known = {s.run_id for s in self.config.specs}
        done: dict[str, RunRecord] = {}
        for doc in records[1:]:
            if doc.get("type") != "run":
                continue  # interruption markers and future record types
            rec = RunRecord.from_json(doc)
            if rec.run_id not in known:
                raise CampaignError(
                    f"journal {self.journal_path} records run {rec.run_id} "
                    f"which is not in this grid (config hash collision?)"
                )
            done[rec.run_id] = rec  # last record for a run wins
        return journal, done

    # -- execution --------------------------------------------------------------
    def execute(self, resume: bool = False, max_runs: int | None = None,
                jobs: int = 1) -> CampaignReport:
        """Run every pending grid cell; checkpoint each outcome.

        *resume* replays an existing journal (config-hash-checked) and
        skips runs already completed ``ok``.  *max_runs* bounds how many
        runs this invocation executes (smoke tests, incremental fills);
        stopping early is reported like an interruption so ``--resume``
        picks up the rest.  *jobs* > 1 fans pending cells across worker
        processes; every artifact (journal records, ``results.csv``) is
        identical to a sequential run because outputs are derived from
        spec order, never completion order.
        """
        from .parallel import resolve_jobs

        jobs = resolve_jobs(jobs)
        journal, done = self._open_journal(resume)
        skipped = sum(
            1 for rec in done.values() if rec.outcome in TERMINAL_OUTCOMES
        )
        records: dict[str, RunRecord] = dict(done)
        executed = 0
        interrupted = False
        stopped = False
        with TRACER.span("campaign", campaign=self.config.name, runs=len(self.config.specs)):
            try:
                with _signal_trap(self):
                    if jobs > 1:
                        executed, stopped = self._execute_parallel(
                            journal, records, max_runs, jobs
                        )
                    else:
                        for index, spec in enumerate(self.config.specs):
                            prior = records.get(spec.run_id)
                            if prior is not None and prior.outcome in TERMINAL_OUTCOMES:
                                continue  # journaled terminal: already done
                            if max_runs is not None and executed >= max_runs:
                                stopped = True
                                break
                            if prior is not None:
                                _log.info(
                                    "re-running %s (%s last time)",
                                    spec.describe(), prior.outcome,
                                )
                            rec = self.run_one(spec, index)
                            self._commit(journal, records, spec, rec)
                            executed += 1
            except CampaignInterrupted as exc:
                interrupted = True
                journal.append(
                    {
                        "type": "interrupted",
                        "signal": exc.signum,
                        "completed": len(records),
                        "pending": len(self.config.specs) - len(records),
                    }
                )
                _log.warning(
                    "campaign interrupted by signal %d after %d/%d runs; "
                    "journal is consistent at %s",
                    exc.signum, len(records), len(self.config.specs), self.journal_path,
                )
        report = CampaignReport(
            config=self.config,
            records=records,
            executed=executed,
            skipped=skipped,
            interrupted=interrupted,
            stopped=stopped,
            journal_path=self.journal_path,
        )
        if report.complete and not interrupted and not stopped:
            self._write_results(records)
            report.results_path = self.results_path
            if self.telemetry:
                self._write_merged_telemetry()
        return report

    def _commit(self, journal: AtomicJournal, records: dict[str, RunRecord],
                spec: RunSpec, rec: RunRecord) -> None:
        """Journal one finished run: record, capsule, progress callback."""
        journal.append(rec.to_json())
        records[spec.run_id] = rec
        if rec.capsule is not None:
            append_jsonl(self.telemetry_path, rec.capsule)
        if self.progress is not None:
            self.progress(spec, rec, len(records), len(self.config.specs))

    def _write_merged_telemetry(self) -> None:
        """Fuse journaled capsules into the merged Perfetto timeline.

        Resumed/re-run cells may have journaled several capsules for one
        run_id; the latest wins, matching the journal's last-record-wins
        rule.  Best-effort: a failure to merge never fails the campaign
        (results.csv is already on disk)."""
        from ..obs.capsule import load_capsules
        from ..obs.merge import write_merged_perfetto

        try:
            capsules = load_capsules(self.telemetry_path)
        except ValueError as exc:
            _log.warning("cannot read telemetry journal: %s", exc)
            return
        latest = {cap.run_id: cap for cap in capsules}
        ordered = [
            latest[s.run_id] for s in self.config.specs if s.run_id in latest
        ]
        if not ordered:
            return
        write_merged_perfetto(
            self.merged_perfetto_path, ordered,
            meta={"campaign": self.config.name,
                  "config_hash": self.config.config_hash},
        )
        _log.info("merged telemetry timeline written to %s",
                  self.merged_perfetto_path)

    def _execute_parallel(self, journal: AtomicJournal,
                          records: dict[str, RunRecord],
                          max_runs: int | None, jobs: int) -> tuple[int, bool]:
        """Fan pending cells across worker processes.

        Workers rebuild their own runner from the (picklable) config and
        execute single cells via :meth:`run_one`; the parent
        journals records as they complete.  Journal *order* may differ
        from a sequential run, but the record set — and therefore
        ``results.csv``, which is rebuilt in spec order — is identical:
        each cell's outcome depends only on its spec and seed.
        """
        pending: list[tuple[int, RunSpec]] = []
        for index, spec in enumerate(self.config.specs):
            prior = records.get(spec.run_id)
            if prior is not None and prior.outcome in TERMINAL_OUTCOMES:
                continue
            pending.append((index, spec))
        stopped = False
        if max_runs is not None and len(pending) > max_runs:
            pending = pending[:max_runs]
            stopped = True
        if not pending:
            return 0, stopped
        for _, spec in pending:
            prior = records.get(spec.run_id)
            if prior is not None:
                _log.info("re-running %s (%s last time)", spec.describe(), prior.outcome)

        def on_record(spec: RunSpec, rec: RunRecord) -> None:
            self._commit(journal, records, spec, rec)
            if METRICS.enabled:
                METRICS.counter(
                    "campaign_runs_total", "campaign runs by outcome"
                ).inc(outcome=rec.outcome, app=spec.app, mode=spec.mode)

        if self.config.supervise:
            from .supervisor import run_supervised

            executed = run_supervised(
                self.config, pending, jobs, on_record,
                resolver=self.resolver, sleep=self.sleep,
                telemetry=self.telemetry,
                checkpoint_dir=(
                    self.out_dir / CHECKPOINT_DIR_NAME
                    if self.config.checkpoint_interval else None
                ),
                quarantine_dir=self.out_dir / QUARANTINE_DIR_NAME,
                inline_run=self.run_one,
            )
            return executed, stopped

        from .parallel import WorkerPoolError, run_campaign_cells

        try:
            executed = run_campaign_cells(
                self.config, pending, jobs, on_record,
                resolver=self.resolver, sleep=self.sleep,
                telemetry=self.telemetry,
            )
        except WorkerPoolError as exc:
            in_flight = ", ".join(exc.run_ids) if exc.run_ids else "unknown"
            raise CampaignError(
                f"a campaign worker process died unexpectedly ({exc.cause}); "
                f"runs in flight: {in_flight}; "
                f"completed runs are journaled — re-run with --resume"
            ) from None
        return executed, stopped

    def _execute_one(self, spec: RunSpec, index: int) -> RunRecord:
        """One grid cell, optionally captured into a telemetry capsule.

        With telemetry off this is exactly :meth:`_run_attempts`.  With
        it on, the attempt loop runs inside :class:`capture_run` (fresh
        tracer/metrics state, restored afterwards) with the flight
        recorder armed; the finished capsule rides back to the parent on
        the record's transient ``capsule`` field — dict, not dataclass,
        so it pickles cheaply out of pool workers.
        """
        if not self.telemetry:
            rec = self._run_attempts(spec, index)
            if self.config.warm_dir:
                self._save_warm(spec)
            return rec
        from ..obs.capsule import capture_run

        with capture_run(
            spec.run_id, app=spec.app, mode=spec.mode, nprocs=spec.nprocs,
            seed=spec.seed,
        ) as cap:
            FLIGHT.enable()
            try:
                rec = self._run_attempts(spec, index)
            finally:
                FLIGHT.disable()
        if self.config.warm_dir:
            self._save_warm(spec)
        capsule = cap.finish(
            outcome=rec.outcome, stats=rec.stats, elapsed=rec.elapsed,
            flight=rec.flight,
        )
        rec.capsule = {"type": "capsule", **capsule.to_json()}
        return rec

    def _run_attempts(self, spec: RunSpec, index: int) -> RunRecord:
        """One grid cell: budgets, bounded retry, outcome classification.

        With checkpointing armed, the run writes periodic replay cursors
        to ``checkpoints/<run_id>.json``; a cursor left behind by a
        killed/preempted attempt fast-forwards this one — the replayed
        prefix is verified against the cursor (determinism is the
        contract) and the wall budget is credited with the wall time the
        dead attempt had genuinely spent.  A cursor that does not replay
        is discarded and the run restarts once from zero.
        """
        ck_path, resume_from = self._load_cursor(spec)
        attempts = 0
        replay_retried = False
        while True:
            attempts += 1
            mismatch = None
            with TRACER.span(
                "campaign.run", app=spec.app, mode=spec.mode, nprocs=spec.nprocs,
                run_id=spec.run_id, attempt=attempts,
            ) as span:
                try:
                    if ck_path is not None:
                        CHECKPOINT.configure(
                            ck_path, run_id=spec.run_id,
                            config_hash=self.config.config_hash,
                            seed=spec.seed,
                            interval_events=self.config.checkpoint_interval,
                            resume_from=resume_from,
                        )
                        CHECKPOINT.enable()
                    try:
                        result = (
                            self._simulate(
                                spec, wall_credit=resume_from.wall_seconds)
                            if resume_from is not None
                            else self._simulate(spec)
                        )
                        if ck_path is not None and CHECKPOINT.verifying:
                            raise CheckpointMismatchError(
                                f"run {spec.run_id} finished before reaching "
                                f"its checkpointed cursor "
                                f"(event {resume_from.events})"
                            )
                    finally:
                        if ck_path is not None:
                            CHECKPOINT.disable()
                except CheckpointMismatchError as exc:
                    mismatch = exc
                    outcome, error, stats, elapsed, bkind = (
                        "error", f"{type(exc).__name__}: {_first_line(exc)}",
                        None, None, None)
                    fdump = FLIGHT.dump(error=error) if FLIGHT.enabled else None
                except DeadlockError as exc:
                    outcome, error, stats, elapsed, bkind = (
                        "deadlock", _first_line(exc), None, None, None)
                    fdump = exc.flight
                except BudgetExceededError as exc:
                    outcome = "timeout" if exc.kind == "wall_time" else "budget"
                    error = _first_line(exc)
                    stats = exc.stats.to_dict() if exc.stats is not None else None
                    elapsed, bkind = None, exc.kind
                    fdump = exc.flight
                except CampaignInterrupted:
                    raise
                except Exception as exc:  # transient / unexpected: retryable
                    outcome, error, stats, elapsed, bkind = (
                        "error", f"{type(exc).__name__}: {_first_line(exc)}",
                        None, None, None)
                    fdump = FLIGHT.dump(error=error) if FLIGHT.enabled else None
                else:
                    outcome, error, bkind, fdump = "ok", None, None, None
                    stats = result.stats.to_dict()
                    elapsed = result.elapsed
                    span.set_virtual(0.0, elapsed)
                span.set(outcome=outcome)
            if mismatch is not None and not replay_retried:
                # a divergent replay is a bad checkpoint, not a bad run:
                # discard the cursor and restart once from zero without
                # consuming a campaign retry
                replay_retried = True
                attempts -= 1
                resume_from = None
                ck_path.unlink(missing_ok=True)
                _log.warning(
                    "checkpoint for %s did not replay (%s); restarting from zero",
                    spec.describe(), _first_line(mismatch),
                )
                continue
            if METRICS.enabled:
                METRICS.counter(
                    "campaign_runs_total", "campaign runs by outcome"
                ).inc(outcome=outcome, app=spec.app, mode=spec.mode)
            if outcome == "error" and attempts <= self.config.retries:
                delay = self.config.backoff * (2 ** (attempts - 1))
                _log.warning(
                    "run %s failed (%s); retry %d/%d in %.3gs",
                    spec.describe(), error, attempts, self.config.retries, delay,
                )
                self.sleep(delay)
                continue
            if outcome != "ok":
                _log.warning("run %s finished %s: %s", spec.describe(), outcome, error)
            else:
                _log.info("run %s ok: elapsed %.6gs", spec.describe(), elapsed)
            if ck_path is not None:
                # the journal record supersedes the cursor; a stale
                # cursor left behind would fast-forward a future re-run
                # of a *failed* outcome against the wrong attempt
                ck_path.unlink(missing_ok=True)
            return RunRecord(
                run_id=spec.run_id, index=index, outcome=outcome,
                attempts=attempts, elapsed=elapsed, stats=stats, error=error,
                budget_kind=bkind, flight=fdump,
            )

    def _load_cursor(self, spec: RunSpec):
        """The checkpoint path for *spec* plus a validated resume cursor.

        Returns ``(None, None)`` with checkpointing off.  A cursor whose
        identity (run, config hash, seed) does not match is a crash
        artifact from another campaign — discarded, never trusted.
        """
        if self.checkpoint_dir is None or not self.config.checkpoint_interval:
            return None, None
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        ck_path = self.checkpoint_dir / f"{spec.run_id}.json"
        cursor = load_checkpoint(ck_path)
        if cursor is not None and (
                cursor.run_id != spec.run_id
                or cursor.config_hash != self.config.config_hash
                or cursor.seed != spec.seed):
            _log.warning("discarding foreign checkpoint %s", ck_path)
            ck_path.unlink(missing_ok=True)
            cursor = None
        if cursor is not None:
            _log.info(
                "fast-forwarding %s from checkpoint cursor "
                "(%d events, t=%.6g, %.3gs wall credited)",
                spec.describe(), cursor.events, cursor.virtual_time,
                cursor.wall_seconds,
            )
        return ck_path, cursor

    def _simulate(self, spec: RunSpec, wall_credit: float = 0.0):
        """Dispatch one spec to the right estimator with budgets applied.

        *wall_credit* extends the wall budget by the seconds a killed
        previous attempt already spent (replay-cursor fast-forward must
        re-execute the prefix without double-charging it).
        """
        cfg = self.config
        wf = self._workflow_for(spec)
        inputs = self._resolved_inputs(spec)
        budget_kw = {}
        if cfg.max_events is not None:
            budget_kw["max_events"] = cfg.max_events
        if cfg.max_virtual_time is not None:
            budget_kw["max_virtual_time"] = cfg.max_virtual_time
        if cfg.max_wall_seconds is not None:
            budget_kw["max_wall_seconds"] = cfg.max_wall_seconds + wall_credit
        if spec.fault_plan is not None:
            plan = FaultPlan.from_dict(json.loads(spec.fault_plan))
            retry = (
                RetryPolicy(**json.loads(cfg.retry_policy))
                if cfg.retry_policy is not None else None
            )
            mode = {"de": ExecMode.DE, "am": ExecMode.AM,
                    "measured": ExecMode.MEASURED}[spec.mode]
            return wf.run_faulty(
                inputs, spec.nprocs, plan=plan, retry=retry, mode=mode,
                timeout=spec.timeout, seed=spec.seed, **budget_kw,
            )
        if spec.timeout is not None:
            budget_kw["default_timeout"] = spec.timeout
        if spec.mode == "de":
            return wf.run_de(inputs, spec.nprocs, **budget_kw)
        if spec.mode == "am":
            return wf.run_am(inputs, spec.nprocs, **budget_kw)
        return wf.run_measured(inputs, spec.nprocs, seed=spec.seed, **budget_kw)

    def run_one(self, spec: RunSpec, index: int = 0) -> RunRecord:
        """Execute one request inline and return its record.

        The public single-run entry point used by the parallel workers,
        the serving layer's batch callback path and
        :func:`execute_request`; applies the same budgets, retries and
        outcome classification as a full campaign.
        """
        return self._execute_one(spec, index)

    def _calib_key(self, spec: RunSpec) -> tuple:
        """The calibration-group key for *spec* (see :meth:`_workflow_for`).

        In serving mode the key carries the effective calibration
        nprocs, so the choice of calibration is a pure function of
        (spec, context) — never of which other specs share the batch.
        """
        if self.config.calib_from_spec:
            return (spec.app, spec.seed, spec.inputs,
                    self.config.calib_procs or min(spec.nprocs, 16))
        return (spec.app, spec.seed)

    def _workflow_for(self, spec: RunSpec) -> ModelingWorkflow:
        """One cached ModelingWorkflow per calibration group.

        Grid semantics (the default): the calibration configuration is
        a pure function of the grid, never of execution order — the
        *first* grid cell with this (app, seed) supplies the
        calibration nprocs and inputs.  A resumed campaign — where
        completed runs are skipped, so a different spec reaches here
        first — therefore calibrates identically to an uninterrupted
        one, preserving the bit-identical-resume guarantee for
        calibrating modes (am, measured).

        Serving semantics (``calib_from_spec=True``): each run
        calibrates from its *own* spec, so its result is a pure
        function of (request, context) regardless of which other cells
        share the batch — the invariant the content-addressed store
        relies on.  The group key therefore includes the *effective*
        calibration nprocs (which defaults from ``spec.nprocs`` when
        the context pins no ``calib_procs``): two cells differing only
        in nprocs must never share one calibration, or the stored
        result would depend on batch composition.  With ``warm_dir``
        set, a stored calibration for the group is loaded instead of
        measured, and a freshly measured one is saved back after the
        run (atomic writes; a concurrent saver writes identical
        bytes).
        """
        key = self._calib_key(spec)
        wf = self._workflows.get(key)
        if wf is None:
            base = spec if self.config.calib_from_spec else next(
                s for s in self.config.specs
                if s.app == spec.app and s.seed == spec.seed
            )
            calib_procs = self.config.calib_procs or min(base.nprocs, 16)
            program, default_inputs = self.resolver(spec.app)
            calib = default_inputs(calib_procs)
            calib.update(dict(base.inputs))
            wf = ModelingWorkflow(
                program, get_machine(self.config.machine),
                calib_inputs=calib, calib_nprocs=calib_procs, seed=spec.seed,
                backend=self.config.backend,
            )
            if self.config.warm_dir:
                self._try_warm_start(key, wf, spec.app)
            self._workflows[key] = wf
        return wf

    # -- warm start (serving): stored calibrations skip the measurement run --
    def _try_warm_start(self, key, wf: ModelingWorkflow, app: str) -> None:
        from ..store import load_warm_calibration, warm_calibration_key

        wkey = warm_calibration_key(
            app=app, machine=self.config.machine,
            calib_nprocs=wf.calib_nprocs, calib_inputs=wf.calib_inputs,
            seed=wf.seed,
        )
        cal = load_warm_calibration(self.config.warm_dir, wkey, program=app)
        if cal is not None:
            wf.prime(calibration=cal)
            _log.info("warm start: calibration %s loaded for %s", wkey, app)
        else:
            self._warm_pending[key] = (wkey, app)

    def _save_warm(self, spec: RunSpec) -> None:
        """Persist a freshly measured calibration for future warm starts."""
        key = self._calib_key(spec)
        pending = self._warm_pending.get(key)
        if pending is None:
            return
        wf = self._workflows.get(key)
        if wf is None or wf.calibration is None:
            return  # the run never calibrated (de mode); keep pending
        from ..store import save_warm_calibration

        wkey, app = pending
        try:
            save_warm_calibration(self.config.warm_dir, wkey, wf.calibration)
        except OSError as exc:  # warm cache is an optimization, never fatal
            _log.warning("cannot save warm calibration %s: %s", wkey, exc)
        del self._warm_pending[key]
        _log.info("warm start: calibration %s saved for %s", wkey, app)

    def _resolved_inputs(self, spec: RunSpec) -> dict[str, float]:
        _, default_inputs = self.resolver(spec.app)
        inputs = default_inputs(spec.nprocs)
        inputs.update(dict(spec.inputs))
        return inputs

    # -- the results artifact ----------------------------------------------------
    def _write_results(self, records: dict[str, RunRecord]) -> None:
        """Write ``results.csv`` atomically from the journal records.

        Derived purely from spec order + journal contents, so a resumed
        campaign writes a byte-identical file to an uninterrupted one.
        """
        import csv

        stat_cols = [
            "total_events", "total_messages", "total_bytes", "total_host_cost",
            "total_retries", "total_timeouts", "total_messages_lost",
            "total_send_failures",
        ]
        with atomic_write(self.results_path, newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["run_id", "app", "mode", "nprocs", "inputs", "fault_plan",
                 "seed", "outcome", "attempts", "elapsed_s", "error"] + stat_cols
            )
            for spec in self.config.specs:
                rec = records[spec.run_id]
                stats = rec.stats or {}
                writer.writerow(
                    [
                        spec.run_id, spec.app, spec.mode, spec.nprocs,
                        _canonical(dict(spec.inputs)), spec.fault_plan or "",
                        spec.seed, rec.outcome, rec.attempts,
                        repr(rec.elapsed) if rec.elapsed is not None else "",
                        rec.error or "",
                    ]
                    + [stats.get(c, "") for c in stat_cols]
                )


def _first_line(exc: BaseException) -> str:
    return str(exc).splitlines()[0] if str(exc) else type(exc).__name__


def execute_request(
    request: RunRequest,
    machine: str = "IBM-SP",
    *,
    calib_procs: int | None = None,
    max_events: int | None = None,
    max_virtual_time: float | None = None,
    max_wall_seconds: float | None = None,
    retries: int = 0,
    retry_policy: str | None = None,
    resolver=None,
    warm_dir: str | None = None,
    backend: str | None = None,
) -> RunRecord:
    """Execute one :class:`repro.api.RunRequest` inline, no journal.

    Single-cell campaign semantics: the run calibrates from its own
    spec (``calib_from_spec``), runs under the given budgets with
    bounded retry, and comes back as a classified :class:`RunRecord`.
    This is the local-execution path behind ``repro query`` and the
    serving layer's cache misses — results are pure functions of
    (request, machine, calib_procs, budgets), which is what makes them
    safe to memoize in the content-addressed store.
    """
    config = CampaignConfig(
        name="adhoc",
        machine=machine,
        specs=[request],
        calib_procs=calib_procs,
        max_events=max_events,
        max_virtual_time=max_virtual_time,
        max_wall_seconds=max_wall_seconds,
        retries=retries,
        retry_policy=retry_policy,
        calib_from_spec=True,
        warm_dir=warm_dir,
        backend=backend,
    )
    runner = CampaignRunner(config, out_dir=os.devnull, resolver=resolver)
    return runner.run_one(request, 0)


def _cli_resolver(app: str):
    """Default application resolver: the CLI registry (lazy import)."""
    from ..cli import APPS  # deferred: cli imports workflow at module load

    try:
        builder, default_inputs = APPS[app]
    except KeyError:
        raise CampaignError(
            f"unknown app {app!r} in grid; run 'python -m repro apps'"
        ) from None
    return builder(), default_inputs


class _signal_trap:
    """Install SIGINT/SIGTERM handlers that raise :class:`CampaignInterrupted`.

    Restores the previous handlers on exit.  Off the main thread (or on
    platforms without these signals) it degrades to a no-op — campaigns
    then stop only between runs via ``max_runs``.
    """

    def __init__(self, runner: CampaignRunner):
        self.runner = runner
        self._old: dict[int, object] = {}

    def __enter__(self):
        if threading.current_thread() is not threading.main_thread():
            return self

        def handler(signum, frame):
            raise CampaignInterrupted(signum)

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old[sig] = signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
        return self

    def __exit__(self, *exc):
        for sig, old in self._old.items():
            signal.signal(sig, old)
        return False
