"""Parallel run executor: fan independent simulation runs across processes.

The simulation kernel is single-threaded by design (one global event
heap), but the *experiments* built on top of it are embarrassingly
parallel: campaign grid cells, validation-sweep points and repeated
calibration runs share nothing except read-only configuration.  This
module fans such independent runs across a ``ProcessPoolExecutor``.

Design rules (the determinism contract, see docs/robustness.md):

* **Workers rebuild, parents aggregate.**  Programs are not picklable
  (``nas_sp`` closes over numpy state), so a worker never receives live
  objects — it receives the *recipe* (:class:`WorkflowSpec`, or a
  :class:`~repro.workflow.campaign.CampaignConfig`) and rebuilds its own
  workflow once per process, caching it in a module global.
* **Completion order never shapes results.**  Parents journal records
  in completion order but derive every artifact (``results.csv``,
  validation series) in *spec order*, so ``--jobs 4`` output is
  byte-identical to ``--jobs 1``.
* **Every run is seeded by its spec, not by execution order.**  The
  engine is deterministic under a fixed seed, so the same cell computes
  the same record no matter which worker runs it, or when.
* **Workers ignore SIGINT.**  Only the parent traps signals; it cancels
  pending work and leaves the journal a consistent prefix.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

__all__ = [
    "resolve_jobs",
    "WorkflowSpec",
    "WorkerPoolError",
    "run_campaign_cells",
    "run_validation_points",
    "calibrate_many",
]


class WorkerPoolError(RuntimeError):
    """The bare process pool broke under us (a worker died).

    Carries the ``run_ids`` that were in flight when the pool failed so
    the campaign's one-line error can say exactly which cells were
    abandoned, and ``cause`` — the underlying pool failure text.  Only
    raised on the unsupervised (``supervise=False``) path; the
    supervised pool retries and degrades instead
    (:mod:`repro.workflow.supervisor`).
    """

    def __init__(self, cause: str, run_ids: list[str]):
        ids = ", ".join(run_ids) if run_ids else "unknown"
        super().__init__(f"{cause} (runs in flight: {ids})")
        self.cause = cause
        self.run_ids = run_ids


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


@dataclass(frozen=True)
class WorkflowSpec:
    """Picklable recipe for a :class:`~repro.workflow.ModelingWorkflow`.

    Carries only names and numbers; :meth:`build` resolves them against
    the application registry and machine presets inside the worker.
    """

    app: str
    machine: str
    calib_nprocs: int
    overrides: tuple[tuple[str, float], ...] = ()
    seed: int = 0
    backend: str | None = None  # simulation kernel; results identical either way

    def build(self):
        from ..cli import APPS
        from ..machine import get_machine
        from .pipeline import ModelingWorkflow

        try:
            builder, default_inputs = APPS[self.app]
        except KeyError:
            raise ValueError(f"unknown app {self.app!r}") from None
        calib = default_inputs(self.calib_nprocs)
        calib.update(dict(self.overrides))
        return ModelingWorkflow(
            builder(), get_machine(self.machine),
            calib_inputs=calib, calib_nprocs=self.calib_nprocs, seed=self.seed,
            backend=self.backend,
        )


# -- worker-process state ------------------------------------------------------
# One rebuild per worker process, then reuse: the calibration and the
# compiled program are the expensive parts, and they are pure functions
# of the recipe, so caching them per process cannot change results.

_STATE: dict = {}


def _quiet_worker() -> None:
    """Common worker setup: leave interrupts to the parent, and do not
    accumulate observability state nobody will ever collect."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    from ..obs.metrics import METRICS
    from ..obs.spans import TRACER

    TRACER.disable()
    METRICS.disable()


def _campaign_init(config, resolver, sleep, telemetry=False) -> None:
    _quiet_worker()
    from .campaign import CampaignRunner

    # telemetry=True makes run_one capture each run into a capsule
    # (fresh per-run tracer/metrics state inside the otherwise-quiet
    # worker); the capsule rides back to the parent on the record
    _STATE["runner"] = CampaignRunner(
        config, out_dir=os.devnull, resolver=resolver, sleep=sleep,
        telemetry=telemetry,
    )


def _campaign_cell(index: int, spec):
    """Execute one grid cell in a worker; return its RunRecord."""
    return _STATE["runner"].run_one(spec, index)


def _workflow_init(spec: WorkflowSpec) -> None:
    _quiet_worker()
    _STATE["workflow"] = spec.build()


def _validation_point(i: int, inputs: dict, nprocs: int,
                      include_de: bool, label: str):
    from .validation import _run_point

    return _run_point(_STATE["workflow"], i, inputs, nprocs, include_de, label)


def _calibration_run(seed: int) -> dict:
    from ..measure import measure_wparams

    wf = _STATE["workflow"]
    cal = measure_wparams(
        wf.program, wf.calib_inputs, wf.calib_nprocs, wf.machine, seed
    )
    # BranchProfile is process-local detail; ship only the numbers
    return {"seed": seed, "wparams": cal.wparams, "elapsed": cal.elapsed}


# -- parent-side drivers -------------------------------------------------------


def run_campaign_cells(config, pending, jobs, on_record,
                       resolver=None, sleep=None, telemetry=False):
    """Fan *pending* ``(index, spec)`` cells across *jobs* workers.

    ``on_record(spec, record)`` is called in **completion order** — the
    campaign runner journals there; its ``results.csv`` is rebuilt in
    spec order afterwards, which is what makes parallel output
    byte-identical to sequential.  An interrupt raised while waiting is
    allowed to propagate after pending work is cancelled; a worker crash
    surfaces as :class:`WorkerPoolError` naming the run ids that were in
    flight.  *telemetry* arms per-run capsule capture inside the workers.
    """
    import time
    from concurrent.futures.process import BrokenProcessPool

    pool = ProcessPoolExecutor(
        max_workers=min(jobs, len(pending)),
        initializer=_campaign_init,
        initargs=(config, resolver,
                  sleep if sleep is not None else time.sleep, telemetry),
    )
    try:
        futures = {
            pool.submit(_campaign_cell, index, spec): spec
            for index, spec in pending
        }
        executed = 0
        for fut in as_completed(futures):
            rec = fut.result()
            on_record(futures[fut], rec)
            executed += 1
        pool.shutdown()
        return executed
    except BrokenProcessPool as exc:
        # in-flight = submitted but never produced a record (the pool
        # marks every pending future failed when it breaks); collect
        # before shutdown and report them by run id
        in_flight = sorted(
            spec.run_id for fut, spec in futures.items()
            if fut.cancelled() or not fut.done() or fut.exception() is not None
        )
        pool.shutdown(wait=False, cancel_futures=True)
        raise WorkerPoolError(str(exc) or type(exc).__name__, in_flight) from None
    except BaseException:
        # interrupt: cancel what has not started and abandon what has;
        # the journal already holds every completed record, so --resume
        # re-runs exactly the abandoned cells
        pool.shutdown(wait=False, cancel_futures=True)
        raise


def run_validation_points(spec: WorkflowSpec, configs, include_de,
                          labels, jobs: int):
    """All three estimators per config, fanned across workers.

    Returns points in **config order** regardless of completion order;
    each point's seed derives from its index (``seed + 101 + i``), so a
    point computes identically wherever it runs.
    """
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(configs)),
        initializer=_workflow_init, initargs=(spec,),
    ) as pool:
        futures = [
            pool.submit(
                _validation_point, i, inputs, nprocs, include_de,
                labels[i] if labels else str(nprocs),
            )
            for i, (inputs, nprocs) in enumerate(configs)
        ]
        return [f.result() for f in futures]


def calibrate_many(spec: WorkflowSpec, seeds, jobs: int | None = None) -> list[dict]:
    """Repeat the calibration run under different measurement seeds.

    Calibration repetitions quantify the w_i measurement noise the paper
    discusses in Sec. 4.2; each repetition is independent, so they fan
    out like any other sweep.  Returns one
    ``{"seed", "wparams", "elapsed"}`` dict per seed, in seed order.
    """
    seeds = list(seeds)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(seeds) <= 1:
        _workflow_init_local = spec.build()
        from ..measure import measure_wparams

        out = []
        for seed in seeds:
            cal = measure_wparams(
                _workflow_init_local.program, _workflow_init_local.calib_inputs,
                _workflow_init_local.calib_nprocs, _workflow_init_local.machine, seed,
            )
            out.append({"seed": seed, "wparams": cal.wparams, "elapsed": cal.elapsed})
        return out
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(seeds)),
        initializer=_workflow_init, initargs=(spec,),
    ) as pool:
        futures = [pool.submit(_calibration_run, seed) for seed in seeds]
        return [f.result() for f in futures]
