"""The Fig. 2 modeling workflow: compile → measure → simulate.

One :class:`ModelingWorkflow` object owns an application, a target
machine and a calibration configuration, and exposes the three
estimators the paper compares:

* :meth:`run_measured` — "direct program measurement" (ground truth);
* :meth:`run_de` — MPI-SIM-DE, the original direct-execution simulator;
* :meth:`run_am` — MPI-SIM-AM, the compiler-optimized simulator running
  the simplified program with the calibrated w_i.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen import CompiledProgram, compile_program
from ..ir.interp import make_factory
from ..ir.nodes import Program
from ..machine import MachineParams
from ..measure import Calibration, measure_wparams
from ..obs.logging import get_logger
from ..obs.spans import TRACER
from ..sim.engine import ExecMode, SimResult, Simulator
from ..sim.faults import FaultPlan, RetryPolicy

__all__ = ["ModelingWorkflow"]

_log = get_logger("workflow")


@dataclass
class ModelingWorkflow:
    """End-to-end modeling of one application on one machine."""

    program: Program
    machine: MachineParams
    calib_inputs: dict[str, float]
    calib_nprocs: int
    directives: dict[int, float] | None = None
    seed: int = 0
    #: simulation kernel for the estimators: "interpreted", "compiled" or
    #: "auto" (None = Simulator's default).  Results are byte-identical
    #: across backends; this only picks the execution strategy.
    backend: str | None = None

    def __post_init__(self):
        self._calibration: Calibration | None = None
        self._compiled: CompiledProgram | None = None

    # -- calibration ---------------------------------------------------------
    def calibrate(self) -> Calibration:
        """Run the timer-instrumented program at the calibration
        configuration (once; cached)."""
        if self._calibration is None:
            with TRACER.span(
                "workflow.calibrate", program=self.program.name, nprocs=self.calib_nprocs
            ):
                self._calibration = measure_wparams(
                    self.program, self.calib_inputs, self.calib_nprocs, self.machine, self.seed
                )
        return self._calibration

    @property
    def calibration(self) -> Calibration | None:
        """The cached calibration, or ``None`` if none has run yet."""
        return self._calibration

    def prime(self, calibration: Calibration | None = None,
              compiled: CompiledProgram | None = None) -> None:
        """Inject precomputed front-half artifacts (warm start).

        A primed calibration (and optionally the compiled program)
        skips the measurement run — the expensive front half of the
        Fig. 2 pipeline — entirely.  The caller vouches that the
        artifacts were produced for this exact (program, machine,
        calibration configuration, seed); the serving layer keys its
        warm cache by precisely that tuple.
        """
        if calibration is not None:
            self._calibration = calibration
        if compiled is not None:
            self._compiled = compiled

    @property
    def compiled(self) -> CompiledProgram:
        """The compiled application (branch profile from calibration)."""
        if self._compiled is None:
            cal = self.calibrate()
            with TRACER.span("workflow.compile", program=self.program.name):
                self._compiled = compile_program(
                    self.program, profile=cal.profile, directives=self.directives
                )
        return self._compiled

    @property
    def wparams(self) -> dict[str, float]:
        return self.calibrate().wparams

    # -- the three estimators ---------------------------------------------------
    def run_measured(
        self, inputs: dict[str, float], nprocs: int, seed: int | None = None, **kw
    ) -> SimResult:
        """Ground truth: the application on the (modelled) real machine."""
        kw.setdefault("backend", self.backend)
        factory = make_factory(self.program, inputs)
        with TRACER.span("workflow.simulate", mode="measured", nprocs=nprocs) as sp:
            result = Simulator(
                nprocs, factory, self.machine, mode=ExecMode.MEASURED,
                seed=self.seed + 1 if seed is None else seed, **kw
            ).run()
            sp.set_virtual(0.0, result.elapsed)
        return result

    def run_de(self, inputs: dict[str, float], nprocs: int, **kw) -> SimResult:
        """MPI-SIM-DE: direct execution + nominal communication model."""
        kw.setdefault("backend", self.backend)
        factory = make_factory(self.program, inputs)
        with TRACER.span("workflow.simulate", mode="de", nprocs=nprocs) as sp:
            result = Simulator(nprocs, factory, self.machine, mode=ExecMode.DE, **kw).run()
            sp.set_virtual(0.0, result.elapsed)
        return result

    def run_am(self, inputs: dict[str, float], nprocs: int, **kw) -> SimResult:
        """MPI-SIM-AM: the simplified program with calibrated w_i."""
        kw.setdefault("backend", self.backend)
        factory = make_factory(self.compiled.simplified, inputs, wparams=self.wparams)
        with TRACER.span("workflow.simulate", mode="am", nprocs=nprocs) as sp:
            result = Simulator(nprocs, factory, self.machine, mode=ExecMode.AM, **kw).run()
            sp.set_virtual(0.0, result.elapsed)
        return result

    # -- resilience what-ifs ------------------------------------------------------
    def run_faulty(
        self,
        inputs: dict[str, float],
        nprocs: int,
        plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        mode: ExecMode = ExecMode.DE,
        timeout: float | None = None,
        seed: int | None = None,
        **kw,
    ) -> SimResult:
        """Run one estimator under a fault plan (resilience what-if).

        *mode* picks the program the kernel executes: the application
        itself (DE / MEASURED) or the compiler-simplified program (AM,
        which calibrates on demand).  *timeout* is the kernel's default
        watchdog timeout for blocking sends/receives; *retry* models
        retransmission of lost / transiently failed messages.  May raise
        :class:`repro.sim.DeadlockError` carrying a
        :class:`repro.sim.DeadlockReport` when injected faults stall the
        application.
        """
        kw.setdefault("backend", self.backend)
        if mode is ExecMode.AM:
            factory = make_factory(self.compiled.simplified, inputs, wparams=self.wparams)
        else:
            factory = make_factory(self.program, inputs)
        _log.debug(
            "faulty run: program=%s mode=%s nprocs=%d plan=%s retry=%s",
            self.program.name, mode.value, nprocs, plan, retry,
        )
        with TRACER.span(
            "workflow.simulate", mode=mode.value, nprocs=nprocs, faulty=True
        ) as sp:
            result = Simulator(
                nprocs,
                factory,
                self.machine,
                mode=mode,
                seed=self.seed + 1 if seed is None else seed,
                faults=plan,
                retry=retry,
                default_timeout=timeout,
                **kw,
            ).run()
            sp.set_virtual(0.0, result.elapsed)
        return result
