"""Validation runner: measured vs MPI-SIM-DE vs MPI-SIM-AM.

Produces the data behind the paper's validation figures (Figs. 3–9):
for each configuration, the three estimators' predicted execution times
and the percentage errors of the simulators against direct measurement.

Also home of the fault-sweep runner: elapsed-time / resilience-counter
curves versus message-loss rate for one application under a
:class:`repro.sim.FaultPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.engine import DeadlockError, ExecMode
from ..sim.faults import FaultPlan, RetryPolicy
from .pipeline import ModelingWorkflow

__all__ = [
    "ValidationPoint",
    "ValidationSeries",
    "validate",
    "FaultSweepPoint",
    "FaultSweepSeries",
    "fault_sweep",
]


@dataclass(frozen=True)
class ValidationPoint:
    """One configuration's comparison of the three estimators."""

    label: str
    nprocs: int
    measured: float
    de: float | None
    am: float

    @property
    def err_de(self) -> float | None:
        """Percentage error of MPI-SIM-DE vs measurement."""
        if self.de is None:
            return None
        return 100.0 * abs(self.de - self.measured) / self.measured

    @property
    def err_am(self) -> float:
        """Percentage error of MPI-SIM-AM vs measurement."""
        return 100.0 * abs(self.am - self.measured) / self.measured


@dataclass
class ValidationSeries:
    """A named sweep of validation points (one figure's data)."""

    name: str
    points: list[ValidationPoint] = field(default_factory=list)

    @property
    def max_err_am(self) -> float:
        return max(p.err_am for p in self.points)

    @property
    def mean_err_am(self) -> float:
        return sum(p.err_am for p in self.points) / len(self.points)

    @property
    def max_err_de(self) -> float:
        errs = [p.err_de for p in self.points if p.err_de is not None]
        return max(errs) if errs else float("nan")


def _run_point(
    workflow: ModelingWorkflow,
    i: int,
    inputs: dict,
    nprocs: int,
    include_de: bool,
    label: str,
) -> ValidationPoint:
    """One configuration through all three estimators.

    The measured run's seed derives from the point *index*, never from
    execution order — this is what lets ``validate(..., jobs=N)`` fan
    points across worker processes and still reproduce the sequential
    series exactly.
    """
    measured = workflow.run_measured(inputs, nprocs, seed=workflow.seed + 101 + i)
    de = workflow.run_de(inputs, nprocs) if include_de else None
    am = workflow.run_am(inputs, nprocs)
    return ValidationPoint(
        label=label,
        nprocs=nprocs,
        measured=measured.elapsed,
        de=de.elapsed if de else None,
        am=am.elapsed,
    )


def validate(
    workflow: ModelingWorkflow,
    configs: list[tuple[dict, int]],
    name: str = "",
    include_de: bool = True,
    labels: list[str] | None = None,
    jobs: int = 1,
    spec=None,
) -> ValidationSeries:
    """Run all three estimators over *configs* ``[(inputs, nprocs), ...]``.

    ``include_de=False`` skips the direct-execution simulator (used when
    its memory demand would be infeasible, as in the paper's largest
    configurations).

    ``jobs > 1`` fans the sweep points across worker processes.  Live
    workflows are not picklable, so the parallel path additionally needs
    *spec* — a :class:`repro.workflow.parallel.WorkflowSpec` recipe each
    worker rebuilds its own workflow from.  Points come back in config
    order with index-derived seeds, so the series is identical to the
    sequential one.
    """
    from .parallel import resolve_jobs, run_validation_points

    series = ValidationSeries(name or workflow.program.name)
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(configs) > 1:
        if spec is None:
            raise ValueError(
                "validate(jobs>1) needs a WorkflowSpec recipe: live "
                "workflows cannot cross process boundaries"
            )
        series.points.extend(run_validation_points(spec, configs, include_de, labels, jobs))
        return series
    for i, (inputs, nprocs) in enumerate(configs):
        series.points.append(
            _run_point(
                workflow, i, inputs, nprocs, include_de,
                labels[i] if labels else str(nprocs),
            )
        )
    return series


@dataclass(frozen=True)
class FaultSweepPoint:
    """One fault-rate configuration's outcome."""

    loss_rate: float
    elapsed: float | None  # None when the run deadlocked
    retries: int
    timeouts: int
    messages_lost: int
    send_failures: int
    deadlocked: bool = False

    def slowdown_pct(self, baseline: float | None) -> float | None:
        """Percentage slowdown versus the fault-free elapsed time."""
        if self.elapsed is None or not baseline:
            return None
        return 100.0 * (self.elapsed - baseline) / baseline


@dataclass
class FaultSweepSeries:
    """Elapsed time and resilience counters versus message-loss rate."""

    name: str
    mode: str
    nprocs: int
    points: list[FaultSweepPoint] = field(default_factory=list)

    @property
    def baseline(self) -> float | None:
        """The fault-free (or lowest-loss completed) elapsed time."""
        for p in self.points:
            if p.elapsed is not None:
                return p.elapsed
        return None


def fault_sweep(
    workflow: ModelingWorkflow,
    inputs: dict[str, float],
    nprocs: int,
    loss_rates: list[float],
    base_plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    mode: ExecMode = ExecMode.DE,
    timeout: float | None = None,
    name: str = "",
) -> FaultSweepSeries:
    """Run *workflow* under increasing message-loss rates.

    Each point runs the chosen estimator with ``base_plan`` (default: an
    otherwise-empty plan) at that loss rate; a run stalled by the
    injected faults is recorded as ``deadlocked`` rather than aborting
    the sweep.  A loss rate of ``0.0`` is prepended when absent so every
    sweep carries its fault-free baseline.
    """
    plan = base_plan if base_plan is not None else FaultPlan()
    rates = sorted(set(loss_rates))
    if not rates or rates[0] != 0.0:
        rates.insert(0, 0.0)
    series = FaultSweepSeries(
        name=name or workflow.program.name, mode=mode.value, nprocs=nprocs
    )
    for rate in rates:
        try:
            res = workflow.run_faulty(
                inputs, nprocs, plan=plan.with_loss(rate), retry=retry,
                mode=mode, timeout=timeout,
            )
        except DeadlockError:
            series.points.append(
                FaultSweepPoint(
                    loss_rate=rate, elapsed=None, retries=0, timeouts=0,
                    messages_lost=0, send_failures=0, deadlocked=True,
                )
            )
            continue
        s = res.stats
        series.points.append(
            FaultSweepPoint(
                loss_rate=rate,
                elapsed=res.elapsed,
                retries=s.total_retries,
                timeouts=s.total_timeouts,
                messages_lost=s.total_messages_lost,
                send_failures=s.total_send_failures,
            )
        )
    return series
