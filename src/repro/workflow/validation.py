"""Validation runner: measured vs MPI-SIM-DE vs MPI-SIM-AM.

Produces the data behind the paper's validation figures (Figs. 3–9):
for each configuration, the three estimators' predicted execution times
and the percentage errors of the simulators against direct measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .pipeline import ModelingWorkflow

__all__ = ["ValidationPoint", "ValidationSeries", "validate"]


@dataclass(frozen=True)
class ValidationPoint:
    """One configuration's comparison of the three estimators."""

    label: str
    nprocs: int
    measured: float
    de: float | None
    am: float

    @property
    def err_de(self) -> float | None:
        """Percentage error of MPI-SIM-DE vs measurement."""
        if self.de is None:
            return None
        return 100.0 * abs(self.de - self.measured) / self.measured

    @property
    def err_am(self) -> float:
        """Percentage error of MPI-SIM-AM vs measurement."""
        return 100.0 * abs(self.am - self.measured) / self.measured


@dataclass
class ValidationSeries:
    """A named sweep of validation points (one figure's data)."""

    name: str
    points: list[ValidationPoint] = field(default_factory=list)

    @property
    def max_err_am(self) -> float:
        return max(p.err_am for p in self.points)

    @property
    def mean_err_am(self) -> float:
        return sum(p.err_am for p in self.points) / len(self.points)

    @property
    def max_err_de(self) -> float:
        errs = [p.err_de for p in self.points if p.err_de is not None]
        return max(errs) if errs else float("nan")


def validate(
    workflow: ModelingWorkflow,
    configs: list[tuple[dict, int]],
    name: str = "",
    include_de: bool = True,
    labels: list[str] | None = None,
) -> ValidationSeries:
    """Run all three estimators over *configs* ``[(inputs, nprocs), ...]``.

    ``include_de=False`` skips the direct-execution simulator (used when
    its memory demand would be infeasible, as in the paper's largest
    configurations).
    """
    series = ValidationSeries(name or workflow.program.name)
    for i, (inputs, nprocs) in enumerate(configs):
        measured = workflow.run_measured(inputs, nprocs, seed=workflow.seed + 101 + i)
        de = workflow.run_de(inputs, nprocs) if include_de else None
        am = workflow.run_am(inputs, nprocs)
        series.points.append(
            ValidationPoint(
                label=labels[i] if labels else str(nprocs),
                nprocs=nprocs,
                measured=measured.elapsed,
                de=de.elapsed if de else None,
                am=am.elapsed,
            )
        )
    return series
