"""A mini-HPF program model: the input language of the dhpf front-end.

The paper's toolchain starts from High Performance Fortran: "dhpf, in
normal usage, compiles an HPF program to MPI [...] The integrated tool
can allow us to perform simulation for MPI and HPF programs without
requiring any changes to the source code."  This package reproduces the
slice of that front-end the evaluation needs: data-parallel programs
over 2-D arrays with the HPF ``(*, BLOCK)`` distribution (the one used
for Tomcatv), compiled to the message-passing IR by owner-computes
partitioning with stencil-driven ghost-cell communication.

An HPF program here is:

* 2-D arrays aligned to one ``rows × cols`` template, each distributed
  ``(*, BLOCK)`` (contiguous column blocks per processor);
* ``FORALL``-style data-parallel statements with declared read stencils
  (offset footprints) and written arrays;
* global reductions (``MAXVAL``/``SUM``-style);
* sequential ``DO`` loops around them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..symbolic import Expr, as_expr
from ..symbolic.expr import ExprLike

__all__ = [
    "Stencil",
    "POINTWISE",
    "FIVE_POINT",
    "NINE_POINT",
    "HpfArray",
    "HpfStmt",
    "Forall",
    "Reduction",
    "DoLoop",
    "HpfProgram",
    "HpfBuilder",
]


@dataclass(frozen=True)
class Stencil:
    """A read footprint: the set of (di, dj) offsets a point update reads.

    ``j`` is the distributed dimension under ``(*, BLOCK)``; the ghost
    width a stencil demands is ``max |dj|``.
    """

    offsets: frozenset[tuple[int, int]]

    @classmethod
    def of(cls, *offsets: tuple[int, int]) -> "Stencil":
        return cls(frozenset(offsets))

    @property
    def ghost_width(self) -> int:
        """Columns of remote data needed on each side."""
        return max((abs(dj) for _, dj in self.offsets), default=0)

    @property
    def interior_margin(self) -> tuple[int, int]:
        """(row, col) margins excluded from the iteration space."""
        di = max((abs(d) for d, _ in self.offsets), default=0)
        dj = max((abs(d) for _, d in self.offsets), default=0)
        return di, dj

    def __or__(self, other: "Stencil") -> "Stencil":
        return Stencil(self.offsets | other.offsets)


POINTWISE = Stencil.of((0, 0))
FIVE_POINT = Stencil.of((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1))
NINE_POINT = Stencil.of(
    (0, 0), (-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (-1, 1), (1, -1), (1, 1)
)


@dataclass(frozen=True)
class HpfArray:
    """A template-aligned 2-D array with an HPF distribution directive."""

    name: str
    dist: tuple[str, str] = ("*", "BLOCK")
    itemsize: int = 8

    def __post_init__(self):
        if self.dist != ("*", "BLOCK"):
            raise NotImplementedError(
                f"{self.name}: only the (*, BLOCK) distribution is supported "
                "(the one the paper uses for Tomcatv); got {self.dist}"
            )


class HpfStmt:
    """Base class of HPF-level statements."""

    __slots__ = ()


@dataclass
class Forall(HpfStmt):
    """A data-parallel update: ``FORALL (i, j) writes(i,j) = f(reads)``.

    ``reads`` maps array names to their stencils; ``writes`` lists the
    arrays assigned (owner-computes: each processor updates its block).
    ``ops_per_point`` is the static cost estimate of the right-hand side.
    """

    name: str
    reads: dict[str, Stencil]
    writes: tuple[str, ...]
    ops_per_point: float = 1.0

    def ghost_width(self) -> int:
        return max((s.ghost_width for s in self.reads.values()), default=0)

    def interior_margin(self) -> tuple[int, int]:
        di = max((s.interior_margin[0] for s in self.reads.values()), default=0)
        dj = max((s.interior_margin[1] for s in self.reads.values()), default=0)
        return di, dj


@dataclass
class Reduction(HpfStmt):
    """A global reduction over a distributed array (MAXVAL / SUM ...)."""

    array: str
    kind: str = "max"  # max | min | sum

    def __post_init__(self):
        if self.kind not in ("max", "min", "sum"):
            raise ValueError(f"unknown reduction kind {self.kind!r}")


@dataclass
class DoLoop(HpfStmt):
    """A sequential loop around data-parallel statements."""

    var: str
    lo: Expr
    hi: Expr
    body: list[HpfStmt] = field(default_factory=list)


@dataclass
class HpfProgram:
    """A complete HPF-level program over one 2-D template."""

    name: str
    params: tuple[str, ...]
    rows: Expr  # template extent in the serial (*) dimension
    cols: Expr  # template extent in the distributed (BLOCK) dimension
    arrays: dict[str, HpfArray]
    body: list[HpfStmt]

    def foralls(self) -> list[Forall]:
        out = []

        def visit(stmts):
            for s in stmts:
                if isinstance(s, Forall):
                    out.append(s)
                elif isinstance(s, DoLoop):
                    visit(s.body)

        visit(self.body)
        return out

    def validate(self) -> None:
        names = set(self.arrays)
        for f in self.foralls():
            missing = (set(f.reads) | set(f.writes)) - names
            if missing:
                raise ValueError(f"{self.name}/{f.name}: undeclared arrays {sorted(missing)}")


class HpfBuilder:
    """Fluent construction of :class:`HpfProgram`."""

    def __init__(self, name: str, params: tuple[str, ...], rows: ExprLike, cols: ExprLike):
        self.name = name
        self.params = tuple(params)
        self.rows = as_expr(rows)
        self.cols = as_expr(cols)
        self._arrays: dict[str, HpfArray] = {}
        self._body: list[HpfStmt] = []
        self._stack: list[list[HpfStmt]] = [self._body]

    def array(self, name: str, dist: tuple[str, str] = ("*", "BLOCK"), itemsize: int = 8) -> None:
        if name in self._arrays:
            raise ValueError(f"array {name!r} declared twice")
        self._arrays[name] = HpfArray(name, dist, itemsize)

    def forall(self, name: str, reads: dict[str, Stencil], writes: tuple[str, ...],
               ops_per_point: float = 1.0) -> None:
        self._stack[-1].append(Forall(name, dict(reads), tuple(writes), ops_per_point))

    def reduction(self, array: str, kind: str = "max") -> None:
        self._stack[-1].append(Reduction(array, kind))

    def do(self, var: str, lo: ExprLike, hi: ExprLike):
        """Context manager: a sequential loop."""
        loop = DoLoop(var, as_expr(lo), as_expr(hi))
        self._stack[-1].append(loop)

        class _Ctx:
            def __enter__(ctx):
                self._stack.append(loop.body)
                return loop

            def __exit__(ctx, *exc):
                self._stack.pop()
                return False

        return _Ctx()

    def build(self) -> HpfProgram:
        if len(self._stack) != 1:
            raise RuntimeError("unclosed do() loop")
        prog = HpfProgram(self.name, self.params, self.rows, self.cols, self._arrays, self._body)
        prog.validate()
        return prog
