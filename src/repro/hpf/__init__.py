"""Mini-HPF front-end (the dhpf substrate): (*, BLOCK) data-parallel
programs compiled to the message-passing IR by owner-computes
partitioning with stencil-driven ghost-cell exchange."""

from .compiler import compile_hpf
from .model import (
    FIVE_POINT,
    NINE_POINT,
    POINTWISE,
    DoLoop,
    Forall,
    HpfArray,
    HpfBuilder,
    HpfProgram,
    Reduction,
    Stencil,
)
from .programs import jacobi2d_hpf, tomcatv_hpf

__all__ = [
    "compile_hpf",
    "HpfBuilder",
    "HpfProgram",
    "HpfArray",
    "Forall",
    "Reduction",
    "DoLoop",
    "Stencil",
    "POINTWISE",
    "FIVE_POINT",
    "NINE_POINT",
    "tomcatv_hpf",
    "jacobi2d_hpf",
]
