"""HPF-source versions of benchmark programs.

Tomcatv "is handled fully automatically through the steps of
compilation, task measurements, and simulation shown in Figure 2" —
starting from HPF.  This module holds the HPF-level sources; compile
them with :func:`repro.hpf.compile_hpf` and feed the result to the
standard workflow.
"""

from __future__ import annotations

from ..symbolic import Var
from .model import NINE_POINT, POINTWISE, HpfBuilder, HpfProgram, Stencil

__all__ = ["tomcatv_hpf", "jacobi2d_hpf"]


def tomcatv_hpf() -> HpfProgram:
    """The HPF Tomcatv: seven n×n (*,BLOCK) arrays, ITMAX mesh-relaxation
    iterations of residual evaluation (9-point), a residual MAXVAL, the
    column-wise tridiagonal solve and the mesh update."""
    n, itmax = Var("n"), Var("itmax")
    b = HpfBuilder("tomcatv_hpf", params=("n", "itmax"), rows=n, cols=n)
    for name in ("X", "Y", "RX", "RY", "AA", "DD", "D"):
        b.array(name)
    column = Stencil.of((0, 0), (-1, 0), (1, 0))  # along-column dependence
    with b.do("iter", 1, itmax):
        b.forall(
            "residual",
            reads={"X": NINE_POINT, "Y": NINE_POINT},
            writes=("RX", "RY"),
            ops_per_point=40.0,
        )
        b.reduction("RX", kind="max")
        b.forall(
            "tridiag_solve",
            reads={"RX": column, "RY": column, "AA": POINTWISE, "DD": POINTWISE, "D": POINTWISE},
            writes=("RX", "RY"),
            ops_per_point=12.0,
        )
        b.forall(
            "mesh_update",
            reads={"RX": POINTWISE, "RY": POINTWISE},
            writes=("X", "Y"),
            ops_per_point=6.0,
        )
    return b.build()


def jacobi2d_hpf() -> HpfProgram:
    """A 5-point Jacobi relaxation — the canonical HPF example, useful
    for tests and as a minimal front-end demo."""
    n, iters = Var("n"), Var("iters")
    b = HpfBuilder("jacobi2d", params=("n", "iters"), rows=n, cols=n)
    b.array("U")
    b.array("Unew")
    from .model import FIVE_POINT

    with b.do("k", 1, iters):
        b.forall("relax", reads={"U": FIVE_POINT}, writes=("Unew",), ops_per_point=5.0)
        b.forall("copyback", reads={"Unew": POINTWISE}, writes=("U",), ops_per_point=1.0)
        b.reduction("Unew", kind="max")
    return b.build()
