"""The dhpf front-end: compile an HPF program to the message-passing IR.

Owner-computes compilation for the ``(*, BLOCK)`` distribution:

* each of the P processors owns a contiguous block of columns,
  ``cols_local = max(0, min(cols, (myid+1)*b) - myid*b)`` with
  ``b = ceil(cols / P)`` — the clipped bounds of the paper's Fig. 1;
* arrays are allocated at the block bound plus ghost columns on each
  side (the widest stencil of any FORALL reading the array);
* before a FORALL whose stencil reaches into neighbouring blocks, the
  compiler emits a ghost-column exchange (non-blocking post/post/wait,
  as dhpf's generated MPI does), sized ``rows × ghost_width`` elements;
* the FORALL body becomes a computational task whose symbolic work
  expression is the local iteration count — exactly what the static
  task graph later condenses into a scaling function;
* reductions become ``MPI_Allreduce``.

The output is an ordinary :class:`repro.ir.Program`: everything
downstream (STG synthesis, condensation, slicing, simplified-code
generation, simulation) applies unchanged — the full Fig. 2 pipeline
from HPF source, "without requiring any changes to the source code".
"""

from __future__ import annotations

from ..ir.builder import P, ProgramBuilder, myid
from ..ir.nodes import Program
from ..symbolic import Max, Min, Var, ceil_div
from .model import DoLoop, Forall, HpfProgram, HpfStmt, Reduction

__all__ = ["compile_hpf"]


def compile_hpf(hpf: HpfProgram) -> Program:
    """Compile *hpf* into a message-passing IR program."""
    b = ProgramBuilder(hpf.name, params=hpf.params)
    rows, cols = hpf.rows, hpf.cols

    # ghost width required per array = widest stencil that reads it
    ghost: dict[str, int] = {name: 0 for name in hpf.arrays}
    for f in hpf.foralls():
        for name, stencil in f.reads.items():
            ghost[name] = max(ghost[name], stencil.ghost_width)

    # array declarations: rows x (block bound + ghosts)
    block_bound = ceil_div(cols, P)
    for name, arr in hpf.arrays.items():
        b.array(name, size=rows * (block_bound + 2 * ghost[name]), itemsize=arr.itemsize)

    # the owner's clipped column extent (Fig. 1's min/max bounds)
    b.assign("hpf_b", block_bound)
    bv = Var("hpf_b")
    b.assign("cols_local", Max.make(0, Min.make(cols, (myid + 1) * bv) - myid * bv))
    cols_local = Var("cols_local")

    tags = _TagAllocator()
    _emit_block(b, hpf.body, rows, cols_local, ghost, tags)
    prog = b.build()
    prog.meta["compiled_from_hpf"] = hpf.name
    prog.meta["distribution"] = "(*, BLOCK)"
    return prog


class _TagAllocator:
    """Distinct MPI tags per communication site (dhpf numbers its sites)."""

    def __init__(self, base: int = 100):
        self._next = base

    def take(self) -> int:
        self._next += 1
        return self._next


def _emit_block(b, stmts: list[HpfStmt], rows, cols_local, ghost, tags) -> None:
    from ..symbolic import Gt, Lt

    for s in stmts:
        if isinstance(s, Forall):
            # ghost exchange for every array read with a nonzero stencil
            for name in sorted(s.reads):
                width = s.reads[name].ghost_width
                if width == 0:
                    continue
                nbytes = rows * width * 8
                tag = tags.take()
                rl, rr, sl, sr = (f"gq{tag}_rl", f"gq{tag}_rr", f"gq{tag}_sl", f"gq{tag}_sr")
                with b.if_(Gt(myid, 0)):
                    b.irecv(source=myid - 1, nbytes=nbytes, tag=tag, array=name, handle=rl)
                with b.if_(Lt(myid, P - 1)):
                    b.irecv(source=myid + 1, nbytes=nbytes, tag=tag, array=name, handle=rr)
                with b.if_(Gt(myid, 0)):
                    b.isend(dest=myid - 1, nbytes=nbytes, tag=tag, array=name, handle=sl)
                with b.if_(Lt(myid, P - 1)):
                    b.isend(dest=myid + 1, nbytes=nbytes, tag=tag, array=name, handle=sr)
                b.waitall(rl, rr, sl, sr)
            # owner-computes local iteration space
            di, dj = s.interior_margin()
            work = (rows - 2 * di) * cols_local if di else rows * cols_local
            arrays = tuple(sorted(set(s.reads) | set(s.writes)))
            b.compute(s.name, work=work, ops_per_iter=s.ops_per_point, arrays=arrays)
        elif isinstance(s, Reduction):
            b.allreduce(nbytes=8, reduce_kind=s.kind)
        elif isinstance(s, DoLoop):
            with b.loop(s.var, s.lo, s.hi):
                _emit_block(b, s.body, rows, cols_local, ghost, tags)
        else:
            raise TypeError(f"cannot compile HPF statement of kind {type(s).__name__}")
