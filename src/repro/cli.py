"""Command-line interface: compile, inspect and predict from a shell.

Examples::

    python -m repro apps
    python -m repro compile tomcatv
    python -m repro stg sweep3d
    python -m repro validate tomcatv --procs 4 16 64
    python -m repro predict sweep3d --procs 256 1024 --set itg=96 --set jtg=96
    python -m repro memory sweep3d --procs 4900 --set kt=255
"""

from __future__ import annotations

import argparse
import sys

from .apps import (
    build_nas_sp,
    build_sample,
    build_sweep3d,
    build_tomcatv,
    sp_inputs,
    sweep3d_inputs,
    tomcatv_inputs,
)
from .codegen import compile_program
from .ir import format_program
from .machine import get_machine
from .parallel import estimate_program_memory
from .stg import synthesize_stg
from .workflow import ModelingWorkflow, format_bytes, format_table, format_validation, validate

__all__ = ["main", "APPS"]


def _sample_builder(pattern):
    return lambda: build_sample(pattern)


def _hpf_tomcatv():
    from .hpf import compile_hpf, tomcatv_hpf

    return compile_hpf(tomcatv_hpf())


#: name -> (program builder, default inputs for a given nprocs)
APPS = {
    "tomcatv": (build_tomcatv, lambda p: tomcatv_inputs(512, itmax=5)),
    "tomcatv_hpf": (_hpf_tomcatv, lambda p: {"n": 512, "itmax": 5}),
    "sweep3d": (build_sweep3d, lambda p: sweep3d_inputs(64, 64, 64, p, kb=4, ab=2, niter=2)),
    "nas_sp": (build_nas_sp, lambda p: sp_inputs("A", p, niter=3)),
    "sample_wavefront": (
        _sample_builder("wavefront"),
        lambda p: {"grain": 100000, "msg": 8192, "iters": 10},
    ),
    "sample_nearest_neighbor": (
        _sample_builder("nearest_neighbor"),
        lambda p: {"grain": 100000, "msg": 8192, "iters": 10},
    ),
}


def _parse_overrides(pairs: list[str]) -> dict[str, int]:
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        try:
            out[key] = int(value)
        except ValueError:
            out[key] = float(value)
    return out


def _resolve(args, nprocs: int):
    try:
        builder, default_inputs = APPS[args.app]
    except KeyError:
        raise SystemExit(f"unknown app {args.app!r}; run 'python -m repro apps'")
    program = builder()
    inputs = default_inputs(nprocs)
    inputs.update(_parse_overrides(getattr(args, "set", None)))
    return program, inputs


def _workflow(args, program, calib_nprocs: int) -> ModelingWorkflow:
    machine = get_machine(args.machine)
    _, default_inputs = APPS[args.app]
    calib = default_inputs(calib_nprocs)
    calib.update(_parse_overrides(getattr(args, "set", None)))
    wf = ModelingWorkflow(program, machine, calib_inputs=calib, calib_nprocs=calib_nprocs)
    wf.calibrate()
    return wf


# -- subcommands --------------------------------------------------------------


def cmd_apps(args) -> int:
    print("available applications:")
    for name in sorted(APPS):
        prog = APPS[name][0]()
        print(f"  {name:26s} params: {', '.join(prog.params)}")
    return 0


def cmd_compile(args) -> int:
    program, _ = _resolve(args, nprocs=16)
    compiled = compile_program(program)
    print(compiled.summary())
    print()
    print("simplified program:")
    print(format_program(compiled.simplified))
    return 0


def cmd_stg(args) -> int:
    program, _ = _resolve(args, nprocs=16)
    stg = synthesize_stg(program)
    if args.dot:
        from .stg import write_dot

        write_dot(stg, args.dot)
        print(f"DOT written to {args.dot}")
    else:
        print(stg)
    return 0


def cmd_validate(args) -> int:
    program, _ = _resolve(args, nprocs=max(args.procs))
    wf = _workflow(args, program, calib_nprocs=args.calib_procs)
    _, default_inputs = APPS[args.app]
    configs = []
    for p in args.procs:
        inputs = default_inputs(p)
        inputs.update(_parse_overrides(args.set))
        configs.append((inputs, p))
    series = validate(wf, configs, name=args.app, include_de=not args.no_de)
    print(format_validation(series))
    return 0


def cmd_predict(args) -> int:
    program, _ = _resolve(args, nprocs=max(args.procs))
    wf = _workflow(args, program, calib_nprocs=args.calib_procs)
    machine = get_machine(args.machine)
    _, default_inputs = APPS[args.app]
    method = getattr(args, "method", "am")
    rows = []
    for p in args.procs:
        inputs = default_inputs(p)
        inputs.update(_parse_overrides(args.set))
        if method == "am":
            result = wf.run_am(inputs, p)
            rows.append([p, result.elapsed, format_bytes(result.memory.total_bytes)])
        elif method == "taskgraph":
            from .analytic import taskgraph_predict

            pred = taskgraph_predict(wf.compiled.simplified, inputs, p, machine, wf.wparams)
            rows.append([p, pred.elapsed, f"{pred.nodes} tasks"])
        else:  # per-rank sum
            from .analytic import analytic_predict

            pred = analytic_predict(wf.compiled.simplified, inputs, p, machine, wf.wparams)
            rows.append([p, pred.elapsed, f"imbalance {pred.imbalance:.2f}"])
    titles = {
        "am": "MPI-SIM-AM predictions",
        "taskgraph": "task-graph analytical predictions",
        "sum": "per-rank-sum analytical predictions",
    }
    third = {"am": "simulator memory", "taskgraph": "graph size", "sum": "load balance"}
    print(
        format_table(
            ["target procs", "predicted time (s)", third[method]],
            rows,
            title=f"{titles[method]}: {args.app} on {args.machine}",
        )
    )
    return 0


def cmd_calibrate(args) -> int:
    """Measure w_i at one configuration and write a parameter file."""
    from .measure import measure_wparams, save_params

    program, inputs = _resolve(args, nprocs=args.calib_procs)
    machine = get_machine(args.machine)
    cal = measure_wparams(program, inputs, args.calib_procs, machine)
    save_params(cal, args.output)
    print(cal)
    print(f"parameters written to {args.output}")
    return 0


def cmd_memory(args) -> int:
    program, inputs = _resolve(args, nprocs=max(args.procs))
    machine = get_machine(args.machine)
    compiled = compile_program(program)
    _, default_inputs = APPS[args.app]
    rows = []
    for p in args.procs:
        inputs = default_inputs(p)
        inputs.update(_parse_overrides(args.set))
        de = estimate_program_memory(program, inputs, p, machine.host)
        am = estimate_program_memory(compiled.simplified, inputs, p, machine.host)
        rows.append([p, format_bytes(de), format_bytes(am), f"{de / am:.0f}x"])
    print(
        format_table(
            ["target procs", "MPI-SIM-DE", "MPI-SIM-AM", "reduction"],
            rows,
            title=f"Simulator memory: {args.app} on {args.machine}",
        )
    )
    return 0


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compiler-supported simulation of message-passing applications (SC'99).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list available applications").set_defaults(fn=cmd_apps)

    def add_app_command(name, fn, help_, with_procs=False):
        p = sub.add_parser(name, help=help_)
        p.add_argument("app", help="application name (see 'apps')")
        p.add_argument("--machine", default="IBM-SP", help="machine preset (default IBM-SP)")
        p.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override an application input parameter")
        if with_procs:
            p.add_argument("--procs", type=int, nargs="+", default=[4, 16, 64],
                           help="target processor counts")
            p.add_argument("--calib-procs", type=int, default=16,
                           help="calibration processor count (default 16)")
        p.set_defaults(fn=fn)
        return p

    add_app_command("compile", cmd_compile, "show the compiler's output for an app")
    stg_p = add_app_command("stg", cmd_stg, "print the static task graph")
    stg_p.add_argument("--dot", metavar="FILE", help="write graphviz DOT instead of text")
    v = add_app_command("validate", cmd_validate, "measured vs DE vs AM", with_procs=True)
    v.add_argument("--no-de", action="store_true", help="skip the direct-execution simulator")
    pr = add_app_command("predict", cmd_predict, "performance predictions", with_procs=True)
    pr.add_argument("--method", choices=("am", "taskgraph", "sum"), default="am",
                    help="predictor: simulated AM (default), task-graph analysis, per-rank sum")
    add_app_command("memory", cmd_memory, "simulator memory estimates", with_procs=True)
    c = add_app_command("calibrate", cmd_calibrate, "measure w_i and write a parameter file")
    c.add_argument("--calib-procs", type=int, default=16, help="measurement processor count")
    c.add_argument("-o", "--output", default="wparams.json", help="parameter file path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
