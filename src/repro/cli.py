"""Command-line interface: compile, inspect and predict from a shell.

Examples::

    python -m repro apps
    python -m repro compile tomcatv
    python -m repro stg sweep3d
    python -m repro validate tomcatv --procs 4 16 64 --seed 7
    python -m repro predict sweep3d --procs 256 1024 --set itg=96 --set jtg=96
    python -m repro memory sweep3d --procs 4900 --set kt=255
    python -m repro faults sweep3d --nprocs 16 --crash 3@0.01
    python -m repro faults tomcatv --nprocs 8 --sweep 0.01 0.05 0.1 --retry 5:1e-4
    python -m repro profile sweep3d --nprocs 16 --perfetto out.json --critical-path
    python -m repro -v profile tomcatv --scaling-loss --procs 4 16 64
    python -m repro campaign --grid grid.json --out results/ --max-wall 60
    python -m repro campaign --grid grid.json --out results/ --resume
    python -m repro campaign --grid grid.json --out results/ --jobs 4 --live
    python -m repro inspect results/
    python -m repro inspect results/ --run 1a2b3c --last 20
    python -m repro inspect flight.json
    python -m repro fuzz --seeds 100 --out fuzz-out/
    python -m repro fuzz --seeds 500 --budget 120 --out fuzz-out/ --resume
    python -m repro fuzz --check-corpus src/repro/apps/regressions
    python -m repro serve --store store/ --port 8642 --jobs 4
    python -m repro query sweep3d --nprocs 64 --server 127.0.0.1:8642
    python -m repro query sweep3d --nprocs 64 --store store/
    python -m repro inspect store/
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from dataclasses import replace

from . import __version__
from .apps import (
    build_nas_sp,
    build_sample,
    build_sweep3d,
    build_tomcatv,
    sp_inputs,
    sweep3d_inputs,
    tomcatv_inputs,
)
from .codegen import compile_program
from .ir import format_program
from .machine import get_machine
from .parallel import estimate_program_memory
from .stg import synthesize_stg
from .workflow import ModelingWorkflow, format_bytes, format_table, format_validation, validate

__all__ = ["main", "APPS"]


def _sample_builder(pattern):
    return lambda: build_sample(pattern)


def _hpf_tomcatv():
    from .hpf import compile_hpf, tomcatv_hpf

    return compile_hpf(tomcatv_hpf())


#: name -> (program builder, default inputs for a given nprocs)
APPS = {
    "tomcatv": (build_tomcatv, lambda p: tomcatv_inputs(512, itmax=5)),
    "tomcatv_hpf": (_hpf_tomcatv, lambda p: {"n": 512, "itmax": 5}),
    "sweep3d": (build_sweep3d, lambda p: sweep3d_inputs(64, 64, 64, p, kb=4, ab=2, niter=2)),
    "nas_sp": (build_nas_sp, lambda p: sp_inputs("A", p, niter=3)),
    "sample_wavefront": (
        _sample_builder("wavefront"),
        lambda p: {"grain": 100000, "msg": 8192, "iters": 10},
    ),
    "sample_nearest_neighbor": (
        _sample_builder("nearest_neighbor"),
        lambda p: {"grain": 100000, "msg": 8192, "iters": 10},
    ),
}


def _positive_int(text: str) -> int:
    """argparse type for processor counts: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"processor count must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type for wall-clock budgets: strictly positive seconds."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}")
    return value


def _positive_count(text: str) -> int:
    """argparse type for generic counts: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"count must be >= 1, got {value}")
    return value


def _nonneg_int(text: str) -> int:
    """argparse type for seeds/offsets: an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected an integer >= 0, got {value}")
    return value


def _jobs_count(text: str) -> int:
    """argparse type for --jobs: worker processes, 0 meaning all cores."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 0, got {value}")
    return value


def _parse_overrides(pairs: list[str]) -> dict[str, int]:
    out = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        try:
            out[key] = int(value)
        except ValueError:
            out[key] = float(value)
    return out


# -- shared argparse fragments -------------------------------------------------
#
# Every subcommand that names a machine, an input override, a budget or
# a worker count adds the flag through one of these helpers, so the
# flags (names, types, defaults, help text) cannot drift apart between
# subcommands — they are the argparse face of the repro.api vocabulary.


def add_machine_args(parser, with_set: bool = True) -> None:
    """``--machine`` (and ``--set``): the execution-context flags."""
    parser.add_argument("--machine", default="IBM-SP",
                        help="machine preset (default IBM-SP)")
    if with_set:
        parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                            help="override an application input parameter")


def add_budget_args(parser) -> None:
    """``--max-wall/--max-events/--max-virtual``: per-run watchdog budgets."""
    parser.add_argument("--max-wall", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="per-run wall-clock budget (outcome 'timeout' "
                             "when exceeded)")
    parser.add_argument("--max-events", type=_positive_int, default=None,
                        help="per-run kernel-event budget (outcome 'budget')")
    parser.add_argument("--max-virtual", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="per-run virtual-time budget (outcome 'budget')")


def add_jobs_arg(parser, help_: str | None = None) -> None:
    parser.add_argument("--jobs", type=_jobs_count, default=1, metavar="N",
                        help=help_ or "worker processes "
                             "(0 = all cores, default 1)")


def add_seed_arg(parser, help_: str | None = None) -> None:
    parser.add_argument("--seed", type=int, default=0,
                        help=help_ or "noise seed for measured-mode runs "
                             "(reproducibility)")


def add_backend_arg(parser, default: str | None = None) -> None:
    """``--backend``: simulation-kernel choice (results byte-identical)."""
    parser.add_argument("--backend", choices=("interpreted", "compiled", "auto"),
                        default=default,
                        help="simulation kernel: generator interpreter, "
                             "per-program compiled event loop, or auto with "
                             "per-program fallback (results are byte-identical; "
                             "default interpreted, or $REPRO_BACKEND)")


def _budget_kwargs(args) -> dict:
    """The budget flags as :class:`repro.api.CampaignRequest` kwargs."""
    return {
        "max_wall_seconds": getattr(args, "max_wall", None),
        "max_events": getattr(args, "max_events", None),
        "max_virtual_time": getattr(args, "max_virtual", None),
    }


def request_from_args(args, *, nprocs: int | None = None,
                      mode: str | None = None):
    """Build the validated :class:`repro.api.RunRequest` a subcommand
    names — the single constructor path from flags to run identity."""
    from .api import ApiError, RunRequest

    try:
        return RunRequest.from_json({
            "kind": "run_request",
            "app": args.app,
            "mode": mode if mode is not None else getattr(args, "mode", "de"),
            "nprocs": nprocs if nprocs is not None else args.nprocs,
            "inputs": _parse_overrides(getattr(args, "set", None)),
            "seed": getattr(args, "seed", 0),
            "timeout": getattr(args, "timeout", None),
        })
    except ApiError as exc:
        raise SystemExit(f"error: {exc.message}")


def _resolve(args, nprocs: int):
    try:
        builder, default_inputs = APPS[args.app]
    except KeyError:
        raise SystemExit(f"unknown app {args.app!r}; run 'python -m repro apps'")
    program = builder()
    inputs = default_inputs(nprocs)
    inputs.update(_parse_overrides(getattr(args, "set", None)))
    return program, inputs


def _workflow(args, program, calib_nprocs: int, calibrate: bool = True) -> ModelingWorkflow:
    machine = get_machine(args.machine)
    _, default_inputs = APPS[args.app]
    calib = default_inputs(calib_nprocs)
    calib.update(_parse_overrides(getattr(args, "set", None)))
    wf = ModelingWorkflow(
        program, machine, calib_inputs=calib, calib_nprocs=calib_nprocs,
        seed=getattr(args, "seed", 0),
        backend=getattr(args, "backend", None),
    )
    if calibrate:
        wf.calibrate()
    return wf


# -- subcommands --------------------------------------------------------------


def cmd_apps(args) -> int:
    print("available applications:")
    for name in sorted(APPS):
        prog = APPS[name][0]()
        print(f"  {name:26s} params: {', '.join(prog.params)}")
    return 0


def cmd_compile(args) -> int:
    program, _ = _resolve(args, nprocs=16)
    compiled = compile_program(program)
    print(compiled.summary())
    print()
    print("simplified program:")
    print(format_program(compiled.simplified))
    return 0


def cmd_stg(args) -> int:
    program, _ = _resolve(args, nprocs=16)
    stg = synthesize_stg(program)
    if args.dot:
        from .stg import write_dot

        write_dot(stg, args.dot)
        print(f"DOT written to {args.dot}")
    else:
        print(stg)
    return 0


def cmd_validate(args) -> int:
    program, _ = _resolve(args, nprocs=max(args.procs))
    jobs = getattr(args, "jobs", 1)
    # jobs != 1: points run in workers that calibrate for themselves, so
    # skip the (expensive) eager calibration of the parent's workflow
    wf = _workflow(args, program, calib_nprocs=args.calib_procs, calibrate=jobs == 1)
    _, default_inputs = APPS[args.app]
    configs = []
    for p in args.procs:
        inputs = default_inputs(p)
        inputs.update(_parse_overrides(args.set))
        configs.append((inputs, p))
    spec = None
    if jobs != 1:
        from .workflow.parallel import WorkflowSpec

        spec = WorkflowSpec(
            app=args.app, machine=args.machine, calib_nprocs=args.calib_procs,
            overrides=tuple(sorted(_parse_overrides(args.set).items())),
            seed=args.seed,
        )
    series = validate(
        wf, configs, name=args.app, include_de=not args.no_de, jobs=jobs, spec=spec
    )
    print(format_validation(series))
    return 0


def cmd_predict(args) -> int:
    program, _ = _resolve(args, nprocs=max(args.procs))
    wf = _workflow(args, program, calib_nprocs=args.calib_procs)
    machine = get_machine(args.machine)
    _, default_inputs = APPS[args.app]
    method = getattr(args, "method", "am")
    rows = []
    for p in args.procs:
        inputs = default_inputs(p)
        inputs.update(_parse_overrides(args.set))
        if method == "am":
            result = wf.run_am(inputs, p)
            rows.append([p, result.elapsed, format_bytes(result.memory.total_bytes)])
        elif method == "taskgraph":
            from .analytic import taskgraph_predict

            pred = taskgraph_predict(wf.compiled.simplified, inputs, p, machine, wf.wparams)
            rows.append([p, pred.elapsed, f"{pred.nodes} tasks"])
        else:  # per-rank sum
            from .analytic import analytic_predict

            pred = analytic_predict(wf.compiled.simplified, inputs, p, machine, wf.wparams)
            rows.append([p, pred.elapsed, f"imbalance {pred.imbalance:.2f}"])
    titles = {
        "am": "MPI-SIM-AM predictions",
        "taskgraph": "task-graph analytical predictions",
        "sum": "per-rank-sum analytical predictions",
    }
    third = {"am": "simulator memory", "taskgraph": "graph size", "sum": "load balance"}
    print(
        format_table(
            ["target procs", "predicted time (s)", third[method]],
            rows,
            title=f"{titles[method]}: {args.app} on {args.machine}",
        )
    )
    return 0


def cmd_calibrate(args) -> int:
    """Measure w_i at one configuration and write a parameter file."""
    from .measure import measure_wparams, save_params

    program, inputs = _resolve(args, nprocs=args.calib_procs)
    machine = get_machine(args.machine)
    cal = measure_wparams(program, inputs, args.calib_procs, machine)
    save_params(cal, args.output)
    print(cal)
    print(f"parameters written to {args.output}")
    return 0


def cmd_memory(args) -> int:
    program, inputs = _resolve(args, nprocs=max(args.procs))
    machine = get_machine(args.machine)
    compiled = compile_program(program)
    _, default_inputs = APPS[args.app]
    rows = []
    for p in args.procs:
        inputs = default_inputs(p)
        inputs.update(_parse_overrides(args.set))
        de = estimate_program_memory(program, inputs, p, machine.host)
        am = estimate_program_memory(compiled.simplified, inputs, p, machine.host)
        rows.append([p, format_bytes(de), format_bytes(am), f"{de / am:.0f}x"])
    print(
        format_table(
            ["target procs", "MPI-SIM-DE", "MPI-SIM-AM", "reduction"],
            rows,
            title=f"Simulator memory: {args.app} on {args.machine}",
        )
    )
    return 0


def _parse_crash(spec: str):
    from .sim.faults import CrashFault

    rank, sep, t = spec.partition("@")
    try:
        if not sep:
            raise ValueError
        return CrashFault(rank=int(rank), time=float(t))
    except ValueError:
        raise SystemExit(f"--crash expects RANK@TIME (e.g. 3@0.5), got {spec!r}")


def _parse_degrade(spec: str):
    from .sim.faults import LinkDegradation

    parts = spec.split(":")
    if len(parts) != 6:
        raise SystemExit(
            f"--degrade expects SRC:DST:START:END:LATENCYx:BANDWIDTHx "
            f"(use * for any rank), got {spec!r}"
        )
    try:
        src = None if parts[0] == "*" else int(parts[0])
        dst = None if parts[1] == "*" else int(parts[1])
        return LinkDegradation(
            src=src, dst=dst, start=float(parts[2]), end=float(parts[3]),
            latency_factor=float(parts[4]), bandwidth_factor=float(parts[5]),
        )
    except ValueError as exc:
        raise SystemExit(f"bad --degrade spec {spec!r}: {exc}")


def _parse_retry(spec: str):
    from .sim.faults import RetryPolicy

    parts = spec.split(":")
    try:
        kwargs = {"max_attempts": int(parts[0])}
        if len(parts) > 1:
            kwargs["backoff"] = float(parts[1])
        if len(parts) > 2:
            kwargs["backoff_factor"] = float(parts[2])
        if len(parts) > 3:
            raise ValueError("too many fields")
        return RetryPolicy(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"--retry expects MAX[:BACKOFF[:FACTOR]], got {spec!r} ({exc})")


def _build_plan(args):
    """Assemble the FaultPlan from --plan JSON plus per-flag overrides."""
    from .sim.faults import FaultPlan

    if args.plan:
        try:
            with open(args.plan) as fh:
                plan = FaultPlan.from_dict(json.load(fh))
        except (OSError, ValueError, TypeError) as exc:
            raise SystemExit(f"cannot load fault plan {args.plan!r}: {exc}")
    else:
        plan = FaultPlan()
    updates = {}
    if args.fault_seed is not None:
        updates["seed"] = args.fault_seed
    if args.crash:
        updates["crashes"] = plan.crashes + tuple(_parse_crash(s) for s in args.crash)
    if args.loss is not None:
        updates["message_loss"] = args.loss
    if args.dup is not None:
        updates["duplication"] = args.dup
    if args.send_fail is not None:
        updates["send_failure"] = args.send_fail
    if args.degrade:
        updates["degradations"] = plan.degradations + tuple(
            _parse_degrade(s) for s in args.degrade
        )
    try:
        return replace(plan, **updates) if updates else plan
    except ValueError as exc:
        raise SystemExit(f"invalid fault plan: {exc}")


def cmd_faults(args) -> int:
    """Run an application under a fault plan and report its resilience."""
    from .sim import DeadlockError, ExecMode
    from .workflow import fault_sweep, format_fault_sweep, format_resilience

    request_from_args(args, nprocs=args.nprocs, mode=args.mode)  # validate early
    program, _ = _resolve(args, nprocs=args.nprocs)
    mode = {"am": ExecMode.AM, "de": ExecMode.DE, "measured": ExecMode.MEASURED}[args.mode]
    calib_procs = args.calib_procs or min(args.nprocs, 16)
    # AM calibrates lazily inside run_faulty; DE/MEASURED need no calibration
    wf = _workflow(args, program, calib_nprocs=calib_procs, calibrate=False)
    _, default_inputs = APPS[args.app]
    inputs = default_inputs(args.nprocs)
    inputs.update(_parse_overrides(args.set))
    plan = _build_plan(args)
    retry = _parse_retry(args.retry) if args.retry else None
    for crash in plan.crashes:
        if crash.rank >= args.nprocs:
            raise SystemExit(
                f"invalid fault plan: crashes rank {crash.rank} "
                f"but --nprocs is {args.nprocs}"
            )
    if args.sweep:
        series = fault_sweep(
            wf, inputs, args.nprocs, args.sweep, base_plan=plan, retry=retry,
            mode=mode, timeout=args.timeout, name=args.app,
        )
        print(format_fault_sweep(series))
        return 0
    if args.flight_dump:
        from .sim import FLIGHT

        FLIGHT.enable()
    try:
        result = wf.run_faulty(
            inputs, args.nprocs, plan=plan, retry=retry, mode=mode, timeout=args.timeout
        )
    except DeadlockError as exc:
        print(f"Resilience report: {args.app} deadlocked under the fault plan")
        print(exc.report.format() if exc.report is not None else str(exc))
        if args.flight_dump:
            _write_flight_dump(args.flight_dump, exc.flight or FLIGHT.dump(error=str(exc)))
        return 2
    finally:
        if args.flight_dump:
            from .sim import FLIGHT

            FLIGHT.disable()
    if args.flight_dump:
        from .sim import FLIGHT

        _write_flight_dump(args.flight_dump, FLIGHT.dump())
    print(format_resilience(result, title=f"Resilience report: {args.app} ({args.mode})"))
    if args.csv:
        from .workflow import write_stats_csv

        write_stats_csv(result.stats, args.csv)
        print(f"per-rank statistics written to {args.csv}")
    return 0


class _LiveProgress:
    """Single-line TTY campaign progress: counts, events/sec, ETA.

    Fed by the runner's ``progress`` callback after every journaled run.
    On a TTY the line redraws in place (``\\r``); piped output gets one
    plain line per run, so logs stay greppable.
    """

    def __init__(self, stream=None):
        import time

        self.stream = stream if stream is not None else sys.stderr
        self.t0 = time.monotonic()
        self.executed = 0
        self.ok = 0
        self.failed = 0
        self.retried = 0
        self.events = 0
        self.tty = getattr(self.stream, "isatty", lambda: False)()
        self._last_len = 0
        self._clock = time.monotonic

    @staticmethod
    def _fmt_eta(seconds: float) -> str:
        if seconds >= 3600:
            return f"{seconds / 3600:.1f}h"
        if seconds >= 60:
            return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
        return f"{seconds:.0f}s"

    def __call__(self, spec, rec, done: int, total: int) -> None:
        self.executed += 1
        if rec.outcome == "ok":
            self.ok += 1
        else:
            self.failed += 1
        if rec.attempts > 1:
            self.retried += 1
        if rec.stats:
            self.events += rec.stats.get("total_events", 0)
        wall = max(self._clock() - self.t0, 1e-9)
        eta = (total - done) * (wall / self.executed)
        line = (
            f"campaign: {done}/{total} runs | {self.ok} ok, "
            f"{self.failed} failed, {self.retried} retried | "
            f"{self.events / wall:,.0f} events/s | ETA {self._fmt_eta(eta)}"
        )
        if self.tty:
            pad = " " * max(self._last_len - len(line), 0)
            self.stream.write("\r" + line + pad)
            self._last_len = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """End the redrawn line so the report starts on a fresh one."""
        if self.tty and self._last_len:
            self._last_len = 0
            self.stream.write("\n")
            self.stream.flush()


def _write_flight_dump(path: str, dump: dict) -> None:
    """Atomically write a flight-recorder dump as JSON."""
    from .util.atomic_io import atomic_write

    with atomic_write(path) as fh:
        json.dump(dump, fh, indent=1)
    print(f"flight dump written to {path} (render with 'repro inspect {path}')")


def cmd_campaign(args) -> int:
    """Run (or resume) a crash-safe multi-run experiment campaign."""
    from .obs import METRICS, TRACER
    from .workflow.campaign import (
        CampaignError,
        CampaignRunner,
        format_campaign_report,
        load_grid,
    )

    live = _LiveProgress() if args.live else None
    try:
        config = load_grid(args.grid)
        if args.machine is not None:
            config.machine = args.machine
        if args.max_wall is not None:
            config.max_wall_seconds = args.max_wall
        if args.max_events is not None:
            config.max_events = args.max_events
        if args.max_virtual is not None:
            config.max_virtual_time = args.max_virtual
        if args.retries is not None:
            config.retries = args.retries
        # supervision knobs are execution policy — they never feed the
        # config hash, so overriding them on resume is always safe
        if args.no_supervise:
            config.supervise = False
        if args.heartbeat_timeout is not None:
            config.heartbeat_timeout = args.heartbeat_timeout
        if args.poison_threshold is not None:
            config.poison_threshold = args.poison_threshold
        if args.checkpoint_interval is not None:
            config.checkpoint_interval = args.checkpoint_interval
        if args.backend is not None:
            config.backend = args.backend
        runner = CampaignRunner(
            config, args.out,
            telemetry=not args.no_telemetry, progress=live,
        )
        TRACER.enable()
        METRICS.enable()
        try:
            report = runner.execute(
                resume=args.resume, max_runs=args.max_runs, jobs=args.jobs
            )
        finally:
            TRACER.disable()
            METRICS.disable()
            if live is not None:
                live.close()
    except CampaignError as exc:
        if live is not None:
            live.close()
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_campaign_report(report))
    if runner.telemetry and runner.merged_perfetto_path.exists():
        print(f"  merged telemetry timeline: {runner.merged_perfetto_path} "
              f"(open in ui.perfetto.dev; see 'repro inspect {args.out}')")
    if report.interrupted or report.stopped:
        # Rebuild the hint from the *effective* flags: machine and budget
        # overrides feed the config hash, so a hint without them would be
        # refused as a different campaign on resume.
        hint = [f"python -m repro campaign --grid {args.grid}", f"--out {args.out}"]
        if args.machine is not None:
            hint.append(f"--machine {args.machine}")
        if args.max_wall is not None:
            hint.append(f"--max-wall {args.max_wall:g}")
        if args.max_events is not None:
            hint.append(f"--max-events {args.max_events}")
        if args.max_virtual is not None:
            hint.append(f"--max-virtual {args.max_virtual:g}")
        if args.retries is not None:
            hint.append(f"--retries {args.retries}")
        if args.jobs != 1:
            hint.append(f"--jobs {args.jobs}")
        if args.no_telemetry:
            hint.append("--no-telemetry")
        if args.no_supervise:
            hint.append("--no-supervise")
        if args.heartbeat_timeout is not None:
            hint.append(f"--heartbeat-timeout {args.heartbeat_timeout:g}")
        if args.poison_threshold is not None:
            hint.append(f"--poison-threshold {args.poison_threshold}")
        if args.checkpoint_interval is not None:
            hint.append(f"--checkpoint-interval {args.checkpoint_interval}")
        if args.backend is not None:
            hint.append(f"--backend {args.backend}")
        hint.append("--resume")
        print("resume with: " + " ".join(hint))
    return 130 if report.interrupted else 0


def cmd_inspect(args) -> int:
    """Post-mortem viewer: flight dumps, campaign timelines, telemetry."""
    from pathlib import Path

    target = Path(args.path)
    if target.is_file():
        return _inspect_file(target, args)
    if target.is_dir():
        return _inspect_dir(target, args)
    print(f"error: no such file or directory: {target}", file=sys.stderr)
    return 2


def _inspect_file(path, args) -> int:
    """Render one file: a flight dump, a record carrying one, or a
    telemetry capsule journal."""
    from .sim import format_flight_dump

    if path.suffix == ".jsonl":
        from .obs import load_capsules
        from .obs.merge import format_campaign_timeline

        try:
            capsules = load_capsules(path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_campaign_timeline(capsules))
        return 0
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    if isinstance(doc, dict) and isinstance(doc.get("flight"), dict):
        doc = doc["flight"]  # a journal record wrapping a dump
    if not (isinstance(doc, dict) and "events" in doc and "format" in doc):
        print(f"error: {path} is not a flight dump "
              f"(expected 'format' and 'events' keys)", file=sys.stderr)
        return 2
    print(format_flight_dump(doc, last=args.last))
    return 0


def _format_cursor(cursor, indent="  ") -> str:
    """One line for a heartbeat/checkpoint replay cursor."""
    parts = [f"last cursor: event {cursor.get('events', '?')}"]
    if cursor.get("virtual_time") is not None:
        parts.append(f"t={cursor['virtual_time']:.6g}s virtual")
    if cursor.get("wall_seconds") is not None:
        parts.append(f"{cursor['wall_seconds']:.2f}s wall")
    if cursor.get("staleness_s") is not None:
        parts.append(f"stale for {cursor['staleness_s']:.1f}s at death")
    return indent + ", ".join(parts)


def _inspect_store(path, stats: dict) -> int:
    """Render result-store statistics (serve-side `repro inspect STORE`)."""
    total = stats["hits"] + stats["misses"]
    rate = f"{stats['hits'] / total:.0%}" if total else "n/a"
    print(f"Result store: {path}")
    print(f"  {stats['entries']} entries ({stats['bytes']:,} bytes) "
          f"across {stats['contexts']} execution context(s)")
    print(f"  {stats['warm_calibrations']} warm calibration(s), "
          f"{stats.get('warm_kernels', 0)} warm compiled kernel(s)")
    print(f"  lifetime: {stats['hits']} hits, {stats['misses']} misses "
          f"(hit rate {rate}), {stats['puts']} puts, "
          f"{stats['evictions']} evictions")
    return 0


def _inspect_dir(path, args) -> int:
    """Render a campaign output directory: header, per-run timeline,
    aggregate metrics, checkpoint/heartbeat history, and the flight
    dumps of failed runs."""
    from .obs import TableSink, load_capsules
    from .obs.merge import aggregate_metrics, format_campaign_timeline
    from .sim import format_flight_dump
    from .util.atomic_io import read_jsonl
    from .workflow.campaign import (
        CHECKPOINT_DIR_NAME,
        JOURNAL_NAME,
        QUARANTINE_DIR_NAME,
        TELEMETRY_NAME,
    )

    journal_path = path / JOURNAL_NAME
    if not journal_path.exists():
        # not a campaign directory — maybe a result store (`repro serve`)
        from .store import scan_store

        stats = scan_store(path)
        if stats is not None:
            return _inspect_store(path, stats)
        print(f"error: {path} has no {JOURNAL_NAME} and no result store; "
              f"not a campaign or store directory", file=sys.stderr)
        return 2
    try:
        docs = read_jsonl(journal_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    header = docs[0] if docs and docs[0].get("type") == "campaign" else {}
    runs: dict[str, dict] = {}
    for doc in docs:
        if doc.get("type") == "run":
            runs[doc["run_id"]] = doc  # last record for a run wins
    if args.run is not None:
        matches = [d for rid, d in runs.items() if rid.startswith(args.run)]
        if not matches:
            print(f"error: no journaled run with id {args.run!r}", file=sys.stderr)
            return 2
        if len(matches) > 1:
            print(f"error: run id {args.run!r} is ambiguous "
                  f"({len(matches)} matches)", file=sys.stderr)
            return 2
        runs = {matches[0]["run_id"]: matches[0]}
    failed = [d for d in runs.values() if d.get("outcome") != "ok"]
    total = header.get("total_runs", len(runs))
    print(f"Campaign: {header.get('name', path.name)} "
          f"(config {header.get('config_hash', '?')}) — "
          f"{len(runs)}/{total} runs journaled, "
          f"{len(runs) - len(failed)} ok, {len(failed)} failed")

    telemetry_path = path / TELEMETRY_NAME
    if telemetry_path.exists():
        try:
            capsules = load_capsules(telemetry_path)
        except ValueError as exc:
            print(f"warning: unreadable telemetry journal: {exc}", file=sys.stderr)
            capsules = []
        latest = {cap.run_id: cap for cap in capsules}
        if args.run is not None:
            latest = {rid: c for rid, c in latest.items() if rid in runs}
        capsules = list(latest.values())
        if capsules:
            print()
            print(format_campaign_timeline(capsules))
            print()
            print("Aggregate campaign metrics (all workers merged):")
            print(TableSink.render(aggregate_metrics(capsules)))
            if args.perfetto:
                from .obs.merge import write_merged_perfetto

                write_merged_perfetto(
                    args.perfetto, capsules,
                    meta={"campaign": header.get("name", path.name)},
                )
                print(f"\nmerged Perfetto timeline written to {args.perfetto} "
                      f"(open in ui.perfetto.dev)")
    elif args.perfetto:
        print("error: --perfetto needs a telemetry journal "
              f"({TELEMETRY_NAME}); run the campaign with telemetry on",
              file=sys.stderr)
        return 2

    for doc in sorted(failed, key=lambda d: d.get("index", 0)):
        print()
        print(f"Run {doc['run_id']} finished {doc['outcome']} "
              f"(attempts {doc.get('attempts', 1)}): {doc.get('error') or ''}")
        if isinstance(doc.get("cursor"), dict):
            print(_format_cursor(doc["cursor"]))
        if isinstance(doc.get("flight"), dict):
            print(format_flight_dump(doc["flight"], last=args.last))
        else:
            print("  (no flight dump journaled for this run)")

    # live replay cursors: checkpoints of runs that have not finished —
    # a resume fast-forwards each from its last journaled event
    ck_dir = path / CHECKPOINT_DIR_NAME
    if ck_dir.is_dir():
        from .sim import load_checkpoint

        live = []
        for ck_path in sorted(ck_dir.glob("*.json")):
            ck = load_checkpoint(ck_path)
            if ck is not None and (args.run is None
                                   or ck.run_id.startswith(args.run)):
                live.append(ck)
        if live:
            print()
            print(f"Replay checkpoints ({len(live)} in-progress run(s); "
                  f"--resume fast-forwards from these):")
            for ck in live:
                print(f"  {ck.run_id}: event {ck.events}, "
                      f"t={ck.virtual_time:.6g}s virtual, "
                      f"{ck.wall_seconds:.2f}s wall credited")

    # quarantine artifacts: poison runs with their minimized reproducers
    q_dir = path / QUARANTINE_DIR_NAME
    if q_dir.is_dir():
        for q_path in sorted(q_dir.glob("*.json")):
            try:
                q = json.loads(q_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if args.run is not None and \
                    not str(q.get("run_id", "")).startswith(args.run):
                continue
            print()
            print(f"Quarantined run {q.get('run_id')} "
                  f"({q.get('strikes', '?')} strike(s)): {q.get('error') or ''}")
            if isinstance(q.get("cursor"), dict):
                print(_format_cursor(q["cursor"]))
            repro_info = q.get("reproducer") or {}
            if repro_info.get("minimized"):
                print(f"  minimized reproducer: "
                      f"{repro_info.get('original_stmts')} -> "
                      f"{repro_info.get('final_stmts')} statements "
                      f"({repro_info.get('checks')} probe(s)); see {q_path}")
            elif repro_info.get("note"):
                print(f"  reproducer: {repro_info['note']}")
    return 0


def cmd_fuzz(args) -> int:
    """Differentially fuzz the compiler pipeline with generated programs."""
    from .gen import FuzzConfig, FuzzError, FuzzRunner, GrammarConfig, GrammarError
    from .gen.corpus import CorpusError, discover_corpus
    from .gen.harness import DiffConfig

    if args.check_corpus is not None:
        try:
            cases = discover_corpus(args.check_corpus)
        except CorpusError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for case in cases:
            print(f"  {case.name}: expect={case.expect} nprocs={case.nprocs}"
                  + (f"  ({case.reason})" if case.reason else ""))
        print(f"{len(cases)} regression case(s) OK")
        return 0

    try:
        grammar = GrammarConfig.load(args.grammar) if args.grammar else GrammarConfig()
        diff = DiffConfig(
            nprocs=args.nprocs,
            calib_nprocs=args.nprocs,
            machine=args.machine,
            tolerance_pct=args.tolerance,
            backend=args.backend,
        )
        config = FuzzConfig(
            seeds=args.seeds,
            seed0=args.seed0,
            out_dir=args.out,
            grammar=grammar,
            diff=diff,
            minimize=not args.no_minimize,
            budget_seconds=args.budget,
            inject_seed=args.inject_divergence,
        )
        runner = FuzzRunner(config)

        def progress(seed, verdict):
            if not verdict.ok:
                print(f"  seed {seed}: {verdict.failure}: {verdict.detail}")

        report = runner.run(resume=args.resume, progress=progress)
    except (FuzzError, GrammarError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    print(f"report written to {runner.report_path}")
    if report.stopped == "budget":
        hint = [f"python -m repro fuzz --seeds {args.seeds}", f"--out {args.out}"]
        if args.seed0:
            hint.append(f"--seed0 {args.seed0}")
        if args.grammar:
            hint.append(f"--grammar {args.grammar}")
        if args.budget is not None:
            hint.append(f"--budget {args.budget:g}")
        if args.backend != "interpreted":
            hint.append(f"--backend {args.backend}")
        hint.append("--resume")
        print("resume with: " + " ".join(hint))
    return 1 if report.completed > report.ok else 0


def cmd_serve(args) -> int:
    """Run the simulation service until SIGTERM/SIGINT."""
    from .serve import run_server

    return run_server(
        args.store,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        max_bytes=args.max_store_bytes,
        max_inflight=args.max_inflight,
        events_per_second=args.tenant_quota,
        backend=args.backend,
    )


def cmd_query(args) -> int:
    """One what-if query: against a server, a local store, or inline."""
    from .api import ApiError, RunResult

    run = request_from_args(args, nprocs=args.nprocs, mode=args.mode)
    context = {
        "machine": args.machine,
        "calib_procs": args.calib_procs,
        **{k: v for k, v in _budget_kwargs(args).items() if v is not None},
    }
    doc = {"run": run.to_json(), **context}
    try:
        if args.server:
            from .serve import ServiceClient

            host, _, port = args.server.partition(":")
            client = ServiceClient(host or "127.0.0.1", int(port or 8642),
                                   tenant=args.tenant)
            out = client._request("POST", "/v1/run", doc)
        elif args.store:
            from .serve import SimulationService
            from .store import ResultStore

            store = ResultStore(args.store)
            try:
                out = SimulationService(
                    store, jobs=args.jobs, backend=args.backend,
                ).handle_run(doc)
            finally:
                store.close()
        else:  # no cache anywhere: execute inline
            from .workflow.campaign import execute_request

            rec = execute_request(
                run, machine=args.machine, calib_procs=args.calib_procs,
                backend=args.backend,
                **_budget_kwargs(args),
            )
            out = {"result": RunResult.from_record(rec).to_json(),
                   "cached": False, "context": None}
    except ApiError as exc:
        print(f"error [{exc.code}]: {exc.message}", file=sys.stderr)
        if exc.retry_after is not None:
            print(f"retry after {exc.retry_after:g}s", file=sys.stderr)
        return 3 if exc.http_status == 429 else 2
    except ValueError as exc:  # bad --server syntax, unknown machine/app
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(out, indent=1, sort_keys=True))
        return 0
    result = RunResult.from_json(out["result"])
    source = "cache hit" if out.get("cached") else "executed"
    line = f"{run.describe()}: {result.outcome}"
    if result.elapsed is not None:
        line += f" in {result.elapsed:.6g}s virtual"
    line += f" ({result.events} events, {source})"
    print(line)
    print(f"  run {result.run_id}"
          + (f", context {out['context']}" if out.get("context") else ""))
    return 0 if result.ok else 1


def cmd_profile(args) -> int:
    """Profile one run: dual-clock spans, trace analyses, exports."""
    from .obs import (
        METRICS,
        TRACER,
        JsonlSink,
        comm_matrix,
        critical_path,
        detect_scaling_loss,
        format_comm_matrix,
        format_critical_path,
        format_scaling_loss,
        format_spans,
        write_perfetto,
    )
    from .sim import ExecMode

    request_from_args(args, nprocs=args.nprocs, mode=args.mode)  # validate early
    program, _ = _resolve(args, nprocs=args.nprocs)
    mode = {"am": ExecMode.AM, "de": ExecMode.DE, "measured": ExecMode.MEASURED}[args.mode]
    calib_procs = args.calib_procs or min(args.nprocs, 16)
    if args.out:
        # --out DIR: collect every artifact under one directory, using
        # default names for whatever was not explicitly pointed elsewhere
        from pathlib import Path

        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        args.perfetto = args.perfetto or str(out_dir / "profile.perfetto.json")
        args.metrics = args.metrics or str(out_dir / "metrics.jsonl")
        args.trace = args.trace or str(out_dir / "trace.jsonl.gz")
        args.stats = args.stats or str(out_dir / "stats.csv")
    wf = _workflow(args, program, calib_nprocs=calib_procs, calibrate=False)
    _, default_inputs = APPS[args.app]
    runner = {
        ExecMode.AM: wf.run_am, ExecMode.DE: wf.run_de, ExecMode.MEASURED: wf.run_measured,
    }[mode]

    def run_at(nprocs: int):
        inputs = default_inputs(nprocs)
        inputs.update(_parse_overrides(args.set))
        return runner(inputs, nprocs, collect_trace=True)

    TRACER.enable()
    METRICS.enable()
    try:
        result = run_at(args.nprocs)
        scaling_traces = {args.nprocs: result.trace}
        if args.scaling_loss:
            for p in args.procs:
                if p not in scaling_traces:
                    scaling_traces[p] = run_at(p).trace
    finally:
        TRACER.disable()
        METRICS.disable()

    backend_lines = []
    if args.backend in ("compiled", "auto"):
        # One untraced run with observability off: the only state the
        # fast bucket-queue runtime engages in, so its wave/cache
        # counters (reset first) describe exactly this profile.
        import time as _time

        from .kernel import cache_stats, clear_cache

        clear_cache()
        inputs = default_inputs(args.nprocs)
        inputs.update(_parse_overrides(args.set))
        t0 = _time.perf_counter()
        fast = runner(inputs, args.nprocs)
        fast_wall = _time.perf_counter() - t0
        ks = cache_stats()
        active = "compiled"
        if args.backend == "auto" and ks["fallbacks"]:
            active = "interpreted (auto fell back)"
        backend_lines = [
            f"  backend: requested={args.backend} active={active}; "
            f"lowered {ks['lowered']} program(s) in {ks['lowering_seconds'] * 1e3:.1f} ms, "
            f"cache {ks['cache_hits']} hit(s) / {ks['cache_misses']} miss(es), "
            f"{ks['warm_loads']} warm load(s)",
            f"  vectorized delay waves: {ks['waves']} "
            f"({ks['vector_delays']} delays batched, {ks['static_batches']} static site(s))",
            f"  fast run: {fast.stats.total_events} events in {fast_wall:.3f} s wall "
            f"({fast.stats.total_events / fast_wall:,.0f} events/s)",
        ]

    print(f"Profile: {args.app} ({args.mode}, {args.nprocs} procs, {args.machine})")
    print(f"  {result.stats.summary()}")
    for line in backend_lines:
        print(line)
    print()
    print(format_spans(TRACER.spans))
    if args.critical_path:
        print()
        print(format_critical_path(critical_path(result.trace)))
    if args.comm_matrix:
        print()
        print(format_comm_matrix(comm_matrix(result.trace)))
    if args.scaling_loss:
        print()
        print(format_scaling_loss(detect_scaling_loss(scaling_traces)))
    if args.perfetto:
        write_perfetto(
            args.perfetto, trace=result.trace, spans=TRACER.spans,
            meta={"app": args.app, "mode": args.mode, "nprocs": args.nprocs,
                  "machine": args.machine, "repro_version": __version__},
        )
        print(f"\nPerfetto trace written to {args.perfetto} (open in ui.perfetto.dev)")
    if args.metrics:
        METRICS.flush(JsonlSink(args.metrics))
        print(f"metrics written to {args.metrics}")
    if args.trace:
        from .sim import save_trace

        save_trace(result.trace, args.trace)
        print(f"raw trace written to {args.trace}")
    if args.stats:
        from .workflow import write_stats_csv

        write_stats_csv(result.stats, args.stats)
        print(f"per-rank statistics written to {args.stats}")
    if args.out:
        from pathlib import Path

        from .util.atomic_io import atomic_write

        out_dir = Path(args.out)
        artifacts = {
            "perfetto": args.perfetto,
            "metrics": args.metrics,
            "trace": args.trace,
            "stats": args.stats,
        }
        manifest = {
            "app": args.app,
            "mode": args.mode,
            "nprocs": args.nprocs,
            "machine": args.machine,
            "repro_version": __version__,
            "elapsed_s": result.elapsed,
            "artifacts": {
                kind: (str(Path(path).relative_to(out_dir))
                       if Path(path).is_relative_to(out_dir) else str(path))
                for kind, path in artifacts.items() if path
            },
        }
        with atomic_write(out_dir / "manifest.json") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
        print(f"profile artifacts collected in {out_dir} (manifest.json)")
    return 0


# -- parser ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compiler-supported simulation of message-passing applications (SC'99).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="increase log verbosity (-v info, -vv debug); place before the subcommand",
    )
    parser.add_argument(
        "--log-level", metavar="LEVEL", default=None,
        help="explicit log level name (debug/info/warning/error); overrides -v",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list available applications").set_defaults(fn=cmd_apps)

    def add_app_command(name, fn, help_, with_procs=False):
        p = sub.add_parser(name, help=help_)
        p.add_argument("app", help="application name (see 'apps')")
        add_machine_args(p)
        if with_procs:
            p.add_argument("--procs", type=_positive_int, nargs="+", default=[4, 16, 64],
                           help="target processor counts")
            p.add_argument("--calib-procs", type=_positive_int, default=16,
                           help="calibration processor count (default 16)")
            add_seed_arg(p, "noise seed for MEASURED-mode runs (reproducibility)")
        p.set_defaults(fn=fn)
        return p

    add_app_command("compile", cmd_compile, "show the compiler's output for an app")
    stg_p = add_app_command("stg", cmd_stg, "print the static task graph")
    stg_p.add_argument("--dot", metavar="FILE", help="write graphviz DOT instead of text")
    v = add_app_command("validate", cmd_validate, "measured vs DE vs AM", with_procs=True)
    v.add_argument("--no-de", action="store_true", help="skip the direct-execution simulator")
    add_jobs_arg(v, "worker processes for the sweep (0 = all cores, default 1)")
    pr = add_app_command("predict", cmd_predict, "performance predictions", with_procs=True)
    pr.add_argument("--method", choices=("am", "taskgraph", "sum"), default="am",
                    help="predictor: simulated AM (default), task-graph analysis, per-rank sum")
    add_app_command("memory", cmd_memory, "simulator memory estimates", with_procs=True)
    c = add_app_command("calibrate", cmd_calibrate, "measure w_i and write a parameter file")
    c.add_argument("--calib-procs", type=_positive_int, default=16,
                   help="measurement processor count")
    c.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    c.add_argument("-o", "--output", default="wparams.json", help="parameter file path")

    f = add_app_command(
        "faults", cmd_faults, "run an app under a fault plan; print the resilience report"
    )
    f.add_argument("--nprocs", type=_positive_int, default=16,
                   help="target processor count (default 16)")
    f.add_argument("--mode", choices=("am", "de", "measured"), default="de",
                   help="estimator to run under faults (default de)")
    f.add_argument("--plan", metavar="FILE", help="JSON fault-plan file (see DESIGN.md)")
    f.add_argument("--crash", action="append", metavar="RANK@TIME",
                   help="crash a rank at a virtual time (repeatable)")
    f.add_argument("--loss", type=float, default=None, metavar="P",
                   help="message-loss probability in [0,1]")
    f.add_argument("--dup", type=float, default=None, metavar="P",
                   help="message-duplication probability in [0,1]")
    f.add_argument("--send-fail", type=float, default=None, metavar="P",
                   help="transient send-failure probability in [0,1]")
    f.add_argument("--degrade", action="append", metavar="SRC:DST:START:END:LATx:BWx",
                   help="degrade a link over a time window (use * for any rank)")
    f.add_argument("--retry", metavar="MAX[:BACKOFF[:FACTOR]]",
                   help="retry policy for lost/failed messages (e.g. 5:1e-4:2)")
    f.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="default watchdog timeout for blocking sends/receives")
    f.add_argument("--fault-seed", type=int, default=None,
                   help="fault plan seed (deterministic replay)")
    add_seed_arg(f, "noise seed for --mode measured runs")
    f.add_argument("--calib-procs", type=_positive_int, default=None,
                   help="calibration processor count for --mode am")
    f.add_argument("--sweep", type=float, nargs="+", metavar="LOSS",
                   help="run a fault sweep over these loss rates instead of one run")
    f.add_argument("--csv", metavar="FILE",
                   help="write per-rank statistics (fault counters included) as CSV")
    f.add_argument("--flight-dump", metavar="FILE",
                   help="arm the flight recorder and write its dump as JSON "
                        "(render with 'repro inspect FILE')")

    camp = sub.add_parser(
        "campaign",
        help="run (or resume) a crash-safe grid of experiments with a journal",
    )
    camp.add_argument("--grid", required=True, metavar="FILE",
                      help="JSON grid file: apps x modes x nprocs x inputs x fault plans")
    camp.add_argument("--out", default="campaign-out", metavar="DIR",
                      help="output directory for the journal and results.csv")
    camp.add_argument("--resume", action="store_true",
                      help="replay the journal, skip completed runs, finish the rest")
    camp.add_argument("--machine", default=None,
                      help="override the grid's machine preset")
    add_budget_args(camp)
    camp.add_argument("--retries", type=int, default=None,
                      help="re-run attempts for 'error' outcomes (exponential backoff)")
    camp.add_argument("--max-runs", type=_positive_int, default=None,
                      help="execute at most this many runs, then stop (resumable)")
    add_jobs_arg(camp, "worker processes for independent grid cells "
                      "(0 = all cores, default 1); output is identical "
                      "to a sequential run")
    camp.add_argument("--live", action="store_true",
                      help="single-line live progress (runs done, ok/failed/"
                           "retried, aggregate events/sec, ETA)")
    camp.add_argument("--no-telemetry", action="store_true",
                      help="skip per-run telemetry capsules and the merged "
                           "Perfetto timeline (telemetry.jsonl, "
                           "campaign.perfetto.json)")
    camp.add_argument("--no-supervise", action="store_true",
                      help="use the bare process pool instead of the "
                           "supervised runtime (no heartbeats, hang "
                           "detection, or poison quarantine)")
    camp.add_argument("--heartbeat-timeout", type=_positive_float, default=None,
                      metavar="SECONDS",
                      help="kill a worker whose run has not emitted a "
                           "heartbeat for this long and classify the run "
                           "'hung' (default 30)")
    camp.add_argument("--poison-threshold", type=_positive_count, default=None,
                      metavar="N",
                      help="quarantine a run as 'poison' after it kills or "
                           "hangs N workers (default 2)")
    camp.add_argument("--checkpoint-interval", type=_positive_int, default=None,
                      metavar="EVENTS",
                      help="write a replay-cursor checkpoint every EVENTS "
                           "kernel events; --resume fast-forwards interrupted "
                           "runs from the last cursor (default off)")
    add_backend_arg(camp)
    camp.set_defaults(fn=cmd_campaign)

    srv = sub.add_parser(
        "serve",
        help="run the simulation service: HTTP/JSON campaigns and what-ifs "
             "deduplicated against a content-addressed result store",
    )
    srv.add_argument("--store", required=True, metavar="DIR",
                     help="result-store directory (created if missing)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=_nonneg_int, default=8642,
                     help="TCP port (default 8642; 0 = ephemeral)")
    add_jobs_arg(srv, "worker processes per cache-miss batch "
                      "(0 = all cores, default 1)")
    srv.add_argument("--max-inflight", type=_positive_count, default=4,
                     metavar="N",
                     help="per-tenant concurrent-request cap; requests over "
                          "it get 429 (default 4)")
    srv.add_argument("--tenant-quota", type=_positive_float, default=None,
                     metavar="EVENTS_PER_SEC",
                     help="per-tenant simulator-event budget: a token bucket "
                          "refilled at this rate, charged post-paid; "
                          "overdrawn tenants get 429 + Retry-After")
    srv.add_argument("--max-store-bytes", type=_positive_int, default=None,
                     metavar="BYTES",
                     help="LRU-evict stored results beyond this many bytes")
    add_backend_arg(srv)
    srv.set_defaults(fn=cmd_serve)

    q = sub.add_parser(
        "query",
        help="one what-if query: ask a running server, or answer from a "
             "local store, or execute inline",
    )
    q.add_argument("app", help="application name (see 'apps')")
    add_machine_args(q)
    q.add_argument("--mode", choices=("am", "de", "measured"), default="de",
                   help="estimator to query (default de)")
    q.add_argument("--nprocs", type=_positive_int, default=16,
                   help="target processor count (default 16)")
    add_seed_arg(q)
    q.add_argument("--timeout", type=_positive_float, default=None,
                   metavar="SECONDS",
                   help="watchdog timeout for blocking sends/receives")
    q.add_argument("--calib-procs", type=_positive_int, default=2,
                   help="calibration processor count (default 2)")
    add_budget_args(q)
    add_jobs_arg(q, "worker processes for a --store cache miss (default 1)")
    q.add_argument("--server", metavar="HOST:PORT",
                   help="query a running 'repro serve' instance")
    q.add_argument("--store", metavar="DIR",
                   help="serverless mode: answer from this result store, "
                        "executing and filling it on a miss")
    q.add_argument("--tenant", default=None,
                   help="tenant name sent as X-Tenant (admission control)")
    q.add_argument("--json", action="store_true",
                   help="print the raw JSON response document")
    add_backend_arg(q)
    q.set_defaults(fn=cmd_query)

    ins = sub.add_parser(
        "inspect",
        help="post-mortem viewer: campaign out-dirs, result stores, "
             "flight dumps, telemetry",
    )
    ins.add_argument("path",
                     help="campaign output directory, flight-dump JSON file, "
                          "or telemetry .jsonl journal")
    ins.add_argument("--run", metavar="RUN_ID", default=None,
                     help="restrict to one run (unique run-id prefix)")
    ins.add_argument("--last", type=_positive_count, default=10, metavar="N",
                     help="flight-recorder events to show per rank (default 10)")
    ins.add_argument("--perfetto", metavar="FILE",
                     help="write the merged campaign timeline as Perfetto JSON")
    ins.set_defaults(fn=cmd_inspect)

    fz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the pipeline with generated programs "
             "(measured vs DE vs AM), auto-minimizing divergences",
    )
    fz.add_argument("--seeds", type=_positive_count, default=100,
                    help="number of generated programs (default 100)")
    fz.add_argument("--seed0", type=_nonneg_int, default=0,
                    help="first seed of the contiguous range (default 0)")
    fz.add_argument("--out", default="fuzz-out", metavar="DIR",
                    help="output directory: journal.jsonl, report.json, minimized/")
    fz.add_argument("--grammar", metavar="FILE",
                    help="JSON grammar config (budgets, pattern weights, toggles)")
    fz.add_argument("--budget", type=_positive_float, default=None, metavar="SECONDS",
                    help="wall-clock budget; stop starting new seeds when exceeded")
    fz.add_argument("--resume", action="store_true",
                    help="replay the journal, skip completed seeds, finish the rest")
    fz.add_argument("--no-minimize", action="store_true",
                    help="skip delta-debugging of divergent programs")
    fz.add_argument("--nprocs", type=_positive_int, default=4,
                    help="simulated processor count per program (default 4)")
    add_machine_args(fz, with_set=False)
    fz.add_argument("--tolerance", type=_positive_float, default=15.0,
                    metavar="PCT",
                    help="noise slack in percentage points on the AM >= DE "
                         "error ordering (default 15)")
    fz.add_argument("--check-corpus", metavar="DIR",
                    help="validate a regression-corpus directory and exit")
    fz.add_argument("--inject-divergence", type=_nonneg_int, default=None,
                    metavar="SEED",
                    help="force one seed to report a synthetic divergence "
                         "(exercises the minimizer end-to-end)")
    fz.add_argument("--backend", choices=("interpreted", "compiled", "auto"),
                    default="interpreted",
                    help="also run every valid program on this kernel backend "
                         "and fail on any stats/trace divergence from the "
                         "interpreted kernel (default interpreted = off)")
    fz.set_defaults(fn=cmd_fuzz)

    prof = add_app_command(
        "profile", cmd_profile,
        "profile a run: spans, critical path, comm matrix, Perfetto export",
    )
    prof.add_argument("--nprocs", type=_positive_int, default=16,
                      help="target processor count (default 16)")
    prof.add_argument("--mode", choices=("am", "de", "measured"), default="de",
                      help="estimator to profile (default de)")
    add_seed_arg(prof, "noise seed for --mode measured runs")
    prof.add_argument("--calib-procs", type=_positive_int, default=None,
                      help="calibration processor count for --mode am")
    prof.add_argument("--perfetto", metavar="FILE",
                      help="write a Chrome/Perfetto trace-event JSON timeline")
    prof.add_argument("--critical-path", action="store_true",
                      help="report per-rank/per-kind contributions to the elapsed time")
    prof.add_argument("--comm-matrix", action="store_true",
                      help="report the rank x rank message/byte matrix")
    prof.add_argument("--scaling-loss", action="store_true",
                      help="diff traces across --procs and rank fastest-growing event kinds")
    prof.add_argument("--procs", type=_positive_int, nargs="+", default=[4, 16],
                      help="extra processor counts for --scaling-loss (default 4 16)")
    prof.add_argument("--metrics", metavar="FILE",
                      help="write the metrics registry snapshot as JSONL")
    prof.add_argument("--trace", metavar="FILE",
                      help="save the raw event trace (.jsonl or .jsonl.gz)")
    prof.add_argument("--stats", metavar="FILE",
                      help="write per-rank statistics as CSV")
    prof.add_argument("--out", metavar="DIR",
                      help="collect all artifacts (Perfetto, metrics, trace, "
                           "stats CSV) under DIR with a manifest.json")
    add_backend_arg(prof)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .obs.logging import configure_logging, verbosity_to_level

    configure_logging(
        args.log_level if args.log_level is not None
        else verbosity_to_level(args.verbose)
    )
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. `repro inspect ... | head`): not an error,
        # but Python would print a traceback at interpreter shutdown unless
        # the dangling descriptor is replaced
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
