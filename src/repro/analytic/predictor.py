"""Pure-analytic performance prediction from the compiled model.

The POEMS goal the paper closes with: "we aim to support any
combination of analytical modeling, simulation modeling and measurement
for the sequential tasks and the communication code."  This module is
the fully-analytical corner of that matrix — no discrete-event
simulation at all, in the spirit of the "abstract simulation" systems
([9, 10]) the introduction contrasts against, but built *from the
compiler's model*, so control flow is still honoured:

each rank's simplified program is executed locally (control flow and
sliced scalar code run for real), while every operation is priced by a
closed-form model — delays by their scaling functions, point-to-point
by latency+bandwidth with no partner synchronization, collectives by
the tree model.  The estimate is the slowest rank's total.

Because inter-process blocking is ignored, the estimate is
near-exact for bulk-synchronous codes and a *lower bound* for
pipelined ones — quantifying exactly what detailed communication
simulation buys (see the abstract-communication ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.interp import make_factory
from ..ir.nodes import Program
from ..machine import CpuModel, MachineParams, NetworkModel
from ..sim.requests import (
    Alloc,
    Collective,
    CollectiveResult,
    Compute,
    Delay,
    Free,
    Irecv,
    Isend,
    Now,
    ReceivedMessage,
    Recv,
    RequestHandle,
    Send,
    Wait,
)

__all__ = ["AnalyticPrediction", "analytic_predict"]


@dataclass(frozen=True)
class AnalyticPrediction:
    """Per-rank analytic cost totals and the resulting estimate."""

    per_rank: tuple[float, ...]
    compute: tuple[float, ...]
    comm: tuple[float, ...]

    @property
    def elapsed(self) -> float:
        """The estimate: the slowest rank's total (no blocking modelled)."""
        return max(self.per_rank)

    @property
    def imbalance(self) -> float:
        """max/mean per-rank cost — the analytic load-balance indicator."""
        mean = sum(self.per_rank) / len(self.per_rank)
        return self.elapsed / mean if mean > 0 else 1.0


def analytic_predict(
    program: Program,
    inputs: dict,
    nprocs: int,
    machine: MachineParams,
    wparams: dict[str, float] | None = None,
) -> AnalyticPrediction:
    """Price *program* rank by rank with closed-form models only."""
    cpu = CpuModel(machine.cpu)
    net = NetworkModel(machine.net)
    factory = make_factory(program, inputs, wparams=wparams)
    totals, computes, comms = [], [], []
    for rank in range(nprocs):
        t_comp = 0.0
        t_comm = 0.0
        gen = factory(rank, nprocs)
        value = None
        hid = 0
        try:
            while True:
                req = gen.send(value)
                value = None
                ty = type(req)
                if ty is Compute:
                    t_comp += cpu.task_time(req.ops, req.working_set_bytes)
                elif ty is Delay:
                    t_comp += req.seconds
                elif ty is Send:
                    t_comm += net.send_overhead(req.nbytes)
                elif ty is Recv:
                    n = req.nbytes_hint
                    t_comm += net.transit_time(n) + net.recv_overhead(n)
                    value = ReceivedMessage(data=None, nbytes=n, source=0, tag=req.tag, now=0.0)
                elif ty is Isend:
                    t_comm += net.send_overhead(req.nbytes)
                    hid += 1
                    value = RequestHandle(hid, "send")
                elif ty is Irecv:
                    # the message cost is charged here; Wait is then free
                    n = req.nbytes_hint
                    t_comm += net.transit_time(n) + net.recv_overhead(n)
                    hid += 1
                    value = RequestHandle(hid, "recv")
                elif ty is Wait:
                    value = [
                        ReceivedMessage(data=None, nbytes=0, source=0, tag=0, now=0.0)
                        if h.kind == "recv"
                        else 0.0
                        for h in req.handles
                    ]
                elif ty is Collective:
                    t_comm += net.collective_time(req.op, req.nbytes, nprocs)
                    value = CollectiveResult(data=_collective_stub(req, wparams), now=0.0)
                elif ty in (Alloc, Free):
                    pass
                elif ty is Now:
                    value = t_comp + t_comm
                else:
                    raise TypeError(f"analytic predictor cannot price {req!r}")
        except StopIteration:
            pass
        totals.append(t_comp + t_comm)
        computes.append(t_comp)
        comms.append(t_comm)
    return AnalyticPrediction(tuple(totals), tuple(computes), tuple(comms))


def _collective_stub(req: Collective, wparams: dict | None):
    """A result payload good enough for the simplified programs: the
    parameter broadcast needs its dict back on every rank (the executor
    runs each rank in isolation, so non-root ranks never see root's
    payload); everything else is timing-only."""
    if req.op == "bcast":
        if req.data is not None:
            return req.data
        return dict(wparams or {})
    return None
