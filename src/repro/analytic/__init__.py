"""Pure-analytic prediction (the POEMS fully-analytical modeling corner):
per-rank cost summation and dynamic-task-graph longest-path analysis."""

from .predictor import AnalyticPrediction, analytic_predict
from .taskgraph import TaskGraphPrediction, taskgraph_predict

__all__ = [
    "AnalyticPrediction",
    "analytic_predict",
    "TaskGraphPrediction",
    "taskgraph_predict",
]
