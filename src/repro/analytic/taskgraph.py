"""Task-graph analytical prediction: longest path through the dynamic DAG.

The second analytical corner of the POEMS modeling matrix (after the
per-rank summation of :mod:`repro.analytic.predictor`): expand the
program into its *dynamic task graph* for a concrete configuration —
per-rank operation chains, message edges matched send-to-receive, and
collective joins — and predict execution time as the longest weighted
path.  No discrete-event simulation: ordering effects that depend on
*resources* (rendezvous hand-shakes, unexpected-message queueing) are
ignored, but precedence-driven pipelines (Sweep3D's wavefronts) are
captured exactly, unlike the per-rank summation.

This is the representation-level analysis the static-task-graph papers
([2, 3]) build toward: "The static task graph provides a convenient
program representation to support such a flexible modeling
environment."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.interp import make_factory
from ..ir.nodes import Program
from ..machine import CpuModel, MachineParams, NetworkModel
from ..sim.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Alloc,
    Collective,
    CollectiveResult,
    Compute,
    Delay,
    Free,
    Irecv,
    Isend,
    Now,
    ReceivedMessage,
    Recv,
    RequestHandle,
    Send,
    Wait,
)

__all__ = ["TaskGraphPrediction", "taskgraph_predict"]


@dataclass(frozen=True)
class TaskGraphPrediction:
    """Longest-path estimate plus graph statistics."""

    elapsed: float
    nodes: int
    messages: int
    critical_rank: int  # rank on which the longest path terminates


class _Node:
    __slots__ = ("cost", "deps", "finish")

    def __init__(self, cost: float):
        self.cost = cost
        self.deps: list[tuple[int, float]] = []  # (node id, edge weight)
        self.finish = 0.0


def taskgraph_predict(
    program: Program,
    inputs: dict,
    nprocs: int,
    machine: MachineParams,
    wparams: dict[str, float] | None = None,
) -> TaskGraphPrediction:
    """Expand *program*'s dynamic task graph and take its longest path."""
    cpu = CpuModel(machine.cpu)
    net = NetworkModel(machine.net)
    factory = make_factory(program, inputs, wparams=wparams)

    nodes: list[_Node] = []
    last_of_rank: list[int | None] = [None] * nprocs
    # FIFO matching state per (src, dst, tag): unmatched send node ids /
    # unmatched recv node ids
    pending_sends: dict[tuple[int, int, int], list[tuple[int, int]]] = {}
    pending_recvs: dict[tuple[int, int, int], list[int]] = {}
    colls: dict[int, list[int]] = {}  # collective index -> member node ids
    coll_meta: dict[int, tuple[str, int]] = {}
    messages = 0

    def new_node(rank: int, cost: float, chain: bool = True) -> int:
        nid = len(nodes)
        node = _Node(cost)
        if chain and last_of_rank[rank] is not None:
            node.deps.append((last_of_rank[rank], 0.0))
        nodes.append(node)
        if chain:
            last_of_rank[rank] = nid
        return nid

    def match_send(rank: int, dest: int, tag: int, nbytes: int, nid: int) -> None:
        nonlocal messages
        messages += 1
        key = (rank, dest, tag)
        if pending_recvs.get(key):
            rnid = pending_recvs[key].pop(0)
            nodes[rnid].deps.append((nid, net.transit_time(nbytes)))
        else:
            pending_sends.setdefault(key, []).append((nid, nbytes))

    def match_recv(rank: int, source: int, tag: int, nid: int) -> None:
        if source == ANY_SOURCE or tag == ANY_TAG:
            raise ValueError(
                "the task-graph predictor requires fully-specified receives "
                "(wildcard matching is resource-dependent)"
            )
        key = (source, rank, tag)
        if pending_sends.get(key):
            snid, nbytes = pending_sends[key].pop(0)
            nodes[nid].deps.append((snid, net.transit_time(nbytes)))
        else:
            pending_recvs.setdefault(key, []).append(nid)

    for rank in range(nprocs):
        gen = factory(rank, nprocs)
        value = None
        hid = 0
        handle_nodes: dict[int, int] = {}
        coll_count = 0
        try:
            while True:
                req = gen.send(value)
                value = None
                ty = type(req)
                if ty is Compute:
                    new_node(rank, cpu.task_time(req.ops, req.working_set_bytes))
                elif ty is Delay:
                    new_node(rank, req.seconds)
                elif ty is Send:
                    nid = new_node(rank, net.send_overhead(req.nbytes))
                    match_send(rank, req.dest, req.tag, req.nbytes, nid)
                elif ty is Recv:
                    nid = new_node(rank, net.recv_overhead(req.nbytes_hint))
                    match_recv(rank, req.source, req.tag, nid)
                    value = ReceivedMessage(None, req.nbytes_hint, req.source, req.tag, 0.0)
                elif ty is Isend:
                    nid = new_node(rank, net.send_overhead(req.nbytes))
                    match_send(rank, req.dest, req.tag, req.nbytes, nid)
                    hid += 1
                    handle_nodes[hid] = nid
                    value = RequestHandle(hid, "send")
                elif ty is Irecv:
                    # off-chain node: the completion joins at the Wait
                    nid = new_node(rank, net.recv_overhead(req.nbytes_hint), chain=False)
                    if last_of_rank[rank] is not None:
                        nodes[nid].deps.append((last_of_rank[rank], 0.0))
                    match_recv(rank, req.source, req.tag, nid)
                    hid += 1
                    handle_nodes[hid] = nid
                    value = RequestHandle(hid, "recv")
                elif ty is Wait:
                    nid = new_node(rank, 0.0)
                    results = []
                    for h in req.handles:
                        nodes[nid].deps.append((handle_nodes.pop(h.hid), 0.0))
                        results.append(
                            ReceivedMessage(None, 0, 0, 0, 0.0) if h.kind == "recv" else 0.0
                        )
                    value = results
                elif ty is Collective:
                    nid = new_node(rank, 0.0)
                    colls.setdefault(coll_count, []).append(nid)
                    coll_meta[coll_count] = (
                        req.op,
                        max(req.nbytes, coll_meta.get(coll_count, ("", 0))[1]),
                    )
                    coll_count += 1
                    value = CollectiveResult(_stub(req, wparams), 0.0)
                elif ty in (Alloc, Free):
                    pass
                elif ty is Now:
                    value = 0.0
                else:
                    raise TypeError(f"task-graph predictor cannot expand {req!r}")
        except StopIteration:
            pass

    unmatched = sum(len(v) for v in pending_sends.values()) + sum(
        len(v) for v in pending_recvs.values()
    )
    if unmatched:
        raise ValueError(f"{unmatched} unmatched point-to-point operation(s) in the expansion")

    # collective joins: all members depend on all members' predecessors,
    # and each member's cost is the collective's model time
    for idx, members in colls.items():
        op, nbytes = coll_meta[idx]
        duration = net.collective_time(op, nbytes, nprocs)
        preds = []
        for m in members:
            preds.extend(nodes[m].deps)
            nodes[m].cost = duration
        for m in members:
            nodes[m].deps = list(preds)

    # longest path (node ids are already topological: deps precede uses
    # except cross-rank message edges, handled by iterating until stable)
    changed = True
    rounds = 0
    max_rounds = max(64, 8 * nprocs)
    while changed:
        changed = False
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("task-graph longest path did not converge (cyclic matching?)")
        for node in nodes:
            start = 0.0
            for dep, w in node.deps:
                t = nodes[dep].finish + w
                if t > start:
                    start = t
            finish = start + node.cost
            if finish > node.finish + 1e-18:
                node.finish = finish
                changed = True

    elapsed = 0.0
    critical_rank = 0
    for rank in range(nprocs):
        nid = last_of_rank[rank]
        if nid is not None and nodes[nid].finish > elapsed:
            elapsed = nodes[nid].finish
            critical_rank = rank
    return TaskGraphPrediction(
        elapsed=elapsed, nodes=len(nodes), messages=messages, critical_rank=critical_rank
    )


def _stub(req: Collective, wparams):
    if req.op == "bcast":
        return req.data if req.data is not None else dict(wparams or {})
    return None
