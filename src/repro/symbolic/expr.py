"""Symbolic integer/real expressions for scaling functions and loop bounds.

The static task graph (STG) of the paper is "a compact, symbolic
representation of the parallel structure of a program, independent of
specific program input values or the number of processors".  Everything
symbolic in this reproduction — per-task scaling functions, loop trip
counts, communication volumes, process-set bounds — is built from the
small expression language in this module.

Expressions are immutable and hashable; arithmetic operators build new
(lightly simplified) expressions, so model code reads naturally::

    N, P = Var("N"), Var("P")
    b = ceil_div(N, P)
    work = (N - 2) * (Min(N, b * (Var("myid") + 1)) - Max(2, b * Var("myid") + 1))

Evaluation is exact over Python ints when all leaves are ints, which the
compiler relies on for iteration counts.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Union

Number = Union[int, float]
ExprLike = Union["Expr", int, float]

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Add",
    "Mul",
    "Div",
    "FloorDiv",
    "CeilDiv",
    "Mod",
    "Min",
    "Max",
    "as_expr",
    "ceil_div",
    "floor_div",
    "UnboundVariableError",
    "ZERO",
    "ONE",
]


class UnboundVariableError(KeyError):
    """Raised when evaluating an expression with unbound free variables."""

    def __init__(self, names):
        self.names = tuple(sorted(names))
        super().__init__(f"unbound variable(s): {', '.join(self.names)}")


def as_expr(value: ExprLike) -> "Expr":
    """Coerce a Python number or :class:`Expr` into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject to avoid confusion
        raise TypeError("booleans are not arithmetic expressions")
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to a symbolic expression")


class Expr:
    """Base class of all symbolic arithmetic expressions.

    Subclasses must implement :meth:`_key`, :meth:`evaluate`,
    :meth:`subs`, :meth:`free_vars` and ``__str__``.
    """

    __slots__ = ("_hash", "_compiled", "_craw")

    # -- structural identity ------------------------------------------------
    def _key(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other):
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return NotImplemented
        return not eq

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
            return h

    # -- core protocol -------------------------------------------------------
    def evaluate(self, env: Mapping[str, Number]) -> Number:
        """Evaluate under *env* mapping variable names to numbers."""
        raise NotImplementedError

    def compile(self):
        """Lower this expression to a plain Python closure, once.

        Returns a cached ``fn(env) -> Number`` whose result is always
        identical to :meth:`evaluate`, including
        :class:`UnboundVariableError` on missing bindings.  Repeated
        evaluation (per-rank scaling functions, AM ``delay()``
        arguments) pays the tree walk once at compile time instead of
        on every call.
        """
        try:
            return self._compiled
        except AttributeError:
            pass
        raw = self._compile_raw()

        def fn(env, _raw=raw, _tree=self.evaluate):
            try:
                return _raw(env)
            except KeyError:
                # missing binding: re-walk the tree so the error carries
                # the precise variable name(s), exactly as evaluate()
                return _tree(env)

        object.__setattr__(self, "_compiled", fn)
        return fn

    def _compile_raw(self):
        """The bare compiled closure, without the missing-binding guard.

        Internal composition hook (:meth:`compile`, the boolean layer):
        a raw closure raises ``KeyError`` on an unbound variable, so it
        must only run under a top-level wrapper that falls back to the
        tree walk for the precise :class:`UnboundVariableError`.
        """
        try:
            return self._craw
        except AttributeError:
            pass
        ns: dict = {"_fd": FloorDiv._apply, "_cd": CeilDiv._apply}
        raw = eval("lambda env: " + _emit(self, ns), ns)  # noqa: PGH001 - controlled codegen
        object.__setattr__(self, "_craw", raw)
        return raw

    def subs(self, mapping: Mapping[str, ExprLike]) -> "Expr":
        """Substitute variables by expressions, returning a new expression."""
        raise NotImplementedError

    def free_vars(self) -> frozenset:
        """The set of free variable names occurring in this expression."""
        raise NotImplementedError

    # -- arithmetic sugar ------------------------------------------------------
    def __add__(self, other):
        return Add.make(self, as_expr(other))

    def __radd__(self, other):
        return Add.make(as_expr(other), self)

    def __sub__(self, other):
        return Add.make(self, Mul.make(Const(-1), as_expr(other)))

    def __rsub__(self, other):
        return Add.make(as_expr(other), Mul.make(Const(-1), self))

    def __mul__(self, other):
        return Mul.make(self, as_expr(other))

    def __rmul__(self, other):
        return Mul.make(as_expr(other), self)

    def __truediv__(self, other):
        return Div.make(self, as_expr(other))

    def __rtruediv__(self, other):
        return Div.make(as_expr(other), self)

    def __floordiv__(self, other):
        return FloorDiv.make(self, as_expr(other))

    def __rfloordiv__(self, other):
        return FloorDiv.make(as_expr(other), self)

    def __mod__(self, other):
        return Mod.make(self, as_expr(other))

    def __rmod__(self, other):
        return Mod.make(as_expr(other), self)

    def __neg__(self):
        return Mul.make(Const(-1), self)

    def __pos__(self):
        return self

    def __repr__(self):
        return f"{type(self).__name__}<{self}>"

    # -- pickling -------------------------------------------------------------
    # Caches (_hash, _fvs, _compiled, _craw) are rebuilt on demand; the
    # compiled ones hold unpicklable closures, so state excludes them all.
    def __getstate__(self):
        state = {}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name in ("_hash", "_fvs", "_compiled", "_craw"):
                    continue
                try:
                    state[name] = getattr(self, name)
                except AttributeError:
                    pass
        return (None, state)

    def __setstate__(self, state):
        for name, value in state[1].items():
            object.__setattr__(self, name, value)

    # -- helpers ---------------------------------------------------------------
    def is_constant(self) -> bool:
        return not self.free_vars()

    def constant_value(self) -> Number:
        """Value of a closed expression (no free variables)."""
        return self.evaluate({})


class Const(Expr):
    """A literal integer or float."""

    __slots__ = ("value",)

    def __init__(self, value: Number):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"Const requires int or float, got {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Const is immutable")

    def _key(self):
        return ("const", self.value, type(self.value).__name__)

    def evaluate(self, env):
        return self.value

    def subs(self, mapping):
        return self

    def free_vars(self):
        return frozenset()

    def __str__(self):
        return str(self.value)


ZERO = Const(0)
ONE = Const(1)


class Var(Expr):
    """A free variable (program input, loop index, rank, or ``w_i`` parameter)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("variable name must be a non-empty string")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Var is immutable")

    def _key(self):
        return ("var", self.name)

    def evaluate(self, env):
        try:
            return env[self.name]
        except KeyError:
            raise UnboundVariableError([self.name]) from None

    def subs(self, mapping):
        if self.name in mapping:
            return as_expr(mapping[self.name])
        return self

    def free_vars(self):
        return frozenset((self.name,))

    def __str__(self):
        return self.name


class _NAry(Expr):
    """Shared machinery for flattened n-ary operators (Add, Mul, Min, Max)."""

    __slots__ = ("args", "_fvs")

    #: identity element folded away at construction (None = no identity)
    IDENTITY: Number | None = None
    SYMBOL = "?"

    def __init__(self, args):
        args = tuple(args)
        if len(args) < 1:
            raise ValueError(f"{type(self).__name__} needs at least one argument")
        object.__setattr__(self, "args", args)

    def __setattr__(self, name, value):
        if name in ("_hash", "_fvs"):
            object.__setattr__(self, name, value)
            return
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _key(self):
        return (type(self).__name__,) + tuple(a._key() for a in self.args)

    def free_vars(self):
        try:
            return self._fvs
        except AttributeError:
            fvs = frozenset().union(*(a.free_vars() for a in self.args))
            self._fvs = fvs
            return fvs

    @classmethod
    def _fold(cls, a: Number, b: Number) -> Number:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def make(cls, *args: ExprLike) -> Expr:
        """Smart constructor: flatten, fold constants, drop identities."""
        flat: list[Expr] = []
        const: Number | None = None
        stack = [as_expr(a) for a in reversed(args)]
        while stack:
            a = stack.pop()
            if isinstance(a, cls):
                stack.extend(reversed(a.args))
            elif isinstance(a, Const):
                const = a.value if const is None else cls._fold(const, a.value)
            else:
                flat.append(a)
        return cls._finish(flat, const)

    @classmethod
    def _finish(cls, flat: list[Expr], const: Number | None) -> Expr:
        if const is not None and const != cls.IDENTITY:
            flat = flat + [Const(const)]
        if not flat:
            return Const(cls.IDENTITY if cls.IDENTITY is not None else const)
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def subs(self, mapping):
        return type(self).make(*(a.subs(mapping) for a in self.args))


class Add(_NAry):
    """Sum of terms.  Construct with :meth:`Add.make` for simplification."""

    __slots__ = ()
    IDENTITY = 0
    SYMBOL = "+"

    @classmethod
    def _fold(cls, a, b):
        return a + b

    def evaluate(self, env):
        # no pre-check of bindings: Var.evaluate already raises a precise
        # UnboundVariableError, and this is the hottest evaluation path
        return sum(a.evaluate(env) for a in self.args)

    def __str__(self):
        parts = []
        for i, a in enumerate(self.args):
            s = str(a)
            if i == 0:
                parts.append(s)
            elif s.startswith("-"):
                parts.append(f"- {s[1:]}")
            else:
                parts.append(f"+ {s}")
        return " ".join(parts)


class Mul(_NAry):
    """Product of factors.  A leading ``Const(0)`` annihilates the product."""

    __slots__ = ()
    IDENTITY = 1
    SYMBOL = "*"

    @classmethod
    def _fold(cls, a, b):
        return a * b

    @classmethod
    def _finish(cls, flat, const):
        if const == 0:
            return ZERO
        return super()._finish(flat, const)

    def evaluate(self, env):
        out: Number = 1
        for a in self.args:
            out = out * a.evaluate(env)
        return out

    def __str__(self):
        def wrap(a):
            s = str(a)
            return f"({s})" if isinstance(a, Add) else s

        return "*".join(wrap(a) for a in self.args)


class Min(_NAry):
    """n-ary minimum."""

    __slots__ = ()
    IDENTITY = None
    SYMBOL = "min"

    @classmethod
    def _fold(cls, a, b):
        return min(a, b)

    @classmethod
    def _finish(cls, flat, const):
        # de-duplicate structurally-equal operands
        seen, uniq = set(), []
        for a in flat:
            if a not in seen:
                seen.add(a)
                uniq.append(a)
        if const is not None:
            uniq = uniq + [Const(const)]
        if not uniq:
            raise ValueError("empty min()")
        if len(uniq) == 1:
            return uniq[0]
        return cls(uniq)

    def evaluate(self, env):
        return min(a.evaluate(env) for a in self.args)

    def __str__(self):
        return f"min({', '.join(str(a) for a in self.args)})"


class Max(Min):
    """n-ary maximum (shares Min's de-duplicating constructor)."""

    __slots__ = ()
    SYMBOL = "max"

    @classmethod
    def _fold(cls, a, b):
        return max(a, b)

    def evaluate(self, env):
        return max(a.evaluate(env) for a in self.args)

    def __str__(self):
        return f"max({', '.join(str(a) for a in self.args)})"


class _Binary(Expr):
    """Shared machinery for binary operators."""

    __slots__ = ("a", "b", "_fvs")
    SYMBOL = "?"

    def __init__(self, a: Expr, b: Expr):
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    def __setattr__(self, name, value):
        if name in ("_hash", "_fvs"):
            object.__setattr__(self, name, value)
            return
        raise AttributeError(f"{type(self).__name__} is immutable")

    def _key(self):
        return (type(self).__name__, self.a._key(), self.b._key())

    def free_vars(self):
        try:
            return self._fvs
        except AttributeError:
            fvs = self.a.free_vars() | self.b.free_vars()
            self._fvs = fvs
            return fvs

    @classmethod
    def _apply(cls, a: Number, b: Number) -> Number:  # pragma: no cover - abstract
        raise NotImplementedError

    @classmethod
    def make(cls, a: ExprLike, b: ExprLike) -> Expr:
        a, b = as_expr(a), as_expr(b)
        if isinstance(a, Const) and isinstance(b, Const):
            return Const(cls._apply(a.value, b.value))
        if isinstance(b, Const) and b.value == 1 and cls in (Div, FloorDiv, CeilDiv):
            return a
        return cls(a, b)

    def evaluate(self, env):
        return type(self)._apply(self.a.evaluate(env), self.b.evaluate(env))

    def subs(self, mapping):
        return type(self).make(self.a.subs(mapping), self.b.subs(mapping))

    def __str__(self):
        def wrap(x):
            s = str(x)
            return f"({s})" if isinstance(x, (Add, Mul, _Binary)) else s

        return f"{wrap(self.a)} {self.SYMBOL} {wrap(self.b)}"


class Div(_Binary):
    """Exact (real) division — used in scaling functions and rates."""

    __slots__ = ()
    SYMBOL = "/"

    @classmethod
    def _apply(cls, a, b):
        return a / b


class FloorDiv(_Binary):
    """Floor division (Python ``//`` semantics, exact over ints)."""

    __slots__ = ()
    SYMBOL = "//"

    @classmethod
    def _apply(cls, a, b):
        if isinstance(a, int) and isinstance(b, int):
            return a // b
        return math.floor(a / b)


class CeilDiv(_Binary):
    """Ceiling division — block sizes like ``b = ceil(N / P)``."""

    __slots__ = ()
    SYMBOL = "ceildiv"

    @classmethod
    def _apply(cls, a, b):
        if isinstance(a, int) and isinstance(b, int):
            return -((-a) // b)
        return math.ceil(a / b)

    def __str__(self):
        return f"ceil({self.a} / {self.b})"


class Mod(_Binary):
    """Modulo (Python ``%`` semantics) — grid coordinates from ranks."""

    __slots__ = ()
    SYMBOL = "%"

    @classmethod
    def _apply(cls, a, b):
        return a % b


def _emit(node: Expr, ns: dict) -> str:
    """Source fragment evaluating *node* against a dict named ``env``.

    Helper of :meth:`Expr.compile`.  Known node kinds lower to flat
    arithmetic; anything else (extended nodes like ``Sum`` / ``Cond``)
    falls back to a captured reference to its own ``evaluate``.
    """
    ty = type(node)
    if ty is Const:
        return f"({node.value!r})"
    if ty is Var:
        return f"env[{node.name!r}]"
    if ty is Add:
        return "(" + " + ".join(_emit(a, ns) for a in node.args) + ")"
    if ty is Mul:
        return "(" + " * ".join(_emit(a, ns) for a in node.args) + ")"
    if ty is Max:  # before Min: Max subclasses Min
        return "max(" + ", ".join(_emit(a, ns) for a in node.args) + ")"
    if ty is Min:
        return "min(" + ", ".join(_emit(a, ns) for a in node.args) + ")"
    if ty is Div:
        return f"({_emit(node.a, ns)} / {_emit(node.b, ns)})"
    if ty is FloorDiv:
        return f"_fd({_emit(node.a, ns)}, {_emit(node.b, ns)})"
    if ty is CeilDiv:
        return f"_cd({_emit(node.a, ns)}, {_emit(node.b, ns)})"
    if ty is Mod:
        return f"({_emit(node.a, ns)} % {_emit(node.b, ns)})"
    ref = f"_r{len(ns)}"
    ns[ref] = node.evaluate
    return f"{ref}(env)"


def ceil_div(a: ExprLike, b: ExprLike) -> Expr:
    """``ceil(a / b)`` as a symbolic expression."""
    return CeilDiv.make(a, b)


def floor_div(a: ExprLike, b: ExprLike) -> Expr:
    """``floor(a / b)`` as a symbolic expression."""
    return FloorDiv.make(a, b)
