"""Extended symbolic nodes used by the compiler's scaling functions.

Three constructs beyond plain arithmetic are needed to express the
scaling functions of condensed tasks (Sec. 3 of the paper):

* :class:`Index` — an array element reference.  "In the NAS benchmark
  SP, the grid sizes for each processor are computed and stored in an
  array, which is then used in most loop bounds. [...] We simply retain
  the executable symbolic scaling expressions, including references to
  such arrays, in the simplified code and evaluate them at execution
  time."  Evaluation environments may therefore bind names to sequences
  (NumPy arrays) as well as numbers.

* :class:`Sum` — symbolic summation over a loop variable; the cost of a
  condensed loop nest whose body cost varies with the loop index.  When
  the body is index-independent the constructor collapses to the closed
  form ``(hi - lo + 1) * body``.

* :class:`Cond` — arithmetic if-then-else; the cost of a condensed
  branch whose condition involves only retained variables (``myid``
  tests and the like), and the probability-weighted cost of eliminated
  data-dependent branches.
"""

from __future__ import annotations

from .boolean import BoolExpr, as_bool_expr
from .expr import Expr, ExprLike, UnboundVariableError, Var, as_expr

__all__ = ["Index", "Sum", "Cond"]


class Index(Expr):
    """Array element reference ``base[index]`` inside a symbolic expression."""

    __slots__ = ("base", "index")

    def __init__(self, base: str, index: Expr):
        if not isinstance(base, str) or not base:
            raise TypeError("array name must be a non-empty string")
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "index", index)

    def __setattr__(self, name, value):
        if name == "_hash":
            object.__setattr__(self, name, value)
            return
        raise AttributeError("Index is immutable")

    @classmethod
    def make(cls, base: str, index: ExprLike) -> "Index":
        return cls(base, as_expr(index))

    def _key(self):
        return ("index", self.base, self.index._key())

    def evaluate(self, env):
        try:
            arr = env[self.base]
        except KeyError:
            raise UnboundVariableError([self.base]) from None
        i = int(self.index.evaluate(env))
        return arr[i]

    def subs(self, mapping):
        # the array itself cannot be substituted by an expression,
        # only re-indexed
        return Index(self.base, self.index.subs(mapping))

    def free_vars(self):
        return self.index.free_vars() | {self.base}

    def __str__(self):
        return f"{self.base}[{self.index}]"


class Sum(Expr):
    """Symbolic summation ``sum(body for var in lo..hi)`` (inclusive bounds)."""

    __slots__ = ("var", "lo", "hi", "body")

    def __init__(self, var: str, lo: Expr, hi: Expr, body: Expr):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "body", body)

    def __setattr__(self, name, value):
        if name == "_hash":
            object.__setattr__(self, name, value)
            return
        raise AttributeError("Sum is immutable")

    @classmethod
    def make(cls, var: str, lo: ExprLike, hi: ExprLike, body: ExprLike) -> Expr:
        lo, hi, body = as_expr(lo), as_expr(hi), as_expr(body)
        if var not in body.free_vars():
            # index-independent body: closed form (trip count may still be
            # negative symbolically; Max with 0 guards the empty loop)
            from .expr import Max

            return Max.make(hi - lo + 1, 0) * body
        return cls(var, lo, hi, body)

    def _key(self):
        return ("sum", self.var, self.lo._key(), self.hi._key(), self.body._key())

    def evaluate(self, env):
        lo = int(self.lo.evaluate(env))
        hi = int(self.hi.evaluate(env))
        if hi < lo:
            return 0
        scope = dict(env)
        total = 0
        for i in range(lo, hi + 1):
            scope[self.var] = i
            total += self.body.evaluate(scope)
        return total

    def subs(self, mapping):
        # the bound variable is shadowed inside the body
        inner = {k: v for k, v in mapping.items() if k != self.var}
        return Sum.make(self.var, self.lo.subs(mapping), self.hi.subs(mapping), self.body.subs(inner))

    def free_vars(self):
        return self.lo.free_vars() | self.hi.free_vars() | (self.body.free_vars() - {self.var})

    def __str__(self):
        return f"sum({self.body} for {self.var} in {self.lo}..{self.hi})"


class Cond(Expr):
    """Arithmetic conditional: ``then if cond else orelse``."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: BoolExpr, then: Expr, orelse: Expr):
        object.__setattr__(self, "cond", cond)
        object.__setattr__(self, "then", then)
        object.__setattr__(self, "orelse", orelse)

    def __setattr__(self, name, value):
        if name == "_hash":
            object.__setattr__(self, name, value)
            return
        raise AttributeError("Cond is immutable")

    @classmethod
    def make(cls, cond, then: ExprLike, orelse: ExprLike) -> Expr:
        cond = as_bool_expr(cond)
        then, orelse = as_expr(then), as_expr(orelse)
        from .boolean import BoolConst

        if isinstance(cond, BoolConst):
            return then if cond.value else orelse
        if then == orelse:
            return then
        return cls(cond, then, orelse)

    def _key(self):
        return ("cond", self.cond._key(), self.then._key(), self.orelse._key())

    def evaluate(self, env):
        if self.cond.evaluate(env):
            return self.then.evaluate(env)
        return self.orelse.evaluate(env)

    def subs(self, mapping):
        return Cond.make(
            self.cond.subs(mapping), self.then.subs(mapping), self.orelse.subs(mapping)
        )

    def free_vars(self):
        return self.cond.free_vars() | self.then.free_vars() | self.orelse.free_vars()

    def __str__(self):
        return f"({self.then} if {self.cond} else {self.orelse})"
