"""Symbolic process sets and rank mappings for the static task graph.

Each STG node "represents a set of possible parallel tasks, typically one
per process, identified by a symbolic set of integer process identifiers"
(paper, Sec. 2.2), e.g. ``{[p] : 0 <= p <= P-1}``.  Each communication
edge carries "a symbolic integer mapping" between tasks, e.g.
``{[p] -> [q] : q = p-1, p >= 1}``.

Rank spaces are one-dimensional here (MPI ranks); multi-dimensional
process grids (Sweep3D, NAS SP) are expressed through ``Mod``/``FloorDiv``
expressions over the rank, exactly as the generated MPI code computes its
grid coordinates from ``myid``.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from .boolean import TRUE, BoolExpr, Ge, Le, as_bool_expr
from .expr import Expr, ExprLike, Number, Var, as_expr

__all__ = ["ProcessSet", "RankMapping", "all_processes", "RANK"]

#: Canonical symbolic rank variable used in process sets and mappings.
RANK = Var("p")


class ProcessSet:
    """A symbolic set of process ranks ``{[p] : lo <= p <= hi and guard}``.

    *lo*, *hi* and *guard* may reference program variables (``P``, ``N``,
    grid extents ...) as well as the bound rank variable ``p``.
    """

    __slots__ = ("lo", "hi", "guard")

    def __init__(self, lo: ExprLike, hi: ExprLike, guard: BoolExpr | bool = True):
        self.lo = as_expr(lo)
        self.hi = as_expr(hi)
        self.guard = as_bool_expr(guard)

    # -- identity -----------------------------------------------------------
    def _key(self):
        return (self.lo, self.hi, self.guard)

    def __eq__(self, other):
        if not isinstance(other, ProcessSet):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        return hash(("ProcessSet",) + self._key())

    # -- semantics ------------------------------------------------------------
    def predicate(self) -> BoolExpr:
        """The full membership predicate over the rank variable ``p``."""
        return Ge(RANK, self.lo) & Le(RANK, self.hi) & self.guard

    def contains(self, rank: int, env: Mapping[str, Number]) -> bool:
        """Is *rank* a member under the concrete environment *env*?"""
        scope = dict(env)
        scope[RANK.name] = rank
        return self.predicate().evaluate(scope)

    def members(self, env: Mapping[str, Number]) -> Iterator[int]:
        """Enumerate concrete member ranks under *env* (ascending)."""
        lo = int(self.lo.evaluate(env))
        hi = int(self.hi.evaluate(env))
        for rank in range(lo, hi + 1):
            scope = dict(env)
            scope[RANK.name] = rank
            if self.guard.evaluate(scope):
                yield rank

    def cardinality(self, env: Mapping[str, Number]) -> int:
        """Number of member ranks under *env*."""
        return sum(1 for _ in self.members(env))

    def free_vars(self) -> frozenset:
        fvs = self.lo.free_vars() | self.hi.free_vars() | self.guard.free_vars()
        return fvs - {RANK.name}

    def restrict(self, guard: BoolExpr) -> "ProcessSet":
        """Return a copy with an additional guard conjunct."""
        return ProcessSet(self.lo, self.hi, self.guard & guard)

    def __str__(self):
        body = f"{self.lo} <= p <= {self.hi}"
        if self.guard != TRUE:
            body += f" and {self.guard}"
        return "{[p] : " + body + "}"

    def __repr__(self):
        return f"ProcessSet<{self}>"


def all_processes(nprocs: ExprLike = Var("P")) -> ProcessSet:
    """The full rank set ``{[p] : 0 <= p <= nprocs-1}``."""
    return ProcessSet(0, as_expr(nprocs) - 1)


class RankMapping:
    """A symbolic mapping from a sender rank ``p`` to a partner rank.

    ``target`` is an expression over ``p`` (and program variables);
    ``guard`` limits the domain, e.g. the paper's shift example is
    ``RankMapping(target=p-1, guard=p >= 1)``.
    """

    __slots__ = ("target", "guard")

    def __init__(self, target: ExprLike, guard: BoolExpr | bool = True):
        self.target = as_expr(target)
        self.guard = as_bool_expr(guard)

    def _key(self):
        return (self.target, self.guard)

    def __eq__(self, other):
        if not isinstance(other, RankMapping):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        return hash(("RankMapping",) + self._key())

    def applies(self, rank: int, env: Mapping[str, Number]) -> bool:
        """Does the mapping have an image for *rank* under *env*?"""
        scope = dict(env)
        scope[RANK.name] = rank
        return self.guard.evaluate(scope)

    def apply(self, rank: int, env: Mapping[str, Number]) -> int | None:
        """The partner of *rank* under *env*, or None when guarded out."""
        scope = dict(env)
        scope[RANK.name] = rank
        if not self.guard.evaluate(scope):
            return None
        return int(self.target.evaluate(scope))

    def pairs(self, env: Mapping[str, Number], domain: ProcessSet) -> Iterator[tuple[int, int]]:
        """Enumerate concrete ``(p, q)`` pairs for members of *domain*."""
        for rank in domain.members(env):
            q = self.apply(rank, env)
            if q is not None:
                yield rank, q

    def free_vars(self) -> frozenset:
        return (self.target.free_vars() | self.guard.free_vars()) - {RANK.name}

    def __str__(self):
        body = f"q = {self.target}"
        if self.guard != TRUE:
            body += f", {self.guard}"
        return "{[p] -> [q] : " + body + "}"

    def __repr__(self):
        return f"RankMapping<{self}>"
