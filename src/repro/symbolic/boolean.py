"""Symbolic boolean conditions.

Used for branch conditions in the program IR (``if (myid .gt. 0)``) and
for the guards of communication mappings in the static task graph
(e.g. "process ``p`` sends to ``p-1`` provided ``p >= 1``").
"""

from __future__ import annotations

import operator
from collections.abc import Mapping

from .expr import Expr, ExprLike, Number, as_expr

__all__ = [
    "BoolExpr",
    "BoolConst",
    "Cmp",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "Lt",
    "Le",
    "Gt",
    "Ge",
    "Eq",
    "Ne",
    "as_bool_expr",
]

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


class BoolExpr:
    """Base class of symbolic boolean expressions."""

    __slots__ = ("_hash", "_compiled", "_craw")

    def _key(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, BoolExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        try:
            return self._hash
        except AttributeError:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
            return h

    def evaluate(self, env: Mapping[str, Number]) -> bool:
        raise NotImplementedError

    def compile(self):
        """Cached closure evaluating this condition (see ``Expr.compile``)."""
        try:
            return self._compiled
        except AttributeError:
            pass
        raw = self._compile_raw()

        def fn(env, _raw=raw, _tree=self.evaluate):
            try:
                return _raw(env)
            except KeyError:
                # a raw arithmetic closure hit a missing binding: re-walk
                # the tree for the precise UnboundVariableError
                return _tree(env)

        object.__setattr__(self, "_compiled", fn)
        return fn

    def _compile_raw(self):
        """Cached unguarded closure (internal composition hook)."""
        try:
            return self._craw
        except AttributeError:
            pass
        raw = self._compile()
        object.__setattr__(self, "_craw", raw)
        return raw

    def _compile(self):
        return self.evaluate

    # caches hold closures; rebuild them instead of pickling (see Expr)
    def __getstate__(self):
        state = {}
        for cls in type(self).__mro__:
            for name in getattr(cls, "__slots__", ()):
                if name in ("_hash", "_compiled", "_craw"):
                    continue
                try:
                    state[name] = getattr(self, name)
                except AttributeError:
                    pass
        return (None, state)

    def __setstate__(self, state):
        for name, value in state[1].items():
            object.__setattr__(self, name, value)

    def subs(self, mapping) -> "BoolExpr":
        raise NotImplementedError

    def free_vars(self) -> frozenset:
        raise NotImplementedError

    def __and__(self, other):
        return And.make(self, other)

    def __or__(self, other):
        return Or.make(self, other)

    def __invert__(self):
        return Not.make(self)

    def __repr__(self):
        return f"{type(self).__name__}<{self}>"


class BoolConst(BoolExpr):
    """Literal true/false."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name, value):
        if name == "_hash":
            object.__setattr__(self, name, value)
            return
        raise AttributeError("BoolConst is immutable")

    def _key(self):
        return ("bconst", self.value)

    def evaluate(self, env):
        return self.value

    def _compile(self):
        value = self.value
        return lambda env: value

    def subs(self, mapping):
        return self

    def free_vars(self):
        return frozenset()

    def __str__(self):
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class Cmp(BoolExpr):
    """Comparison between two arithmetic expressions."""

    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Expr, b: Expr):
        if op not in _OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "a", a)
        object.__setattr__(self, "b", b)

    def __setattr__(self, name, value):
        if name == "_hash":
            object.__setattr__(self, name, value)
            return
        raise AttributeError("Cmp is immutable")

    @classmethod
    def make(cls, op: str, a: ExprLike, b: ExprLike) -> BoolExpr:
        a, b = as_expr(a), as_expr(b)
        if a.is_constant() and b.is_constant():
            return BoolConst(_OPS[op](a.constant_value(), b.constant_value()))
        return cls(op, a, b)

    def _key(self):
        return ("cmp", self.op, self.a._key(), self.b._key())

    def evaluate(self, env):
        return _OPS[self.op](self.a.evaluate(env), self.b.evaluate(env))

    def _compile(self):
        op, fa, fb = _OPS[self.op], self.a._compile_raw(), self.b._compile_raw()
        return lambda env: op(fa(env), fb(env))

    def subs(self, mapping):
        return Cmp.make(self.op, self.a.subs(mapping), self.b.subs(mapping))

    def free_vars(self):
        return self.a.free_vars() | self.b.free_vars()

    def __str__(self):
        return f"{self.a} {self.op} {self.b}"


class _Junction(BoolExpr):
    """Shared machinery for And/Or."""

    __slots__ = ("args",)
    #: value that short-circuits the junction
    DOMINATOR = False
    SYMBOL = "?"

    def __init__(self, args):
        object.__setattr__(self, "args", tuple(args))

    def __setattr__(self, name, value):
        if name == "_hash":
            object.__setattr__(self, name, value)
            return
        raise AttributeError(f"{type(self).__name__} is immutable")

    @classmethod
    def make(cls, *args) -> BoolExpr:
        flat: list[BoolExpr] = []
        stack = list(reversed(args))
        while stack:
            a = stack.pop()
            if not isinstance(a, BoolExpr):
                raise TypeError(f"expected BoolExpr, got {a!r}")
            if isinstance(a, cls):
                stack.extend(reversed(a.args))
            elif isinstance(a, BoolConst):
                if a.value == cls.DOMINATOR:
                    return BoolConst(cls.DOMINATOR)
                # identity element: drop
            else:
                flat.append(a)
        if not flat:
            return BoolConst(not cls.DOMINATOR)
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def _key(self):
        return (type(self).__name__,) + tuple(a._key() for a in self.args)

    def subs(self, mapping):
        return type(self).make(*(a.subs(mapping) for a in self.args))

    def free_vars(self):
        return frozenset().union(*(a.free_vars() for a in self.args))

    def __str__(self):
        return f" {self.SYMBOL} ".join(
            f"({a})" if isinstance(a, _Junction) else str(a) for a in self.args
        )


class And(_Junction):
    """Logical conjunction."""

    __slots__ = ()
    DOMINATOR = False
    SYMBOL = "and"

    def evaluate(self, env):
        return all(a.evaluate(env) for a in self.args)

    def _compile(self):
        fns = tuple(a._compile_raw() for a in self.args)
        if len(fns) == 2:
            fa, fb = fns
            return lambda env: fa(env) and fb(env)
        if len(fns) == 3:
            fa, fb, fc = fns
            return lambda env: fa(env) and fb(env) and fc(env)
        return lambda env: all(f(env) for f in fns)


class Or(_Junction):
    """Logical disjunction."""

    __slots__ = ()
    DOMINATOR = True
    SYMBOL = "or"

    def evaluate(self, env):
        return any(a.evaluate(env) for a in self.args)

    def _compile(self):
        fns = tuple(a._compile_raw() for a in self.args)
        if len(fns) == 2:
            fa, fb = fns
            return lambda env: fa(env) or fb(env)
        if len(fns) == 3:
            fa, fb, fc = fns
            return lambda env: fa(env) or fb(env) or fc(env)
        return lambda env: any(f(env) for f in fns)


class Not(BoolExpr):
    """Logical negation."""

    __slots__ = ("arg",)

    _NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}

    def __init__(self, arg: BoolExpr):
        object.__setattr__(self, "arg", arg)

    def __setattr__(self, name, value):
        if name == "_hash":
            object.__setattr__(self, name, value)
            return
        raise AttributeError("Not is immutable")

    @classmethod
    def make(cls, arg: BoolExpr) -> BoolExpr:
        if isinstance(arg, BoolConst):
            return BoolConst(not arg.value)
        if isinstance(arg, Not):
            return arg.arg
        if isinstance(arg, Cmp):
            return Cmp(cls._NEGATED[arg.op], arg.a, arg.b)
        return cls(arg)

    def _key(self):
        return ("not", self.arg._key())

    def evaluate(self, env):
        return not self.arg.evaluate(env)

    def _compile(self):
        fa = self.arg._compile_raw()
        return lambda env: not fa(env)

    def subs(self, mapping):
        return Not.make(self.arg.subs(mapping))

    def free_vars(self):
        return self.arg.free_vars()

    def __str__(self):
        return f"not ({self.arg})"


def Lt(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a < b``."""
    return Cmp.make("<", a, b)


def Le(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a <= b``."""
    return Cmp.make("<=", a, b)


def Gt(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a > b``."""
    return Cmp.make(">", a, b)


def Ge(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a >= b``."""
    return Cmp.make(">=", a, b)


def Eq(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a == b``."""
    return Cmp.make("==", a, b)


def Ne(a: ExprLike, b: ExprLike) -> BoolExpr:
    """``a != b``."""
    return Cmp.make("!=", a, b)


def as_bool_expr(value) -> BoolExpr:
    """Coerce a Python bool or BoolExpr into a :class:`BoolExpr`."""
    if isinstance(value, BoolExpr):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    raise TypeError(f"cannot convert {value!r} to a boolean expression")
