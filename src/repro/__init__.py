"""repro — Compiler-Supported Simulation of Highly Scalable Parallel Applications.

A production-quality reproduction of Adve, Bagrodia, Deelman, Phan &
Sakellariou (SC 1999): the MPI-Sim direct-execution parallel simulator
integrated with dhpf-style compiler support — static task graphs,
condensation with symbolic scaling functions, program slicing and
simplified-code generation — enabling simulation of message-passing
applications on target systems of up to 10,000 processors.

Quick start::

    from repro.apps import build_sweep3d, sweep3d_inputs
    from repro.machine import IBM_SP
    from repro.workflow import ModelingWorkflow

    wf = ModelingWorkflow(build_sweep3d(), IBM_SP,
                          calib_inputs=sweep3d_inputs(48, 48, 64, 16),
                          calib_nprocs=16)
    am = wf.run_am(sweep3d_inputs(96, 96, 64, 64), nprocs=64)
    print(am.elapsed, am.memory)

Package map (one subpackage per subsystem, see DESIGN.md):

====================  =====================================================
``repro.symbolic``    symbolic expressions, process sets, rank mappings
``repro.machine``     target/host machine models (IBM SP, Origin 2000)
``repro.ir``          message-passing program IR + interpreter
``repro.mpi``         virtual MPI API and message matching
``repro.sim``         the discrete-event simulation kernel (MPI-Sim)
``repro.stg``         static task graph: synthesis, condensation, dynamic
``repro.slicing``     program slicing
``repro.codegen``     simplified / instrumented program generation
``repro.measure``     w_i measurement and parameter files
``repro.apps``        Sweep3D, NAS SP, Tomcatv, SAMPLE
``repro.workflow``    the Fig. 2 pipeline, validation, reporting
``repro.parallel``    host-machine performance and memory-feasibility model
``repro.hpf``         mini-HPF front-end (the dhpf substrate)
``repro.analytic``    pure-analytic predictor (POEMS modeling corner)
``repro.obs``         observability: spans, metrics, Perfetto, analyses
====================  =====================================================
"""

from . import (
    analytic,
    apps,
    codegen,
    hpf,
    ir,
    machine,
    measure,
    mpi,
    obs,
    parallel,
    sim,
    slicing,
    stg,
    symbolic,
    workflow,
)
from .codegen import compile_program
from .machine import IBM_SP, ORIGIN_2000, get_machine
from .sim import ExecMode, Simulator
from .workflow import ModelingWorkflow, validate

__version__ = "1.0.0"

__all__ = [
    "symbolic",
    "machine",
    "ir",
    "mpi",
    "sim",
    "stg",
    "slicing",
    "codegen",
    "measure",
    "apps",
    "workflow",
    "parallel",
    "hpf",
    "analytic",
    "obs",
    "Simulator",
    "ExecMode",
    "compile_program",
    "ModelingWorkflow",
    "validate",
    "IBM_SP",
    "ORIGIN_2000",
    "get_machine",
    "__version__",
]
