"""Event tracing: the dependency-annotated record of a simulation run.

The host-performance model (``repro.parallel``) replays this trace onto
a set of host processors to predict how long MPI-Sim itself would take,
sequentially or in parallel under a conservative protocol.  Each event
records its virtual-time interval on the target, the host CPU cost of
simulating it, and its cross-process dependencies (message receipt,
collective membership).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One simulated event.

    ``deps`` lists globally-unique ids of events on *other* processes
    that must be simulated before this one (same-process program order
    is implicit in event order).  ``coll_id`` groups the per-participant
    events of one collective operation, which synchronize all ranks.
    """

    eid: int
    proc: int
    kind: str  # compute | delay | send | recv | wait | collective
    start: float  # local virtual time when the event begins
    end: float  # local virtual time when it completes
    host_cost: float  # host CPU seconds to simulate this event
    deps: tuple[int, ...] = ()
    coll_id: int | None = None
    nbytes: int = 0
    #: Kernel-side completion of a non-blocking operation: occupies the
    #: host when it occurs but does not order against the process's own
    #: subsequent actions (only the matching "wait" event joins it).
    nonblocking: bool = False


@dataclass
class Trace:
    """An append-only event log for one simulation run."""

    nprocs: int
    events: list[TraceEvent] = field(default_factory=list)

    def add(self, **kwargs) -> int:
        """Append an event, assigning the next event id; returns the id."""
        eid = len(self.events)
        self.events.append(TraceEvent(eid=eid, **kwargs))
        return eid

    def __len__(self):
        return len(self.events)

    def by_proc(self) -> list[list[TraceEvent]]:
        """Events grouped per process, in program order."""
        out: list[list[TraceEvent]] = [[] for _ in range(self.nprocs)]
        for ev in self.events:
            out[ev.proc].append(ev)
        return out

    def total_host_cost(self) -> float:
        return sum(ev.host_cost for ev in self.events)
