"""The flight recorder: a bounded black box for post-mortem forensics.

When a simulation dies — deadlock, tripped watchdog budget, a
fault-plan-induced failure deep inside a campaign worker — the
exception message says *what* happened but not *what led up to it*.
The :class:`FlightRecorder` keeps the last N kernel events in a ring
buffer (a ``collections.deque`` with ``maxlen``), so the moment of
death comes with its immediate history: which ranks were active, what
they were doing, and in what virtual-time order.

Cost contract (the same one the tracer and metrics registry hold to):

* **Disabled (the default), the recorder adds zero hot-loop calls.**
  :meth:`repro.sim.Simulator.run` tests ``FLIGHT.enabled`` once per run
  and dispatches to the unrecorded event loop; the recorded variant is
  a separate drain function that only exists on the enabled path.
* **Enabled, the ring is bounded.**  Recording is one ``deque.append``
  of a small tuple per event; memory is ``O(capacity)`` regardless of
  run length, and events evicted from the ring are counted, not kept.

Dumps are plain dicts (JSON-safe) so they can ride inside campaign
journal records, fuzz failure reports and telemetry capsules.  The
engine attaches a dump to :class:`~repro.sim.engine.DeadlockError` and
:class:`~repro.sim.budget.BudgetExceededError` automatically; for any
other failure the consumer calls :meth:`FlightRecorder.dump` itself —
the ring survives until the next ``reset()``.
"""

from __future__ import annotations

from collections import deque

__all__ = ["FlightRecorder", "FLIGHT", "format_flight_dump"]

#: dump schema version (bump when the dict shape changes)
DUMP_FORMAT = 1

#: default ring capacity: enough context to read a failure, small
#: enough to ride inside a journal record
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring buffer of kernel events; use the shared :data:`FLIGHT`.

    Each recorded event is a ``(t, rank, kind)`` tuple: virtual time,
    target rank, and the event kind (``resume``/``send``/``recv``/
    ``isend``/``irecv``/``wait``/``collective``/``crash``/``timeout``).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = False
        self.capacity = capacity
        self._events: deque[tuple[float, int, str]] = deque(maxlen=capacity)
        self._seen = 0
        self._meta: dict = {}

    # -- lifecycle -----------------------------------------------------------
    def enable(self, capacity: int | None = None, reset: bool = True) -> None:
        if capacity is not None and capacity != self.capacity:
            if capacity < 1:
                raise ValueError(f"capacity must be >= 1, got {capacity}")
            self.capacity = capacity
            self._events = deque(self._events, maxlen=capacity)
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._events.clear()
        self._seen = 0
        self._meta = {}

    # -- recording (enabled path only) ---------------------------------------
    def note(self, **meta) -> None:
        """Attach run metadata (mode, nprocs, seed) to subsequent dumps."""
        self._meta.update(meta)

    def record(self, t: float, rank: int, kind: str) -> None:
        """Record one kernel event; O(1), bounded by the ring capacity."""
        self._seen += 1
        self._events.append((t, rank, kind))

    # -- the dump -------------------------------------------------------------
    @property
    def events(self) -> list[tuple[float, int, str]]:
        return list(self._events)

    @property
    def events_seen(self) -> int:
        """Total events recorded since the last reset (evicted included)."""
        return self._seen

    def dump(self, wait_chain: dict | None = None, budget: dict | None = None,
             error: str | None = None) -> dict:
        """Snapshot the ring as a JSON-safe post-mortem record.

        *wait_chain* is a serialized :class:`~repro.sim.faults.DeadlockReport`
        (see :func:`deadlock_report_to_dict`), *budget* a
        :meth:`~repro.sim.budget.BudgetGuard.snapshot`, *error* the
        one-line failure description.  All are optional — a dump without
        them is still the event history.
        """
        doc: dict = {
            "format": DUMP_FORMAT,
            "capacity": self.capacity,
            "events_seen": self._seen,
            "events_dropped": max(0, self._seen - len(self._events)),
            "events": [[t, rank, kind] for t, rank, kind in self._events],
        }
        if self._meta:
            doc["meta"] = dict(self._meta)
        if error is not None:
            doc["error"] = error
        if wait_chain is not None:
            doc["wait_chain"] = wait_chain
        if budget is not None:
            doc["budget"] = budget
        return doc


#: The process-wide recorder the kernel consults (once per run).
FLIGHT = FlightRecorder()


def deadlock_report_to_dict(report) -> dict:
    """Serialize a :class:`~repro.sim.faults.DeadlockReport` for a dump."""
    return {
        "nprocs": report.nprocs,
        "blocked": [
            {
                "rank": w.rank,
                "state": w.state,
                "since": w.since,
                "detail": w.detail,
                "waiting_on": list(w.waiting_on),
            }
            for w in report.blocked
        ],
        "crashed": [
            {"rank": w.rank, "since": w.since, "detail": w.detail}
            for w in report.crashed
        ],
        "cycles": [list(c) for c in report.cycles()],
        "unmatched_sends": [list(s) for s in report.unmatched_sends],
        "unmatched_recvs": [list(r) for r in report.unmatched_recvs],
        "stragglers": [
            [op, root, list(members), list(arrived), list(missing)]
            for op, root, members, arrived, missing in report.stragglers
        ],
    }


def format_flight_dump(dump: dict, last: int = 10) -> str:
    """Render a flight-recorder dump: per-rank tails, waits, budget.

    *last* bounds the per-rank event tail (the newest events win).
    """
    lines = ["Flight recorder dump"]
    meta = dump.get("meta") or {}
    if meta:
        lines.append("  " + " ".join(f"{k}={v}" for k, v in sorted(meta.items())))
    if dump.get("error"):
        lines.append(f"  error: {dump['error']}")
    seen = dump.get("events_seen", 0)
    dropped = dump.get("events_dropped", 0)
    lines.append(
        f"  {seen} events seen, {len(dump.get('events', []))} retained"
        + (f", {dropped} evicted from the ring" if dropped else "")
    )
    per_rank: dict[int, list[tuple[float, str]]] = {}
    for t, rank, kind in dump.get("events", []):
        per_rank.setdefault(int(rank), []).append((float(t), str(kind)))
    for rank in sorted(per_rank):
        tail = per_rank[rank][-last:]
        rendered = " ".join(f"{kind}@{t:.6g}" for t, kind in tail)
        lines.append(f"  rank {rank}: last {len(tail)} event(s): {rendered}")
    wait = dump.get("wait_chain")
    if wait:
        lines.append("  wait chains:")
        for w in wait.get("blocked", []):
            on = (
                " <- waiting on rank(s) "
                + ", ".join(str(r) for r in w.get("waiting_on", []))
                if w.get("waiting_on")
                else ""
            )
            lines.append(f"    rank {w['rank']}: {w['detail']}{on}")
        for w in wait.get("crashed", []):
            lines.append(f"    rank {w['rank']}: {w['detail']}")
        for cyc in wait.get("cycles", []):
            chain = " -> ".join(str(r) for r in cyc + cyc[:1])
            lines.append(f"    circular wait: {chain}")
    budget = dump.get("budget")
    if budget:
        parts = [f"events={budget.get('events')}"]
        for key in ("max_events", "max_virtual_time", "max_wall_seconds"):
            if budget.get(key) is not None:
                parts.append(f"{key}={budget[key]:g}")
        if budget.get("wall_seconds") is not None:
            parts.append(f"wall_seconds={budget['wall_seconds']:.3g}")
        lines.append("  budget state: " + " ".join(parts))
    return "\n".join(lines)
