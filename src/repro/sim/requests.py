"""Simulation requests: the protocol between target programs and the kernel.

A simulated target process is a Python generator.  It ``yield``s request
objects to the simulation kernel — the analogue of MPI-Sim "trapping"
MPI calls — and is resumed with a result once the kernel has advanced
virtual time.  Local computation is requested explicitly (``Compute``
for code the simulator executes/prices, ``Delay`` for the compiler's
condensed tasks), mirroring how MPI-Sim directly executes local code but
models communication.

Requests validate their arguments at construction, so a malformed
program fails with a clear ``ValueError`` at the call site instead of a
deep ``KeyError`` inside the engine.  ``Send``/``Recv`` (and their
non-blocking variants) accept an optional ``timeout``: instead of
blocking forever, the operation completes with a :class:`TimedOut`
status once *timeout* virtual seconds pass without a match.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "Compute",
    "Delay",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "Collective",
    "Alloc",
    "Free",
    "Now",
    "ReceivedMessage",
    "CollectiveResult",
    "RequestHandle",
    "TimedOut",
    "SendFailed",
]

#: Wildcard source rank for Recv (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard message tag for Recv (MPI_ANY_TAG).
ANY_TAG = -1


_INF = math.inf


def _check_finite(name: str, value: float) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


def _check_timeout(timeout: float | None) -> None:
    if timeout is None:
        return
    if not math.isfinite(timeout) or timeout < 0:
        raise ValueError(f"timeout must be finite and >= 0, got {timeout!r}")


def _check_source(source: int) -> None:
    if source < 0 and source != ANY_SOURCE:
        raise ValueError(f"invalid source rank: {source} (use ANY_SOURCE for wildcards)")


class Request:
    """Base class of all kernel requests (marker)."""

    __slots__ = ()


@dataclass(slots=True, unsafe_hash=True)
class Compute(Request):
    """Execute local computation: *ops* abstract operations over a
    working set of *working_set_bytes*.  Priced by the CPU model; under
    measurement runs the time is also what instrumentation timers see."""

    ops: float
    working_set_bytes: float = 0.0
    task: str | None = None  # STG task this computation belongs to (for timing)

    def __post_init__(self):
        # one comparison chain accepts the valid case (NaN fails it too);
        # the slow path re-checks to raise the precise error
        if not (0 <= self.ops < _INF and 0 <= self.working_set_bytes < _INF):
            _check_finite("op count", self.ops)
            if self.ops < 0:
                raise ValueError(f"negative op count: {self.ops}")
            _check_finite("working set", self.working_set_bytes)
            raise ValueError(f"negative working set: {self.working_set_bytes}")


@dataclass(slots=True, unsafe_hash=True)
class Delay(Request):
    """Advance the simulation clock of this thread by *seconds*.

    This is the special simulator-provided function of Sec. 2.2: the
    simplified MPI program calls it instead of running condensed tasks.
    """

    seconds: float
    task: str | None = None

    def __post_init__(self):
        if not (0 <= self.seconds < _INF):
            _check_finite("delay", self.seconds)
            raise ValueError(f"negative delay: {self.seconds}")


@dataclass(slots=True, unsafe_hash=True)
class Send(Request):
    """Blocking-buffered send of *nbytes* to *dest* with *tag*.

    Eager messages complete locally after the send overhead; messages
    above the eager limit use a rendezvous protocol and block until the
    matching receive is posted (MPI-Sim's communication semantics).
    With a *timeout*, a rendezvous send that stays unmatched completes
    with :class:`TimedOut` after *timeout* virtual seconds.
    """

    dest: int
    nbytes: int
    tag: int = 0
    data: Any = None
    timeout: float | None = None

    def __post_init__(self):
        if not (0 <= self.nbytes < _INF) or self.dest < 0:
            _check_finite("message size", self.nbytes)
            if self.nbytes < 0:
                raise ValueError(f"negative message size: {self.nbytes}")
            raise ValueError(f"invalid destination rank: {self.dest}")
        if self.timeout is not None:
            _check_timeout(self.timeout)


@dataclass(slots=True, unsafe_hash=True)
class Recv(Request):
    """Blocking receive matching (*source*, *tag*); wildcards allowed.

    ``nbytes_hint`` is the expected message size (the posted buffer's
    extent); the kernel ignores it — matching determines the real size —
    but closed-form estimators (repro.analytic) price receives with it.
    With a *timeout*, the receive completes with :class:`TimedOut` if no
    message matches within *timeout* virtual seconds.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes_hint: int = 0
    timeout: float | None = None

    def __post_init__(self):
        source = self.source
        if source < 0 and source != ANY_SOURCE:
            _check_source(source)
        if self.timeout is not None:
            _check_timeout(self.timeout)


@dataclass(slots=True, unsafe_hash=True)
class RequestHandle:
    """Opaque handle to a pending non-blocking operation (MPI_Request)."""

    hid: int
    kind: str  # "send" | "recv"


@dataclass(slots=True, unsafe_hash=True)
class Isend(Request):
    """Non-blocking send: returns a :class:`RequestHandle` immediately.

    The issuing process continues after the injection overhead; the
    handle completes when the message is buffered (eager) or when the
    matching receive has been posted and the transfer started
    (rendezvous).  With a *timeout*, an unmatched rendezvous handle
    completes with :class:`TimedOut` instead of pending forever.
    """

    dest: int
    nbytes: int
    tag: int = 0
    data: Any = None
    timeout: float | None = None

    def __post_init__(self):
        if not (0 <= self.nbytes < _INF) or self.dest < 0:
            _check_finite("message size", self.nbytes)
            if self.nbytes < 0:
                raise ValueError(f"negative message size: {self.nbytes}")
            raise ValueError(f"invalid destination rank: {self.dest}")
        if self.timeout is not None:
            _check_timeout(self.timeout)


@dataclass(slots=True, unsafe_hash=True)
class Irecv(Request):
    """Non-blocking receive: posts the match and returns a handle.

    With a *timeout*, the handle completes with :class:`TimedOut` if no
    message matches in time.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes_hint: int = 0
    timeout: float | None = None

    def __post_init__(self):
        source = self.source
        if source < 0 and source != ANY_SOURCE:
            _check_source(source)
        if self.timeout is not None:
            _check_timeout(self.timeout)


@dataclass(slots=True, unsafe_hash=True)
class Wait(Request):
    """Block until every handle completes (MPI_Wait / MPI_Waitall).

    Resumes with a list of per-handle results in handle order:
    :class:`ReceivedMessage` for receives, completion time for sends,
    :class:`TimedOut` / :class:`SendFailed` for handles that failed.
    """

    handles: tuple

    def __post_init__(self):
        for h in self.handles:
            if not isinstance(h, RequestHandle):
                raise TypeError(f"Wait expects RequestHandle, got {h!r}")


@dataclass(slots=True, unsafe_hash=True)
class Collective(Request):
    """A collective operation over a communicator.

    ``group`` is the sorted tuple of participating ranks (None = the
    world communicator).  Participants must issue their group's
    collectives in the same order with the same *op* and *root*; the
    kernel checks this.  ``data`` is the local contribution (root's
    payload for bcast, operand for reductions); ``reduce_fn`` combines
    contributions pairwise for reduce/allreduce.  ``root`` is a rank in
    the group (a world rank, not a group-relative index).
    """

    op: str
    nbytes: int = 0
    root: int = 0
    data: Any = None
    reduce_fn: Callable[[Any, Any], Any] | None = field(default=None, compare=False)
    group: tuple[int, ...] | None = None

    def __post_init__(self):
        _check_finite("collective payload", self.nbytes)
        if self.nbytes < 0:
            raise ValueError(f"negative collective payload: {self.nbytes}")
        if self.root < 0:
            raise ValueError(f"invalid collective root: {self.root}")
        if self.group is not None:
            if len(self.group) == 0:
                raise ValueError("empty communicator group")
            if list(self.group) != sorted(set(self.group)):
                raise ValueError(f"group must be sorted and duplicate-free: {self.group}")


@dataclass(slots=True, unsafe_hash=True)
class Alloc(Request):
    """Account *nbytes* of target-program memory under *name*.

    MPI-Sim's memory footprint is "at least as large as that of the
    target application"; this is how the application reports its arrays
    to the simulator's memory accounting.
    """

    name: str
    nbytes: int

    def __post_init__(self):
        _check_finite("allocation", self.nbytes)
        if self.nbytes < 0:
            raise ValueError(f"negative allocation: {self.nbytes}")


@dataclass(slots=True, unsafe_hash=True)
class Free(Request):
    """Release a prior allocation by name."""

    name: str


@dataclass(slots=True, unsafe_hash=True)
class Now(Request):
    """Query the local virtual clock without advancing it (timer call).

    ``charge_timer=True`` additionally charges the machine's timer-call
    overhead — instrumented measurement runs pay for their own timers,
    which is one source of the w_i inflation discussed in Sec. 4.2.
    """

    charge_timer: bool = False


@dataclass(slots=True, unsafe_hash=True)
class ReceivedMessage:
    """Result of a Recv: payload and envelope plus completion time."""

    data: Any
    nbytes: int
    source: int
    tag: int
    now: float


@dataclass(slots=True, unsafe_hash=True)
class CollectiveResult:
    """Result of a Collective: op-dependent payload plus completion time."""

    data: Any
    now: float


@dataclass(slots=True, unsafe_hash=True)
class TimedOut:
    """Completion status of an operation whose *timeout* expired.

    ``op`` is ``"send"`` or ``"recv"``; ``now`` is the virtual time the
    timeout fired (the blocked process resumes then).
    """

    op: str
    now: float


@dataclass(slots=True, unsafe_hash=True)
class SendFailed:
    """Completion status of a send that exhausted its fault-retry budget.

    Produced only under fault injection (transient send failures or
    unrecoverable message loss); ``now`` is when the sender gave up.
    """

    now: float
    retries: int = 0
