"""Per-process and aggregate simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ProcessStats", "SimStats"]


@dataclass
class ProcessStats:
    """Virtual-time and host-cost accounting for one target process."""

    rank: int
    compute_time: float = 0.0  # virtual time spent computing (incl. delays)
    comm_time: float = 0.0  # virtual time blocked in / charged to communication
    finish_time: float = 0.0  # local clock at program end
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    events: int = 0  # kernel events executed on behalf of this process
    host_cost: float = 0.0  # modelled host CPU seconds to simulate this process


@dataclass
class SimStats:
    """Aggregate statistics over all target processes."""

    procs: list[ProcessStats] = field(default_factory=list)

    @property
    def nprocs(self) -> int:
        return len(self.procs)

    @property
    def elapsed(self) -> float:
        """Predicted target execution time: the last process to finish."""
        return max((p.finish_time for p in self.procs), default=0.0)

    @property
    def total_messages(self) -> int:
        return sum(p.messages_sent for p in self.procs)

    @property
    def total_bytes(self) -> int:
        return sum(p.bytes_sent for p in self.procs)

    @property
    def total_events(self) -> int:
        return sum(p.events for p in self.procs)

    @property
    def total_host_cost(self) -> float:
        """Total host CPU seconds the simulation would consume (serial)."""
        return sum(p.host_cost for p in self.procs)

    @property
    def total_compute_time(self) -> float:
        return sum(p.compute_time for p in self.procs)

    @property
    def total_comm_time(self) -> float:
        return sum(p.comm_time for p in self.procs)

    def summary(self) -> str:
        """Short human-readable description."""
        return (
            f"{self.nprocs} procs, elapsed {self.elapsed:.6f}s, "
            f"{self.total_messages} msgs / {self.total_bytes} bytes, "
            f"{self.total_events} events"
        )
