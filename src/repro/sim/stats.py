"""Per-process and aggregate simulation statistics."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["ProcessStats", "SimStats"]


@dataclass(slots=True)
class ProcessStats:
    """Virtual-time and host-cost accounting for one target process."""

    rank: int
    compute_time: float = 0.0  # virtual time spent computing (incl. delays)
    comm_time: float = 0.0  # virtual time blocked in / charged to communication
    finish_time: float = 0.0  # local clock at program end
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    collectives: int = 0
    events: int = 0  # kernel events executed on behalf of this process
    host_cost: float = 0.0  # modelled host CPU seconds to simulate this process
    # -- fault-injection / resilience counters (all zero without faults) --
    retries: int = 0  # retransmission attempts charged to this rank's messages
    timeouts: int = 0  # send/recv operations completed with TimedOut
    messages_lost: int = 0  # messages this rank sent that were never delivered
    messages_duplicated: int = 0  # spurious duplicates delivered to this rank
    send_failures: int = 0  # sends abandoned after exhausting the retry budget
    crashed: bool = False  # this rank was crashed by the fault plan
    crash_time: float = 0.0  # virtual time of the crash (if crashed)

    def to_dict(self) -> dict:
        """Flat serializable form (metrics sinks, CSV reports)."""
        return asdict(self)


@dataclass
class SimStats:
    """Aggregate statistics over all target processes."""

    procs: list[ProcessStats] = field(default_factory=list)

    @property
    def nprocs(self) -> int:
        return len(self.procs)

    @property
    def elapsed(self) -> float:
        """Predicted target execution time: the last process to finish."""
        return max((p.finish_time for p in self.procs), default=0.0)

    @property
    def total_messages(self) -> int:
        return sum(p.messages_sent for p in self.procs)

    @property
    def total_bytes(self) -> int:
        return sum(p.bytes_sent for p in self.procs)

    @property
    def total_events(self) -> int:
        return sum(p.events for p in self.procs)

    @property
    def total_host_cost(self) -> float:
        """Total host CPU seconds the simulation would consume (serial)."""
        return sum(p.host_cost for p in self.procs)

    @property
    def total_compute_time(self) -> float:
        return sum(p.compute_time for p in self.procs)

    @property
    def total_comm_time(self) -> float:
        return sum(p.comm_time for p in self.procs)

    # -- fault-injection aggregates -----------------------------------------
    @property
    def total_retries(self) -> int:
        return sum(p.retries for p in self.procs)

    @property
    def total_timeouts(self) -> int:
        return sum(p.timeouts for p in self.procs)

    @property
    def total_messages_lost(self) -> int:
        return sum(p.messages_lost for p in self.procs)

    @property
    def total_duplicates(self) -> int:
        return sum(p.messages_duplicated for p in self.procs)

    @property
    def total_send_failures(self) -> int:
        return sum(p.send_failures for p in self.procs)

    @property
    def crashed_ranks(self) -> tuple[int, ...]:
        return tuple(p.rank for p in self.procs if p.crashed)

    @property
    def any_faults(self) -> bool:
        """Did any fault/resilience event occur during the run?"""
        return bool(
            self.total_retries
            or self.total_timeouts
            or self.total_messages_lost
            or self.total_duplicates
            or self.total_send_failures
            or self.crashed_ranks
        )

    def to_dict(self, include_procs: bool = False) -> dict:
        """Serializable aggregate form, fault/resilience counters included.

        Feeds the metrics sinks (:meth:`repro.obs.MetricsRegistry.record_run`)
        and the per-run CSV/JSON reports; ``include_procs=True`` nests the
        per-rank :meth:`ProcessStats.to_dict` rows.
        """
        d = {
            "nprocs": self.nprocs,
            "elapsed": self.elapsed,
            "total_messages": self.total_messages,
            "total_bytes": self.total_bytes,
            "total_events": self.total_events,
            "total_host_cost": self.total_host_cost,
            "total_compute_time": self.total_compute_time,
            "total_comm_time": self.total_comm_time,
            "total_retries": self.total_retries,
            "total_timeouts": self.total_timeouts,
            "total_messages_lost": self.total_messages_lost,
            "total_duplicates": self.total_duplicates,
            "total_send_failures": self.total_send_failures,
            "crashed_ranks": list(self.crashed_ranks),
        }
        if include_procs:
            d["procs"] = [p.to_dict() for p in self.procs]
        return d

    def summary(self) -> str:
        """Short human-readable description."""
        text = (
            f"{self.nprocs} procs, elapsed {self.elapsed:.6f}s, "
            f"{self.total_messages} msgs / {self.total_bytes} bytes, "
            f"{self.total_events} events"
        )
        if self.any_faults:
            text += (
                f"; faults: {self.total_retries} retries, {self.total_timeouts} timeouts, "
                f"{self.total_messages_lost} lost, {self.total_duplicates} duplicated, "
                f"{self.total_send_failures} failed sends, "
                f"{len(self.crashed_ranks)} crashed"
            )
        return text
