"""Trace persistence: save/load dependency-annotated event traces.

A trace is the interchange artifact between a simulation run and the
offline analyses (host-performance replay, dynamic task-graph export,
the ``repro profile`` analyzers), so it can be archived and reprocessed
without re-simulating.  Format: one JSON header line plus one compact
JSON array per event (JSONL — streams, diffs and compresses well).
Paths ending in ``.gz`` (e.g. ``run.jsonl.gz``) are transparently
gzip-compressed on both save and load.  Malformed inputs raise
:class:`ValueError` carrying the offending ``path:line`` location.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from ..util.atomic_io import atomic_write
from .trace import Trace, TraceEvent

__all__ = ["save_trace", "load_trace"]

_FORMAT = 1


def _open(path: str | Path, mode: str):
    """Text-mode open that honours a ``.gz`` suffix."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write *trace* to *path* as JSONL (gzip-compressed for ``.gz``).

    The write is atomic (tmp + fsync + rename), so an interrupted save
    never leaves a truncated archive under the final name.
    """
    with atomic_write(path) as fh:
        fh.write(json.dumps({"format": _FORMAT, "nprocs": trace.nprocs,
                             "events": len(trace.events)}) + "\n")
        for ev in trace.events:
            fh.write(
                json.dumps(
                    [
                        ev.eid, ev.proc, ev.kind, ev.start, ev.end, ev.host_cost,
                        list(ev.deps), ev.coll_id, ev.nbytes, int(ev.nonblocking),
                    ],
                    separators=(",", ":"),
                )
                + "\n"
            )


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`ValueError` with the offending line number on any
    malformed header, event line, or id/count inconsistency.
    """
    with _open(path, "r") as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:1: malformed trace header: {exc}") from None
        if not isinstance(header, dict):
            raise ValueError(f"{path}:1: trace header is not a JSON object")
        if header.get("format") != _FORMAT:
            raise ValueError(
                f"{path}:1: unsupported trace format {header.get('format')!r}"
            )
        trace = Trace(nprocs=int(header["nprocs"]))
        for lineno, line in enumerate(fh, start=2):
            if not line.strip():
                continue  # tolerate a trailing blank line
            try:
                fields = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace line: {exc}") from None
            try:
                eid, proc, kind, start, end, cost, deps, coll_id, nbytes, nb = fields
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}:{lineno}: malformed trace event "
                    f"(expected 10 fields, got {fields!r})"
                ) from None
            if eid != len(trace.events):
                raise ValueError(f"{path}:{lineno}: event ids not contiguous at {eid}")
            trace.events.append(
                TraceEvent(
                    eid=eid, proc=proc, kind=kind, start=start, end=end,
                    host_cost=cost, deps=tuple(deps), coll_id=coll_id,
                    nbytes=nbytes, nonblocking=bool(nb),
                )
            )
        if len(trace.events) != header["events"]:
            raise ValueError(
                f"{path}: truncated trace ({len(trace.events)} of {header['events']} events)"
            )
    return trace
