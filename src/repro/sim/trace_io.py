"""Trace persistence: save/load dependency-annotated event traces.

A trace is the interchange artifact between a simulation run and the
offline analyses (host-performance replay, dynamic task-graph export),
so it can be archived and reprocessed without re-simulating.  Format:
one JSON header line plus one compact JSON array per event (JSONL —
streams, diffs and compresses well).
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import Trace, TraceEvent

__all__ = ["save_trace", "load_trace"]

_FORMAT = 1


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write *trace* to *path* as JSONL."""
    with open(path, "w") as fh:
        fh.write(json.dumps({"format": _FORMAT, "nprocs": trace.nprocs,
                             "events": len(trace.events)}) + "\n")
        for ev in trace.events:
            fh.write(
                json.dumps(
                    [
                        ev.eid, ev.proc, ev.kind, ev.start, ev.end, ev.host_cost,
                        list(ev.deps), ev.coll_id, ev.nbytes, int(ev.nonblocking),
                    ],
                    separators=(",", ":"),
                )
                + "\n"
            )


def load_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path) as fh:
        header = json.loads(fh.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: unsupported trace format {header.get('format')!r}")
        trace = Trace(nprocs=int(header["nprocs"]))
        for line in fh:
            eid, proc, kind, start, end, cost, deps, coll_id, nbytes, nb = json.loads(line)
            if eid != len(trace.events):
                raise ValueError(f"{path}: event ids not contiguous at {eid}")
            trace.events.append(
                TraceEvent(
                    eid=eid, proc=proc, kind=kind, start=start, end=end,
                    host_cost=cost, deps=tuple(deps), coll_id=coll_id,
                    nbytes=nbytes, nonblocking=bool(nb),
                )
            )
        if len(trace.events) != header["events"]:
            raise ValueError(
                f"{path}: truncated trace ({len(trace.events)} of {header['events']} events)"
            )
    return trace
