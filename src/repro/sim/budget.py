"""Watchdog budgets: kill runaway simulations cleanly, with evidence.

A pathological configuration — a livelocked retry storm, an
accidentally huge problem size, an adversarial fault plan — can make a
single :class:`repro.sim.Simulator` run consume unbounded kernel events,
virtual time or host wall-clock time.  In a multi-run campaign that one
run would otherwise hang the whole fleet.

:class:`BudgetGuard` bounds a run along three independent axes:

* ``max_events`` — kernel events executed (heap pops);
* ``max_virtual_time`` — the simulated target clock (seconds);
* ``max_wall_seconds`` — host wall-clock time spent simulating.

When a limit trips, the engine raises :class:`BudgetExceededError`
carrying the **partial** :class:`repro.sim.SimStats` accumulated so far,
so the caller can classify the outcome and report how far the run got —
instead of a hung process or a bare traceback.  With no limits set the
engine pays a single ``is not None`` test per event (the same zero-cost
guarantee the fault layer holds to).
"""

from __future__ import annotations

import math
import time

__all__ = ["BudgetExceededError", "BudgetGuard"]


class BudgetExceededError(RuntimeError):
    """A simulation run exceeded one of its watchdog budgets.

    Attributes
    ----------
    kind:
        Which axis tripped: ``"events"``, ``"virtual_time"`` or
        ``"wall_time"``.
    limit:
        The configured budget along that axis.
    observed:
        The value that exceeded it.
    stats:
        Partial :class:`repro.sim.SimStats` at the moment the watchdog
        fired (per-rank counters are valid; ``elapsed`` reflects only
        finished processes).
    flight:
        The flight recorder's dump when the recorder was enabled for
        the run (see :mod:`repro.sim.flightrec`), else ``None``.
    """

    flight: dict | None = None

    def __init__(self, kind: str, limit: float, observed: float, stats=None):
        super().__init__(
            f"simulation exceeded its {kind} budget "
            f"(observed {observed:.6g}, limit {limit:.6g})"
        )
        self.kind = kind
        self.limit = limit
        self.observed = observed
        self.stats = stats


def _check_limit(name: str, value: float | None) -> None:
    if value is not None and (not math.isfinite(value) or value <= 0):
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")


class BudgetGuard:
    """Per-run budget state the kernel consults once per event."""

    __slots__ = ("max_events", "max_virtual_time", "max_wall_seconds", "events", "_wall_start")

    def __init__(
        self,
        max_events: int | None = None,
        max_virtual_time: float | None = None,
        max_wall_seconds: float | None = None,
    ):
        _check_limit("max_events", max_events)
        _check_limit("max_virtual_time", max_virtual_time)
        _check_limit("max_wall_seconds", max_wall_seconds)
        self.max_events = max_events
        self.max_virtual_time = max_virtual_time
        self.max_wall_seconds = max_wall_seconds
        self.events = 0
        self._wall_start: float | None = None

    @property
    def active(self) -> bool:
        return (
            self.max_events is not None
            or self.max_virtual_time is not None
            or self.max_wall_seconds is not None
        )

    def start(self) -> None:
        """Arm the wall clock at the beginning of the run."""
        self._wall_start = time.perf_counter()

    def snapshot(self, virtual_time: float | None = None) -> dict:
        """JSON-safe budget state (flight-recorder dumps, capsules)."""
        wall = (
            time.perf_counter() - self._wall_start
            if self._wall_start is not None
            else None
        )
        return {
            "events": self.events,
            "max_events": self.max_events,
            "max_virtual_time": self.max_virtual_time,
            "max_wall_seconds": self.max_wall_seconds,
            "virtual_time": virtual_time,
            "wall_seconds": wall,
        }

    def note_event(self, t: float) -> tuple[str, float, float] | None:
        """Account one kernel event at virtual time *t*.

        Returns ``(kind, limit, observed)`` on the first violation, else
        ``None``.  The virtual clock check exploits the heap's timestamp
        order: the first popped event past the limit proves every later
        one is too.
        """
        self.events += 1
        if self.max_events is not None and self.events > self.max_events:
            return ("events", float(self.max_events), float(self.events))
        if self.max_virtual_time is not None and t > self.max_virtual_time:
            return ("virtual_time", self.max_virtual_time, t)
        if self.max_wall_seconds is not None:
            if self._wall_start is None:
                # Direct callers that skipped start(): arm the clock at the
                # first event rather than measuring from the perf_counter
                # epoch, which would trip the budget instantly.
                self.start()
            wall = time.perf_counter() - self._wall_start
            if wall > self.max_wall_seconds:
                return ("wall_time", self.max_wall_seconds, wall)
        return None
