"""The MPI-Sim kernel: a discrete-event simulator of MPI programs.

Target processes are generators of :mod:`repro.sim.requests` objects.
Local computation advances a process's private clock inline (direct
execution); communication requests serialize through a global event
queue so that message matching happens in virtual-timestamp order —
the sequential analogue of MPI-Sim's "the simulation kernel [...]
ensures that events on host processors are executed in their correct
timestamp order".

Three execution modes share this kernel (see DESIGN.md §5):

* ``MEASURED`` — ground truth: noisy CPU, perturbed network.  Standing
  in for running the real application on the real machine.
* ``DE`` — the original MPI-Sim: deterministic CPU (direct execution of
  the computation), nominal analytic network model.
* ``AM`` — the compiler-optimized simulator: the program itself is the
  *simplified* program (delays instead of computation), nominal network.

Orthogonally to the mode, a :class:`repro.sim.faults.FaultPlan` may be
injected: rank crashes, message loss/duplication, transient send
failures and link degradation, with an optional
:class:`repro.sim.faults.RetryPolicy` modeling retransmission.  Without
a plan the fault layer is bypassed entirely and predictions are
bit-identical to a fault-free build.  When the event queue drains with
live-but-blocked processes, the deadlock watchdog raises
:class:`DeadlockError` carrying a :class:`DeadlockReport` — the
per-rank wait-chain diagnosis — instead of a bare error.
"""

from __future__ import annotations

import enum
import json
import math
import os
from heapq import heappop, heappush
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from ..machine import CpuModel, MachineParams, NetworkModel
from ..mpi.matching import MatchQueues, MessageRecord, PostedRecv
from ..obs.logging import get_logger
from ..obs.metrics import METRICS
from ..obs.spans import TRACER
from .budget import BudgetExceededError, BudgetGuard
from .faults import DeadlockReport, FaultPlan, FaultState, RetryPolicy, WaitInfo
from .checkpoint import CHECKPOINT
from .flightrec import FLIGHT, deadlock_report_to_dict
from .heartbeat import HEARTBEAT
from .memory import MemoryReport, MemoryTracker
from .requests import (
    Alloc,
    Collective,
    CollectiveResult,
    Compute,
    Delay,
    Free,
    Irecv,
    Isend,
    Now,
    ReceivedMessage,
    Recv,
    Request,
    RequestHandle,
    Send,
    SendFailed,
    TimedOut,
    Wait,
)
from .stats import ProcessStats, SimStats
from .trace import Trace

__all__ = [
    "ExecMode",
    "Simulator",
    "SimResult",
    "DeadlockError",
    "CollectiveMismatchError",
    "BudgetExceededError",
]

ProgramFactory = Callable[[int, int], Iterator[Request]]

_log = get_logger("sim.engine")

#: blocked-state label per communication request type (per-event fast
#: lookup; doubles as the "is this a communication request?" test)
_BLOCK_NAME = {
    Send: "send",
    Recv: "recv",
    Collective: "collective",
    Isend: "isend",
    Irecv: "irecv",
    Wait: "wait",
}


class ExecMode(enum.Enum):
    """Which estimator this run represents (see module docstring)."""

    MEASURED = "measured"
    DE = "mpi-sim-de"
    AM = "mpi-sim-am"


class DeadlockError(RuntimeError):
    """The event queue drained with blocked processes remaining.

    ``report`` carries the watchdog's :class:`DeadlockReport` (the
    per-rank wait-chain diagnosis) when one was built; the exception
    message is its rendered form.  ``flight`` carries the flight
    recorder's dump when the recorder was enabled for the run.
    """

    flight: dict | None = None

    def __init__(self, message: str, report: DeadlockReport | None = None):
        super().__init__(message)
        self.report = report


class CollectiveMismatchError(RuntimeError):
    """Processes issued inconsistent collectives at the same call index."""


@dataclass
class SimResult:
    """Everything a simulation run produces."""

    mode: ExecMode
    stats: SimStats
    memory: MemoryReport
    trace: Trace | None

    @property
    def elapsed(self) -> float:
        """Predicted (or, in MEASURED mode, actual) target execution time."""
        return self.stats.elapsed


class _Handle:
    """Kernel-side state of one non-blocking operation (MPI_Request)."""

    __slots__ = ("hid", "kind", "done", "ready_time", "result", "trace_eid")

    def __init__(self, hid: int, kind: str):
        self.hid = hid
        self.kind = kind
        self.done = False
        self.ready_time = 0.0
        self.result: Any = None
        self.trace_eid: int | None = None  # the completion's trace event


class _Proc:
    """Kernel-side state of one simulated target process (thread)."""

    __slots__ = (
        "rank", "gen", "clock", "done", "crashed", "blocked", "stats", "coll_index",
        "last_eid", "handles", "next_hid", "waiting", "wait_time",
    )

    def __init__(self, rank: int, gen: Iterator[Request]):
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.done = False
        self.crashed = False
        self.blocked: str | None = None  # "recv" | "send" | "collective" | "wait" | None
        self.stats = ProcessStats(rank)
        self.coll_index: dict = {}  # communicator group -> next call index
        self.last_eid: int | None = None
        self.handles: dict[int, _Handle] = {}
        self.next_hid = 0
        self.waiting: tuple[int, ...] | None = None  # handle ids blocked on
        self.wait_time = 0.0

    def new_handle(self, kind: str) -> _Handle:
        self.next_hid += 1
        h = _Handle(self.next_hid, kind)
        self.handles[h.hid] = h
        return h


class _CollState:
    """Accumulating arrival state of one collective operation."""

    __slots__ = ("op", "root", "arrivals", "nbytes", "reduce_fn")

    def __init__(self, op: str, root: int):
        self.op = op
        self.root = root
        self.arrivals: dict[int, tuple[float, Any]] = {}
        self.nbytes = 0
        self.reduce_fn = None


class Simulator:
    """Simulate *nprocs* target processes of *program_factory* on *machine*.

    Parameters
    ----------
    nprocs:
        Number of target processes.
    program_factory:
        ``factory(rank, nprocs)`` returning the process generator.
    machine:
        Target machine parameters (e.g. ``repro.machine.IBM_SP``).
    mode:
        Which estimator to run (ground truth / DE / AM).
    seed:
        Ground-truth noise seed (ignored by DE/AM, which are exact).
    collect_trace:
        Record a dependency-annotated event trace for the host model.
    faults:
        Optional :class:`FaultPlan` to inject; an empty plan is treated
        as no plan (zero-cost).
    retry:
        Optional :class:`RetryPolicy` for retransmission of transiently
        failed / lost messages (only consulted under a fault plan).
    default_timeout:
        When set, blocking and non-blocking sends/receives without their
        own ``timeout`` complete with :class:`TimedOut` after this many
        virtual seconds unmatched (the kernel-level watchdog timeout).
    max_events / max_virtual_time / max_wall_seconds:
        Watchdog budgets (see :mod:`repro.sim.budget`).  The first limit
        a run exceeds raises :class:`BudgetExceededError` carrying the
        partial :class:`SimStats`, so a livelocked or pathological
        configuration terminates cleanly instead of hanging the caller.
    backend:
        ``"interpreted"`` (default) walks the IR per rank per run;
        ``"compiled"`` lowers the program once via :mod:`repro.kernel`
        and errors if it cannot; ``"auto"`` tries the compiled backend
        and falls back per-program with a logged reason.  ``None`` reads
        ``REPRO_BACKEND`` from the environment.  Results are
        byte-identical across backends.
    """

    def __init__(
        self,
        nprocs: int,
        program_factory: ProgramFactory,
        machine: MachineParams,
        mode: ExecMode = ExecMode.DE,
        seed: int = 0,
        collect_trace: bool = False,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        default_timeout: float | None = None,
        max_events: int | None = None,
        max_virtual_time: float | None = None,
        max_wall_seconds: float | None = None,
        backend: str | None = None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if default_timeout is not None and (
            not math.isfinite(default_timeout) or default_timeout <= 0
        ):
            raise ValueError(f"default_timeout must be finite and > 0, got {default_timeout!r}")
        self.nprocs = nprocs
        self.machine = machine
        self.mode = mode
        self.seed = seed
        if mode is ExecMode.MEASURED:
            rng = np.random.default_rng(seed)
            self.cpu = CpuModel(machine.cpu, machine.truth.cpu_noise_sigma, rng)
            self.net = NetworkModel(machine.net, machine.truth, rng)
            self._rng = rng  # checkpoint cursors snapshot the generator state
        else:
            self.cpu = CpuModel(machine.cpu)
            self.net = NetworkModel(machine.net)
            self._rng = None
        self.memory = MemoryTracker(nprocs, machine.host.thread_overhead_bytes)
        self.trace: Trace | None = Trace(nprocs) if collect_trace else None

        if faults is not None and faults.is_empty():
            faults = None  # the zero-cost guarantee: empty plan == no plan
        self._fault_state = FaultState(faults, retry) if faults is not None else None
        self._retry = retry
        self._default_timeout = default_timeout
        self._crash_times = (
            self._fault_state.crash_times(nprocs) if self._fault_state is not None else {}
        )
        self._timeouts_fired = 0
        guard = BudgetGuard(max_events, max_virtual_time, max_wall_seconds)
        self._budget = guard if guard.active else None

        # per-run constants hoisted out of the event loop (fast path):
        # every per-event cost formula below reduces to multiply-adds on
        # these, with no attribute chains or model calls left per event
        host = machine.host
        self._event_overhead = host.event_overhead
        self._compute_host_factor = machine.cpu.time_per_op * host.direct_exec_factor
        self._delay_host_cost = host.delay_call_overhead + host.event_overhead
        self._msg_host_base = host.message_overhead + host.event_overhead
        self._msg_host_per_byte = host.message_per_byte
        self._eager_limit = machine.net.eager_limit
        self._task_time = self.cpu.task_time
        # engine-side message-cost memos: one dict lookup replaces a bound
        # model call per message (both caches are only consulted on paths
        # where the underlying formula is deterministic)
        self._ov_cache: dict[int, float] = {}
        self._tr_cache: dict = {}
        self._net_det = self.net._sigma == 0.0
        self._net_flat = machine.net.per_hop == 0.0

        if backend is None:
            backend = os.environ.get("REPRO_BACKEND") or "interpreted"
        if backend not in ("interpreted", "compiled", "auto"):
            raise ValueError(
                f"backend must be 'interpreted', 'compiled' or 'auto', got {backend!r}"
            )
        self._kernel = None
        self._kernel_args: tuple = ((), ())
        self.backend = "interpreted"
        self.backend_fallback_reason: str | None = None
        if backend != "interpreted":
            program_factory = self._resolve_backend(program_factory, backend)

        self._procs = [_Proc(r, program_factory(r, nprocs)) for r in range(nprocs)]
        self._queues = [MatchQueues() for _ in range(nprocs)]
        self._heap: list[tuple[float, int, int, object]] = []
        self._seq = 0
        self._colls: dict = {}  # (group, call index) -> _CollState
        self._coll_trace_ids = 0
        self._ran = False

    def _resolve_backend(self, program_factory, requested: str):
        """Try to swap *program_factory* for its compiled equivalent.

        Returns the factory to use.  ``requested`` is ``"compiled"``
        (failure raises) or ``"auto"`` (failure logs and falls back).
        """
        from ..kernel import lower as _lower

        program = getattr(program_factory, "_repro_program", None)
        reason = None
        if program is None:
            reason = "factory is not an IR program factory (raw generator function)"
        elif getattr(program_factory, "_repro_collector", None) is not None:
            reason = "a MeasurementCollector is attached (timer-instrumented run)"
        elif getattr(program_factory, "_repro_profile", None) is not None:
            reason = "a BranchProfile is attached (branch-profiling run)"
        kernel = None
        if reason is None:
            try:
                kernel = _lower.kernel_for(program)
            except _lower.UnsupportedConstructError as exc:
                reason = str(exc)
        if kernel is None:
            if requested == "compiled":
                raise ValueError(
                    f"backend='compiled' cannot run this program: {reason}"
                )
            _lower.record_fallback(
                program.name if program is not None else "<raw factory>", reason
            )
            self.backend_fallback_reason = reason
            return program_factory
        inputs = program_factory._repro_inputs
        wparams = program_factory._repro_wparams or {}
        self._kernel = kernel
        self._kernel_args = (inputs, wparams)
        self.backend = "compiled"
        request_gen = kernel.request_gen
        return lambda rank, size: request_gen(rank, size, inputs, wparams)

    # -- public API ----------------------------------------------------------
    def run(self) -> SimResult:
        """Execute the simulation to completion and return its results.

        Raises :class:`DeadlockError` (with a :class:`DeadlockReport`)
        if the event queue drains while unfinished, uncrashed processes
        remain blocked.
        """
        if self.mode is ExecMode.MEASURED:
            # reproducibility breadcrumb: everything needed to replay
            # this ground-truth run (MEASURED is the only noisy mode)
            _log.info(
                "measured run: machine=%s nprocs=%d seed=%d faults=%s timeout=%s",
                self.machine.name, self.nprocs, self.seed,
                "yes" if self._fault_state is not None else "no", self._default_timeout,
            )
        # observability dispatch, decided once per run: with every layer
        # disabled (the default) the kernel runs with zero tracing,
        # metrics, flight-recorder, heartbeat or checkpoint indirection
        # anywhere — not even no-op span objects or ring-buffer appends
        if not (TRACER.enabled or METRICS.enabled or FLIGHT.enabled
                or HEARTBEAT.enabled or CHECKPOINT.enabled):
            if (
                self._kernel is not None
                and self._fault_state is None
                and self._default_timeout is None
                and self._budget is None
                and self.trace is None
                and self.mode is not ExecMode.MEASURED
            ):
                # flat compiled path: no engine feature in play, so the
                # bucket-queue runtime can drive the fast generators
                if self._ran:
                    raise RuntimeError("a Simulator instance is single-use; build a new one")
                self._ran = True
                from ..kernel.runtime import run_fast

                return run_fast(self)
            return self._run()
        with TRACER.span("sim.run", mode=self.mode.value, nprocs=self.nprocs) as span:
            result = self._run()
            span.set_virtual(0.0, result.stats.elapsed)
            span.set(
                events=result.stats.total_events,
                messages=result.stats.total_messages,
                host_cost=result.stats.total_host_cost,
            )
        if METRICS.enabled:
            METRICS.record_run(self.mode.value, result.stats)
        return result

    def _run(self) -> SimResult:
        if self._ran:
            raise RuntimeError("a Simulator instance is single-use; build a new one")
        self._ran = True
        # crashes first: at equal timestamps a crash preempts the rank's
        # own resume (a rank crashing at t=0 never runs)
        for rank in sorted(self._crash_times):
            self._push(self._crash_times[rank], rank, ("crash", None))
        for proc in self._procs:
            self._push(0.0, proc.rank, ("resume", None))
        if FLIGHT.enabled:
            FLIGHT.note(mode=self.mode.value, nprocs=self.nprocs, seed=self.seed)
            self._drain_flight()
        elif HEARTBEAT.enabled or CHECKPOINT.enabled:
            self._drain_supervised()
        elif self._budget is not None:
            self._drain_budgeted()
        else:
            self._drain()
        blocked = [p for p in self._procs if not p.done and not p.crashed]
        if blocked:
            report = self._deadlock_report()
            exc = DeadlockError(report.format(), report=report)
            if FLIGHT.enabled:
                exc.flight = FLIGHT.dump(
                    wait_chain=deadlock_report_to_dict(report),
                    budget=self._budget_snapshot(),
                    error=report.summary(),
                )
            for proc in blocked:
                try:
                    proc.gen.close()
                except Exception:
                    pass  # a raising close() must not mask the deadlock itself
            raise exc
        if self._fault_state is None and self._timeouts_fired == 0:
            leftover = [r for r, q in enumerate(self._queues) if q.messages]
            if leftover:
                exc = DeadlockError(f"unconsumed messages at ranks {leftover}")
                if FLIGHT.enabled:
                    exc.flight = FLIGHT.dump(
                        budget=self._budget_snapshot(), error=str(exc)
                    )
                raise exc
        stats = SimStats([p.stats for p in self._procs])
        return SimResult(self.mode, stats, self.memory.report(), self.trace)

    def _drain(self) -> None:
        """The event loop, no watchdog budget (the hot variant).

        Events are dispatched by kind with the common case — "resume",
        then "comm" — tested first; "crash"/"timeout" only ever appear
        under a fault plan or explicit timeouts.
        """
        heap = self._heap
        procs = self._procs
        resume = self._resume
        do_send = self._do_send
        do_recv = self._do_recv
        while heap:
            t, _, rank, action = heappop(heap)
            kind = action[0]
            proc = procs[rank]
            if kind == "resume":
                if not proc.crashed:
                    resume(proc, t, action[1])
            elif kind == "comm":
                # _do_comm, dispatched inline (one call saved per event)
                if not proc.crashed:
                    req = action[1]
                    ty = type(req)
                    if ty is Send:
                        do_send(proc, t, req)
                    elif ty is Recv:
                        do_recv(proc, t, req)
                    elif ty is Isend:
                        do_send(proc, t, req, handle=proc.new_handle("send"))
                    elif ty is Irecv:
                        do_recv(proc, t, req, handle=proc.new_handle("recv"))
                    elif ty is Wait:
                        self._do_wait(proc, t, req)
                    else:
                        self._do_collective(proc, t, req)
            elif kind == "crash":
                self._do_crash(proc, t)
            elif not proc.crashed:  # "timeout"
                self._do_timeout(proc, t, action[1])

    def _drain_budgeted(self) -> None:
        """The event loop with a per-event watchdog-budget check."""
        heap = self._heap
        procs = self._procs
        budget = self._budget
        budget.start()
        while heap:
            t, _, rank, action = heappop(heap)
            violation = budget.note_event(t)
            if violation is not None:
                kind, limit, observed = violation
                raise BudgetExceededError(
                    kind, limit, observed,
                    stats=SimStats([p.stats for p in procs]),
                )
            kind = action[0]
            proc = procs[rank]
            if kind == "resume":
                if not proc.crashed:
                    self._resume(proc, t, action[1])
            elif kind == "comm":
                if not proc.crashed:
                    self._do_comm(proc, t, action[1])
            elif kind == "crash":
                self._do_crash(proc, t)
            elif not proc.crashed:  # "timeout"
                self._do_timeout(proc, t, action[1])

    def _drain_supervised(self) -> None:
        """The event loop with heartbeat / checkpoint ticks (and budgets).

        Only reachable when :data:`HEARTBEAT` or :data:`CHECKPOINT` is
        enabled (and :data:`FLIGHT` is not — that path carries its own
        ticks); the bare loops above never pay for the per-event tick.
        A tick is two integer compares when nothing is due, so
        supervision stays cheap enough to leave always-on in campaign
        workers.
        """
        heap = self._heap
        procs = self._procs
        budget = self._budget
        if budget is not None:
            budget.start()
        hb = HEARTBEAT if HEARTBEAT.enabled else None
        ck = CHECKPOINT if CHECKPOINT.enabled else None
        if ck is not None:
            ck.bind(self._stats_snapshot, self._rng_state)
        events = 0
        while heap:
            t, _, rank, action = heappop(heap)
            events += 1
            if budget is not None:
                violation = budget.note_event(t)
                if violation is not None:
                    kind, limit, observed = violation
                    raise BudgetExceededError(
                        kind, limit, observed,
                        stats=SimStats([p.stats for p in procs]),
                    )
            if hb is not None:
                hb.tick(events, t)
            if ck is not None:
                ck.tick(events, t)
            kind = action[0]
            proc = procs[rank]
            if kind == "resume":
                if not proc.crashed:
                    self._resume(proc, t, action[1])
            elif kind == "comm":
                if not proc.crashed:
                    self._do_comm(proc, t, action[1])
            elif kind == "crash":
                self._do_crash(proc, t)
            elif not proc.crashed:  # "timeout"
                self._do_timeout(proc, t, action[1])

    def _drain_flight(self) -> None:
        """The event loop with flight recording (and budgets, if set).

        Only reachable when :data:`FLIGHT` is enabled — the unrecorded
        loops above never pay for the ring-buffer append.  A tripped
        budget raises :class:`BudgetExceededError` with the dump
        attached, so the black box survives the crash it explains.
        Heartbeat / checkpoint ticks ride along when armed (telemetry
        campaigns run the flight loop, supervised or not).
        """
        heap = self._heap
        procs = self._procs
        budget = self._budget
        if budget is not None:
            budget.start()
        hb = HEARTBEAT if HEARTBEAT.enabled else None
        ck = CHECKPOINT if CHECKPOINT.enabled else None
        if ck is not None:
            ck.bind(self._stats_snapshot, self._rng_state)
        events = 0
        record = FLIGHT.record
        while heap:
            t, _, rank, action = heappop(heap)
            events += 1
            if hb is not None:
                hb.tick(events, t)
            if ck is not None:
                ck.tick(events, t)
            if budget is not None:
                violation = budget.note_event(t)
                if violation is not None:
                    kind, limit, observed = violation
                    exc = BudgetExceededError(
                        kind, limit, observed,
                        stats=SimStats([p.stats for p in procs]),
                    )
                    exc.flight = FLIGHT.dump(
                        budget=budget.snapshot(virtual_time=t), error=str(exc)
                    )
                    raise exc
            kind = action[0]
            proc = procs[rank]
            if kind == "resume":
                record(t, rank, "resume")
                if not proc.crashed:
                    self._resume(proc, t, action[1])
            elif kind == "comm":
                record(t, rank, type(action[1]).__name__.lower())
                if not proc.crashed:
                    self._do_comm(proc, t, action[1])
            elif kind == "crash":
                record(t, rank, "crash")
                self._do_crash(proc, t)
            else:  # "timeout"
                record(t, rank, "timeout")
                if not proc.crashed:
                    self._do_timeout(proc, t, action[1])

    def _budget_snapshot(self) -> dict | None:
        """The budget guard's state for dumps (None without budgets)."""
        return self._budget.snapshot() if self._budget is not None else None

    def _stats_snapshot(self) -> dict:
        """Mid-run aggregate stats for checkpoint cursors (best effort:
        per-process counters flush when a process yields, so the snapshot
        trails the true totals by at most one in-flight resume)."""
        return SimStats([p.stats for p in self._procs]).to_dict()

    def _rng_state(self) -> dict | None:
        """The numpy bit-generator state (MEASURED runs only)."""
        if self._rng is None:
            return None
        state = self._rng.bit_generator.state
        return json.loads(json.dumps(state)) if state is not None else None

    # -- kernel internals ---------------------------------------------------------
    def _push(self, t: float, rank: int, action: object) -> None:
        self._seq += 1
        heappush(self._heap, (t, self._seq, rank, action))

    def _transit(self, nbytes: int, src: int, dst: int, when: float) -> float:
        """Wire time of one message, including any link degradation at *when*."""
        base = self.net.transit_time(nbytes, src, dst, self.nprocs)
        if self._fault_state is not None:
            base += self._fault_state.degradation_extra(self.net, nbytes, src, dst, when)
        return base

    def _resume(self, proc: _Proc, t: float, value: object) -> None:
        """Deliver *value* to the process at time *t* and run it until it
        blocks on communication or finishes.

        This is the kernel's hottest loop: everything it touches per
        request is a local binding or a per-run constant from
        ``__init__``; the clock and event count live in locals and are
        flushed back to the process exactly once on exit.
        """
        proc.blocked = None
        gen_send = proc.gen.send
        stats = proc.stats
        trace = self.trace
        clock = t
        events = 0
        try:
            while True:
                try:
                    req = gen_send(value)
                except StopIteration:
                    proc.done = True
                    stats.finish_time = clock
                    return
                events += 1
                ty = type(req)
                if ty is Compute:
                    dt = self._task_time(req.ops, req.working_set_bytes)
                    start = clock
                    clock += dt
                    stats.compute_time += dt
                    cost = req.ops * self._compute_host_factor + self._event_overhead
                    stats.host_cost += cost
                    if trace is not None:
                        proc.last_eid = trace.add(
                            proc=proc.rank, kind="compute", start=start, end=clock,
                            host_cost=cost,
                        )
                    value = clock
                elif ty is Delay:
                    start = clock
                    clock += req.seconds
                    stats.compute_time += req.seconds
                    stats.host_cost += self._delay_host_cost
                    if trace is not None:
                        proc.last_eid = trace.add(
                            proc=proc.rank, kind="delay", start=start, end=clock,
                            host_cost=self._delay_host_cost,
                        )
                    value = clock
                else:
                    blocked = _BLOCK_NAME.get(ty)
                    if blocked is None and isinstance(
                        req, (Send, Recv, Collective, Isend, Irecv, Wait)
                    ):
                        blocked = type(req).__name__.lower()
                    if blocked is not None:
                        # Communication serializes through the global event
                        # queue so matching happens in virtual-timestamp order.
                        proc.blocked = blocked
                        seq = self._seq + 1
                        self._seq = seq
                        heappush(self._heap, (clock, seq, proc.rank, ("comm", req)))
                        return
                    if ty is Now:
                        if req.charge_timer:
                            clock += self.cpu.timer_cost()
                        value = clock
                    elif ty is Alloc:
                        self.memory.allocate(proc.rank, req.name, req.nbytes)
                        value = clock
                    elif ty is Free:
                        self.memory.free(proc.rank, req.name)
                        value = clock
                    else:
                        raise TypeError(
                            f"rank {proc.rank} yielded unknown request {req!r}"
                        )
        finally:
            proc.clock = clock
            stats.events += events

    # -- communication ----------------------------------------------------------
    def _do_comm(self, proc: _Proc, t: float, req: Request) -> None:
        ty = type(req)
        if ty is Send:
            self._do_send(proc, t, req)
        elif ty is Recv:
            self._do_recv(proc, t, req)
        elif ty is Isend:
            self._do_send(proc, t, req, handle=proc.new_handle("send"))
        elif ty is Irecv:
            self._do_recv(proc, t, req, handle=proc.new_handle("recv"))
        elif ty is Wait:
            self._do_wait(proc, t, req)
        else:
            self._do_collective(proc, t, req)

    def _do_send(self, proc: _Proc, t: float, req: Send | Isend, handle: _Handle | None = None) -> None:
        if req.dest >= self.nprocs:
            raise ValueError(
                f"rank {proc.rank} sends to nonexistent rank {req.dest} "
                f"(world size {self.nprocs})"
            )
        nbytes = req.nbytes
        stats = proc.stats
        overhead = self._ov_cache.get(nbytes)
        if overhead is None:
            overhead = self.net.send_overhead(nbytes)
            self._ov_cache[nbytes] = overhead
        cost = self._msg_host_base + nbytes * self._msg_host_per_byte
        fs = self._fault_state
        self._seq += 1
        seq = self._seq
        pre_delay = 0.0
        if fs is not None:
            injected, inj_retries, inj_delay = fs.injection(proc.rank, req.dest, seq)
            stats.retries += inj_retries
            pre_delay = inj_delay
            if not injected:
                # transient send failure exhausted the retry budget: the
                # message never leaves the NIC; the caller learns it failed
                self._fail_send(proc, t, overhead + pre_delay, cost, req, handle, inj_retries)
                return
        t_inject = t + pre_delay + overhead
        stats.comm_time += overhead + pre_delay
        stats.messages_sent += 1
        stats.bytes_sent += nbytes
        stats.host_cost += cost
        eager = nbytes <= self._eager_limit
        delivered, wire_retries, wire_delay = True, 0, 0.0
        if fs is not None:
            delivered, wire_retries, wire_delay = fs.delivery(proc.rank, req.dest, seq)
            stats.retries += wire_retries
        if eager:
            if fs is None:
                if self._net_det:
                    key = nbytes if self._net_flat else (nbytes, proc.rank, req.dest)
                    transit = self._tr_cache.get(key)
                    if transit is None:
                        transit = self.net.transit_time(nbytes, proc.rank, req.dest, self.nprocs)
                        self._tr_cache[key] = transit
                else:
                    transit = self.net.transit_time(nbytes, proc.rank, req.dest, self.nprocs)
            else:
                transit = self._transit(nbytes, proc.rank, req.dest, t_inject)
            ready_time = t_inject + wire_delay + transit
        else:
            ready_time = None
        # positional: MessageRecord(seq, source, tag, nbytes, data, eager,
        # send_time, ready_time) — keyword passing is measurably slower here
        msg = MessageRecord(
            seq, proc.rank, req.tag, nbytes, req.data, eager, t_inject, ready_time,
            retry_delay=wire_delay,
        )
        send_eid = None
        if self.trace is not None:
            send_eid = self.trace.add(
                proc=proc.rank, kind="send", start=t, end=t_inject,
                host_cost=cost, nbytes=req.nbytes,
            )
            msg.sender_event = send_eid
            proc.last_eid = send_eid
        if handle is not None:
            msg.sender_handle = handle.hid
            handle.trace_eid = send_eid
        if not delivered:
            self._lose_message(proc, t_inject, msg, handle, wire_retries)
            return
        if fs is not None and fs.duplicates(proc.rank, req.dest, seq):
            # a spurious duplicate reaches the receiver; the matching layer
            # discards it, but draining it costs host work
            receiver = self._procs[req.dest]
            receiver.stats.messages_duplicated += 1
            receiver.stats.host_cost += cost  # same drain cost as a real message
        matched = self._queues[req.dest].add_message(msg)
        if eager:
            if handle is not None:
                handle.done = True
                handle.ready_time = t_inject
                handle.result = t_inject
                self._push(t_inject, proc.rank, ("resume", RequestHandle(handle.hid, "send")))
            else:
                pseq = self._seq + 1
                self._seq = pseq
                heappush(self._heap, (t_inject, pseq, proc.rank, ("resume", t_inject)))
            if matched is not None:
                self._complete_recv(matched, msg)
        else:
            if handle is not None:
                # the process continues; the handle completes at rendezvous
                self._push(t_inject, proc.rank, ("resume", RequestHandle(handle.hid, "send")))
            if matched is not None:
                # receive already posted: rendezvous completes immediately
                self._finish_rendezvous(msg, matched)
            else:
                # the transfer waits for the matching receive to post
                timeout = req.timeout if req.timeout is not None else self._default_timeout
                if timeout is not None:
                    self._push(
                        t_inject + timeout, proc.rank, ("timeout", ("send", req.dest, seq))
                    )

    def _fail_send(
        self, proc: _Proc, t: float, delay: float, cost: float,
        req: Send | Isend, handle: _Handle | None, retries: int,
    ) -> None:
        """Complete a send whose injection permanently failed."""
        t_fail = t + delay
        proc.stats.comm_time += delay
        proc.stats.host_cost += cost
        proc.stats.send_failures += 1
        result = SendFailed(now=t_fail, retries=retries)
        if self.trace is not None:
            eid = self.trace.add(
                proc=proc.rank, kind="send", start=t, end=t_fail,
                host_cost=cost, nbytes=req.nbytes,
            )
            proc.last_eid = eid
            if handle is not None:
                handle.trace_eid = eid
        if handle is not None:
            handle.done = True
            handle.ready_time = t_fail
            handle.result = result
            self._push(t_fail, proc.rank, ("resume", RequestHandle(handle.hid, "send")))
        else:
            self._push(t_fail, proc.rank, ("resume", result))

    def _lose_message(
        self, proc: _Proc, t_inject: float, msg: MessageRecord,
        handle: _Handle | None, retries: int,
    ) -> None:
        """The wire dropped *msg* beyond recovery; settle the sender."""
        proc.stats.messages_lost += 1
        if msg.eager:
            # buffered fire-and-forget: the sender completed locally and
            # never learns the wire dropped the message
            if handle is not None:
                handle.done = True
                handle.ready_time = t_inject
                handle.result = t_inject
                self._push(t_inject, proc.rank, ("resume", RequestHandle(handle.hid, "send")))
            else:
                self._push(t_inject, proc.rank, ("resume", t_inject))
            return
        # rendezvous: the handshake cannot complete — the send fails after
        # its retransmission budget (backoff charged to the virtual clock)
        t_fail = t_inject + msg.retry_delay
        proc.stats.comm_time += msg.retry_delay
        proc.stats.send_failures += 1
        result = SendFailed(now=t_fail, retries=retries)
        if handle is not None:
            self._push(t_inject, proc.rank, ("resume", RequestHandle(handle.hid, "send")))
            self._complete_handle(proc, handle.hid, t_fail, result)
        else:
            self._push(t_fail, proc.rank, ("resume", result))

    def _do_recv(self, proc: _Proc, t: float, req: Recv | Irecv, handle: _Handle | None = None) -> None:
        if req.source >= self.nprocs:
            raise ValueError(
                f"rank {proc.rank} receives from nonexistent rank {req.source} "
                f"(world size {self.nprocs})"
            )
        seq = self._seq + 1
        self._seq = seq
        # positional: PostedRecv(seq, rank, source, tag, post_time, handle)
        posted = PostedRecv(
            seq, proc.rank, req.source, req.tag, t,
            handle.hid if handle is not None else None,
        )
        msg = self._queues[proc.rank].post_recv(posted)
        if handle is not None:
            # non-blocking: hand the handle back right away
            self._push(t, proc.rank, ("resume", RequestHandle(handle.hid, "recv")))
        if msg is None:
            # (blocking: process blocked) until a matching message shows up —
            # or, with a timeout, until the watchdog withdraws the receive
            timeout = req.timeout if req.timeout is not None else self._default_timeout
            if timeout is not None:
                self._push(t + timeout, proc.rank, ("timeout", ("recv", posted.seq)))
            return
        if msg.eager:
            self._complete_recv(posted, msg)
        else:
            self._finish_rendezvous(msg, posted)

    # -- timeouts ---------------------------------------------------------------
    def _do_timeout(self, proc: _Proc, t: float, spec: tuple) -> None:
        """A send/recv watchdog timer fired; withdraw the op if still pending."""
        if spec[0] == "recv":
            posted = self._queues[proc.rank].cancel_recv(spec[1])
            if posted is None:
                return  # already matched: the timeout lost the race
            self._timeouts_fired += 1
            proc.stats.timeouts += 1
            result = TimedOut(op="recv", now=t)
            if posted.handle is not None:
                handle = proc.handles.get(posted.handle)
                if handle is None or handle.done:
                    return
                self._complete_handle(proc, posted.handle, t, result)
            else:
                proc.stats.comm_time += t - posted.post_time
                self._push(t, proc.rank, ("resume", result))
        else:  # ("send", dest, seq)
            dest, seq = spec[1], spec[2]
            msg = self._queues[dest].cancel_message(seq)
            if msg is None:
                return
            self._timeouts_fired += 1
            proc.stats.timeouts += 1
            result = TimedOut(op="send", now=t)
            if msg.sender_handle is not None:
                handle = proc.handles.get(msg.sender_handle)
                if handle is None or handle.done:
                    return
                self._complete_handle(proc, msg.sender_handle, t, result)
            else:
                proc.stats.comm_time += t - msg.send_time
                self._push(t, proc.rank, ("resume", result))

    # -- crashes -----------------------------------------------------------------
    def _do_crash(self, proc: _Proc, t: float) -> None:
        """Rank *proc* stops at virtual time *t* (fault-plan crash)."""
        if proc.done or proc.crashed:
            return
        proc.crashed = True
        proc.waiting = None
        proc.stats.crashed = True
        proc.stats.crash_time = t
        proc.clock = max(proc.clock, t)
        # a dead rank receives nothing: withdraw its posted receives so
        # in-flight messages to it stay queued (and get reported)
        self._queues[proc.rank].recvs.clear()
        try:
            proc.gen.close()
        except Exception:
            pass  # a misbehaving generator must not mask the crash itself

    def _finish_rendezvous(self, msg: MessageRecord, posted: PostedRecv) -> None:
        """Complete a rendezvous transfer once both sides are present."""
        sender = self._procs[msg.source]
        transfer_start = max(msg.send_time, posted.post_time)
        msg.ready_time = (
            transfer_start
            + msg.retry_delay
            + self._transit(msg.nbytes, msg.source, posted.rank, transfer_start)
        )
        if msg.sender_handle is not None:
            self._complete_handle(sender, msg.sender_handle, transfer_start, transfer_start)
        else:
            wait = transfer_start - msg.send_time
            if wait > 0:
                sender.stats.comm_time += wait
            self._push(transfer_start, sender.rank, ("resume", transfer_start))
        self._complete_recv(posted, msg)

    def _complete_recv(self, posted: PostedRecv, msg: MessageRecord) -> None:
        recv_rank = posted.rank
        receiver = self._procs[recv_rank]
        nbytes = msg.nbytes
        # recv_overhead == send_overhead (same deterministic formula), so
        # the engine-side overhead memo serves both directions
        overhead = self._ov_cache.get(nbytes)
        if overhead is None:
            overhead = self.net.recv_overhead(nbytes)
            self._ov_cache[nbytes] = overhead
        completion = max(posted.post_time, msg.ready_time) + overhead
        receiver.stats.messages_received += 1
        cost = self._msg_host_base + nbytes * self._msg_host_per_byte
        receiver.stats.host_cost += cost
        eid = None
        if self.trace is not None:
            deps = (msg.sender_event,) if msg.sender_event is not None else ()
            eid = self.trace.add(
                proc=recv_rank, kind="recv", start=posted.post_time, end=completion,
                host_cost=cost, deps=deps, nbytes=msg.nbytes,
                nonblocking=posted.handle is not None,
            )
        # positional: ReceivedMessage(data, nbytes, source, tag, now)
        result = ReceivedMessage(msg.data, nbytes, msg.source, msg.tag, completion)
        if posted.handle is not None:
            # kernel-side completion: it does not advance the receiver's
            # program order (the matching Wait does)
            handle = receiver.handles[posted.handle]
            handle.trace_eid = eid
            self._complete_handle(receiver, posted.handle, completion, result)
        else:
            if eid is not None:
                receiver.last_eid = eid
            receiver.stats.comm_time += completion - posted.post_time
            pseq = self._seq + 1
            self._seq = pseq
            heappush(self._heap, (completion, pseq, recv_rank, ("resume", result)))

    # -- non-blocking completion ---------------------------------------------------
    def _complete_handle(self, proc: _Proc, hid: int, ready_time: float, result) -> None:
        handle = proc.handles[hid]
        handle.done = True
        handle.ready_time = ready_time
        handle.result = result
        if proc.waiting is not None and all(
            proc.handles[h].done for h in proc.waiting
        ):
            self._release_wait(proc)

    def _release_wait(self, proc: _Proc) -> None:
        """All awaited handles completed: schedule the process's resume."""
        hids = proc.waiting
        proc.waiting = None
        handles = [proc.handles.pop(h) for h in hids]
        resume_at = max([proc.wait_time] + [h.ready_time for h in handles])
        blocked = resume_at - proc.wait_time
        if blocked > 0:
            proc.stats.comm_time += blocked
        if self.trace is not None:
            deps = tuple(h.trace_eid for h in handles if h.trace_eid is not None)
            eid = self.trace.add(
                proc=proc.rank, kind="wait", start=proc.wait_time, end=resume_at,
                host_cost=self.machine.host.event_overhead, deps=deps,
            )
            proc.last_eid = eid
        results = [h.result for h in handles]
        pseq = self._seq + 1
        self._seq = pseq
        heappush(self._heap, (resume_at, pseq, proc.rank, ("resume", results)))

    def _do_wait(self, proc: _Proc, t: float, req: Wait) -> None:
        proc.stats.host_cost += self._event_overhead
        hids = []
        for rh in req.handles:
            if rh.hid not in proc.handles:
                raise ValueError(
                    f"rank {proc.rank} waits on unknown or already-completed handle {rh.hid}"
                )
            hids.append(rh.hid)
        proc.waiting = tuple(hids)
        proc.wait_time = t
        if all(proc.handles[h].done for h in hids):
            self._release_wait(proc)
        # else: blocked until the last handle completes

    # -- collectives -----------------------------------------------------------------
    def _do_collective(self, proc: _Proc, t: float, req: Collective) -> None:
        # communicator: the sorted participant tuple (None = world)
        group = req.group if req.group is not None else None
        members = group if group is not None else tuple(range(self.nprocs))
        if group is not None:
            if proc.rank not in group:
                raise CollectiveMismatchError(
                    f"rank {proc.rank} issued a collective on group {group} "
                    "it does not belong to"
                )
            if group[-1] >= self.nprocs:
                raise CollectiveMismatchError(
                    f"group {group} references ranks beyond P={self.nprocs}"
                )
            if req.op in ("bcast", "reduce", "gather", "scatter") and req.root not in group:
                raise CollectiveMismatchError(
                    f"collective root {req.root} is not in group {group}"
                )
        elif req.root >= self.nprocs:
            raise ValueError(
                f"rank {proc.rank} issued {req.op!r} with root {req.root} "
                f"but the world has {self.nprocs} ranks"
            )
        # per-(rank, communicator) call counting: group collectives on
        # different communicators proceed independently
        seq = proc.coll_index.get(group, 0)
        proc.coll_index[group] = seq + 1
        key = (group, seq)
        state = self._colls.get(key)
        if state is None:
            state = _CollState(req.op, req.root)
            self._colls[key] = state
        elif state.op != req.op or state.root != req.root:
            raise CollectiveMismatchError(
                f"collective #{key}: rank {proc.rank} called {req.op!r} (root {req.root}) "
                f"but others called {state.op!r} (root {state.root})"
            )
        if proc.rank in state.arrivals:
            raise CollectiveMismatchError(
                f"rank {proc.rank} issued collective #{key} twice"
            )
        state.arrivals[proc.rank] = (t, req.data)
        state.nbytes = max(state.nbytes, req.nbytes)
        if req.reduce_fn is not None:
            state.reduce_fn = req.reduce_fn
        if len(state.arrivals) < len(members):
            return
        # everyone has arrived: price the operation and release the group
        del self._colls[key]
        idx = self._coll_trace_ids
        self._coll_trace_ids += 1
        start_max = max(at for at, _ in state.arrivals.values())
        duration = self.net.collective_time(state.op, state.nbytes, len(members))
        completion = start_max + duration
        results = self._collective_results(state)
        cost = self._msg_host_base + state.nbytes * self._msg_host_per_byte
        trace = self.trace
        procs = self._procs
        heap = self._heap
        for rank, (arrival, _) in state.arrivals.items():
            p = procs[rank]
            p.stats.comm_time += completion - arrival
            p.stats.collectives += 1
            p.stats.host_cost += cost
            if trace is not None:
                p.last_eid = trace.add(
                    proc=rank, kind="collective", start=arrival, end=completion,
                    host_cost=cost, coll_id=idx, nbytes=state.nbytes,
                )
            pseq = self._seq + 1
            self._seq = pseq
            heappush(heap, (completion, pseq, rank,
                            ("resume", CollectiveResult(results[rank], completion))))

    def _collective_results(self, state: _CollState) -> dict[int, Any]:
        """Per-rank result payloads for a completed collective."""
        op = state.op
        ranks = sorted(state.arrivals)
        datas = {r: state.arrivals[r][1] for r in ranks}
        if op == "bcast":
            return {r: datas[state.root] for r in ranks}
        if op in ("reduce", "allreduce"):
            fn = state.reduce_fn
            contributions = [datas[r] for r in ranks if datas[r] is not None]
            acc = None
            if contributions:
                if fn is None:
                    raise CollectiveMismatchError(f"{op} with data requires a reduce_fn")
                acc = contributions[0]
                for c in contributions[1:]:
                    acc = fn(acc, c)
            if op == "allreduce":
                return {r: acc for r in ranks}
            return {r: (acc if r == state.root else None) for r in ranks}
        if op == "gather":
            gathered = [datas[r] for r in ranks]
            return {r: (gathered if r == state.root else None) for r in ranks}
        if op == "allgather":
            gathered = [datas[r] for r in ranks]
            return {r: gathered for r in ranks}
        if op == "scatter":
            chunks = datas[state.root]
            if chunks is not None and len(chunks) != len(ranks):
                raise CollectiveMismatchError(
                    f"scatter payload has {len(chunks)} chunks for {len(ranks)} ranks"
                )
            return {r: (None if chunks is None else chunks[i]) for i, r in enumerate(ranks)}
        # barrier, alltoall carry no modelled payload
        return {r: None for r in ranks}

    # -- the deadlock watchdog ----------------------------------------------------
    def _deadlock_report(self) -> DeadlockReport:
        """Diagnose a drained-but-blocked simulation: who waits on whom."""
        unmatched_sends: list[tuple[int, int, int, int, float]] = []
        unmatched_recvs: list[tuple[int, int, int, float]] = []
        sends_by_src: dict[int, list[tuple[int, MessageRecord]]] = {}
        for dst, q in enumerate(self._queues):
            for m in q.messages:
                unmatched_sends.append((m.source, dst, m.tag, m.nbytes, m.send_time))
                sends_by_src.setdefault(m.source, []).append((dst, m))
            for r in q.recvs:
                unmatched_recvs.append((r.rank, r.source, r.tag, r.post_time))
        stragglers: list[tuple] = []
        coll_waits: dict[int, tuple[str, float, tuple[int, ...]]] = {}
        for (group, _cidx), state in self._colls.items():
            members = group if group is not None else tuple(range(self.nprocs))
            arrived = tuple(sorted(state.arrivals))
            missing = tuple(r for r in members if r not in state.arrivals)
            stragglers.append((state.op, state.root, tuple(members), arrived, missing))
            for r in arrived:
                coll_waits[r] = (state.op, state.arrivals[r][0], missing)
        blocked: list[WaitInfo] = []
        crashed: list[WaitInfo] = []
        for p in self._procs:
            if p.done:
                continue
            if p.crashed:
                crashed.append(
                    WaitInfo(
                        rank=p.rank, state="crashed", since=p.stats.crash_time,
                        detail=f"crashed at t={p.stats.crash_time:.6g}",
                    )
                )
                continue
            blocked.append(self._wait_info(p, sends_by_src, coll_waits))
        return DeadlockReport(
            nprocs=self.nprocs,
            blocked=tuple(blocked),
            crashed=tuple(crashed),
            unmatched_sends=tuple(unmatched_sends),
            unmatched_recvs=tuple(unmatched_recvs),
            stragglers=tuple(stragglers),
        )

    def _wait_info(
        self,
        p: _Proc,
        sends_by_src: dict[int, list[tuple[int, MessageRecord]]],
        coll_waits: dict[int, tuple[str, float, tuple[int, ...]]],
    ) -> WaitInfo:
        """One blocked process's wait-chain entry."""
        state = p.blocked or "unknown"
        since = p.clock
        detail = f"blocked in {state}"
        waiting_on: tuple[int, ...] = ()
        if state == "recv":
            mine = [r for r in self._queues[p.rank].recvs if r.handle is None]
            if mine:
                r = mine[0]
                since = r.post_time
                who = "ANY_SOURCE" if r.source < 0 else str(r.source)
                tag = "ANY_TAG" if r.tag < 0 else str(r.tag)
                detail = f"recv(source={who}, tag={tag}) posted at t={r.post_time:.6g}"
                if r.source >= 0:
                    waiting_on = (r.source,)
        elif state == "send":
            mine = [
                (dst, m) for dst, m in sends_by_src.get(p.rank, ())
                if m.sender_handle is None
            ]
            if mine:
                dst, m = mine[0]
                since = m.send_time
                detail = (
                    f"send(dest={dst}, tag={m.tag}, nbytes={m.nbytes}) awaiting a "
                    f"matching recv since t={m.send_time:.6g}"
                )
                waiting_on = (dst,)
        elif state == "wait":
            pending = sorted(h for h in (p.waiting or ()) if not p.handles[h].done)
            parts: list[str] = []
            on: set[int] = set()
            for r in self._queues[p.rank].recvs:
                if r.handle in pending:
                    who = "ANY_SOURCE" if r.source < 0 else str(r.source)
                    parts.append(f"irecv(source={who})")
                    if r.source >= 0:
                        on.add(r.source)
            for dst, m in sends_by_src.get(p.rank, ()):
                if m.sender_handle in pending:
                    parts.append(f"isend(dest={dst})")
                    on.add(dst)
            since = p.wait_time
            what = ", ".join(parts) if parts else f"{len(pending)} pending handle(s)"
            detail = f"wait on {what} since t={p.wait_time:.6g}"
            waiting_on = tuple(sorted(on))
        elif state == "collective":
            if p.rank in coll_waits:
                op, arrival, missing = coll_waits[p.rank]
                since = arrival
                detail = (
                    f"collective {op!r} entered at t={arrival:.6g}, "
                    f"missing ranks {list(missing)}"
                )
                waiting_on = missing
        return WaitInfo(
            rank=p.rank, state=state, since=since, detail=detail, waiting_on=waiting_on
        )
