"""MPI-Sim core: discrete-event kernel, statistics, memory, tracing."""

from .engine import (
    CollectiveMismatchError,
    DeadlockError,
    ExecMode,
    SimResult,
    Simulator,
)
from .memory import MemoryReport, MemoryTracker
from .requests import (
    ANY_SOURCE,
    ANY_TAG,
    Isend,
    Irecv,
    Wait,
    RequestHandle,
    Alloc,
    Collective,
    CollectiveResult,
    Compute,
    Delay,
    Free,
    Now,
    ReceivedMessage,
    Recv,
    Request,
    Send,
)
from .stats import ProcessStats, SimStats
from .trace import Trace, TraceEvent
from .trace_io import load_trace, save_trace

__all__ = [
    "Simulator",
    "SimResult",
    "ExecMode",
    "DeadlockError",
    "CollectiveMismatchError",
    "MemoryTracker",
    "MemoryReport",
    "ProcessStats",
    "SimStats",
    "Trace",
    "TraceEvent",
    "save_trace",
    "load_trace",
    "Request",
    "Compute",
    "Delay",
    "Send",
    "Recv",
    "Isend",
    "Irecv",
    "Wait",
    "RequestHandle",
    "Collective",
    "Alloc",
    "Free",
    "Now",
    "ReceivedMessage",
    "CollectiveResult",
    "ANY_SOURCE",
    "ANY_TAG",
]
