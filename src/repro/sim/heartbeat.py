"""Worker heartbeats: a cheap liveness cursor for supervised runs.

A campaign worker that wedges — an infinite loop in a generated
program, a pathological collective schedule, an accidental O(n²) in a
model — looks exactly like a slow run from the outside.  Before this
module the only defence was the coarse wall-clock budget: the parent
waited out the full ``max_wall_seconds`` before learning anything.

The :class:`HeartbeatEmitter` gives the kernel a pulse.  While a run
drains its event heap, the supervised loop calls :meth:`tick` once per
event; every *interval_events* events (and at most once per
*min_interval_s* wall seconds) the emitter hands a small **cursor**
dict — event count, virtual time, wall time, plus a bounded tail of
the flight-recorder ring when that is armed — to a sink callable.  In
the supervised pool (:mod:`repro.workflow.supervisor`) the sink writes
the cursor down the worker's pipe, so the parent always knows how far
every in-flight run has progressed and can distinguish *slow* from
*stuck*: a run whose cursor stops advancing past the heartbeat
deadline is killed and reclassified ``hung`` instead of waiting out
the wall budget.

Cost contract (the same one TRACER / METRICS / FLIGHT hold to):

* **Disabled (the default), heartbeats add zero hot-loop calls.**
  :meth:`repro.sim.Simulator.run` tests ``HEARTBEAT.enabled`` once per
  run and dispatches to the bare event loop; the ticking variant is a
  separate drain function that only exists on the enabled path.
* **Enabled, a tick is two integer compares** in the common case (the
  event-stride gate, then the wall-clock throttle); actually *emitting*
  a cursor is bounded by ``min_interval_s``, so sink traffic is a few
  messages per second regardless of event rate.

A sink that raises (the parent died, the pipe closed) disables the
emitter for the rest of the run: the worker finishes or dies on its
own terms rather than crashing inside the event loop.
"""

from __future__ import annotations

import time

from .flightrec import FLIGHT

__all__ = ["HeartbeatEmitter", "HEARTBEAT"]

#: cursor schema version (bump when the dict shape changes)
CURSOR_FORMAT = 1

#: default event stride between emission checks
DEFAULT_INTERVAL_EVENTS = 2048

#: default minimum wall seconds between emitted cursors
DEFAULT_MIN_INTERVAL_S = 0.25

#: flight-ring tail length carried on each cursor (when FLIGHT is armed)
FLIGHT_TAIL = 32


class HeartbeatEmitter:
    """Throttled liveness-cursor emitter; use the shared :data:`HEARTBEAT`.

    The emitter is configured per run (sink, stride, throttle, metadata)
    and consulted by the kernel's supervised drain loop via
    :meth:`tick`.  Cursors are JSON-safe dicts::

        {"format": 1, "run_id": ..., "events": N, "virtual_time": t,
         "wall_seconds": w, "flight_tail": [[t, rank, kind], ...]}
    """

    def __init__(self):
        self.enabled = False
        self.interval_events = DEFAULT_INTERVAL_EVENTS
        self.min_interval_s = DEFAULT_MIN_INTERVAL_S
        self._sink = None
        self._meta: dict = {}
        self._next_events = 0
        self._last_wall = 0.0
        self._t0 = 0.0
        self._emitted = 0

    # -- lifecycle -----------------------------------------------------------
    def configure(self, sink, *, interval_events: int | None = None,
                  min_interval_s: float | None = None, **meta) -> None:
        """Set the sink and throttles for the next run.

        *sink* is ``sink(cursor: dict) -> None``; extra keyword
        arguments (``run_id=...``) ride on every cursor.
        """
        if interval_events is not None:
            if interval_events < 1:
                raise ValueError(
                    f"interval_events must be >= 1, got {interval_events}")
            self.interval_events = interval_events
        if min_interval_s is not None:
            if min_interval_s < 0:
                raise ValueError(
                    f"min_interval_s must be >= 0, got {min_interval_s}")
            self.min_interval_s = min_interval_s
        self._sink = sink
        self._meta = dict(meta)

    def enable(self) -> None:
        if self._sink is None:
            raise ValueError("configure(sink) before enable()")
        now = time.monotonic()
        self._t0 = now
        self._last_wall = now
        self._next_events = self.interval_events
        self._emitted = 0
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @property
    def emitted(self) -> int:
        """Cursors emitted since :meth:`enable` (test observability)."""
        return self._emitted

    # -- the kernel-facing tick (enabled path only) --------------------------
    def tick(self, events: int, t: float) -> None:
        """Maybe emit a cursor; two compares when not due."""
        if events < self._next_events:
            return
        now = time.monotonic()
        self._next_events = events + self.interval_events
        if now - self._last_wall < self.min_interval_s:
            return
        self._last_wall = now
        cursor = {
            "format": CURSOR_FORMAT,
            "events": events,
            "virtual_time": t,
            "wall_seconds": now - self._t0,
        }
        cursor.update(self._meta)
        if FLIGHT.enabled:
            cursor["flight_tail"] = [
                [et, rank, kind] for et, rank, kind in FLIGHT.events[-FLIGHT_TAIL:]
            ]
        try:
            self._sink(cursor)
            self._emitted += 1
        except Exception:
            # the listener is gone (dead parent, closed pipe): stop
            # beating and let the run finish or die on its own
            self.enabled = False


#: The process-wide emitter the kernel consults (once per run).
HEARTBEAT = HeartbeatEmitter()
