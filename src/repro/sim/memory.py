"""Byte-accurate memory accounting for the simulator.

The central scalability claim of the paper (Table 1, Figs. 10–11) is
about *memory*: direct execution forces the simulator to hold every
target process's data, while the compiler-simplified program keeps only
sliced scalars and one dummy communication buffer.  This tracker records
every allocation the simulated application makes, per rank, and adds the
simulation kernel's per-thread overhead, so both simulator variants can
report their total footprint and be checked against a host memory
budget.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryTracker", "MemoryReport"]


@dataclass(frozen=True)
class MemoryReport:
    """Snapshot of the simulator's memory footprint."""

    nprocs: int
    app_bytes: int  # peak sum of target-program allocations across ranks
    kernel_bytes: int  # simulator kernel state (threads, queues)

    @property
    def total_bytes(self) -> int:
        return self.app_bytes + self.kernel_bytes

    def fits(self, budget_bytes: int) -> bool:
        """Would this simulation fit in *budget_bytes* of host memory?"""
        return self.total_bytes <= budget_bytes

    def __str__(self):
        return f"{self.total_bytes / 2**20:.1f} MiB ({self.nprocs} procs)"


class MemoryTracker:
    """Tracks named allocations per target rank and global peak usage."""

    def __init__(self, nprocs: int, thread_overhead_bytes: int = 0):
        if nprocs < 1:
            raise ValueError("need at least one process")
        self.nprocs = nprocs
        self.thread_overhead_bytes = thread_overhead_bytes
        self._allocs: list[dict[str, int]] = [dict() for _ in range(nprocs)]
        self._rank_current = [0] * nprocs
        self._rank_peak = [0] * nprocs

    def allocate(self, rank: int, name: str, nbytes: int) -> None:
        """Record an allocation; re-allocating a live name is an error."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        allocs = self._allocs[rank]
        if name in allocs:
            raise ValueError(f"rank {rank}: {name!r} is already allocated")
        allocs[name] = nbytes
        self._rank_current[rank] += nbytes
        if self._rank_current[rank] > self._rank_peak[rank]:
            self._rank_peak[rank] = self._rank_current[rank]

    def free(self, rank: int, name: str) -> None:
        """Release a named allocation."""
        allocs = self._allocs[rank]
        try:
            nbytes = allocs.pop(name)
        except KeyError:
            raise ValueError(f"rank {rank}: {name!r} is not allocated") from None
        self._rank_current[rank] -= nbytes

    def rank_bytes(self, rank: int) -> int:
        """Bytes currently allocated by *rank*."""
        return self._rank_current[rank]

    @property
    def current_bytes(self) -> int:
        return sum(self._rank_current)

    @property
    def peak_bytes(self) -> int:
        """Sum of per-rank peaks: all target threads coexist in the simulator,
        so each contributes its own peak regardless of scheduling order."""
        return sum(self._rank_peak)

    def report(self) -> MemoryReport:
        """Total footprint: peak application bytes + kernel overhead."""
        return MemoryReport(
            nprocs=self.nprocs,
            app_bytes=self.peak_bytes,
            kernel_bytes=self.nprocs * self.thread_overhead_bytes,
        )
