"""Replay-cursor checkpoints: resume a killed run by fast-forward.

The engine is deterministic under a fixed seed: the same program,
machine and seed drain the same event heap in the same order.  That
makes a **replay cursor** — (event count, virtual time) plus the
identity of the run it belongs to — a sound checkpoint representation:
instead of serializing live generator frames and match queues (which
cannot be pickled), a resumed run simply re-executes from event zero
and *verifies* that it passes through the checkpointed cursor, while
the campaign layer refunds the wall-clock budget the first attempt
already spent (see ``CampaignRunner._simulate``).  The MP-net view of
message-passing state (PAPERS.md) is what licenses this: the kernel's
state at event N is a pure function of the history, so the cursor
pins the whole state.

Checkpoint files are small JSON documents written atomically
(tmp + fsync + rename via :func:`repro.util.atomic_io.atomic_write`)
to ``<out>/checkpoints/<run_id>.json``::

    {"format": 1, "run_id": ..., "config_hash": ..., "seed": ...,
     "events": N, "virtual_time": t, "wall_seconds": w,
     "rng_state": {...} | null, "stats": {...}}

``rng_state`` snapshots the numpy bit-generator for MEASURED-mode
runs; it documents the cursor (and lets external tooling audit the
replay) — resumption itself replays from the seed.  A checkpoint
whose recorded cursor the replay does *not* reproduce raises
:class:`CheckpointMismatchError`; the campaign layer then discards the
checkpoint and restarts the run from zero rather than trusting a
divergent replay.

Cost contract: disabled (the default), checkpointing adds zero
hot-loop calls — :meth:`repro.sim.Simulator.run` tests
``CHECKPOINT.enabled`` once per run.  Enabled, a tick is two integer
compares in the common case; an actual write is throttled by both an
event stride and a wall-clock minimum interval.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from ..util.atomic_io import atomic_write

__all__ = [
    "RunCheckpoint",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointWriter",
    "CHECKPOINT",
    "load_checkpoint",
]

#: checkpoint schema version (bump when the dict shape changes)
CHECKPOINT_FORMAT = 1

#: default event stride between checkpoint writes
DEFAULT_INTERVAL_EVENTS = 200_000

#: default minimum wall seconds between checkpoint writes
DEFAULT_MIN_INTERVAL_S = 1.0


class CheckpointError(RuntimeError):
    """A checkpoint file cannot be used (corrupt, wrong identity)."""


class CheckpointMismatchError(CheckpointError):
    """A replayed run diverged from its checkpointed cursor.

    Determinism is the load-bearing assumption of replay-cursor
    resumption; if the cursor does not reproduce, the checkpoint (or
    the environment) is wrong and the run must restart from zero.
    """


@dataclass(frozen=True)
class RunCheckpoint:
    """One replay cursor: where a run was, and which run it was."""

    run_id: str
    config_hash: str
    seed: int
    events: int
    virtual_time: float
    wall_seconds: float
    rng_state: dict | None = None
    stats: dict | None = None

    def to_json(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "run_id": self.run_id,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "events": self.events,
            "virtual_time": self.virtual_time,
            "wall_seconds": self.wall_seconds,
            "rng_state": self.rng_state,
            "stats": self.stats,
        }

    @classmethod
    def from_json(cls, doc: dict) -> RunCheckpoint:
        if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format {doc.get('format') if isinstance(doc, dict) else doc!r}"
            )
        try:
            return cls(
                run_id=str(doc["run_id"]),
                config_hash=str(doc["config_hash"]),
                seed=int(doc["seed"]),
                events=int(doc["events"]),
                virtual_time=float(doc["virtual_time"]),
                wall_seconds=float(doc["wall_seconds"]),
                rng_state=doc.get("rng_state"),
                stats=doc.get("stats"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"corrupt checkpoint: {exc}") from None


def load_checkpoint(path: str | Path) -> RunCheckpoint | None:
    """Read a checkpoint file; ``None`` if missing or unusable.

    A corrupt checkpoint is *not* an error — it is a crash artifact
    (e.g. written by a dying kernel version) and resumption simply
    restarts from zero; the caller may clear the file.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    try:
        return RunCheckpoint.from_json(doc)
    except CheckpointError:
        return None


class CheckpointWriter:
    """Per-run checkpoint state machine; use the shared :data:`CHECKPOINT`.

    The campaign layer configures it with the run identity, the target
    path and (on resume) the cursor to verify; the kernel's supervised
    drain loop binds the stats/rng providers and calls :meth:`tick`
    once per event.
    """

    def __init__(self):
        self.enabled = False
        self.interval_events = DEFAULT_INTERVAL_EVENTS
        self.min_interval_s = DEFAULT_MIN_INTERVAL_S
        self._path: Path | None = None
        self._run_id = ""
        self._config_hash = ""
        self._seed = 0
        self._verify_events = -1  # -1: no pending verification
        self._verify_time = 0.0
        self._next_events = 0
        self._last_wall = 0.0
        self._t0 = 0.0
        self._wall_credit = 0.0
        self._stats_fn = None
        self._rng_state_fn = None
        self._written = 0

    # -- lifecycle (campaign side) -------------------------------------------
    def configure(self, path: str | Path, *, run_id: str, config_hash: str,
                  seed: int, interval_events: int | None = None,
                  min_interval_s: float | None = None,
                  resume_from: RunCheckpoint | None = None) -> None:
        if interval_events is not None:
            if interval_events < 1:
                raise ValueError(
                    f"interval_events must be >= 1, got {interval_events}")
            self.interval_events = interval_events
        if min_interval_s is not None:
            if min_interval_s < 0:
                raise ValueError(
                    f"min_interval_s must be >= 0, got {min_interval_s}")
            self.min_interval_s = min_interval_s
        self._path = Path(path)
        self._run_id = run_id
        self._config_hash = config_hash
        self._seed = seed
        self._written = 0
        self._wall_credit = 0.0
        if resume_from is not None:
            if (resume_from.run_id != run_id
                    or resume_from.config_hash != config_hash
                    or resume_from.seed != seed):
                raise CheckpointError(
                    f"checkpoint {path} belongs to a different run "
                    f"(run {resume_from.run_id}, config {resume_from.config_hash})"
                )
            self._verify_events = resume_from.events
            self._verify_time = resume_from.virtual_time
            # no writes while replaying the already-checkpointed prefix:
            # the on-disk cursor stays the high-water mark until verified
            self._wall_credit = resume_from.wall_seconds
        else:
            self._verify_events = -1

    def enable(self) -> None:
        if self._path is None:
            raise ValueError("configure(path, ...) before enable()")
        now = time.monotonic()
        self._t0 = now
        self._last_wall = now
        start = self._verify_events if self._verify_events >= 0 else 0
        self._next_events = start + self.interval_events
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    @property
    def written(self) -> int:
        """Checkpoints written since :meth:`configure` (test observability)."""
        return self._written

    @property
    def verifying(self) -> bool:
        """A resume cursor is still awaiting replay verification."""
        return self._verify_events >= 0

    # -- kernel side ---------------------------------------------------------
    def bind(self, stats_fn, rng_state_fn=None) -> None:
        """Attach the providers for stats / rng snapshots (per run)."""
        self._stats_fn = stats_fn
        self._rng_state_fn = rng_state_fn

    def tick(self, events: int, t: float) -> None:
        """Verify the resume cursor once reached; maybe write a checkpoint."""
        if events == self._verify_events:
            expect = self._verify_time
            self._verify_events = -1
            if t != expect:
                raise CheckpointMismatchError(
                    f"replay diverged from checkpoint for run {self._run_id}: "
                    f"event {events} at virtual time {t!r}, "
                    f"checkpoint recorded {expect!r}"
                )
        if events < self._next_events:
            return
        now = time.monotonic()
        self._next_events = events + self.interval_events
        if now - self._last_wall < self.min_interval_s:
            return
        self._last_wall = now
        try:
            self.write(events, t)
        except OSError as exc:
            # a checkpoint is an optimization, not a correctness input:
            # losing the disk (ENOSPC, EIO) must not kill a healthy run
            from ..obs.logging import get_logger

            get_logger("sim.checkpoint").warning(
                "checkpoint write failed (%s); "
                "disabling checkpoints for this run", exc,
            )
            self.enabled = False

    def write(self, events: int, t: float) -> RunCheckpoint:
        """Write the current cursor atomically; returns the checkpoint."""
        ckpt = RunCheckpoint(
            run_id=self._run_id,
            config_hash=self._config_hash,
            seed=self._seed,
            events=events,
            virtual_time=t,
            # wall credit carries across attempts: a twice-preempted run
            # still reports the total wall it has genuinely consumed
            wall_seconds=self._wall_credit + (time.monotonic() - self._t0),
            rng_state=self._rng_state_fn() if self._rng_state_fn is not None else None,
            stats=self._stats_fn() if self._stats_fn is not None else None,
        )
        with atomic_write(self._path) as fh:
            json.dump(ckpt.to_json(), fh, sort_keys=True)
            fh.write("\n")
        self._written += 1
        return ckpt

    def clear(self) -> None:
        """Remove the checkpoint file (the run reached a terminal record)."""
        if self._path is not None:
            self._path.unlink(missing_ok=True)


#: The process-wide writer the kernel consults (once per run).
CHECKPOINT = CheckpointWriter()
