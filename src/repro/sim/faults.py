"""Fault injection and resilience modeling for the MPI-Sim kernel.

Real runs at the scales MPI-SIM-AM targets (thousands of target
processors) see rank crashes, dropped or duplicated messages and
degraded links.  This module lets a simulation schedule those events
deterministically so that "what happens to this application when things
go wrong" becomes an answerable question:

* :class:`FaultPlan` — a declarative, seed-driven schedule of faults:
  rank crashes at a virtual time, per-link message loss/duplication
  probabilities, transient send failures, and link-degradation windows.
* :class:`RetryPolicy` — transport-level retransmission (max attempts,
  exponential backoff charged to the virtual clock), modeling
  application/runtime resilience to transient faults.
* :class:`DeadlockReport` — the deadlock watchdog's diagnosis: the
  per-rank wait-chain graph (who is blocked on whom), unmatched sends
  and receives, and collective stragglers, in the spirit of ScalAna's
  graph-based stall diagnosis.

Every random decision is a pure function of ``(plan.seed, fault kind,
message identity, attempt)``, so a plan replays identically regardless
of event-queue ordering, and two runs with the same seed agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

__all__ = [
    "CrashFault",
    "LinkDegradation",
    "RetryPolicy",
    "FaultPlan",
    "FaultState",
    "WaitInfo",
    "DeadlockReport",
]

# Sub-stream tags keeping the per-kind random draws independent.
_STREAM_LOSS = 1
_STREAM_DUP = 2
_STREAM_SENDFAIL = 3


def _check_prob(name: str, p: float) -> None:
    if not (isinstance(p, (int, float)) and math.isfinite(p) and 0.0 <= p <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {p!r}")


def _check_time(name: str, t: float) -> None:
    if not (isinstance(t, (int, float)) and math.isfinite(t) and t >= 0.0):
        raise ValueError(f"{name} must be a finite non-negative time, got {t!r}")


@dataclass(frozen=True)
class CrashFault:
    """Rank *rank* stops executing at virtual time *time*.

    The crash takes effect at the rank's next kernel event at or after
    *time*: pending sends already injected still deliver, but the rank
    issues no further requests, its posted receives are cancelled, and
    any rank that depends on it ends up in the deadlock watchdog's
    wait-chain report.
    """

    rank: int
    time: float

    def __post_init__(self):
        if self.rank < 0:
            raise ValueError(f"crash rank must be >= 0, got {self.rank}")
        _check_time("crash time", self.time)


@dataclass(frozen=True)
class LinkDegradation:
    """Latency/bandwidth multipliers on a link over a time window.

    ``src``/``dst`` of ``None`` are wildcards (any sender / any
    receiver).  Within ``[start, end)`` a message crossing a matching
    link pays ``latency_factor``× the nominal latency and
    ``1/bandwidth_factor``× the nominal per-byte time.
    """

    start: float
    end: float
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    src: int | None = None
    dst: int | None = None

    def __post_init__(self):
        _check_time("degradation start", self.start)
        _check_time("degradation end", self.end)
        if self.end <= self.start:
            raise ValueError(f"degradation window is empty: [{self.start}, {self.end})")
        if not (math.isfinite(self.latency_factor) and self.latency_factor >= 1.0):
            raise ValueError(f"latency_factor must be >= 1, got {self.latency_factor}")
        if not (math.isfinite(self.bandwidth_factor) and 0.0 < self.bandwidth_factor <= 1.0):
            raise ValueError(f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}")

    def applies(self, src: int, dst: int, when: float) -> bool:
        """Does this window degrade a (src → dst) message sent at *when*?"""
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and self.start <= when < self.end
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Transport/application-level retransmission of failed operations.

    After the *k*-th failed attempt the retrier backs off for
    ``backoff * backoff_factor ** (k - 1)`` virtual seconds before
    attempt *k + 1*, up to ``max_attempts`` attempts total.  Backoff is
    charged to the virtual clock of the operation (the message arrives
    later; a failed injection delays the sender), so resilience has a
    modelled performance price.
    """

    max_attempts: int = 3
    backoff: float = 1.0e-4
    backoff_factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not (math.isfinite(self.backoff) and self.backoff >= 0.0):
            raise ValueError(f"backoff must be finite and >= 0, got {self.backoff}")
        if not (math.isfinite(self.backoff_factor) and self.backoff_factor >= 1.0):
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay_after(self, attempt: int) -> float:
        """Backoff charged after failed attempt number *attempt* (1-based)."""
        return self.backoff * self.backoff_factor ** (attempt - 1)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seed-driven schedule of injectable faults.

    An empty plan (the default) is guaranteed zero-cost: the kernel
    bypasses the fault layer entirely and predictions are bit-identical
    to a run without it.
    """

    seed: int = 0
    crashes: tuple[CrashFault, ...] = ()
    #: probability that any point-to-point message is lost in transit
    message_loss: float = 0.0
    #: per-link overrides of ``message_loss``: (src, dst, probability)
    link_loss: tuple[tuple[int, int, float], ...] = ()
    #: probability that a delivered message is duplicated on the wire
    duplication: float = 0.0
    #: probability that one send attempt fails before injection
    send_failure: float = 0.0
    degradations: tuple[LinkDegradation, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "link_loss", tuple(tuple(x) for x in self.link_loss))
        object.__setattr__(self, "degradations", tuple(self.degradations))
        _check_prob("message_loss", self.message_loss)
        _check_prob("duplication", self.duplication)
        _check_prob("send_failure", self.send_failure)
        for src, dst, p in self.link_loss:
            if src < 0 or dst < 0:
                raise ValueError(f"link_loss ranks must be >= 0, got ({src}, {dst})")
            _check_prob(f"link_loss[{src}->{dst}]", p)
        seen = set()
        for c in self.crashes:
            if c.rank in seen:
                raise ValueError(f"rank {c.rank} crashes more than once")
            seen.add(c.rank)

    def is_empty(self) -> bool:
        """True when the plan injects nothing (the zero-cost fast path)."""
        return (
            not self.crashes
            and self.message_loss == 0.0
            and not self.link_loss
            and self.duplication == 0.0
            and self.send_failure == 0.0
            and not self.degradations
        )

    def with_loss(self, p: float) -> "FaultPlan":
        """A copy of this plan with global message loss set to *p*."""
        return replace(self, message_loss=p)

    # -- (de)serialization: the CLI's fault-plan schema ------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crashes": [{"rank": c.rank, "time": c.time} for c in self.crashes],
            "message_loss": self.message_loss,
            "link_loss": [list(x) for x in self.link_loss],
            "duplication": self.duplication,
            "send_failure": self.send_failure,
            "degradations": [
                {
                    "start": d.start,
                    "end": d.end,
                    "latency_factor": d.latency_factor,
                    "bandwidth_factor": d.bandwidth_factor,
                    "src": d.src,
                    "dst": d.dst,
                }
                for d in self.degradations
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {
            "seed", "crashes", "message_loss", "link_loss", "duplication",
            "send_failure", "degradations",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        return cls(
            seed=int(data.get("seed", 0)),
            crashes=tuple(CrashFault(**c) for c in data.get("crashes", ())),
            message_loss=float(data.get("message_loss", 0.0)),
            link_loss=tuple(tuple(x) for x in data.get("link_loss", ())),
            duplication=float(data.get("duplication", 0.0)),
            send_failure=float(data.get("send_failure", 0.0)),
            degradations=tuple(
                LinkDegradation(**d) for d in data.get("degradations", ())
            ),
        )


class FaultState:
    """Runtime fault oracle the kernel consults for one simulation.

    Wraps a :class:`FaultPlan` plus the optional :class:`RetryPolicy`.
    All draws are keyed by (kind, message seq, attempt) under the plan
    seed, so decisions are independent of event ordering.
    """

    def __init__(self, plan: FaultPlan, retry: RetryPolicy | None = None):
        self.plan = plan
        self.retry = retry
        self._loss = dict(((s, d), p) for s, d, p in plan.link_loss)

    # -- randomness -------------------------------------------------------------
    def _draw(self, stream: int, seq: int, attempt: int) -> float:
        rng = np.random.default_rng((self.plan.seed, stream, seq, attempt))
        return float(rng.random())

    def _loss_prob(self, src: int, dst: int) -> float:
        return self._loss.get((src, dst), self.plan.message_loss)

    def _attempt_loop(self, p: float, stream: int, seq: int) -> tuple[bool, int, float]:
        """Run the Bernoulli(p)-per-attempt retry loop for one operation.

        Returns ``(succeeded, retries, backoff_delay)`` where *retries*
        counts re-attempts actually made and *backoff_delay* is the
        total virtual time spent backing off.
        """
        if p <= 0.0:
            return True, 0, 0.0
        max_attempts = self.retry.max_attempts if self.retry is not None else 1
        delay = 0.0
        for attempt in range(1, max_attempts + 1):
            if self._draw(stream, seq, attempt) >= p:
                return True, attempt - 1, delay
            if attempt < max_attempts:
                delay += self.retry.delay_after(attempt)
        return False, max_attempts - 1, delay

    # -- the per-message fault decisions ---------------------------------------
    def injection(self, src: int, dst: int, seq: int) -> tuple[bool, int, float]:
        """Transient send-failure loop for message *seq* (before injection)."""
        return self._attempt_loop(self.plan.send_failure, _STREAM_SENDFAIL, seq)

    def delivery(self, src: int, dst: int, seq: int) -> tuple[bool, int, float]:
        """Message-loss/retransmission loop for message *seq* (on the wire)."""
        return self._attempt_loop(self._loss_prob(src, dst), _STREAM_LOSS, seq)

    def duplicates(self, src: int, dst: int, seq: int) -> bool:
        """Is a spurious duplicate of message *seq* delivered too?"""
        p = self.plan.duplication
        return p > 0.0 and self._draw(_STREAM_DUP, seq, 1) < p

    def crash_times(self, nprocs: int) -> dict[int, float]:
        """rank -> crash time, validated against the world size."""
        for c in self.plan.crashes:
            if c.rank >= nprocs:
                raise ValueError(
                    f"fault plan crashes rank {c.rank} but the world has {nprocs} ranks"
                )
        return {c.rank: c.time for c in self.plan.crashes}

    def degradation_extra(self, net, nbytes: int, src: int, dst: int, when: float) -> float:
        """Extra transit seconds from degradation windows active at *when*."""
        extra = 0.0
        for d in self.plan.degradations:
            if d.applies(src, dst, when):
                extra += net.degradation_extra(nbytes, d.latency_factor, d.bandwidth_factor)
        return extra


# -- deadlock diagnosis ------------------------------------------------------------


@dataclass(frozen=True)
class WaitInfo:
    """One rank's entry in the wait-chain graph."""

    rank: int
    state: str  # "recv" | "send" | "isend" | "irecv" | "wait" | "collective" | "crashed"
    since: float  # virtual time the rank blocked (or crashed)
    detail: str  # human-readable description of what it waits for
    waiting_on: tuple[int, ...] = ()  # ranks this rank is blocked on (empty = any/unknown)


@dataclass(frozen=True)
class DeadlockReport:
    """The deadlock watchdog's diagnosis of a stalled simulation.

    Instead of a bare "deadlocked" error, the report carries the
    per-rank wait-chain graph: for every unfinished rank, what it is
    blocked in, since when, and on whom; plus the unmatched
    communication state (posted-but-unmatched receives, queued
    undelivered sends) and collective stragglers.  :meth:`cycles` finds
    circular waits; :meth:`format` renders the whole diagnosis.
    """

    nprocs: int
    blocked: tuple[WaitInfo, ...] = ()
    crashed: tuple[WaitInfo, ...] = ()
    #: (source, dest, tag, nbytes, send_time) of queued undelivered messages
    unmatched_sends: tuple[tuple[int, int, int, int, float], ...] = ()
    #: (rank, source, tag, post_time) of posted-but-unmatched receives
    unmatched_recvs: tuple[tuple[int, int, int, float], ...] = ()
    #: (op, root, members, arrived, missing) of incomplete collectives
    stragglers: tuple[tuple[str, int, tuple[int, ...], tuple[int, ...], tuple[int, ...]], ...] = ()

    @property
    def blocked_ranks(self) -> tuple[int, ...]:
        return tuple(w.rank for w in self.blocked)

    @property
    def crashed_ranks(self) -> tuple[int, ...]:
        return tuple(w.rank for w in self.crashed)

    def wait_graph(self) -> dict[int, tuple[int, ...]]:
        """rank -> ranks it waits on (the wait-chain adjacency)."""
        return {w.rank: w.waiting_on for w in self.blocked}

    def cycles(self) -> list[tuple[int, ...]]:
        """Circular waits among blocked ranks (each reported once)."""
        graph = self.wait_graph()
        seen: set[int] = set()
        cycles: list[tuple[int, ...]] = []
        for start in graph:
            if start in seen:
                continue
            path: list[int] = []
            index: dict[int, int] = {}
            node: int | None = start
            while node is not None and node in graph and node not in seen and node not in index:
                index[node] = len(path)
                path.append(node)
                nxt = [r for r in graph.get(node, ()) if r in graph]
                # follow the first blocking edge; a dead end ends the walk
                node = nxt[0] if nxt else None
            if node is not None and node in index:
                cycles.append(tuple(path[index[node]:]))
            seen.update(path)
        return cycles

    def summary(self) -> str:
        """One-line digest (the head of the raised error message)."""
        parts = [
            f"rank {w.rank} blocked in {w.state} at t={w.since:.6g}" for w in self.blocked
        ]
        head = f"simulation deadlocked: {', '.join(parts)}" if parts else "simulation deadlocked"
        if self.crashed:
            head += f" (crashed ranks: {', '.join(str(r) for r in self.crashed_ranks)})"
        return head

    def format(self) -> str:
        """Multi-line wait-chain diagnosis."""
        lines = [self.summary()]
        if self.crashed:
            lines.append("crashed ranks:")
            for w in self.crashed:
                lines.append(f"  rank {w.rank}: crashed at t={w.since:.6g}")
        if self.blocked:
            lines.append("wait chains:")
            for w in self.blocked:
                on = (
                    " <- waiting on rank(s) " + ", ".join(str(r) for r in w.waiting_on)
                    if w.waiting_on
                    else ""
                )
                lines.append(f"  rank {w.rank}: {w.detail}{on}")
        for cyc in self.cycles():
            chain = " -> ".join(str(r) for r in cyc + (cyc[0],))
            lines.append(f"circular wait: {chain}")
        crashed = set(self.crashed_ranks)
        for w in self.blocked:
            hit = sorted(set(w.waiting_on) & crashed)
            if hit:
                lines.append(
                    f"rank {w.rank} waits on crashed rank(s) {', '.join(str(r) for r in hit)}"
                )
        if self.unmatched_sends:
            lines.append("undelivered sends:")
            for src, dst, tag, nbytes, ts in self.unmatched_sends:
                lines.append(
                    f"  {src} -> {dst} tag={tag} nbytes={nbytes} sent at t={ts:.6g}"
                )
        if self.unmatched_recvs:
            lines.append("unmatched receives:")
            for rank, src, tag, ts in self.unmatched_recvs:
                who = "ANY" if src < 0 else str(src)
                lines.append(
                    f"  rank {rank} <- source={who} tag={'ANY' if tag < 0 else tag} "
                    f"posted at t={ts:.6g}"
                )
        if self.stragglers:
            lines.append("collective stragglers:")
            for op, root, members, arrived, missing in self.stragglers:
                lines.append(
                    f"  {op}(root={root}) over {len(members)} ranks: "
                    f"arrived {list(arrived)}, missing {list(missing)}"
                )
        return "\n".join(lines)
