"""Tomcatv: the SPEC92 vectorized mesh-generation benchmark.

The paper studies "an HPF version of this benchmark compiled to MPI by
the dhpf compiler [...] where the key arrays of the HPF code are
distributed across the processors in contiguous blocks in the second
dimension (i.e., using the HPF distribution (*,BLOCK))."

Structure modelled (per ITMAX iteration of the real kernel):

* boundary-column exchange with the left/right neighbours in the
  1-D (*,BLOCK) decomposition (two columns of N reals each way);
* residual computation over the local block (RX/RY), with the
  9-point-stencil force terms — the dominant compute;
* a global max-reduction of the residual (the HPF ``MAXVAL``);
* the tridiagonal relaxation solve along columns plus the mesh update.

The iteration count is the input ``itmax`` (the SPEC kernel runs a
fixed count rather than testing convergence, which is what makes the
whole compute abstractable: the residual's *value* never changes the
parallel structure).
"""

from __future__ import annotations

from ..ir.builder import ProgramBuilder, P, myid
from ..symbolic import Var
from .common import block_extent, neighbor_exchange_1d

__all__ = ["build_tomcatv", "tomcatv_inputs", "STENCIL_OPS", "SOLVE_OPS", "UPDATE_OPS"]

#: Abstract ops per point: residual/force 9-point stencil evaluation.
STENCIL_OPS = 40.0
#: Abstract ops per point: tridiagonal forward/backward sweeps.
SOLVE_OPS = 12.0
#: Abstract ops per point: mesh coordinate update + residual max scan.
UPDATE_OPS = 6.0

#: The seven N×cols REAL arrays of the kernel (X, Y, RX, RY, AA, DD, D).
ARRAYS = ("X", "Y", "RX", "RY", "AA", "DD", "D")


def build_tomcatv() -> "Program":
    """Build the Tomcatv IR program.  Parameters: ``n``, ``itmax``."""
    b = ProgramBuilder("tomcatv", params=("n", "itmax"))
    n, itmax = Var("n"), Var("itmax")

    from ..symbolic import ceil_div

    cols_bound = ceil_div(n, P)
    for name in ARRAYS:
        b.array(name, size=n * cols_bound)

    cols = block_extent(b, "cols", n, P, myid)

    # two boundary columns of N reals each way, per iteration
    edge_bytes = 2 * n * 8

    with b.loop("iter", 1, itmax):
        neighbor_exchange_1d(
            b, coord=myid, extent=P, stride=1, nbytes=edge_bytes, tag=3, array="X"
        )
        b.compute(
            "residual",
            work=(n - 2) * cols,
            ops_per_iter=STENCIL_OPS,
            arrays=("X", "Y", "RX", "RY"),
        )
        b.allreduce(nbytes=8, contrib=None, result_var=None, reduce_kind="max")
        b.compute(
            "tridiag_solve",
            work=(n - 2) * cols,
            ops_per_iter=SOLVE_OPS,
            arrays=("RX", "RY", "AA", "DD", "D"),
        )
        b.compute(
            "mesh_update",
            work=(n - 2) * cols,
            ops_per_iter=UPDATE_OPS,
            arrays=("X", "Y", "RX", "RY"),
        )
    return b.build()


def tomcatv_inputs(n: int, itmax: int = 10) -> dict[str, int]:
    """Concrete inputs for a Tomcatv run of mesh size n×n."""
    return {"n": n, "itmax": itmax}
