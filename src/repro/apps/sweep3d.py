"""Sweep3D: the ASCI discrete-ordinates transport kernel.

"Sweep3D is a kernel application of the ASCI benchmark suite released
by the US Department of Energy.  In its largest configuration, it
requires computations on a grid with one billion elements."

Structure modelled (following the public Sweep3D kernel):

* a 2-D process grid (px × py) decomposing the i and j dimensions;
  k is not decomposed;
* per iteration, 8 octant sweeps; each octant pipelines wavefronts of
  (angle-block × k-block) stages across the grid: receive upstream
  i- and j-boundary angular fluxes, compute the block of cells
  (``it*jt*mk*mmi`` grind iterations), then send downstream;
* a *flux fixup* pass whose activation depends on intermediate values
  of the large 3-D arrays — the paper's canonical example of a minor
  data-dependent branch that condensation eliminates statistically
  ("one minor conditional branch in a loop nest of Sweep3D depends on
  intermediate values of large 3D arrays.  The impact of this branch on
  execution time is relatively negligible");
* a convergence allreduce per iteration.

Inputs are the *global* grid (itg × jtg × kt); per-rank extents are
computed in-program from ``myid`` with clipped block bounds, so the
compiler's scaling functions genuinely depend on rank, grid and P.
"""

from __future__ import annotations

from ..ir.builder import ProgramBuilder, myid
from ..symbolic import Gt, Mod, Var, ceil_div
from .common import block_extent, factor2d, grid_coords, sweep_guards

__all__ = ["build_sweep3d", "sweep3d_inputs", "GRIND_OPS", "FIXUP_OPS", "FIXUP_PROBABILITY"]

#: Abstract operations per cell-angle grind iteration (the sweep body).
GRIND_OPS = 30.0
#: Abstract operations per cell-angle when the flux fixup triggers.  The
#: paper: "the impact of this branch on execution time is relatively
#: negligible" — sized accordingly (statistical elimination of a *large*
#: random branch would distort the wavefront pipeline; see the
#: branch-elimination ablation bench).
FIXUP_OPS = 3.0
#: Ground-truth activation rate of the fixup branch.
FIXUP_PROBABILITY = 0.3


def _fixup_probe(env, arrays):
    """Ground-truth stand-in for testing intermediate 3-D array values:
    a deterministic hash of (rank, octant, stage, iteration) fires the
    fixup ~30% of the time.  Direct execution reproduces it exactly;
    the analytical model eliminates the branch statistically."""
    h = (
        env["myid"] * 2654435761
        + env["oct"] * 40503
        + env["kb_i"] * 9973
        + env["ab_i"] * 271
        + env["it_n"] * 31
    ) & 0xFFFFFFFF
    env["needfix"] = 1 if (h % 1000) < int(FIXUP_PROBABILITY * 1000) else 0


def build_sweep3d() -> "Program":
    """Build the Sweep3D IR program.

    Parameters: ``itg, jtg, kt`` (global grid), ``px, py`` (process
    grid), ``kb`` (k-blocks per sweep), ``ab`` (angle blocks), ``mmi``
    (angles per block), ``niter`` (outer iterations).
    """
    b = ProgramBuilder(
        "sweep3d", params=("itg", "jtg", "kt", "px", "py", "kb", "ab", "mmi", "niter")
    )
    itg, jtg, kt = Var("itg"), Var("jtg"), Var("kt")
    px, py = Var("px"), Var("py")
    kb, ab, mmi, niter = Var("kb"), Var("ab"), Var("mmi"), Var("niter")

    # per-rank upper-bound extents (Fortran-style max-size allocation)
    ibx, jby = ceil_div(itg, px), ceil_div(jtg, py)
    cells = ibx * jby * kt
    b.array("Flux", size=cells)
    b.array("Src", size=cells)
    b.array("Sigt", size=cells)
    b.array("Phiib", size=jby * ceil_div(kt, kb) * mmi)  # i-boundary angular flux
    b.array("Phijb", size=ibx * ceil_div(kt, kb) * mmi)  # j-boundary angular flux

    ip, jp = grid_coords(b, px)
    it = block_extent(b, "it", itg, px, ip)
    jt = block_extent(b, "jt", jtg, py, jp)
    b.assign("mk", ceil_div(kt, kb))
    mk = Var("mk")

    i_nbytes = jt * mk * mmi * 8
    j_nbytes = it * mk * mmi * 8
    stage_work = it * jt * mk * mmi

    with b.loop("it_n", 1, niter):
        with b.loop("oct", 0, 7):
            b.assign("sxf", Mod.make(Var("oct"), 2))
            b.assign("syf", Mod.make(Var("oct") // 2, 2))
            sxf, syf = Var("sxf"), Var("syf")
            i_up, i_down = sweep_guards(sxf, ip, px)
            j_up, j_down = sweep_guards(syf, jp, py)
            i_prev = myid - 1 + 2 * sxf
            i_next = myid + 1 - 2 * sxf
            j_prev = myid + px * (2 * syf - 1)
            j_next = myid + px * (1 - 2 * syf)
            with b.loop("ab_i", 1, ab):
                with b.loop("kb_i", 1, kb):
                    with b.if_(i_up):
                        b.recv(source=i_prev, nbytes=i_nbytes, tag=1, array="Phiib")
                    with b.if_(j_up):
                        b.recv(source=j_prev, nbytes=j_nbytes, tag=2, array="Phijb")
                    b.compute(
                        "sweep_stage",
                        work=stage_work,
                        ops_per_iter=GRIND_OPS,
                        arrays=("Flux", "Src", "Sigt", "Phiib", "Phijb"),
                        writes={"needfix"},
                        kernel=_fixup_probe,
                    )
                    with b.if_(Gt(Var("needfix"), 0), data_dependent=True):
                        b.compute(
                            "flux_fixup",
                            work=stage_work,
                            ops_per_iter=FIXUP_OPS,
                            arrays=("Flux", "Phiib", "Phijb"),
                        )
                    with b.if_(i_down):
                        b.send(dest=i_next, nbytes=i_nbytes, tag=1, array="Phiib")
                    with b.if_(j_down):
                        b.send(dest=j_next, nbytes=j_nbytes, tag=2, array="Phijb")
        # convergence test on the scalar flux
        b.compute("flux_norm", work=it * jt * kt, ops_per_iter=2.0, arrays=("Flux",))
        b.allreduce(nbytes=8, contrib=None, result_var=None, reduce_kind="max")
    return b.build()


def sweep3d_inputs(
    itg: int,
    jtg: int,
    kt: int,
    nprocs: int,
    kb: int = 4,
    ab: int = 2,
    mmi: int = 3,
    niter: int = 2,
) -> dict[str, int]:
    """Concrete inputs for a Sweep3D run (process grid auto-factorized)."""
    px, py = factor2d(nprocs)
    return {
        "itg": itg, "jtg": jtg, "kt": kt,
        "px": px, "py": py,
        "kb": kb, "ab": ab, "mmi": mmi, "niter": niter,
    }


def sweep3d_per_proc_inputs(
    it: int, jt: int, kt: int, nprocs: int, **kwargs
) -> dict[str, int]:
    """Inputs for a *fixed per-processor* problem size (Figs. 10/11/16):
    the global grid grows with the process count."""
    px, py = factor2d(nprocs)
    return sweep3d_inputs(it * px, jt * py, kt, nprocs, **kwargs)
