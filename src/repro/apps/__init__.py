"""The paper's benchmark applications, written in the program IR.

Sweep3D (ASCI transport kernel), NAS SP (NPB 2.3), Tomcatv (SPEC92) and
SAMPLE (the paper's synthetic kernel).
"""

from .common import (
    block_extent,
    factor2d,
    grid_coords,
    neighbor_exchange_1d,
    neighbor_exchange_blocking,
    square_side,
    sweep_guards,
)
from .nas_sp import (
    SP_CLASSES,
    build_nas_sp,
    build_nas_sp_multipartition,
    sp_inputs,
    sp_multi_inputs,
)
from .sample import SAMPLE_PATTERNS, build_sample, sample_inputs_for_ratio
from .sweep3d import (
    FIXUP_PROBABILITY,
    build_sweep3d,
    sweep3d_inputs,
    sweep3d_per_proc_inputs,
)
from .tomcatv import build_tomcatv, tomcatv_inputs

__all__ = [
    "build_sweep3d",
    "sweep3d_inputs",
    "sweep3d_per_proc_inputs",
    "FIXUP_PROBABILITY",
    "build_nas_sp",
    "build_nas_sp_multipartition",
    "sp_inputs",
    "sp_multi_inputs",
    "SP_CLASSES",
    "build_tomcatv",
    "tomcatv_inputs",
    "build_sample",
    "sample_inputs_for_ratio",
    "SAMPLE_PATTERNS",
    "factor2d",
    "square_side",
    "grid_coords",
    "block_extent",
    "neighbor_exchange_1d",
    "neighbor_exchange_blocking",
    "sweep_guards",
]
