"""NAS SP: the scalar-pentadiagonal NAS Parallel Benchmark (NPB 2.3).

SP solves three sets of uncoupled scalar pentadiagonal systems from an
ADI discretization of the Navier–Stokes equations.  The MPI version
runs on a square process grid.  The feature the paper highlights
(Sec. 3.3): "the grid sizes for each processor are computed and stored
in an array, which is then used in most loop bounds.  The use of an
array makes forward propagation of the symbolic expressions infeasible
[...] We simply retain the executable symbolic scaling expressions,
including references to such arrays, in the simplified code and
evaluate them at execution time."  We reproduce exactly that: the
per-direction cell sizes are computed by ``ArrayAssign`` kernels into
materialized arrays, loop bounds and scaling functions reference them
through :class:`repro.symbolic.Index`, and the slicer must retain the
producers in the simplified program.

Structure modelled per time step (following NPB2.3b2 SP):

* ``copy_faces``: boundary exchange with the four grid neighbours
  (5 components per face point);
* ``compute_rhs``: local stencil work over all cells;
* ``x_solve`` / ``y_solve``: pipelined forward-elimination and
  back-substitution sweeps across the process grid (one slab of lines
  per stage); ``z_solve`` is local (z is not decomposed);
* ``add``: the solution update.

Problem classes: A = 64³ (400 steps), B = 102³, C = 162³.
"""

from __future__ import annotations

from ..ir.builder import ProgramBuilder, myid
from ..symbolic import Gt, Index, Lt, Var
from .common import grid_coords, square_side

__all__ = ["build_nas_sp", "build_nas_sp_multipartition", "sp_inputs", "sp_multi_inputs", "SP_CLASSES", "RHS_OPS", "SOLVE_OPS", "ADD_OPS"]

#: NPB problem classes: name -> (grid size, reference iteration count).
SP_CLASSES = {"S": (12, 100), "W": (36, 400), "A": (64, 400), "B": (102, 400), "C": (162, 400)}

RHS_OPS = 60.0  # compute_rhs: full stencil evaluation per cell
SOLVE_OPS = 22.0  # per cell per direction: forward elim + back subst
ADD_OPS = 5.0  # solution update per cell


def _cell_size_kernel(axis_param: str, parts_param: str, target: str):
    """Kernel computing the NPB-style cell-size table for one axis:
    sizes differ by at most one (remainder spread over low coords)."""

    def kernel(env, arrays):
        total = int(env[axis_param])
        parts = int(env[parts_param])
        base, rem = divmod(total, parts)
        arr = arrays[target]
        for i in range(parts):
            arr[i] = base + (1 if i < rem else 0)

    return kernel


def build_nas_sp() -> "Program":
    """Build the NAS SP IR program.

    Parameters: ``nx`` (cubic grid side), ``q`` (process-grid side,
    P = q²), ``niter`` (time steps).
    """
    b = ProgramBuilder("nas_sp", params=("nx", "q", "niter"))
    nx, q, niter = Var("nx"), Var("q"), Var("niter")

    from ..symbolic import ceil_div

    # per-rank upper bounds for allocation (max cell size on either axis)
    cx_bound = ceil_div(nx, q)
    cells_bound = cx_bound * cx_bound * nx
    # 5-component state/rhs/forcing plus 3 pentadiagonal LHS line buffers
    b.array("u", size=5 * cells_bound)
    b.array("rhs", size=5 * cells_bound)
    b.array("forcing", size=5 * cells_bound)
    b.array("lhs", size=9 * cx_bound * nx)
    b.array("cell_size_x", size=q, itemsize=8, materialize=True)
    b.array("cell_size_y", size=q, itemsize=8, materialize=True)

    ip, jp = grid_coords(b, q)
    b.array_assign("cell_size_x", _cell_size_kernel("nx", "q", "cell_size_x"), reads={"nx", "q"}, work=q)
    b.array_assign("cell_size_y", _cell_size_kernel("nx", "q", "cell_size_y"), reads={"nx", "q"}, work=q)
    csx = Index.make("cell_size_x", ip)
    csy = Index.make("cell_size_y", jp)
    cells = csx * csy * nx

    face_x_bytes = 5 * csy * nx * 8  # x-faces: csy*nz points, 5 components
    face_y_bytes = 5 * csx * nx * 8
    line_slab_x = 5 * csy * nx * 8  # pipelined solver slab crossing an x stage
    line_slab_y = 5 * csx * nx * 8

    with b.loop("step", 1, niter):
        # copy_faces: 4-neighbour exchange (non-blocking, per axis)
        from .common import neighbor_exchange_1d

        neighbor_exchange_1d(b, coord=ip, extent=q, stride=1, nbytes=face_x_bytes, tag=4, array="u")
        neighbor_exchange_1d(b, coord=jp, extent=q, stride=Var("q"), nbytes=face_y_bytes, tag=5, array="u")

        b.compute("compute_rhs", work=cells, ops_per_iter=RHS_OPS, arrays=("u", "rhs", "forcing"))

        # x_solve: forward sweep west->east, back-substitution east->west
        with b.if_(Gt(ip, 0)):
            b.recv(source=myid - 1, nbytes=line_slab_x, tag=6, array="lhs")
        b.compute("x_solve_forward", work=cells, ops_per_iter=SOLVE_OPS, arrays=("u", "rhs", "lhs"))
        with b.if_(Lt(ip, q - 1)):
            b.send(dest=myid + 1, nbytes=line_slab_x, tag=6, array="lhs")
        with b.if_(Lt(ip, q - 1)):
            b.recv(source=myid + 1, nbytes=line_slab_x, tag=7, array="lhs")
        b.compute("x_solve_backward", work=cells, ops_per_iter=SOLVE_OPS / 2, arrays=("u", "rhs", "lhs"))
        with b.if_(Gt(ip, 0)):
            b.send(dest=myid - 1, nbytes=line_slab_x, tag=7, array="lhs")

        # y_solve: the same pipeline along the second grid axis
        with b.if_(Gt(jp, 0)):
            b.recv(source=myid - Var("q"), nbytes=line_slab_y, tag=8, array="lhs")
        b.compute("y_solve_forward", work=cells, ops_per_iter=SOLVE_OPS, arrays=("u", "rhs", "lhs"))
        with b.if_(Lt(jp, q - 1)):
            b.send(dest=myid + Var("q"), nbytes=line_slab_y, tag=8, array="lhs")
        with b.if_(Lt(jp, q - 1)):
            b.recv(source=myid + Var("q"), nbytes=line_slab_y, tag=9, array="lhs")
        b.compute("y_solve_backward", work=cells, ops_per_iter=SOLVE_OPS / 2, arrays=("u", "rhs", "lhs"))
        with b.if_(Gt(jp, 0)):
            b.send(dest=myid - Var("q"), nbytes=line_slab_y, tag=9, array="lhs")

        # z is not decomposed: purely local pentadiagonal solves
        b.compute("z_solve", work=cells, ops_per_iter=1.5 * SOLVE_OPS, arrays=("u", "rhs", "lhs"))
        b.compute("add", work=cells, ops_per_iter=ADD_OPS, arrays=("u", "rhs"))
    return b.build()


def build_nas_sp_multipartition() -> "Program":
    """NAS SP with *multipartitioning* — the decomposition NPB 2.3 SP
    really uses (and the one dhpf's computation-partitioning research
    targets).

    Diagonal 2-D multipartitioning over P processors: the x-y plane is
    cut into a P×P grid of cells and cell (i, j) belongs to processor
    ``(j - i) mod P``, so each processor owns P cells, one in every row
    and every column.  During an x-sweep, stage ``i`` touches cells
    (i, 0..P-1) — one per processor — so *every* processor computes at
    *every* stage, and the data it must forward always goes to the same
    neighbour: cell (i+1, j) belongs to ``myid - 1 (mod P)``.  Full
    utilization in place of the line-pipeline's fill/drain bubbles;
    the coarser per-stage transfers use non-blocking ring exchanges.

    Parameters: ``nx`` (cubic grid side), ``niter``.  The partition
    count equals the processor count P (any P, squares not required).
    """
    b = ProgramBuilder("nas_sp_multi", params=("nx", "niter"))
    nx, niter = Var("nx"), Var("niter")
    from ..ir.builder import P
    from ..symbolic import ceil_div

    cell_side = ceil_div(nx, P)  # cell extent in x and in y
    cell_points = cell_side * cell_side * nx  # one cell: (nx/P) x (nx/P) x nz
    own_points = cell_points * P  # the processor's P cells
    b.array("u", size=5 * own_points)
    b.array("rhs", size=5 * own_points)
    b.array("forcing", size=5 * own_points)
    b.array("lhs", size=9 * cell_side * nx)

    face_bytes = 5 * cell_side * nx * 8  # one cell face, 5 components

    with b.loop("step", 1, niter):
        # copy_faces: cell adjacency maps to ring adjacency under the
        # diagonal assignment; exchange with both ring neighbours
        for tag, delta in ((40, -1), (41, 1)):
            b.irecv(source=(myid - delta + P) % P, nbytes=face_bytes * P, tag=tag,
                    array="u", handle=f"cfr{tag}")
            b.isend(dest=(myid + delta + P) % P, nbytes=face_bytes * P, tag=tag,
                    array="u", handle=f"cfs{tag}")
        b.waitall("cfr40", "cfs40", "cfr41", "cfs41")

        b.compute("compute_rhs", work=own_points, ops_per_iter=RHS_OPS,
                  arrays=("u", "rhs", "forcing"))

        # x_solve: P stages; every processor computes one cell per stage
        # and forwards its boundary to myid-1 (forward elimination), then
        # the reverse for back-substitution
        for phase, ops, delta, tag in (
            ("x_fwd", SOLVE_OPS, -1, 42),
            ("x_bwd", SOLVE_OPS / 2, 1, 43),
            ("y_fwd", SOLVE_OPS, 1, 44),
            ("y_bwd", SOLVE_OPS / 2, -1, 45),
        ):
            with b.loop(f"stage_{phase}", 1, P):
                b.compute(f"{phase}_cell", work=cell_points, ops_per_iter=ops,
                          arrays=("u", "rhs", "lhs"))
                with b.if_(Lt(Var(f"stage_{phase}"), P)):
                    b.irecv(source=(myid - delta + P) % P, nbytes=face_bytes, tag=tag,
                            array="lhs", handle=f"r{tag}")
                    b.isend(dest=(myid + delta + P) % P, nbytes=face_bytes, tag=tag,
                            array="lhs", handle=f"s{tag}")
                    b.waitall(f"r{tag}", f"s{tag}")

        b.compute("z_solve", work=own_points, ops_per_iter=1.5 * SOLVE_OPS,
                  arrays=("u", "rhs", "lhs"))
        b.compute("add", work=own_points, ops_per_iter=ADD_OPS, arrays=("u", "rhs"))
    return b.build()


def sp_inputs(cls: str, nprocs: int, niter: int | None = None) -> dict[str, int]:
    """Inputs for an SP class run on *nprocs* (must be a square count).

    ``niter`` defaults to a scaled-down step count suitable for a
    pure-Python harness; the reference counts are in :data:`SP_CLASSES`.
    """
    if cls not in SP_CLASSES:
        raise KeyError(f"unknown SP class {cls!r}; known: {sorted(SP_CLASSES)}")
    nx, ref_iters = SP_CLASSES[cls]
    q = square_side(nprocs)
    return {"nx": nx, "q": q, "niter": niter if niter is not None else min(ref_iters, 5)}


def sp_multi_inputs(cls: str, niter: int | None = None) -> dict[str, int]:
    """Inputs for the multipartitioned SP (any processor count)."""
    if cls not in SP_CLASSES:
        raise KeyError(f"unknown SP class {cls!r}; known: {sorted(SP_CLASSES)}")
    nx, ref_iters = SP_CLASSES[cls]
    return {"nx": nx, "niter": niter if niter is not None else min(ref_iters, 5)}
