"""SAMPLE: the paper's synthetic communication/computation kernel.

"We designed the synthetic kernel benchmark, SAMPLE, to evaluate the
impact of the compiler-directed optimizations on programs with varying
computation granularity and message communication patterns that are
commonly used in parallel applications."  Two patterns are used in the
evaluation (Figs. 8/9): *wavefront* and *nearest neighbour*, each swept
over communication-to-computation ratios from 1:10000 to 1:1.

Parameters: ``grain`` (work units per step), ``msg`` (message bytes),
``iters`` (steps).  The experiment harness picks (grain, msg) pairs to
realize a requested comm:comp ratio on a given machine.
"""

from __future__ import annotations

from ..ir.builder import ProgramBuilder, P, myid
from ..machine import MachineParams, NetworkModel
from ..symbolic import Gt, Lt, Var
from .common import neighbor_exchange_1d

__all__ = ["build_sample", "sample_inputs_for_ratio", "SAMPLE_PATTERNS", "GRAIN_OPS"]

SAMPLE_PATTERNS = ("wavefront", "nearest_neighbor")

#: Abstract ops per grain unit (one unit = one inner loop iteration).
GRAIN_OPS = 1.0


def build_sample(pattern: str) -> "Program":
    """Build the SAMPLE kernel for *pattern* (wavefront / nearest_neighbor)."""
    if pattern not in SAMPLE_PATTERNS:
        raise ValueError(f"unknown SAMPLE pattern {pattern!r}; known: {SAMPLE_PATTERNS}")
    b = ProgramBuilder(f"sample_{pattern}", params=("grain", "msg", "iters"))
    grain, msg, iters = Var("grain"), Var("msg"), Var("iters")
    b.array("buf", size=(msg // 8) + 1)
    # fixed-size scratch array: the kernel loops over it `grain` times, so
    # its cache behaviour is identical at every granularity (the sweep
    # isolates communication share, not memory-hierarchy effects)
    b.array("work_arr", size=4096)

    with b.loop("step", 1, iters):
        if pattern == "wavefront":
            # 1-D pipeline: receive from the left, compute, pass right
            with b.if_(Gt(myid, 0)):
                b.recv(source=myid - 1, nbytes=msg, tag=1, array="buf")
            b.compute("grain_work", work=grain, ops_per_iter=GRAIN_OPS, arrays=("work_arr",))
            with b.if_(Lt(myid, P - 1)):
                b.send(dest=myid + 1, nbytes=msg, tag=1, array="buf")
        else:
            # bidirectional nearest-neighbour exchange then local work
            neighbor_exchange_1d(b, coord=myid, extent=P, stride=1, nbytes=msg, tag=1, array="buf")
            b.compute("grain_work", work=grain, ops_per_iter=GRAIN_OPS, arrays=("work_arr",))
    return b.build()


def sample_inputs_for_ratio(
    ratio: float,
    machine: MachineParams,
    msg: int = 8192,
    iters: int = 20,
) -> dict[str, int]:
    """Pick a grain size so that comm:comp time ≈ *ratio* per step.

    ``ratio`` is communication/computation (the paper sweeps 1e-4 … 1).
    The grain is derived from the *nominal* machine model — the point of
    the experiment is how prediction error varies as communication's
    share grows, so the exact realized ratio need not be exact.
    """
    if ratio <= 0:
        raise ValueError("ratio must be positive")
    comm_time = NetworkModel(machine.net).transit_time(msg)
    comp_time = comm_time / ratio
    grain = max(1, int(round(comp_time / (machine.cpu.time_per_op * GRAIN_OPS))))
    return {"grain": grain, "msg": msg, "iters": iters}
