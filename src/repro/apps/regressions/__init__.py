"""The committed regression corpus: minimized fuzz findings as data.

Each ``*.json`` file in this directory is one :class:`RegressionCase`
(the :mod:`repro.gen.corpus` format): a small, hand-verified program —
usually the auto-minimized form of a divergence found by
``python -m repro fuzz`` — plus the expectation the differential
harness must uphold forever (``ok``, ``deadlock`` or ``mismatch``).

``tests/gen/test_regressions.py`` auto-discovers every case here and
replays it through the harness, so committing a new finding is just::

    cp fuzz-out/minimized/seedNNNNNN_kind.json src/repro/apps/regressions/
    python -m repro fuzz --check-corpus src/repro/apps/regressions

The seed cases were produced by ``tools/make_regressions.py`` and
reviewed by hand; the ``reason`` field of each file records why it is
worth keeping.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["corpus_dir", "load_all"]

_CORPUS_DIR = Path(__file__).resolve().parent


def corpus_dir() -> Path:
    """The directory holding the committed regression-case files."""
    return _CORPUS_DIR


def load_all():
    """Load every committed case (raises CorpusError on a corrupt file)."""
    # Imported lazily: repro.gen pulls in the workflow layer, which a
    # plain `import repro.apps` must not do.
    from ...gen.corpus import discover_corpus

    return discover_corpus(_CORPUS_DIR)
