"""Shared building blocks for the benchmark applications.

Helpers for 2-D process grids (rank ↔ (ip, jp) coordinates expressed
symbolically over ``myid``), block-distribution extents (the
``min/max``-clipped per-rank block sizes of Fig. 1), deadlock-free
nearest-neighbour exchanges (non-blocking post/post/wait as dhpf emits,
plus an even/odd-phased blocking variant), and numeric grid
factorization for the experiment harnesses.
"""

from __future__ import annotations

import math

from ..ir.builder import ProgramBuilder, myid
from ..symbolic import And, Eq, FloorDiv, Gt, Lt, Max, Min, Mod, Or, Var, ceil_div
from ..symbolic.expr import Expr, ExprLike

__all__ = [
    "grid_coords",
    "block_extent",
    "neighbor_exchange_1d",
    "neighbor_exchange_blocking",
    "sweep_guards",
    "factor2d",
    "square_side",
]


def grid_coords(b: ProgramBuilder, px: ExprLike = Var("px")) -> tuple[Var, Var]:
    """Emit ``ip = myid mod px``, ``jp = myid / px`` and return the vars."""
    b.assign("ip", Mod.make(myid, px))
    b.assign("jp", FloorDiv.make(myid, px))
    return Var("ip"), Var("jp")


def block_extent(
    b: ProgramBuilder, var: str, total: ExprLike, nparts: ExprLike, coord: ExprLike
) -> Var:
    """Emit the per-rank block extent of a BLOCK distribution.

    ``bsz = ceil(total/nparts); var = max(0, min(total, (coord+1)*bsz) - coord*bsz)``
    — rank-dependent, exactly the clipped bounds of the paper's example.
    """
    bsz_name = f"{var}_bsz"
    b.assign(bsz_name, ceil_div(total, nparts))
    bsz = Var(bsz_name)
    b.assign(var, Max.make(0, Min.make(total, (coord + 1) * bsz) - coord * bsz))
    return Var(var)


def neighbor_exchange_1d(
    b: ProgramBuilder,
    coord: Expr,
    extent: Expr,
    stride: ExprLike,
    nbytes: ExprLike,
    tag: int,
    array: str | None = None,
) -> None:
    """Bidirectional boundary exchange along one grid axis.

    Non-blocking form, as dhpf-generated exchange code uses: post both
    receives, issue both sends, wait on all four requests.  Inherently
    deadlock-free regardless of the eager/rendezvous protocol switch.
    Handle names are derived from the tag so nested exchanges on
    different axes don't collide.
    """
    from ..symbolic import as_expr

    stride = as_expr(stride)
    left_guard = Gt(coord, 0)
    right_guard = Lt(coord, extent - 1)
    rl, rr, sl, sr = (f"rq{tag}_rl", f"rq{tag}_rr", f"rq{tag}_sl", f"rq{tag}_sr")
    with b.if_(left_guard):
        b.irecv(source=myid - stride, nbytes=nbytes, tag=tag, array=array, handle=rl)
    with b.if_(right_guard):
        b.irecv(source=myid + stride, nbytes=nbytes, tag=tag, array=array, handle=rr)
    with b.if_(left_guard):
        b.isend(dest=myid - stride, nbytes=nbytes, tag=tag, array=array, handle=sl)
    with b.if_(right_guard):
        b.isend(dest=myid + stride, nbytes=nbytes, tag=tag, array=array, handle=sr)
    b.waitall(rl, rr, sl, sr)


def neighbor_exchange_blocking(
    b: ProgramBuilder,
    coord: Expr,
    extent: Expr,
    stride: ExprLike,
    nbytes: ExprLike,
    tag: int,
    array: str | None = None,
) -> None:
    """Blocking variant of the boundary exchange (even/odd phased).

    Even-coordinate ranks send first then receive; odd ranks receive
    first then send — the standard phasing that keeps blocking
    (rendezvous) sends from forming a cycle.  Kept for comparison with
    the non-blocking form and for codes written against blocking MPI.
    """
    from ..symbolic import as_expr

    stride = as_expr(stride)
    left_guard = Gt(coord, 0)
    right_guard = Lt(coord, extent - 1)
    even = Eq(Mod.make(coord, 2), 0)
    with b.if_(even):
        with b.if_(left_guard):
            b.send(dest=myid - stride, nbytes=nbytes, tag=tag, array=array)
        with b.if_(right_guard):
            b.send(dest=myid + stride, nbytes=nbytes, tag=tag, array=array)
        with b.if_(left_guard):
            b.recv(source=myid - stride, nbytes=nbytes, tag=tag, array=array)
        with b.if_(right_guard):
            b.recv(source=myid + stride, nbytes=nbytes, tag=tag, array=array)
    with b.else_():
        with b.if_(left_guard):
            b.recv(source=myid - stride, nbytes=nbytes, tag=tag, array=array)
        with b.if_(right_guard):
            b.recv(source=myid + stride, nbytes=nbytes, tag=tag, array=array)
        with b.if_(left_guard):
            b.send(dest=myid - stride, nbytes=nbytes, tag=tag, array=array)
        with b.if_(right_guard):
            b.send(dest=myid + stride, nbytes=nbytes, tag=tag, array=array)


def sweep_guards(sflag: Expr, coord: Expr, extent: Expr):
    """(upstream_guard, downstream_guard) for a signed sweep direction.

    ``sflag`` is 0 for the +axis sweep, 1 for the −axis sweep.
    """
    up = Or.make(
        And.make(Eq(sflag, 0), Gt(coord, 0)),
        And.make(Eq(sflag, 1), Lt(coord, extent - 1)),
    )
    down = Or.make(
        And.make(Eq(sflag, 0), Lt(coord, extent - 1)),
        And.make(Eq(sflag, 1), Gt(coord, 0)),
    )
    return up, down


def factor2d(nprocs: int) -> tuple[int, int]:
    """Closest-to-square (px, py) factorization with px*py == nprocs."""
    if nprocs < 1:
        raise ValueError("nprocs must be positive")
    px = int(math.isqrt(nprocs))
    while nprocs % px != 0:
        px -= 1
    return px, nprocs // px


def square_side(nprocs: int) -> int:
    """Side of a square process grid; rejects non-square counts (NAS SP)."""
    side = int(math.isqrt(nprocs))
    if side * side != nprocs:
        raise ValueError(f"NAS SP requires a square number of processes, got {nprocs}")
    return side
