"""MPI message matching: unexpected-message and posted-receive queues.

Implements the matching semantics MPI-Sim relies on: messages from the
same (source, tag) pair match receives in send order; ``ANY_SOURCE`` /
``ANY_TAG`` wildcards match the earliest-sent compatible message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..sim.requests import ANY_SOURCE, ANY_TAG

__all__ = ["MessageRecord", "PostedRecv", "MatchQueues"]


@dataclass(slots=True)
class MessageRecord:
    """An in-flight or arrived message queued at the receiver.

    ``ready_time`` is the arrival time for eager messages; rendezvous
    messages have no arrival time until the matching receive posts (the
    sender is blocked waiting for it).
    """

    seq: int  # global send order, for deterministic matching
    source: int  # sending rank (also the matching key; == sender process)
    tag: int
    nbytes: int
    data: Any
    eager: bool
    send_time: float  # sender's clock when the message was injected
    ready_time: float | None  # arrival time (eager only; set at rendezvous for others)
    sender_event: int | None = None  # trace event id of the send (if tracing)
    sender_handle: int | None = None  # non-blocking send: handle to complete
    retry_delay: float = 0.0  # fault-injection: retransmission backoff on the wire

    def matches(self, source: int, tag: int) -> bool:
        """Does this message satisfy a receive for (*source*, *tag*)?"""
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


@dataclass(slots=True)
class PostedRecv:
    """A receive posted before its message arrived (the blocked process)."""

    seq: int
    rank: int  # the receiving (owning) rank
    source: int
    tag: int
    post_time: float
    handle: int | None = None  # non-blocking receive: handle to complete

    def matches(self, msg: MessageRecord) -> bool:
        return msg.matches(self.source, self.tag)


@dataclass(slots=True)
class MatchQueues:
    """Per-rank matching state: pending messages and posted receives."""

    messages: list[MessageRecord] = field(default_factory=list)
    recvs: list[PostedRecv] = field(default_factory=list)

    def add_message(self, msg: MessageRecord) -> PostedRecv | None:
        """Offer a new message; return the posted receive it matches, if any.

        The caller removes the returned receive's blocked process from
        its wait state; otherwise the message is queued as unexpected.
        """
        for i, r in enumerate(self.recvs):
            if r.matches(msg):
                return self.recvs.pop(i)
        self.messages.append(msg)
        return None

    def post_recv(self, recv: PostedRecv) -> MessageRecord | None:
        """Post a receive; return the earliest matching queued message, if any."""
        best_i = -1
        for i, m in enumerate(self.messages):
            if recv.matches(m) and (best_i < 0 or m.seq < self.messages[best_i].seq):
                best_i = i
        if best_i >= 0:
            return self.messages.pop(best_i)
        self.recvs.append(recv)
        return None

    def cancel_recv(self, seq: int) -> PostedRecv | None:
        """Withdraw the posted receive with sequence *seq* (timeout path).

        Returns it if it was still pending, or None if it already
        matched (the timeout lost the race and must be ignored).
        """
        for i, r in enumerate(self.recvs):
            if r.seq == seq:
                return self.recvs.pop(i)
        return None

    def cancel_message(self, seq: int) -> MessageRecord | None:
        """Withdraw the queued message with sequence *seq* (timeout path)."""
        for i, m in enumerate(self.messages):
            if m.seq == seq:
                return self.messages.pop(i)
        return None

    def idle(self) -> bool:
        """True when no unmatched state remains (clean termination check)."""
        return not self.messages and not self.recvs
