"""Convenience constructors: the virtual MPI API seen by target programs.

Target programs (hand-written generators or the IR interpreter) build
requests with these helpers and ``yield`` them to the kernel::

    def program(rank, size):
        if rank > 0:
            yield mpi.send(dest=rank - 1, nbytes=8 * n)
        if rank < size - 1:
            msg = yield mpi.recv(source=rank + 1)
        yield mpi.compute(ops=local_work)

The names mirror MPI: ``send``/``recv`` are blocking (buffered-eager or
rendezvous, decided by message size), collectives are issued by all
ranks.  ``delay`` is the simulator-provided function of Sec. 2.2 that
the compiler-simplified program calls instead of executing condensed
computational tasks.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.requests import (
    ANY_SOURCE,
    ANY_TAG,
    Alloc,
    Collective,
    Compute,
    Delay,
    Free,
    Irecv,
    Isend,
    Now,
    Recv,
    RequestHandle,
    Send,
    Wait,
)

__all__ = [
    "send",
    "recv",
    "isend",
    "irecv",
    "waitall",
    "compute",
    "delay",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "alloc",
    "free",
    "wtime",
    "ANY_SOURCE",
    "ANY_TAG",
]


def send(
    dest: int, nbytes: int, tag: int = 0, data: Any = None, timeout: float | None = None
) -> Send:
    """Blocking send of *nbytes* (optionally carrying *data*) to *dest*.

    With a *timeout*, a rendezvous send left unmatched for *timeout*
    virtual seconds resumes with a :class:`~repro.sim.requests.TimedOut`
    status instead of blocking forever.
    """
    return Send(dest, nbytes, tag, data, timeout)


def recv(
    source: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: float | None = None
) -> Recv:
    """Blocking receive; yields a :class:`ReceivedMessage`.

    With a *timeout*, yields a :class:`~repro.sim.requests.TimedOut`
    status if no message matches within *timeout* virtual seconds.
    """
    return Recv(source, tag, 0, timeout)


def isend(
    dest: int, nbytes: int, tag: int = 0, data: Any = None, timeout: float | None = None
) -> Isend:
    """Non-blocking send; yields a :class:`RequestHandle`."""
    return Isend(dest, nbytes, tag, data, timeout)


def irecv(
    source: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: float | None = None
) -> Irecv:
    """Non-blocking receive; posts the match and returns a handle.

    With a *timeout*, the handle completes with
    :class:`~repro.sim.requests.TimedOut` if nothing matches in time.
    """
    return Irecv(source, tag, 0, timeout)


def waitall(*handles: RequestHandle) -> Wait:
    """Block until every handle completes; yields per-handle results."""
    return Wait(tuple(handles))


def compute(ops: float, working_set_bytes: float = 0.0, task: str | None = None) -> Compute:
    """Local computation of *ops* abstract operations (direct execution)."""
    return Compute(ops, working_set_bytes, task)


def delay(seconds: float, task: str | None = None) -> Delay:
    """Advance this thread's clock by *seconds* (the simulator delay call)."""
    return Delay(seconds, task)


def barrier(group: tuple[int, ...] | None = None) -> Collective:
    """Synchronize all ranks (or a communicator *group*)."""
    return Collective(op="barrier", group=group)


def bcast(nbytes: int, root: int = 0, data: Any = None,
          group: tuple[int, ...] | None = None) -> Collective:
    """Broadcast *root*'s payload to all ranks (or a *group*)."""
    return Collective(op="bcast", nbytes=nbytes, root=root, data=data, group=group)


def reduce(
    nbytes: int, data: Any = None, reduce_fn: Callable[[Any, Any], Any] | None = None, root: int = 0
) -> Collective:
    """Reduce contributions to *root*."""
    return Collective(op="reduce", nbytes=nbytes, root=root, data=data, reduce_fn=reduce_fn)


def allreduce(
    nbytes: int, data: Any = None, reduce_fn: Callable[[Any, Any], Any] | None = None,
    group: tuple[int, ...] | None = None,
) -> Collective:
    """Reduce contributions and distribute the result (world or *group*)."""
    return Collective(op="allreduce", nbytes=nbytes, data=data, reduce_fn=reduce_fn, group=group)


def gather(nbytes: int, data: Any = None, root: int = 0) -> Collective:
    """Gather per-rank payloads into a list at *root*."""
    return Collective(op="gather", nbytes=nbytes, root=root, data=data)


def allgather(nbytes: int, data: Any = None) -> Collective:
    """Gather per-rank payloads into a list at every rank."""
    return Collective(op="allgather", nbytes=nbytes, data=data)


def scatter(nbytes: int, data: Any = None, root: int = 0) -> Collective:
    """Scatter *root*'s list of chunks, one per rank."""
    return Collective(op="scatter", nbytes=nbytes, root=root, data=data)


def alltoall(nbytes: int) -> Collective:
    """All-to-all personalized exchange of *nbytes* per pair."""
    return Collective(op="alltoall", nbytes=nbytes)


def alloc(name: str, nbytes: int) -> Alloc:
    """Account *nbytes* of application memory under *name*."""
    return Alloc(name=name, nbytes=nbytes)


def free(name: str) -> Free:
    """Release a named allocation."""
    return Free(name=name)


def wtime(charge_timer: bool = False) -> Now:
    """Read the local virtual clock (MPI_Wtime); optionally pay timer cost."""
    return Now(charge_timer=charge_timer)
