"""Virtual MPI runtime: the target-program API and message matching.

This package plays the role of the MPI library in MPI-Sim's
architecture: target programs issue MPI-like operations, the simulation
kernel traps them and advances virtual time using the machine's
communication model.
"""

from . import api
from .api import (
    ANY_SOURCE,
    ANY_TAG,
    isend,
    irecv,
    waitall,
    allgather,
    alloc,
    allreduce,
    alltoall,
    barrier,
    bcast,
    compute,
    delay,
    free,
    gather,
    recv,
    reduce,
    scatter,
    send,
    wtime,
)
from .matching import MatchQueues, MessageRecord, PostedRecv

__all__ = [
    "api",
    "send",
    "recv",
    "isend",
    "irecv",
    "waitall",
    "compute",
    "delay",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "allgather",
    "scatter",
    "alltoall",
    "alloc",
    "free",
    "wtime",
    "ANY_SOURCE",
    "ANY_TAG",
    "MatchQueues",
    "MessageRecord",
    "PostedRecv",
]
