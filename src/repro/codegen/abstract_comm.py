"""Abstract communication modeling — the paper's proposed alternative.

From the conclusions (Sec. 5): "An obvious alternative is to extend the
MPI-Sim simulator to take as input an abstract model of the
communication (based on message size, message destination, etc.) and
use it to predict communication performance."  This module implements
that alternative as a further program transformation: every
point-to-point operation in a simplified program is replaced by a
``delay`` priced from the machine's analytic network model, removing
message matching and inter-process blocking entirely.

The trade-off this exposes (and the ablation bench measures): with no
messages there is no synchronization, so *pipeline coupling disappears*.
Loosely-coupled codes (Tomcatv) lose little accuracy; wavefront codes
(Sweep3D), whose execution time is shaped by the pipeline fill the
messages enforce, lose a lot — which is precisely why the paper keeps
detailed communication simulation while abstracting computation.

Collectives are kept (they already use an analytic model inside the
kernel and provide the barrier semantics even fully-abstract models
need to stay causal).
"""

from __future__ import annotations

from ..ir.nodes import (
    AllocStmt,
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    DelayStmt,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    ReadParams,
    RecvStmt,
    SendStmt,
    Stmt,
    WaitAllStmt,
)
from ..machine import MachineParams
from ..symbolic import Const

__all__ = ["generate_abstract_comm"]


def generate_abstract_comm(program: Program, machine: MachineParams) -> Program:
    """Replace point-to-point communication in *program* with delays.

    Send: charged the sender-side injection overhead.  Recv: charged the
    end-to-end analytic message time (latency + size/bandwidth + receive
    overhead) — the expected completion of a perfectly-pipelined
    message, with no waiting for the partner.
    """
    net = machine.net
    per_byte = Const(net.per_byte)

    def xform(stmts: list[Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for s in stmts:
            if isinstance(s, (SendStmt, IsendStmt)):
                cost = Const(net.cpu_overhead) + 0.1 * s.nbytes * per_byte
                copy = DelayStmt(cost, task=f"abstract_send@{s.profile_key}")
            elif isinstance(s, WaitAllStmt):
                continue  # nothing left to wait for
            elif isinstance(s, (RecvStmt, IrecvStmt)):
                cost = (
                    Const(net.latency)
                    + s.nbytes * per_byte
                    + Const(net.cpu_overhead)
                    + 0.1 * s.nbytes * per_byte
                )
                copy = DelayStmt(cost, task=f"abstract_recv@{s.profile_key}")
            elif isinstance(s, For):
                copy = For(s.var, s.lo, s.hi, xform(s.body))
            elif isinstance(s, If):
                copy = If(s.cond, xform(s.then), xform(s.orelse), s.data_dependent)
            elif isinstance(s, Assign):
                copy = Assign(s.var, s.expr)
            elif isinstance(s, ArrayAssign):
                copy = ArrayAssign(s.array, s.kernel, s.reads_, s.work)
            elif isinstance(s, CompBlock):
                copy = CompBlock(
                    s.name, s.work, s.ops_per_iter, s.arrays, s.reads_, s.writes_, s.kernel
                )
            elif isinstance(s, CollectiveStmt):
                copy = CollectiveStmt(
                    s.op, s.nbytes, s.root, s.array, s.contrib, s.result_var, s.reduce_kind
                )
            elif isinstance(s, DelayStmt):
                copy = DelayStmt(s.amount, s.task)
            elif isinstance(s, ReadParams):
                copy = ReadParams(s.names)
            elif isinstance(s, AllocStmt):
                # the dummy communication buffer is no longer referenced
                continue
            else:
                raise TypeError(f"cannot abstract statement of kind {type(s).__name__}")
            copy.origin = s.profile_key
            out.append(copy)
        return out

    abstract = program.copy_shell(body=xform(program.body))
    abstract.meta["abstract_comm"] = machine.name
    abstract.number()
    abstract.validate()
    return abstract
