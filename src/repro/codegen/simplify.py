"""Simplified-program generation: emit the code MPI-Sim actually runs.

Produces the paper's Fig. 1(c) from Fig. 1(a):

* retained control flow and *all* communication calls are kept verbatim;
* condensed regions become ``delay(<scaling function>)`` calls, preceded
  by the sliced-in statements that compute retained values;
* communication buffers whose arrays are otherwise unused are replaced
  by a single ``dummy_buf`` sized to the largest message;
* a ``read_and_broadcast`` of the measured ``w_i`` parameters is
  prepended;
* every data array the slice does not need is eliminated from the
  declarations — the memory reduction of Table 1.
"""

from __future__ import annotations

from ..ir.nodes import (
    AllocStmt,
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    DelayStmt,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    ReadParams,
    RecvStmt,
    SendStmt,
    Stmt,
    WaitAllStmt,
)
from ..slicing.slicer import SliceResult
from ..stg.condense import CondensePlan, PlanRegion
from ..symbolic import Const, Max
from ..symbolic.expr import Expr

__all__ = ["generate_simplified", "DUMMY_BUF"]

#: Name of the shared dummy communication buffer in simplified programs.
DUMMY_BUF = "dummy_buf"


def generate_simplified(
    program: Program,
    plan: CondensePlan,
    sl: SliceResult,
    eliminate_dead_data: bool = True,
) -> Program:
    """Emit the simplified program for *program* under *plan* and *sl*.

    ``eliminate_dead_data=False`` keeps every array declaration and real
    communication buffer (no dummy-buffer substitution) — the ablation
    that isolates how much of the paper's memory win comes from slicing-
    driven data elimination versus computation abstraction alone.
    """
    if eliminate_dead_data:
        kept_arrays = _kept_arrays(program, plan, sl)
    else:
        kept_arrays = set(program.arrays)
    body = _emit_items(plan.root, sl, kept_arrays)
    body = _insert_dummy_alloc(body, program, kept_arrays)
    wnames = plan.w_params()
    if wnames:
        body.insert(0, ReadParams(wnames))
    arrays = {name: decl for name, decl in program.arrays.items() if name in kept_arrays}
    simplified = program.copy_shell(body=body, arrays=arrays)
    simplified.meta["simplified_from"] = program.name
    simplified.meta["regions"] = {r.name: str(r.cost) for r in plan.regions}
    simplified.number()
    simplified.validate()
    return simplified


# ---------------------------------------------------------------------------
# array liveness
# ---------------------------------------------------------------------------


def _kept_arrays(program: Program, plan: CondensePlan, sl: SliceResult) -> set[str]:
    """Arrays that must survive: referenced by the slice (scaling-function
    Index references, retained ArrayAssign targets/inputs) or touched by
    pinned, directly-executed computational tasks."""
    kept: set[str] = set()
    for s in program.statements():
        if isinstance(s, ArrayAssign) and s.sid in sl.retained_sids:
            kept.add(s.array)
            kept.update(a for a in s.reads_ if a in program.arrays)
        elif isinstance(s, CompBlock) and s.sid in sl.pinned_blocks:
            kept.update(s.arrays)
    kept.update(n for n in sl.needed if n in program.arrays)
    return kept


# ---------------------------------------------------------------------------
# statement emission
# ---------------------------------------------------------------------------


def _copy_comm(s: Stmt, kept_arrays: set[str]) -> Stmt:
    """Fresh copy of a communication statement, with dead buffers
    redirected to the dummy buffer."""
    def buf(name):
        return name if (name is None or name in kept_arrays) else DUMMY_BUF

    if isinstance(s, SendStmt):
        copy = SendStmt(s.dest, s.nbytes, s.tag, buf(s.array))
    elif isinstance(s, RecvStmt):
        copy = RecvStmt(s.source, s.nbytes, s.tag, buf(s.array))
    elif isinstance(s, IsendStmt):
        copy = IsendStmt(s.dest, s.nbytes, s.tag, buf(s.array), s.handle_var)
    elif isinstance(s, IrecvStmt):
        copy = IrecvStmt(s.source, s.nbytes, s.tag, buf(s.array), s.handle_var)
    elif isinstance(s, WaitAllStmt):
        copy = WaitAllStmt(s.handle_vars)
    elif isinstance(s, CollectiveStmt):
        copy = CollectiveStmt(
            s.op, s.nbytes, s.root, buf(s.array), s.contrib, s.result_var, s.reduce_kind
        )
    else:
        raise TypeError(f"not a communication statement: {s!r}")
    copy.origin = s.profile_key
    return copy


def _strip_dead_payload(s: CollectiveStmt, sl: SliceResult) -> CollectiveStmt:
    """Drop reduction payloads whose results nothing retained consumes —
    their producers have been abstracted away, so the values no longer
    exist; the collective's *timing* is unchanged."""
    if s.result_var is not None and s.result_var not in sl.needed:
        return CollectiveStmt(s.op, s.nbytes, s.root, s.array, None, None, s.reduce_kind)
    return s


def _copy_leaf(s: Stmt) -> Stmt:
    if isinstance(s, Assign):
        copy = Assign(s.var, s.expr)
    elif isinstance(s, ArrayAssign):
        copy = ArrayAssign(s.array, s.kernel, s.reads_, s.work)
    elif isinstance(s, CompBlock):
        copy = CompBlock(s.name, s.work, s.ops_per_iter, s.arrays, s.reads_, s.writes_, s.kernel)
    else:
        raise TypeError(f"cannot copy {type(s).__name__}")
    copy.origin = s.profile_key
    return copy


def _emit_items(items: list, sl: SliceResult, kept_arrays: set[str]) -> list[Stmt]:
    out: list[Stmt] = []
    for item in items:
        if isinstance(item, PlanRegion):
            out.extend(_extract_exec_slice(item.stmts, sl))
            if item.region.cost != Const(0):
                out.append(DelayStmt(item.region.cost, task=item.region.name))
            continue
        s = item.stmt
        if isinstance(s, For):
            copy = For(s.var, s.lo, s.hi, _emit_items(item.body_plans[0], sl, kept_arrays))
            copy.origin = s.profile_key
            out.append(copy)
        elif isinstance(s, If):
            copy = If(
                s.cond,
                _emit_items(item.body_plans[0], sl, kept_arrays),
                _emit_items(item.body_plans[1], sl, kept_arrays),
                s.data_dependent,
            )
            copy.origin = s.profile_key
            out.append(copy)
        elif isinstance(s, CollectiveStmt):
            out.append(_copy_comm(_strip_dead_payload(s, sl), kept_arrays))
        elif s.is_comm():
            out.append(_copy_comm(s, kept_arrays))
        elif isinstance(s, CompBlock):
            # pinned: stays directly executed
            out.append(_copy_leaf(s))
        elif isinstance(s, (Assign, ArrayAssign)):
            if s.sid in sl.retained_sids:
                out.append(_copy_leaf(s))
        else:
            raise TypeError(
                f"unexpected statement kind in source program: {type(s).__name__}"
            )
    return out


def _extract_exec_slice(stmts: list[Stmt], sl: SliceResult) -> list[Stmt]:
    """From a condensed region, keep just the sliced-in executable code
    (and the control structure guarding it)."""
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, For):
            body = _extract_exec_slice(s.body, sl)
            if body:
                out.append(For(s.var, s.lo, s.hi, body))
        elif isinstance(s, If):
            then = _extract_exec_slice(s.then, sl)
            orelse = _extract_exec_slice(s.orelse, sl)
            if then or orelse:
                out.append(If(s.cond, then, orelse, s.data_dependent))
        elif isinstance(s, (Assign, ArrayAssign)) and s.sid in sl.retained_sids:
            out.append(_copy_leaf(s))
        # CompBlocks inside regions are never sliced-in (a sliced block
        # pins the region open), so everything else is dropped
    return out


# ---------------------------------------------------------------------------
# dummy buffer
# ---------------------------------------------------------------------------


def _contains_comm(s: Stmt) -> bool:
    if s.is_comm():
        return True
    return any(any(_contains_comm(c) for c in block) for block in s.children())


def _dummy_sizes(stmts: list[Stmt]) -> list[Expr]:
    sizes = []
    for s in stmts:
        if (
            isinstance(s, (SendStmt, RecvStmt, IsendStmt, IrecvStmt, CollectiveStmt))
            and getattr(s, "array", None) == DUMMY_BUF
        ):
            sizes.append(s.nbytes)
        for block in s.children():
            sizes.extend(_dummy_sizes(block))
    return sizes


def _insert_dummy_alloc(body: list[Stmt], program: Program, kept_arrays: set[str]) -> list[Stmt]:
    """Allocate the dummy buffer (max of all message sizes that use it)
    just before the first communication, i.e. once its size variables are
    available (the paper allocates "statically or dynamically, depending
    on when the required message sizes are known")."""
    sizes = _dummy_sizes(body)
    if not sizes:
        return body
    size = Max.make(*sizes) if len(sizes) > 1 else sizes[0]
    alloc = AllocStmt(DUMMY_BUF, size)
    for i, s in enumerate(body):
        if _contains_comm(s):
            return body[:i] + [alloc] + body[i:]
    return body + [alloc]
