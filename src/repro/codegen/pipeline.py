"""The compiler driver: condense ⇄ slice to fixpoint, then emit code.

Condensation and slicing are mutually dependent: the slicing criterion
comes from the condensed graph's retained control flow and scaling
functions, while a slice that needs the *output* of a computational
task forces that task to stay directly executed (un-condensed).  The
driver iterates the two passes, pinning newly-required tasks, until the
pin set is stable — it grows monotonically, so termination is bounded
by the number of computational tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.interp import BranchProfile
from ..ir.nodes import Program
from ..obs.logging import get_logger
from ..obs.metrics import METRICS
from ..obs.spans import TRACER
from ..slicing.slicer import SliceResult, slice_program
from ..stg.condense import CondensePlan, condense
from .simplify import generate_simplified
from .timers import generate_instrumented

__all__ = ["CompiledProgram", "compile_program"]

_log = get_logger("codegen")


@dataclass
class CompiledProgram:
    """Everything the compiler produces for one application (Fig. 2)."""

    original: Program
    plan: CondensePlan
    slice: SliceResult
    simplified: Program  # the delay-call version run by MPI-SIM-AM
    instrumented: Program  # the timer version run on the (modelled) real machine

    @property
    def w_param_names(self) -> tuple[str, ...]:
        """The task-time coefficients the simplified program consumes."""
        return self.plan.w_params()

    def summary(self) -> str:
        """Human-readable account of what the compiler did."""
        lines = [f"compiled {self.original.name}:"]
        lines.append(f"  {len(self.plan.regions)} condensed region(s):")
        for r in self.plan.regions:
            lines.append(f"    {r.name}: cost = {r.cost}")
        lines.append(f"  slicing criterion: {sorted(self.slice.criterion)}")
        lines.append(f"  retained executable statements: {len(self.slice.retained_sids)}")
        if self.slice.pinned_blocks:
            lines.append(f"  pinned (directly executed) tasks: {sorted(self.slice.pinned_blocks)}")
        if self.plan.eliminated_branches:
            lines.append(
                f"  statistically eliminated branches: {sorted(set(self.plan.eliminated_branches))}"
            )
        dropped = set(self.original.arrays) - set(self.simplified.arrays)
        lines.append(f"  arrays eliminated: {sorted(dropped)}")
        return "\n".join(lines)


def compile_program(
    program: Program,
    profile: BranchProfile | None = None,
    directives: dict[int, float] | None = None,
    max_iterations: int = 32,
    eliminate_dead_data: bool = True,
) -> CompiledProgram:
    """Run the full compiler pipeline on *program*.

    ``profile`` supplies branch-taken probabilities for statistically
    eliminated data-dependent branches (collected by a profiling run —
    typically the calibration run itself); ``directives`` overrides
    probabilities per branch statement id (the paper's user-directive
    approach).
    """
    with TRACER.span("codegen.compile", program=program.name) as span:
        pinned: frozenset[int] = frozenset()
        for iteration in range(1, max_iterations + 1):
            plan = condense(program, profile, directives, pinned)
            sl = slice_program(program, plan)
            new_pinned = pinned | sl.pinned_blocks
            if new_pinned == pinned:
                break
            pinned = new_pinned
        else:
            raise RuntimeError(
                f"{program.name}: condense/slice fixpoint did not converge "
                f"in {max_iterations} iterations"
            )
        simplified = generate_simplified(program, plan, sl, eliminate_dead_data)
        instrumented = generate_instrumented(program)
        span.set(
            iterations=iteration, regions=len(plan.regions),
            pinned=len(sl.pinned_blocks), retained=len(sl.retained_sids),
        )
    _log.debug(
        "compiled %s: %d fixpoint iteration(s), %d region(s), %d pinned task(s)",
        program.name, iteration, len(plan.regions), len(sl.pinned_blocks),
    )
    if METRICS.enabled:
        METRICS.counter("codegen_compiles_total", "compiler pipeline runs").inc(
            program=program.name
        )
        METRICS.histogram(
            "codegen_fixpoint_iterations", "condense/slice iterations to converge"
        ).observe(iteration, program=program.name)
    return CompiledProgram(
        original=program,
        plan=plan,
        slice=sl,
        simplified=simplified,
        instrumented=instrumented,
    )
