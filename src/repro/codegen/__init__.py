"""Code generation: simplified (delay) and instrumented (timer) programs."""

from .abstract_comm import generate_abstract_comm
from .pipeline import CompiledProgram, compile_program
from .simplify import DUMMY_BUF, generate_simplified
from .timers import generate_instrumented

__all__ = [
    "compile_program",
    "CompiledProgram",
    "generate_simplified",
    "generate_instrumented",
    "generate_abstract_comm",
    "DUMMY_BUF",
]
