"""Timer-instrumented program generation (Fig. 2, measurement branch).

"The modified dhpf compiler automatically generates two versions of the
MPI program.  One is the simplified MPI code with delay calls [...].
The second is the full MPI code with timer calls inserted to perform
the measurements of the w_i parameters."  This module generates that
second version: the original program with a timer pair around every
computational task.
"""

from __future__ import annotations

from ..ir.nodes import (
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    RecvStmt,
    SendStmt,
    StartTimer,
    Stmt,
    StopTimer,
    WaitAllStmt,
)

__all__ = ["generate_instrumented"]


def generate_instrumented(program: Program) -> Program:
    """The full program with ``timer_start``/``timer_stop`` around every
    computational task; measurements pool across call sites by task name."""
    body = _instrument(program.body)
    instr = program.copy_shell(body=body)
    instr.meta["instrumented_from"] = program.name
    instr.number()
    instr.validate()
    return instr


def _copy(s: Stmt) -> Stmt:
    if isinstance(s, Assign):
        return Assign(s.var, s.expr)
    if isinstance(s, ArrayAssign):
        return ArrayAssign(s.array, s.kernel, s.reads_, s.work)
    if isinstance(s, CompBlock):
        return CompBlock(s.name, s.work, s.ops_per_iter, s.arrays, s.reads_, s.writes_, s.kernel)
    if isinstance(s, SendStmt):
        return SendStmt(s.dest, s.nbytes, s.tag, s.array)
    if isinstance(s, RecvStmt):
        return RecvStmt(s.source, s.nbytes, s.tag, s.array)
    if isinstance(s, IsendStmt):
        return IsendStmt(s.dest, s.nbytes, s.tag, s.array, s.handle_var)
    if isinstance(s, IrecvStmt):
        return IrecvStmt(s.source, s.nbytes, s.tag, s.array, s.handle_var)
    if isinstance(s, WaitAllStmt):
        return WaitAllStmt(s.handle_vars)
    if isinstance(s, CollectiveStmt):
        return CollectiveStmt(s.op, s.nbytes, s.root, s.array, s.contrib, s.result_var, s.reduce_kind)
    raise TypeError(f"cannot instrument statement of kind {type(s).__name__}")


def _instrument(stmts: list[Stmt]) -> list[Stmt]:
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, CompBlock):
            copy = _copy(s)
            copy.origin = s.profile_key
            out.extend([StartTimer(s.name), copy, StopTimer(s.name)])
        elif isinstance(s, For):
            copy = For(s.var, s.lo, s.hi, _instrument(s.body))
            copy.origin = s.profile_key
            out.append(copy)
        elif isinstance(s, If):
            copy = If(s.cond, _instrument(s.then), _instrument(s.orelse), s.data_dependent)
            copy.origin = s.profile_key
            out.append(copy)
        else:
            copy = _copy(s)
            copy.origin = s.profile_key
            out.append(copy)
    return out
