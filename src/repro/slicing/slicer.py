"""Program slicing: retain the computation that affects parallel structure.

"We begin by finding the variables whose values affect relevant
execution time metrics [...] these variables are exactly the variables
that appear in the retained control-flow of the condensed graph, in the
scaling functions of the sequential tasks, and in the calls to the
communication library.  Program slicing [then isolates] the
computations that affect those variable values." (Sec. 3.2)

The slice is computed at statement granularity over the structured IR,
with arrays treated as atomic objects (the paper's conservative,
static-analysis-limited slice).  Interprocedural effects do not arise:
like the paper's current system, the benchmarks are single-procedure.

A subtlety the paper calls out: if a *computational task* produces a
value the slice needs (e.g. a convergence flag), the task cannot be
abstracted — we "pin" its statement id, and the condensation pass is
re-run with the pin set until a fixpoint is reached (see
:func:`repro.codegen.compile_program`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.nodes import (
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    For,
    If,
    Program,
    RecvStmt,
    SendStmt,
    Stmt,
    BUILTIN_VARS,
    walk,
)
from ..stg.condense import CondensePlan, PlanRegion

__all__ = ["SliceResult", "compute_criterion", "backward_slice", "slice_program"]


@dataclass(frozen=True)
class SliceResult:
    """Outcome of slicing a program against a condensation plan."""

    criterion: frozenset[str]  # the initial slicing criterion variables
    needed: frozenset[str]  # transitive closure of required names
    retained_sids: frozenset[int]  # executable statements kept in the slice
    pinned_blocks: frozenset[int]  # CompBlock sids that must stay directly executed

    def keeps(self, stmt: Stmt) -> bool:
        return stmt.sid in self.retained_sids


def _strip(names: set[str]) -> set[str]:
    """Remove builtins and w_i parameters — they need no producer."""
    return {n for n in names if n not in BUILTIN_VARS and not n.startswith("w_")}


def compute_criterion(program: Program, plan: CondensePlan) -> frozenset[str]:
    """The slicing criterion: variables the simplified program must
    compute correctly (retained control flow, communication arguments,
    scaling functions)."""
    crit: set[str] = set()

    def visit_items(items):
        for item in items:
            if isinstance(item, PlanRegion):
                # the scaling function is retained, so its variables
                # (including Index array references) are criterion
                crit.update(item.region.cost.free_vars())
            else:
                s = item.stmt
                if isinstance(s, For):
                    crit.update(s.lo.free_vars() | s.hi.free_vars())
                elif isinstance(s, If):
                    crit.update(s.cond.free_vars())
                elif isinstance(s, SendStmt):
                    crit.update(s.dest.free_vars() | s.nbytes.free_vars())
                elif isinstance(s, RecvStmt):
                    crit.update(s.source.free_vars() | s.nbytes.free_vars())
                elif isinstance(s, CollectiveStmt):
                    crit.update(s.nbytes.free_vars() | s.root.free_vars())
                elif isinstance(s, CompBlock):
                    # a pinned block executes directly: it needs its work
                    # expression and scalar inputs
                    crit.update(s.work.free_vars())
                    crit.update(s.reads_)
                for bp in item.body_plans:
                    visit_items(bp)

    visit_items(plan.root)
    # program parameters stay in the criterion (they are read, not
    # computed); builtins and w_i coefficients are stripped
    return frozenset(_strip(crit))


def backward_slice(program: Program, criterion: frozenset[str]) -> tuple[set[str], set[int]]:
    """Transitive backward closure: which statements produce needed names.

    Returns ``(needed_names, retained_sids)``.  Iterates to a fixpoint
    because producers inside loops may consume their own earlier
    outputs.
    """
    needed: set[str] = set(_strip(set(criterion)))
    retained: set[int] = set()
    stmts = [s for s in walk(program.body) if isinstance(s, (Assign, ArrayAssign, CompBlock))]
    changed = True
    while changed:
        changed = False
        for s in reversed(stmts):
            if isinstance(s, Assign):
                w, r = {s.var}, s.expr.free_vars()
            elif isinstance(s, ArrayAssign):
                w, r = {s.array}, set(s.reads_) | s.work.free_vars()
            else:  # CompBlock: only its declared scalar outputs matter here
                w = set(s.writes_) | (set(s.arrays) & needed)
                r = set(s.reads_) | s.work.free_vars() | set(s.arrays)
            if s.sid not in retained and (w & needed):
                retained.add(s.sid)
                new = _strip(set(r)) - needed
                if new:
                    needed.update(new)
                    changed = True
                changed = True
    return needed, retained


def _control_vars_of_kept_structures(program: Program, retained: set[int]) -> set[str]:
    """Bounds/conditions of control structures that must be kept because
    they enclose retained statements (control dependence)."""
    extra: set[str] = set()

    def visit(stmts: list[Stmt]) -> bool:
        any_kept = False
        for s in stmts:
            kept = s.sid in retained
            if isinstance(s, For):
                if visit(s.body):
                    extra.update(s.lo.free_vars() | s.hi.free_vars())
                    kept = True
            elif isinstance(s, If):
                inner = visit(s.then) | visit(s.orelse)
                if inner:
                    extra.update(s.cond.free_vars())
                    kept = True
            any_kept |= kept
        return any_kept

    visit(program.body)
    return _strip(extra)


def slice_program(program: Program, plan: CondensePlan) -> SliceResult:
    """Slice *program* against *plan*, honouring control dependence.

    Fixpoint over: criterion → backward slice → add the guards of control
    structures that the slice forces us to keep → repeat.
    """
    criterion = set(compute_criterion(program, plan))
    while True:
        needed, retained = backward_slice(program, frozenset(criterion))
        extra = _control_vars_of_kept_structures(program, retained) - criterion - needed
        if not extra:
            break
        criterion.update(extra)
    pinned = {
        s.sid
        for s in walk(program.body)
        if isinstance(s, CompBlock) and s.sid in retained
    }
    return SliceResult(
        criterion=frozenset(criterion),
        needed=frozenset(needed),
        retained_sids=frozenset(retained),
        pinned_blocks=frozenset(pinned),
    )
