"""Program slicing (Sec. 3.2): retain what affects parallel structure."""

from .slicer import SliceResult, backward_slice, compute_criterion, slice_program

__all__ = ["SliceResult", "backward_slice", "compute_criterion", "slice_program"]
