"""Structured logging for the whole pipeline.

One logger hierarchy rooted at ``repro`` with a compact single-line
format.  Nothing is emitted unless :func:`configure_logging` raises the
level (the CLI's ``-v`` / ``--log-level`` flags do), so instrumented
code may log freely without taxing silent runs — a disabled ``log.info``
is a single level comparison.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging", "verbosity_to_level", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map a ``-v`` count to a logging level (0→WARNING, 1→INFO, 2+→DEBUG)."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(level: int | str = logging.WARNING, stream=None) -> logging.Logger:
    """Install (once) a stderr handler on the ``repro`` root logger.

    *level* is a numeric level or a name (``"info"``, ``"DEBUG"``, ...).
    Calling again reconfigures the level, not the handler, so repeated
    CLI invocations in one process (tests) don't stack handlers.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = get_logger()
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        root.handlers[0].setStream(stream)
    return root
