"""Observability: dual-clock tracing, metrics, logging, and trace analysis.

The measurement spine of the reproduction (the paper's methodology is
measurement all the way down — timer runs fit the w_i, and the
simulators are judged on their own time/memory trajectories):

* :mod:`repro.obs.spans` — span tracing on two clocks: host wall time
  (what the simulator costs) and simulated virtual time (what the
  target costs).  Disabled by default; zero-cost when off.
* :mod:`repro.obs.metrics` — process-wide registry of labeled
  counters/gauges/histograms with in-memory, JSONL and table sinks.
* :mod:`repro.obs.logging` — structured logging behind ``-v``.
* :mod:`repro.obs.perfetto` — Chrome/Perfetto trace-event export of
  simulation traces and host spans (open in ``ui.perfetto.dev``).
* :mod:`repro.obs.critical_path` — which events determine
  ``SimStats.elapsed``, decomposed per rank and kind.
* :mod:`repro.obs.scaling` — ScalAna-style scaling-loss detection by
  diffing traces across processor counts.
* :mod:`repro.obs.comm_matrix` — rank×rank message/byte matrix.
* :mod:`repro.obs.capsule` — per-run telemetry capsules that ship
  spans/metrics/stats across process boundaries (``--jobs`` workers).
* :mod:`repro.obs.merge` — fuses capsules into one campaign-level
  Perfetto timeline and aggregate metric snapshot.

Surfaced on the command line as ``python -m repro profile`` and
``python -m repro inspect``.
"""

from .capsule import CAPSULE_FORMAT, TelemetryCapsule, capture_run, load_capsules
from .comm_matrix import CommMatrix, comm_matrix, format_comm_matrix
from .critical_path import (
    CriticalPathReport,
    PathStep,
    critical_path,
    format_critical_path,
)
from .logging import configure_logging, get_logger, verbosity_to_level
from .metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    TableSink,
)
from .merge import (
    aggregate_metrics,
    format_campaign_timeline,
    merge_capsules,
    write_merged_perfetto,
)
from .perfetto import (
    perfetto_document,
    spans_to_events,
    trace_to_events,
    validate_perfetto,
    write_perfetto,
)
from .scaling import (
    ScalingEntry,
    ScalingLossReport,
    detect_scaling_loss,
    format_scaling_loss,
)
from .spans import TRACER, Span, Tracer, format_spans

__all__ = [
    "TRACER",
    "Tracer",
    "Span",
    "format_spans",
    "METRICS",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "TableSink",
    "get_logger",
    "configure_logging",
    "verbosity_to_level",
    "perfetto_document",
    "trace_to_events",
    "spans_to_events",
    "write_perfetto",
    "validate_perfetto",
    "critical_path",
    "CriticalPathReport",
    "PathStep",
    "format_critical_path",
    "detect_scaling_loss",
    "ScalingEntry",
    "ScalingLossReport",
    "format_scaling_loss",
    "comm_matrix",
    "CommMatrix",
    "format_comm_matrix",
    "TelemetryCapsule",
    "capture_run",
    "load_capsules",
    "CAPSULE_FORMAT",
    "merge_capsules",
    "aggregate_metrics",
    "write_merged_perfetto",
    "format_campaign_timeline",
]
