"""Telemetry capsules: one run's observability, serialized to travel.

PR 2's spans/metrics live in process-wide singletons, which is exactly
right for one process and exactly wrong for the ``--jobs`` executor:
everything a campaign worker records dies with the worker.  A
:class:`TelemetryCapsule` is the fix — a small, JSON-safe container
holding one run's spans, metric samples, :class:`~repro.sim.SimStats`
(fault counters included), budget state and optional flight-recorder
dump, plus the wall-clock anchor needed to place the run on a shared
campaign timeline.

Capture protocol (:class:`capture_run`): save the global tracer/metrics
state, swap in fresh recording state, run, snapshot, restore.  Isolation
by swap keeps the kernel's fast-path gate untouched — the engine still
tests the same ``TRACER.enabled`` / ``METRICS.enabled`` flags — and
works identically in a pool worker and in the sequential parent.

The ``wall_start``/``perf_start`` pair matters: span timestamps are
``time.perf_counter()`` values whose epoch is *per-process arbitrary*,
so capsules from different workers cannot be aligned from spans alone.
The capture records ``time.time()`` at the same instant, letting
:mod:`repro.obs.merge` rebase every capsule onto one shared wall clock.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .metrics import METRICS
from .spans import Span, TRACER

__all__ = ["TelemetryCapsule", "capture_run", "load_capsules", "CAPSULE_FORMAT"]

#: capsule schema version (bump when the dict shape changes)
CAPSULE_FORMAT = 1


@dataclass
class TelemetryCapsule:
    """One run's observability record, serializable across processes."""

    run_id: str
    worker: int  # producing process's pid
    wall_start: float = 0.0  # time.time() at capture start
    perf_start: float = 0.0  # time.perf_counter() at the same instant
    outcome: str | None = None  # campaign outcome class, when known
    elapsed: float | None = None  # predicted target elapsed (SimStats.elapsed)
    spans: list[dict] = field(default_factory=list)  # serialized Span records
    metrics: list[dict] = field(default_factory=list)  # samples(include_raw=True)
    stats: dict | None = None  # SimStats.to_dict() (fault counters included)
    budget: dict | None = None  # BudgetGuard.snapshot(), when budgeted
    flight: dict | None = None  # FlightRecorder dump, on failure
    attrs: dict = field(default_factory=dict)  # free-form annotations

    # -- serialization ---------------------------------------------------------
    def to_json(self) -> dict:
        doc = asdict(self)
        doc["format"] = CAPSULE_FORMAT
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> TelemetryCapsule:
        try:
            return cls(
                run_id=doc["run_id"],
                worker=int(doc["worker"]),
                wall_start=float(doc.get("wall_start", 0.0)),
                perf_start=float(doc.get("perf_start", 0.0)),
                outcome=doc.get("outcome"),
                elapsed=doc.get("elapsed"),
                spans=list(doc.get("spans", [])),
                metrics=list(doc.get("metrics", [])),
                stats=doc.get("stats"),
                budget=doc.get("budget"),
                flight=doc.get("flight"),
                attrs=dict(doc.get("attrs", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"corrupt telemetry capsule: {exc}") from None

    # -- span access -----------------------------------------------------------
    def span_objects(self) -> list[Span]:
        """Rehydrate the serialized spans as :class:`~repro.obs.Span`."""
        out = []
        for doc in self.spans:
            out.append(
                Span(
                    sid=doc["sid"],
                    name=doc["name"],
                    parent=doc.get("parent"),
                    host_start=doc["host_start"],
                    host_end=doc.get("host_end", 0.0),
                    virtual_start=doc.get("virtual_start"),
                    virtual_end=doc.get("virtual_end"),
                    attrs=dict(doc.get("attrs", {})),
                )
            )
        return out

    def root_spans(self) -> list[Span]:
        return [sp for sp in self.span_objects() if sp.parent is None]


def _span_to_dict(sp: Span) -> dict:
    return {
        "sid": sp.sid,
        "name": sp.name,
        "parent": sp.parent,
        "host_start": sp.host_start,
        "host_end": sp.host_end,
        "virtual_start": sp.virtual_start,
        "virtual_end": sp.virtual_end,
        # attrs must survive json round-trips; stringify what would not
        "attrs": {
            k: (v if isinstance(v, (str, int, float, bool, type(None))) else str(v))
            for k, v in sp.attrs.items()
        },
    }


class capture_run:
    """Context manager recording one run into a fresh capsule.

    Swaps fresh recording state into the process-wide ``TRACER`` and
    ``METRICS`` on entry and restores the previous state on exit, so
    nested campaign-level instrumentation in the parent is suspended —
    not corrupted — while a run is being captured.  After exit,
    ``capture.capsule`` holds the populated :class:`TelemetryCapsule`;
    :meth:`finish` attaches outcome/stats/budget/flight details.
    """

    def __init__(self, run_id: str, worker: int | None = None, **attrs):
        import os

        self.run_id = run_id
        self.worker = worker if worker is not None else os.getpid()
        self.attrs = attrs
        self.capsule: TelemetryCapsule | None = None

    def __enter__(self) -> capture_run:
        self._saved = (
            TRACER.enabled, TRACER.spans, TRACER._stack,
            METRICS.enabled, METRICS._instruments,
        )
        TRACER.spans, TRACER._stack = [], []
        TRACER.enabled = True
        METRICS._instruments = {}
        METRICS.enabled = True
        self.capsule = TelemetryCapsule(
            run_id=self.run_id,
            worker=self.worker,
            wall_start=time.time(),
            perf_start=time.perf_counter(),
            attrs=dict(self.attrs),
        )
        return self

    def __exit__(self, *exc) -> bool:
        cap = self.capsule
        cap.spans = [_span_to_dict(sp) for sp in TRACER.spans]
        cap.metrics = METRICS.samples(include_raw=True)
        (
            TRACER.enabled, TRACER.spans, TRACER._stack,
            METRICS.enabled, METRICS._instruments,
        ) = self._saved
        return False

    def finish(
        self,
        outcome: str | None = None,
        stats: dict | None = None,
        elapsed: float | None = None,
        budget: dict | None = None,
        flight: dict | None = None,
    ) -> TelemetryCapsule:
        """Attach run results to the captured capsule; returns it."""
        cap = self.capsule
        if outcome is not None:
            cap.outcome = outcome
        if stats is not None:
            cap.stats = stats
            cap.elapsed = stats.get("elapsed") if elapsed is None else elapsed
        elif elapsed is not None:
            cap.elapsed = elapsed
        if budget is not None:
            cap.budget = budget
        if flight is not None:
            cap.flight = flight
        return cap


def load_capsules(path: str | Path) -> list[TelemetryCapsule]:
    """Read capsules from a telemetry JSONL journal (torn-line tolerant).

    Non-capsule records (headers, future kinds) are skipped; an
    incomplete final line — the documented ``O_APPEND`` crash hazard —
    is dropped with a warning by the underlying reader.
    """
    from ..util.atomic_io import read_jsonl

    out = []
    for doc in read_jsonl(path):
        if doc.get("type") == "capsule":
            out.append(TelemetryCapsule.from_json(doc))
    return out
