"""Communication-matrix report: who talks to whom, and how much.

Rebuilds the rank×rank point-to-point traffic matrix from a simulation
trace: every matched receive carries a dependency on its send event, so
(source, destination, bytes) is recoverable offline without touching
the kernel.  Collective participation is reported per rank alongside
(collectives have no pairwise direction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.trace import Trace

__all__ = ["CommMatrix", "comm_matrix", "format_comm_matrix"]


@dataclass
class CommMatrix:
    """Pairwise message/byte counts plus per-rank collective counts."""

    nprocs: int
    messages: list[list[int]] = field(default_factory=list)  # [src][dst]
    bytes: list[list[int]] = field(default_factory=list)  # [src][dst]
    collectives: list[int] = field(default_factory=list)  # per rank

    @property
    def total_messages(self) -> int:
        return sum(sum(row) for row in self.messages)

    @property
    def total_bytes(self) -> int:
        return sum(sum(row) for row in self.bytes)

    def top_pairs(self, k: int = 10) -> list[tuple[int, int, int, int]]:
        """The *k* heaviest (src, dst, messages, bytes) pairs by bytes."""
        pairs = [
            (src, dst, self.messages[src][dst], self.bytes[src][dst])
            for src in range(self.nprocs)
            for dst in range(self.nprocs)
            if self.messages[src][dst]
        ]
        pairs.sort(key=lambda p: (-p[3], -p[2], p[0], p[1]))
        return pairs[:k]


def comm_matrix(trace: Trace) -> CommMatrix:
    """Accumulate the rank×rank matrix from matched receives in *trace*."""
    n = trace.nprocs
    cm = CommMatrix(
        nprocs=n,
        messages=[[0] * n for _ in range(n)],
        bytes=[[0] * n for _ in range(n)],
        collectives=[0] * n,
    )
    for ev in trace.events:
        if ev.kind == "recv":
            for dep in ev.deps:
                src = trace.events[dep].proc
                cm.messages[src][ev.proc] += 1
                cm.bytes[src][ev.proc] += ev.nbytes
        elif ev.kind == "collective":
            cm.collectives[ev.proc] += 1
    return cm


def format_comm_matrix(cm: CommMatrix, max_ranks: int = 24) -> str:
    """Render the matrix (small worlds) or the heaviest pairs (large)."""
    lines = [
        f"Communication matrix: {cm.nprocs} ranks, "
        f"{cm.total_messages} messages / {cm.total_bytes} bytes p2p"
    ]
    if cm.nprocs <= max_ranks:
        width = max(
            5, *(len(str(v)) for row in cm.messages for v in row), len(str(cm.nprocs))
        )
        header = "  msgs " + " ".join(f"d{d}".rjust(width) for d in range(cm.nprocs))
        lines.append(header)
        for src in range(cm.nprocs):
            row = " ".join(
                (str(v) if v else ".").rjust(width) for v in cm.messages[src]
            )
            lines.append(f"  s{src:<4d} {row}")
        lines.append("  bytes per destination (same layout):")
        for src in range(cm.nprocs):
            row = " ".join(
                (str(v) if v else ".").rjust(width) for v in cm.bytes[src]
            )
            lines.append(f"  s{src:<4d} {row}")
    else:
        lines.append("  (world too large to tabulate; top pairs by bytes)")
        for src, dst, msgs, nbytes in cm.top_pairs(20):
            lines.append(f"  {src:>5d} -> {dst:<5d} {msgs:>8d} msgs {nbytes:>12d} bytes")
    if any(cm.collectives):
        lines.append(
            "  collectives per rank: "
            + ", ".join(str(c) for c in cm.collectives[:max_ranks])
            + (" ..." if cm.nprocs > max_ranks else "")
        )
    return "\n".join(lines)
