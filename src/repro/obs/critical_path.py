"""Critical-path analysis over the event-dependency graph.

Which events actually determine ``SimStats.elapsed``?  Starting from
the event that finishes last, the analyzer walks backwards through the
gating structure of the trace — same-process program order, message
dependencies (``deps``) and collective membership — always stepping to
the predecessor that completed latest (the one that gated the current
event).  Each step's contribution is the virtual time between the two
completions, so the contributions **telescope to the elapsed time
exactly**; aggregated per rank and per event kind they show where the
critical path spends the run (the ScalAna-style "which chain limits
scaling" question, answered on one trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.trace import Trace, TraceEvent

__all__ = ["PathStep", "CriticalPathReport", "critical_path", "format_critical_path"]


@dataclass(frozen=True)
class PathStep:
    """One event on the critical path with its telescoped contribution."""

    eid: int
    proc: int
    kind: str
    start: float
    end: float
    contribution: float  # this event's completion minus its gate's completion


@dataclass(frozen=True)
class CriticalPathReport:
    """The critical path and its per-rank / per-kind decomposition."""

    steps: tuple[PathStep, ...]  # finishing event first
    total: float  # == elapsed (the last event's completion time)
    by_kind: dict[str, float]
    by_proc: dict[int, float]

    @property
    def length(self) -> int:
        return len(self.steps)


def _program_order_pred(trace: Trace) -> dict[int, int | None]:
    """Same-process gating predecessor per event (completion order).

    Non-blocking kernel completions occupy the host when they occur but
    do not order the process's own subsequent events — only the matching
    wait joins them — so they never become a program-order predecessor
    (mirrors :mod:`repro.parallel.hostmodel`).
    """
    per_proc: dict[int, list[TraceEvent]] = {}
    for ev in trace.events:
        per_proc.setdefault(ev.proc, []).append(ev)
    pred: dict[int, int | None] = {}
    for events in per_proc.values():
        events.sort(key=lambda e: (e.end, e.eid))
        prev = None
        for ev in events:
            pred[ev.eid] = prev
            if not ev.nonblocking:
                prev = ev.eid
    return pred


def critical_path(trace: Trace) -> CriticalPathReport:
    """Walk the gating chain back from the last event to finish.

    The per-step contributions sum to the final completion time exactly
    (floating-point associativity aside, they telescope), which equals
    ``SimStats.elapsed`` whenever the run's last clock advance is a
    traced event (always true for DE/AM runs of the bundled apps).
    """
    if not trace.events:
        return CriticalPathReport(steps=(), total=0.0, by_kind={}, by_proc={})
    pred = _program_order_pred(trace)
    coll_members: dict[int, list[TraceEvent]] = {}
    for ev in trace.events:
        if ev.coll_id is not None:
            coll_members.setdefault(ev.coll_id, []).append(ev)

    def candidates(ev: TraceEvent):
        p = pred[ev.eid]
        if p is not None:
            yield trace.events[p]
        for dep in ev.deps:
            yield trace.events[dep]
        if ev.coll_id is not None:
            # a collective completes when its last member arrives: the
            # gate is some member's own preceding event
            for member in coll_members[ev.coll_id]:
                mp = pred[member.eid]
                if mp is not None:
                    yield trace.events[mp]

    current = max(trace.events, key=lambda e: (e.end, e.eid))
    total = current.end
    steps: list[PathStep] = []
    by_kind: dict[str, float] = {}
    by_proc: dict[int, float] = {}
    while True:
        key = (current.end, current.eid)
        gate = None
        gate_key = None
        for cand in candidates(current):
            ck = (cand.end, cand.eid)
            if ck < key and (gate_key is None or ck > gate_key):
                gate, gate_key = cand, ck
        contribution = current.end - (gate.end if gate is not None else 0.0)
        steps.append(
            PathStep(
                eid=current.eid, proc=current.proc, kind=current.kind,
                start=current.start, end=current.end, contribution=contribution,
            )
        )
        by_kind[current.kind] = by_kind.get(current.kind, 0.0) + contribution
        by_proc[current.proc] = by_proc.get(current.proc, 0.0) + contribution
        if gate is None:
            break
        current = gate
    return CriticalPathReport(
        steps=tuple(steps), total=total, by_kind=by_kind, by_proc=by_proc
    )


def format_critical_path(report: CriticalPathReport, top: int = 10) -> str:
    """Human-readable critical-path breakdown."""
    lines = [
        f"Critical path: {report.total:.6f}s over {report.length} event(s)"
    ]
    if not report.steps:
        return lines[0]

    def pct(x: float) -> str:
        return f"{100.0 * x / report.total:5.1f}%" if report.total > 0 else "  -  "

    lines.append("  by kind:")
    for kind, t in sorted(report.by_kind.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {kind:12s} {t:.6f}s  {pct(t)}")
    lines.append("  by rank:")
    ranked = sorted(report.by_proc.items(), key=lambda kv: -kv[1])
    for proc, t in ranked[:top]:
        lines.append(f"    rank {proc:<7d} {t:.6f}s  {pct(t)}")
    if len(ranked) > top:
        rest = sum(t for _, t in ranked[top:])
        lines.append(f"    {len(ranked) - top} more ranks {rest:.6f}s  {pct(rest)}")
    lines.append(f"  top step(s) of {report.length}:")
    for step in sorted(report.steps, key=lambda s: -s.contribution)[:top]:
        lines.append(
            f"    eid {step.eid:<8d} rank {step.proc:<5d} {step.kind:12s} "
            f"[{step.start:.6f}, {step.end:.6f}]  +{step.contribution:.6f}s  "
            f"{pct(step.contribution)}"
        )
    return "\n".join(lines)
