"""ScalAna-style scaling-loss detection: diff traces across P.

Given traces of the same application at several processor counts, the
detector aggregates virtual time per event kind, fits a log–log growth
exponent against P, and ranks the kinds whose aggregate cost grows
fastest — the ScalAna observation that scaling losses localize to the
program constructs whose cost curve bends upward.  Under perfect strong
scaling the total virtual time summed over ranks stays flat (exponent
≈ 0); communication that serializes or synchronizes shows a positive
exponent and a growing share of the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.trace import Trace

__all__ = ["ScalingEntry", "ScalingLossReport", "detect_scaling_loss", "format_scaling_loss"]


@dataclass(frozen=True)
class ScalingEntry:
    """One event kind's cost trajectory across processor counts."""

    kind: str
    totals: dict[int, float]  # nprocs -> summed virtual seconds
    exponent: float | None  # log-log slope of total vs P (None if degenerate)
    growth: float | None  # total at max P over total at min P (None if zero base)
    added: float  # absolute seconds added between min P and max P

    @property
    def is_loss(self) -> bool:
        """Does this kind's aggregate cost grow with P at all?"""
        return self.added > 0


@dataclass(frozen=True)
class ScalingLossReport:
    """Ranked scaling-loss candidates over a set of processor counts."""

    procs: tuple[int, ...]
    entries: tuple[ScalingEntry, ...]  # sorted: fastest-growing first

    @property
    def losses(self) -> tuple[ScalingEntry, ...]:
        return tuple(e for e in self.entries if e.is_loss)


def _fit_exponent(procs: list[int], totals: list[float]) -> float | None:
    """Least-squares slope of log(total) against log(P)."""
    points = [(math.log(p), math.log(t)) for p, t in zip(procs, totals) if t > 0]
    if len(points) < 2:
        return None
    n = len(points)
    mx = sum(x for x, _ in points) / n
    my = sum(y for _, y in points) / n
    sxx = sum((x - mx) ** 2 for x, _ in points)
    if sxx == 0:
        return None
    sxy = sum((x - mx) * (y - my) for x, y in points)
    return sxy / sxx


def detect_scaling_loss(traces: dict[int, Trace]) -> ScalingLossReport:
    """Diff *traces* (``{nprocs: Trace}``) and rank cost growth per kind.

    Needs at least two processor counts.  Entries come back sorted by
    absolute seconds added between the smallest and largest P (the time
    actually lost to scaling), with the growth exponent alongside.
    """
    if len(traces) < 2:
        raise ValueError(
            f"scaling-loss detection needs traces at >= 2 processor counts, got {len(traces)}"
        )
    procs = sorted(traces)
    per_kind: dict[str, dict[int, float]] = {}
    for p in procs:
        for ev in traces[p].events:
            per_kind.setdefault(ev.kind, {}).setdefault(p, 0.0)
            per_kind[ev.kind][p] += ev.end - ev.start
    entries = []
    for kind, totals in per_kind.items():
        full = {p: totals.get(p, 0.0) for p in procs}
        first, last = full[procs[0]], full[procs[-1]]
        entries.append(
            ScalingEntry(
                kind=kind,
                totals=full,
                exponent=_fit_exponent(procs, [full[p] for p in procs]),
                growth=(last / first) if first > 0 else None,
                added=last - first,
            )
        )
    entries.sort(key=lambda e: -e.added)
    return ScalingLossReport(procs=tuple(procs), entries=tuple(entries))


def format_scaling_loss(report: ScalingLossReport) -> str:
    """Human-readable scaling-loss ranking."""
    procs = report.procs
    lines = [
        "Scaling-loss report: aggregate virtual seconds per event kind, "
        f"P = {list(procs)}"
    ]
    header = (
        f"  {'kind':12s} "
        + " ".join(f"P={p}".rjust(12) for p in procs)
        + "  growth".rjust(9)
        + "  exponent"
        + "  verdict"
    )
    lines.append(header)
    for e in report.entries:
        cols = " ".join(f"{e.totals[p]:.6f}".rjust(12) for p in procs)
        growth = f"{e.growth:.2f}x" if e.growth is not None else "new"
        exponent = f"{e.exponent:+.2f}" if e.exponent is not None else "   -"
        if e.added <= 0:
            verdict = "scales"
        elif e.exponent is not None and e.exponent > 0.5:
            verdict = "SCALING LOSS"
        else:
            verdict = "grows"
        lines.append(f"  {e.kind:12s} {cols} {growth:>8s} {exponent:>9s}  {verdict}")
    worst = next(iter(report.losses), None)
    if worst is not None:
        lines.append(
            f"  fastest-growing: {worst.kind!r} adds {worst.added:.6f}s "
            f"from P={procs[0]} to P={procs[-1]}"
        )
    return "\n".join(lines)
