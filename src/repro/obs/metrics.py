"""Process-wide metrics: labeled counters, gauges and histograms.

A :class:`MetricsRegistry` holds named instruments, each fanning out
into labeled series (``sim_runs_total{mode="mpi-sim-am"}``).  The
module-level :data:`METRICS` registry is **disabled by default** — every
instrument method then returns after one attribute test, so instrumented
code pays nothing in silent runs (the no-op guarantee the kernel
benchmarks hold the engine to).

Snapshots flush through pluggable sinks: :class:`InMemorySink` (tests),
:class:`JsonlSink` (one JSON object per sample line, machine-readable),
and :class:`TableSink` (human-readable text table).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "InMemorySink",
    "JsonlSink",
    "TableSink",
]


def _labelkey(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Instrument:
    """Common base: one named metric fanning out into labeled series."""

    kind = "untyped"
    __slots__ = ("name", "help", "_registry", "_series")

    def __init__(self, name: str, help: str, registry: MetricsRegistry):
        self.name = name
        self.help = help
        self._registry = registry
        self._series: dict[tuple, object] = {}

    def labelsets(self) -> list[dict]:
        return [dict(key) for key in self._series]


class Counter(_Instrument):
    """Monotonically increasing count (events, messages, retries...)."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1, **labels) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        key = _labelkey(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_labelkey(labels), 0)


class Gauge(_Instrument):
    """Point-in-time value (queue depth, memory high-water mark...)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        self._series[_labelkey(labels)] = value

    def value(self, **labels) -> float | None:
        return self._series.get(_labelkey(labels))


class Histogram(_Instrument):
    """Distribution of observations (elapsed times, host costs...)."""

    kind = "histogram"
    __slots__ = ()

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        key = _labelkey(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = []
        series.append(value)

    def summary(self, **labels) -> dict:
        values = sorted(self._series.get(_labelkey(labels), []))
        if not values:
            return {"count": 0, "sum": 0.0, "min": None, "max": None, "mean": None, "p50": None}
        total = sum(values)
        return {
            "count": len(values),
            "sum": total,
            "min": values[0],
            "max": values[-1],
            "mean": total / len(values),
            "p50": values[len(values) // 2],
        }


class MetricsRegistry:
    """Named instruments plus the enable switch instrumented code checks."""

    def __init__(self):
        self.enabled = False
        self._instruments: dict[str, _Instrument] = {}

    # -- instrument factories (get-or-create, type-checked) ------------------
    def _get(self, cls, name: str, help: str):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(name, help, self)
        elif type(inst) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}, not {cls.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    # -- lifecycle ----------------------------------------------------------
    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._instruments.clear()

    # -- snapshots and sinks --------------------------------------------------
    def samples(self, include_raw: bool = False) -> list[dict]:
        """Flatten every labeled series into sample dicts.

        ``include_raw=True`` adds the raw observation list to histogram
        samples (key ``"values"``) so snapshots from different processes
        can be merged exactly instead of approximated from summaries
        (see :mod:`repro.obs.merge`).
        """
        out = []
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            for key in sorted(inst._series):
                labels = dict(key)
                sample = {"name": name, "type": inst.kind, "labels": labels}
                if inst.kind == "histogram":
                    sample.update(inst.summary(**labels))
                    if include_raw:
                        sample["values"] = list(inst._series[key])
                else:
                    sample["value"] = inst._series[key]
                out.append(sample)
        return out

    def restore(self, samples: list[dict]) -> None:
        """Merge *samples* (from :meth:`samples`) into this registry.

        Counters add, gauges take the incoming value, histograms extend
        with the sample's raw ``values`` (falling back to a single
        synthetic observation per summary when raw values are absent).
        Used by the capsule merge layer to rebuild one campaign-level
        registry out of per-worker snapshots; requires ``enabled``.
        """
        for sample in samples:
            labels = sample.get("labels", {})
            kind = sample.get("type")
            name = sample["name"]
            if kind == "counter":
                self.counter(name).inc(sample["value"], **labels)
            elif kind == "gauge":
                self.gauge(name).set(sample["value"], **labels)
            elif kind == "histogram":
                hist = self.histogram(name)
                values = sample.get("values")
                if values is None:
                    values = [sample["mean"]] * int(sample.get("count", 0))
                for v in values:
                    hist.observe(v, **labels)
            else:
                raise ValueError(f"sample {name!r} has unknown type {kind!r}")

    def flush(self, sink) -> None:
        """Write a snapshot of every series through *sink*."""
        sink.write(self.samples())

    # -- convenience: one simulation run's worth of metrics -------------------
    def record_run(self, mode: str, stats) -> None:
        """Record a finished simulation run from its ``SimStats``.

        *stats* is duck-typed (anything with ``to_dict()`` in the
        ``SimStats`` shape) so the registry stays import-free of the
        kernel.  Fault/resilience counters flow through here too — this
        is how they reach the metrics sinks.
        """
        if not self.enabled:
            return
        d = stats.to_dict()
        self.counter("sim_runs_total", "simulation runs completed").inc(mode=mode)
        self.counter("sim_events_total", "kernel events executed").inc(
            d["total_events"], mode=mode
        )
        self.counter("sim_messages_total", "point-to-point messages").inc(
            d["total_messages"], mode=mode
        )
        self.counter("sim_bytes_total", "point-to-point payload bytes").inc(
            d["total_bytes"], mode=mode
        )
        self.histogram("sim_elapsed_seconds", "predicted target elapsed time").observe(
            d["elapsed"], mode=mode
        )
        self.histogram("sim_host_cost_seconds", "modelled host CPU cost").observe(
            d["total_host_cost"], mode=mode
        )
        for counter, help_ in (
            ("total_retries", "fault-layer retransmission attempts"),
            ("total_timeouts", "operations completed with TimedOut"),
            ("total_messages_lost", "messages dropped by the fault plan"),
            ("total_duplicates", "spurious duplicates delivered"),
            ("total_send_failures", "sends abandoned after the retry budget"),
        ):
            if d[counter]:
                self.counter(f"sim_{counter}", help_).inc(d[counter], mode=mode)
        if d["crashed_ranks"]:
            self.counter("sim_crashed_ranks_total", "ranks crashed by the fault plan").inc(
                len(d["crashed_ranks"]), mode=mode
            )


#: The process-wide registry all instrumented layers report to.
METRICS = MetricsRegistry()


# -- sinks --------------------------------------------------------------------


class InMemorySink:
    """Collects snapshots in a list (tests, embedding)."""

    def __init__(self):
        self.snapshots: list[list[dict]] = []

    def write(self, samples: list[dict]) -> None:
        self.snapshots.append(samples)


class JsonlSink:
    """Appends one JSON object per sample to a file.

    Flushes use a plain ``O_APPEND`` open with one buffered write per
    flush: each append costs O(samples) regardless of file size, and
    concurrent writers sharing the path interleave whole flushes
    instead of losing each other's records.  A crash mid-flush can
    tear at most the final line — readers skip it — which is the right
    trade for a high-frequency telemetry stream; the full-file atomic
    rewrite in :mod:`repro.util.atomic_io` would make periodic flushes
    O(n²) and racy across processes.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def write(self, samples: list[dict]) -> None:
        payload = "".join(
            json.dumps(sample, separators=(",", ":")) + "\n" for sample in samples
        )
        with open(self.path, "a") as fh:
            fh.write(payload)


class TableSink:
    """Renders samples as a human-readable table (stdout by default)."""

    def __init__(self, stream=None):
        self.stream = stream

    def write(self, samples: list[dict]) -> None:
        import sys

        print(self.render(samples), file=self.stream or sys.stdout)

    @staticmethod
    def render(samples: list[dict]) -> str:
        rows = []
        for s in samples:
            labels = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items()))
            if s["type"] == "histogram":
                value = f"count={s['count']} mean={s['mean']:.6g} max={s['max']:.6g}"
            else:
                value = f"{s['value']:.6g}" if isinstance(s["value"], float) else str(s["value"])
            rows.append((s["name"], s["type"], labels, value))
        headers = ("metric", "type", "labels", "value")
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(4)
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
        return "\n".join(lines)
