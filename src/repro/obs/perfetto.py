"""Perfetto / Chrome trace-event export of simulation runs.

Renders a :class:`repro.sim.Trace` (virtual-clock timeline, one Perfetto
"process" per target rank) and the host-side :class:`repro.obs.Span`
records (what the simulator itself spent) as one JSON document in the
Chrome trace-event format, openable at ``ui.perfetto.dev`` or
``chrome://tracing``.

Trace events use the complete-event form (``"ph": "X"``) with
microsecond timestamps; message dependencies become flow events
(``"s"``/``"f"``) so Perfetto draws arrows from each send to the
matching receive.  Non-blocking kernel completions render on a separate
track per rank because they overlap the rank's program-order events.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING

from ..util.atomic_io import atomic_write

if TYPE_CHECKING:  # avoid importing the kernel at runtime (layering)
    from ..sim.trace import Trace
    from .spans import Span

__all__ = [
    "trace_to_events",
    "spans_to_events",
    "perfetto_document",
    "write_perfetto",
    "validate_perfetto",
]

_US = 1e6  # seconds -> microseconds (the trace-event timestamp unit)

#: stable color names per event kind (Chrome trace-viewer palette)
_COLORS = {
    "compute": "thread_state_running",
    "delay": "thread_state_runnable",
    "send": "thread_state_iowait",
    "recv": "thread_state_sleeping",
    "wait": "thread_state_unknown",
    "collective": "rail_animation",
}


def trace_to_events(trace: Trace, include_flows: bool = True) -> list[dict]:
    """Convert a simulation trace to trace-event dicts (virtual clock)."""
    events: list[dict] = []
    for rank in range(trace.nprocs):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": rank,
                "tid": 0,
                "args": {"name": "program order"},
            }
        )
    completion_tracks = {ev.proc for ev in trace.events if ev.nonblocking}
    for rank in sorted(completion_tracks):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": rank,
                "tid": 1,
                "args": {"name": "kernel completions"},
            }
        )
    for ev in trace.events:
        args = {"eid": ev.eid, "host_cost": ev.host_cost}
        if ev.nbytes:
            args["nbytes"] = ev.nbytes
        if ev.coll_id is not None:
            args["coll_id"] = ev.coll_id
        if ev.deps:
            args["deps"] = list(ev.deps)
        record = {
            "ph": "X",
            "name": ev.kind,
            "cat": ev.kind,
            "pid": ev.proc,
            "tid": 1 if ev.nonblocking else 0,
            "ts": ev.start * _US,
            "dur": max(0.0, (ev.end - ev.start) * _US),
            "args": args,
        }
        color = _COLORS.get(ev.kind)
        if color is not None:
            record["cname"] = color
        events.append(record)
        if include_flows:
            for dep in ev.deps:
                src = trace.events[dep]
                events.append(
                    {
                        "ph": "s",
                        "name": "dep",
                        "cat": "dep",
                        "id": f"{dep}->{ev.eid}",
                        "pid": src.proc,
                        "tid": 1 if src.nonblocking else 0,
                        "ts": src.end * _US,
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "name": "dep",
                        "cat": "dep",
                        "id": f"{dep}->{ev.eid}",
                        "pid": ev.proc,
                        "tid": 1 if ev.nonblocking else 0,
                        "ts": ev.end * _US,
                    }
                )
    return events


def spans_to_events(spans: list[Span], pid: int = 0) -> list[dict]:
    """Convert host-side spans to trace-event dicts (host wall clock).

    Timestamps are rebased to the earliest span so the host timeline
    starts near zero like the virtual one.
    """
    if not spans:
        return []
    base = min(sp.host_start for sp in spans)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": "simulator (host clock)"},
        }
    ]
    for sp in spans:
        args = dict(sp.attrs)
        if sp.virtual_duration is not None:
            args["virtual_s"] = sp.virtual_duration
        events.append(
            {
                "ph": "X",
                "name": sp.name,
                "cat": "host",
                "pid": pid,
                "tid": 0,
                "ts": (sp.host_start - base) * _US,
                "dur": sp.host_duration * _US,
                "args": args,
            }
        )
    return events


def perfetto_document(
    trace: Trace | None = None,
    spans: list[Span] | None = None,
    meta: dict | None = None,
) -> dict:
    """Assemble the exportable trace-event JSON document."""
    events: list[dict] = []
    if trace is not None:
        events.extend(trace_to_events(trace))
    if spans:
        host_pid = trace.nprocs if trace is not None else 0
        events.extend(spans_to_events(spans, pid=host_pid))
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if meta:
        doc["otherData"] = dict(meta)
    return doc


def write_perfetto(
    path: str | Path,
    trace: Trace | None = None,
    spans: list[Span] | None = None,
    meta: dict | None = None,
) -> dict:
    """Validate and write the export; returns the document.

    The write is atomic (tmp + fsync + rename): a crash mid-export can
    never leave a truncated, unopenable trace under the final name.
    """
    doc = perfetto_document(trace, spans, meta)
    validate_perfetto(doc)
    with atomic_write(path) as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return doc


def validate_perfetto(doc: object) -> None:
    """Check *doc* against the trace-event JSON schema; raise ValueError.

    Covers the subset we emit: a ``traceEvents`` list of dicts, each
    with a phase, numeric finite timestamps where required, and the
    per-phase mandatory fields (``dur`` for "X", ``id`` for flows,
    paired "s"/"f" ids).
    """
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("perfetto document must be a dict with a 'traceEvents' list")
    flow_starts: set = set()
    flow_ends: set = set()
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}]: not an object")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "M", "s", "t", "f", "C", "i"):
            raise ValueError(f"traceEvents[{i}]: unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"traceEvents[{i}]: missing event name")
        if not isinstance(ev.get("pid"), int):
            raise ValueError(f"traceEvents[{i}]: missing integer pid")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
                raise ValueError(f"traceEvents[{i}]: bad timestamp {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                raise ValueError(f"traceEvents[{i}]: 'X' event needs a finite dur, got {dur!r}")
        if ph in ("s", "t", "f"):
            if "id" not in ev:
                raise ValueError(f"traceEvents[{i}]: flow event needs an id")
            (flow_starts if ph == "s" else flow_ends).add(ev["id"])
    dangling = flow_starts.symmetric_difference(flow_ends)
    if dangling:
        raise ValueError(f"unpaired flow event ids: {sorted(dangling)[:5]}")
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"perfetto document is not JSON-serializable: {exc}")
