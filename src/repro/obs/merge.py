"""Fuse per-worker telemetry capsules into one campaign-level picture.

ScalAna's lesson (PAPERS.md) is that per-process performance data only
becomes diagnosable once it is fused into a single program-wide view.
This module is that fusion layer for campaigns: given the
:class:`~repro.obs.capsule.TelemetryCapsule` stream a ``--jobs N``
campaign journals, it produces

* **one merged Perfetto timeline** — one Perfetto "process" (track
  group) per worker OS process, one "thread" (track) per run executed
  on that worker, every span rebased from the worker's private
  ``perf_counter`` epoch onto the shared wall clock (the capsule's
  ``wall_start``/``perf_start`` anchor) so concurrent workers line up
  the way they actually overlapped;
* **aggregate campaign metrics** — counters summed across workers,
  gauges last-write, histograms merged from their raw observations
  (capsules carry ``samples(include_raw=True)`` precisely so merged
  percentiles are exact, not summary-of-summaries approximations).

The merged document passes :func:`repro.obs.perfetto.validate_perfetto`
and is written atomically — the same contracts the single-process
exporter holds to.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..util.atomic_io import atomic_write
from .capsule import TelemetryCapsule
from .metrics import MetricsRegistry
from .perfetto import validate_perfetto

__all__ = [
    "merge_capsules",
    "aggregate_metrics",
    "write_merged_perfetto",
    "format_campaign_timeline",
]

_US = 1e6  # seconds -> microseconds


def merge_capsules(
    capsules: list[TelemetryCapsule], meta: dict | None = None
) -> dict:
    """Build the merged Perfetto trace-event document.

    Workers become Perfetto processes (pid = worker pid), runs become
    threads within their worker, ordered by start time.  Timestamps are
    rebased to the earliest capture's wall clock, so ``ts`` 0 is the
    first run's start and overlap between workers is faithful.
    """
    if not capsules:
        raise ValueError("no telemetry capsules to merge")
    events: list[dict] = []
    if capsules:
        base_wall = min(cap.wall_start for cap in capsules)
        by_worker: dict[int, list[TelemetryCapsule]] = {}
        for cap in capsules:
            by_worker.setdefault(cap.worker, []).append(cap)
        for worker in sorted(by_worker):
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": worker,
                    "tid": 0,
                    "args": {"name": f"worker {worker}"},
                }
            )
            runs = sorted(by_worker[worker], key=lambda c: (c.wall_start, c.run_id))
            for tid, cap in enumerate(runs):
                label = f"run {cap.run_id}"
                if cap.outcome:
                    label += f" [{cap.outcome}]"
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": worker,
                        "tid": tid,
                        "args": {"name": label},
                    }
                )
                rebase = cap.wall_start - base_wall - cap.perf_start
                for sp in cap.span_objects():
                    args = dict(sp.attrs)
                    args["run_id"] = cap.run_id
                    if sp.virtual_duration is not None:
                        args["virtual_s"] = sp.virtual_duration
                    events.append(
                        {
                            "ph": "X",
                            "name": sp.name,
                            "cat": "capsule",
                            "pid": worker,
                            "tid": tid,
                            "ts": max(0.0, (sp.host_start + rebase) * _US),
                            "dur": sp.host_duration * _US,
                            "args": args,
                        }
                    )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    other = {
        "merged_capsules": len(capsules),
        "workers": len({cap.worker for cap in capsules}),
    }
    if meta:
        other.update(meta)
    doc["otherData"] = other
    return doc


def aggregate_metrics(capsules: list[TelemetryCapsule]) -> list[dict]:
    """Merge every capsule's metric samples into one snapshot.

    Counters sum, gauges take the last capsule's value (capsule order),
    histograms concatenate raw observations — so the merged summary is
    what a single-process campaign would have recorded.
    """
    registry = MetricsRegistry()
    registry.enable()
    for cap in capsules:
        registry.restore(cap.metrics)
    return registry.samples()


def write_merged_perfetto(
    path: str | Path,
    capsules: list[TelemetryCapsule],
    meta: dict | None = None,
) -> dict:
    """Validate and atomically write the merged timeline; returns it."""
    doc = merge_capsules(capsules, meta=meta)
    validate_perfetto(doc)
    with atomic_write(path) as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return doc


def format_campaign_timeline(capsules: list[TelemetryCapsule]) -> str:
    """Human-readable per-run timeline table for ``repro inspect``."""
    if not capsules:
        return "no telemetry capsules"
    base = min(cap.wall_start for cap in capsules)
    rows = []
    for cap in sorted(capsules, key=lambda c: (c.wall_start, c.run_id)):
        host = sum(sp.host_duration for sp in cap.root_spans())
        events = (cap.stats or {}).get("total_events", "")
        rows.append(
            (
                cap.run_id,
                str(cap.worker),
                f"{cap.wall_start - base:.3f}",
                f"{host * 1e3:.1f}",
                f"{cap.elapsed:.6g}" if cap.elapsed is not None else "-",
                str(events),
                cap.outcome or "-",
            )
        )
    headers = ("run", "worker", "start (s)", "host (ms)", "virtual (s)", "events", "outcome")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))
    ]
    lines = ["Campaign timeline (merged capsules)"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    return "\n".join(lines)
