"""Dual-clock span tracing: what the simulator costs vs what it predicts.

A :class:`Span` records two clocks for one region of pipeline work:

* **host time** — wall-clock seconds the simulator process itself spent
  (``time.perf_counter``), i.e. what a run costs *us*;
* **virtual time** — the simulated target's clock interval the region
  covered (set by the instrumented code via :meth:`Span.set_virtual`),
  i.e. what the run predicts the *target* costs.

The module-level :data:`TRACER` is shared by every instrumented layer
(kernel, workflow, compiler, measurement) and is **disabled by
default**: ``TRACER.span(...)`` then returns a cached no-op context
manager, so instrumentation adds one attribute test to uninstrumented
runs.  The CLI's ``profile`` subcommand enables it around a run and
renders or exports the recorded spans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "TRACER", "format_spans"]


@dataclass
class Span:
    """One traced region of work, on both clocks."""

    sid: int
    name: str
    parent: int | None  # sid of the enclosing span, if any
    host_start: float  # perf_counter at entry
    host_end: float = 0.0  # perf_counter at exit (0 while open)
    virtual_start: float | None = None
    virtual_end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def host_duration(self) -> float:
        return max(0.0, self.host_end - self.host_start)

    @property
    def virtual_duration(self) -> float | None:
        if self.virtual_start is None or self.virtual_end is None:
            return None
        return self.virtual_end - self.virtual_start

    def set(self, **attrs) -> None:
        """Attach key/value annotations to the span."""
        self.attrs.update(attrs)

    def set_virtual(self, start: float, end: float) -> None:
        """Record the simulated virtual-time interval this span covered."""
        self.virtual_start = start
        self.virtual_end = end


class _NoopSpan:
    """Shared do-nothing span/context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        pass

    def set_virtual(self, start, end):
        pass


_NOOP = _NoopSpan()


class _Recording:
    """Context manager that opens/closes one real span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span.sid)
        return self._span

    def __exit__(self, *exc):
        self._span.host_end = time.perf_counter()
        stack = self._tracer._stack
        if stack and stack[-1] == self._span.sid:
            stack.pop()
        return False


class Tracer:
    """A span recorder; use the process-wide :data:`TRACER` unless isolating."""

    def __init__(self):
        self.enabled = False
        self.spans: list[Span] = []
        self._stack: list[int] = []

    def span(self, name: str, **attrs):
        """Context manager for one region; no-op while the tracer is disabled."""
        if not self.enabled:
            return _NOOP
        sp = Span(
            sid=len(self.spans),
            name=name,
            parent=self._stack[-1] if self._stack else None,
            host_start=time.perf_counter(),
            attrs=attrs,
        )
        self.spans.append(sp)
        return _Recording(self, sp)

    def enable(self, reset: bool = True) -> None:
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()


#: The process-wide tracer all instrumented layers report to.
TRACER = Tracer()


def format_spans(spans: list[Span], title: str = "Pipeline spans") -> str:
    """Render spans as an indented dual-clock table."""
    depth: dict[int, int] = {}
    for sp in spans:
        depth[sp.sid] = depth[sp.parent] + 1 if sp.parent is not None else 0
    rows = []
    for sp in spans:
        vdur = sp.virtual_duration
        attrs = " ".join(f"{k}={v}" for k, v in sp.attrs.items())
        rows.append(
            (
                "  " * depth[sp.sid] + sp.name,
                f"{sp.host_duration * 1e3:.2f}",
                f"{vdur:.6f}" if vdur is not None else "-",
                attrs,
            )
        )
    headers = ("span", "host (ms)", "virtual (s)", "attributes")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
              for i in range(4)]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    return "\n".join(lines)
