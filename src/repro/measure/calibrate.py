"""Task-time measurement: run the timer-instrumented program (Fig. 2).

"The simplest approach, and the one we use in this paper, is to measure
task times (specifically, the w_i) for one or a few selected problem
sizes and number of processors, and then use the symbolic scaling
functions derived by the compiler to estimate the delay values for
other problem sizes and number of processors." (Sec. 3.3)

The measurement run executes on the *ground-truth* machine model (the
paper runs it on the real parallel system), so the extracted ``w_i``
absorb that configuration's cache behaviour, noise, and the timer
overhead — faithfully reproducing the approximation sources the paper
analyzes in Sec. 4.2.  The same run collects the branch profile used to
eliminate data-dependent branches statistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.timers import generate_instrumented
from ..ir.interp import BranchProfile, MeasurementCollector, make_factory
from ..ir.nodes import Program
from ..machine import MachineParams
from ..obs.logging import get_logger
from ..obs.spans import TRACER
from ..sim.engine import ExecMode, Simulator

__all__ = ["Calibration", "measure_wparams"]

_log = get_logger("measure")


@dataclass
class Calibration:
    """Result of one measurement run."""

    program: str
    inputs: dict[str, float]
    nprocs: int
    machine: str
    wparams: dict[str, float] = field(default_factory=dict)
    profile: BranchProfile = field(default_factory=BranchProfile)
    elapsed: float = 0.0  # instrumented run's (simulated) wall time

    def __str__(self):
        ws = ", ".join(f"{k}={v:.3e}" for k, v in sorted(self.wparams.items()))
        return (
            f"calibration of {self.program} at {self.inputs} on {self.nprocs} procs "
            f"({self.machine}): {ws}"
        )


def measure_wparams(
    program: Program,
    inputs: dict[str, float],
    nprocs: int,
    machine: MachineParams,
    seed: int = 0,
) -> Calibration:
    """Measure the per-iteration task-time coefficients of *program*.

    Runs the timer-instrumented version on the ground-truth machine at
    the given calibration configuration and returns the pooled
    ``w_<task>`` coefficients plus the observed branch profile.
    """
    _log.info(
        "calibration run: program=%s machine=%s nprocs=%d seed=%d inputs=%s",
        program.name, machine.name, nprocs, seed, dict(inputs),
    )
    with TRACER.span(
        "measure.calibrate", program=program.name, nprocs=nprocs, seed=seed
    ) as span:
        instrumented = generate_instrumented(program)
        collector = MeasurementCollector()
        profile = BranchProfile()
        factory = make_factory(instrumented, inputs, collector=collector, profile=profile)
        # calibration is pinned interpreted: the timer-instrumented run
        # feeds a MeasurementCollector, which can never lower — a global
        # REPRO_BACKEND=compiled must not abort ground-truth measurement
        result = Simulator(
            nprocs, factory, machine, mode=ExecMode.MEASURED, seed=seed,
            backend="interpreted",
        ).run()
        span.set_virtual(0.0, result.elapsed)
        span.set(wparams=len(collector.params()))
    return Calibration(
        program=program.name,
        inputs=dict(inputs),
        nprocs=nprocs,
        machine=machine.name,
        wparams=collector.params(),
        profile=profile,
        elapsed=result.elapsed,
    )
