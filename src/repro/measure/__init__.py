"""Task-time measurement and parameter-file handling (Fig. 2)."""

from .calibrate import Calibration, measure_wparams
from .params_io import load_params, save_params

__all__ = ["Calibration", "measure_wparams", "save_params", "load_params"]
