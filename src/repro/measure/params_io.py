"""Parameter-file I/O: persist measured w_i coefficients.

"The output of the timer version can be directly provided as input to
the delay version of the code" (Sec. 3.3).  In the paper this is a
file of w_i values; here a small JSON document that also records the
calibration configuration for provenance.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..util.atomic_io import atomic_write_text
from .calibrate import Calibration

__all__ = ["save_params", "load_params"]

_FORMAT_VERSION = 1


def save_params(cal: Calibration, path: str | Path) -> None:
    """Write a calibration's parameters (and provenance) to *path*."""
    doc = {
        "format": _FORMAT_VERSION,
        "program": cal.program,
        "machine": cal.machine,
        "nprocs": cal.nprocs,
        "inputs": cal.inputs,
        "wparams": cal.wparams,
    }
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_params(path: str | Path) -> dict[str, float]:
    """Read the w_i parameters back from *path*."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != _FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported parameter file format {doc.get('format')!r}")
    wparams = doc.get("wparams")
    if not isinstance(wparams, dict):
        raise ValueError(f"{path}: malformed parameter file (no wparams)")
    return {str(k): float(v) for k, v in wparams.items()}
