"""Content-addressed result store: memoize runs across campaigns.

The serving layer (:mod:`repro.serve`) treats a simulation run as a
pure function of ``(request, execution context)``: the request is a
:class:`repro.api.RunRequest` (identity = ``content_hash()``), the
context is everything else that shapes the numbers — machine,
budgets, calibration policy, retry policy — captured by
:meth:`repro.api.CampaignRequest.context_hash`.  This module persists
that function's graph:

``<base>/store/<ctx_hash>/<run_id>.json``
    one completed :class:`repro.api.RunResult` document per file,
    written with :func:`repro.util.atomic_io.atomic_write` so a crash
    mid-put can never leave a torn entry under the final name.

``<base>/index.jsonl``
    an append-only operation journal (``put`` / ``touch`` / ``evict``
    / ``counters`` records).  ``put``s are fsynced; ``touch``es are
    O_APPEND without fsync — losing recency hints in a crash only
    degrades LRU accuracy, never correctness.  On load the journal is
    reconciled against the filesystem: entry files are the source of
    truth, the journal only contributes ordering and counters, and a
    torn final line is dropped (see :func:`~repro.util.atomic_io.read_jsonl`).
    The journal is *compacted* — atomically rewritten as one ``put``
    record per live entry (in LRU order) plus a trailing ``counters``
    record — on :meth:`ResultStore.close` and whenever it outgrows a
    small multiple of the live entry count, so a busy server's stream
    of touch records never makes the journal (or the next startup's
    replay) grow without bound.

``<base>/warm/<wkey>.json``
    warm-start calibrations — the expensive front half of the Fig. 2
    pipeline (measurement run + branch profile) keyed by the hash of
    ``(app, machine, calib_nprocs, calib_inputs, seed)``, exactly the
    tuple :meth:`repro.workflow.pipeline.ModelingWorkflow.prime`
    demands the caller vouch for.

``<base>/warm/kernel-<fingerprint>.json``
    warm-start compiled kernels — the generated per-program module
    source emitted by :mod:`repro.kernel.lower`, content-addressed by
    the program IR fingerprint.  A warm load skips lowering entirely
    (``repro serve`` and campaign ``--resume`` reuse these); like
    calibrations they are tiny and never evicted.

``<base>/work/``
    scratch directories for in-flight server batches (not managed
    here; the server creates and removes them).

Eviction is LRU over a byte budget (``max_bytes``): a put that pushes
the store over budget evicts least-recently-*used* entries (gets count
as use) until it fits.  Warm calibrations are tiny and never evicted.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from pathlib import Path

from .api import canonical_json, content_hash
from .ir.interp import BranchProfile
from .measure import Calibration
from .obs.logging import get_logger
from .util.atomic_io import append_jsonl, atomic_write, read_jsonl

__all__ = [
    "ResultStore",
    "StoreStats",
    "scan_store",
    "warm_calibration_key",
    "save_warm_calibration",
    "load_warm_calibration",
    "save_warm_kernel",
    "load_warm_kernel",
    "STORE_DIR_NAME",
    "WARM_DIR_NAME",
    "WORK_DIR_NAME",
    "INDEX_NAME",
]

_log = get_logger("store")

STORE_DIR_NAME = "store"
WARM_DIR_NAME = "warm"
WORK_DIR_NAME = "work"
INDEX_NAME = "index.jsonl"


def _entry_rel(ctx_hash: str, run_id: str) -> str:
    return f"{ctx_hash}/{run_id}.json"


class StoreStats:
    """Mutable hit/miss/byte counters, rendered by ``stats()``."""

    __slots__ = ("hits", "misses", "puts", "evictions")

    def __init__(self, hits: int = 0, misses: int = 0, puts: int = 0, evictions: int = 0):
        self.hits = hits
        self.misses = misses
        self.puts = puts
        self.evictions = evictions

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


class ResultStore:
    """Persistent, crash-consistent, LRU-bounded run-result cache.

    Thread-safe: the server's asyncio handlers and its executor thread
    share one instance.  All mutation happens under one lock; entry
    files themselves are written atomically, so concurrent *processes*
    pointed at the same directory stay readable too (they may disagree
    about recency, never about content).
    """

    #: journal records tolerated beyond ``4 × live entries`` before an
    #: in-line compaction; class attribute so tests can shrink it
    COMPACT_MIN_OPS = 4096

    def __init__(self, base_dir: str | Path, max_bytes: int | None = None):
        self.base = Path(base_dir)
        self.store_dir = self.base / STORE_DIR_NAME
        self.warm_dir = self.base / WARM_DIR_NAME
        self.work_dir = self.base / WORK_DIR_NAME
        self.index_path = self.base / INDEX_NAME
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: rel path -> size in bytes, in least-recently-used-first order
        self._entries: OrderedDict[str, int] = OrderedDict()
        self._bytes = 0
        self._journal_ops = 0  # records currently in index.jsonl
        self.counters = StoreStats()
        for d in (self.store_dir, self.warm_dir, self.work_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._load()

    # -- load / reconcile ----------------------------------------------------
    def _load(self) -> None:
        order: OrderedDict[str, None] = OrderedDict()
        if self.index_path.exists():
            for rec in read_jsonl(self.index_path):
                self._journal_ops += 1
                op = rec.get("op")
                rel = rec.get("entry")
                if op in ("put", "touch") and isinstance(rel, str):
                    order.pop(rel, None)
                    order[rel] = None  # most recent use last
                elif op == "evict" and isinstance(rel, str):
                    order.pop(rel, None)
                elif op == "counters":
                    self.counters = StoreStats(
                        hits=int(rec.get("hits", 0)),
                        misses=int(rec.get("misses", 0)),
                        puts=int(rec.get("puts", 0)),
                        evictions=int(rec.get("evictions", 0)),
                    )
        # filesystem is the source of truth for existence and size
        on_disk: dict[str, int] = {}
        for path in sorted(self.store_dir.glob("*/*.json")):
            rel = f"{path.parent.name}/{path.name}"
            try:
                on_disk[rel] = path.stat().st_size
            except OSError:  # pragma: no cover - raced unlink
                continue
        for rel in order:
            if rel in on_disk:
                self._entries[rel] = on_disk.pop(rel)
        for rel, size in on_disk.items():  # present but unjournaled (torn index)
            self._entries[rel] = size
        self._bytes = sum(self._entries.values())

    # -- the cache protocol --------------------------------------------------
    def get(self, ctx_hash: str, run_id: str) -> dict | None:
        """Return the stored result document, or ``None`` on a miss."""
        rel = _entry_rel(ctx_hash, run_id)
        with self._lock:
            if rel not in self._entries:
                self.counters.misses += 1
                return None
            path = self.store_dir / rel
            try:
                doc = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                # entry vanished or is foreign-corrupt: treat as a miss
                self._forget(rel)
                self.counters.misses += 1
                return None
            self._entries.move_to_end(rel)
            self.counters.hits += 1
            # recency hint only — no fsync, a lost touch costs nothing
            try:
                self._journal({"op": "touch", "entry": rel}, fsync=False)
            except OSError:  # pragma: no cover - read-only store
                pass
            return doc

    def contains(self, ctx_hash: str, run_id: str) -> bool:
        """Membership test that moves no LRU state and counts nothing."""
        with self._lock:
            return _entry_rel(ctx_hash, run_id) in self._entries

    def put(self, ctx_hash: str, run_id: str, doc: dict) -> Path:
        """Durably store one result document; returns its path.

        Re-putting an existing entry rewrites it in place (the bytes
        are canonically identical for a deterministic engine) and
        refreshes its recency.
        """
        rel = _entry_rel(ctx_hash, run_id)
        path = self.store_dir / rel
        text = canonical_json(doc)
        with self._lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            with atomic_write(path) as fh:
                fh.write(text)
            size = len(text.encode())
            if rel in self._entries:
                self._bytes -= self._entries.pop(rel)
            self._entries[rel] = size
            self._bytes += size
            self.counters.puts += 1
            self._journal({"op": "put", "entry": rel, "bytes": size})
            self._evict_over_budget()
        return path

    def _forget(self, rel: str) -> None:
        size = self._entries.pop(rel, None)
        if size is not None:
            self._bytes -= size

    # -- the index journal ---------------------------------------------------
    def _journal(self, rec: dict, fsync: bool = True) -> None:
        # caller holds the lock
        append_jsonl(self.index_path, rec, fsync=fsync)
        self._journal_ops += 1
        if self._journal_ops >= max(self.COMPACT_MIN_OPS,
                                    4 * (len(self._entries) + 1)):
            self._compact_locked()

    def _compact_locked(self) -> None:
        """Atomically rewrite the journal as its minimal equivalent.

        One ``put`` record per live entry in LRU order (preserving
        recency), then the counters — exactly what ``_load`` and
        :func:`scan_store` would distill the full history down to.
        Best-effort: on read-only media the oversized journal is kept
        rather than failing the operation that triggered compaction.
        """
        recs = [{"op": "put", "entry": rel, "bytes": size}
                for rel, size in self._entries.items()]
        tail: dict = {"op": "counters", "ts": time.time()}
        tail.update(self.counters.to_dict())
        recs.append(tail)
        try:
            with atomic_write(self.index_path) as fh:
                for rec in recs:
                    fh.write(json.dumps(
                        rec, sort_keys=True, separators=(",", ":")) + "\n")
        except OSError:  # pragma: no cover - read-only store
            return
        self._journal_ops = len(recs)

    def _evict_over_budget(self) -> None:
        # caller holds the lock
        if self.max_bytes is None:
            return
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            rel, size = next(iter(self._entries.items()))
            self._entries.pop(rel)
            self._bytes -= size
            (self.store_dir / rel).unlink(missing_ok=True)
            self.counters.evictions += 1
            self._journal({"op": "evict", "entry": rel})
            _log.info("evicted %s (%d bytes) over %d-byte budget", rel, size, self.max_bytes)

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        """Live statistics (entries, bytes, counters)."""
        with self._lock:
            out = {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "contexts": len({rel.split("/", 1)[0] for rel in self._entries}),
                "warm_calibrations": sum(
                    1 for p in self.warm_dir.glob("*.json")
                    if not p.name.startswith("kernel-")),
                "warm_kernels": sum(1 for _ in self.warm_dir.glob("kernel-*.json")),
            }
            out.update(self.counters.to_dict())
            return out

    def close(self) -> None:
        """Compact the journal, persisting counters for a restart."""
        with self._lock:
            self._compact_locked()


def scan_store(base_dir: str | Path) -> dict | None:
    """Non-mutating statistics for ``repro inspect`` on a store directory.

    Returns ``None`` when *base_dir* holds no store (no ``store/``
    subdirectory and no index journal).  Never writes: counters come
    from the last ``counters`` record in the index journal plus the
    operations after it, entries and bytes from the filesystem.
    """
    base = Path(base_dir)
    store_dir = base / STORE_DIR_NAME
    index_path = base / INDEX_NAME
    if not store_dir.is_dir() and not index_path.exists():
        return None
    entries = 0
    nbytes = 0
    contexts = set()
    if store_dir.is_dir():
        for path in store_dir.glob("*/*.json"):
            try:
                nbytes += path.stat().st_size
            except OSError:  # pragma: no cover - raced unlink
                continue
            entries += 1
            contexts.add(path.parent.name)
    stats = StoreStats()
    if index_path.exists():
        for rec in read_jsonl(index_path):
            op = rec.get("op")
            if op == "counters":
                stats = StoreStats(
                    hits=int(rec.get("hits", 0)),
                    misses=int(rec.get("misses", 0)),
                    puts=int(rec.get("puts", 0)),
                    evictions=int(rec.get("evictions", 0)),
                )
            elif op == "evict":
                stats.evictions += 1
            elif op == "put":
                stats.puts += 1
            elif op == "touch":
                stats.hits += 1
    warm = base / WARM_DIR_NAME
    return {
        "entries": entries,
        "bytes": nbytes,
        "contexts": len(contexts),
        "warm_calibrations": sum(
            1 for p in warm.glob("*.json")
            if not p.name.startswith("kernel-")) if warm.is_dir() else 0,
        "warm_kernels": sum(1 for _ in warm.glob("kernel-*.json")) if warm.is_dir() else 0,
        **stats.to_dict(),
    }


# -- warm-start calibrations ------------------------------------------------

def warm_calibration_key(
    *,
    app: str,
    machine: str,
    calib_nprocs: int,
    calib_inputs: dict[str, float],
    seed: int,
) -> str:
    """Content hash of everything a calibration run depends on.

    This is exactly the tuple
    :meth:`~repro.workflow.pipeline.ModelingWorkflow.prime` requires
    the caller to vouch for: same app, machine, calibration
    configuration and seed → bit-identical calibration (the engine is
    deterministic), so the cache can never serve a stale front half.
    """
    return content_hash(
        {
            "kind": "warm-calibration",
            "app": app,
            "machine": machine,
            "calib_nprocs": int(calib_nprocs),
            "calib_inputs": {str(k): v for k, v in sorted(calib_inputs.items())},
            "seed": int(seed),
        }
    )


def save_warm_calibration(warm_dir: str | Path, wkey: str, cal: Calibration) -> Path:
    """Atomically persist *cal* under *warm_dir*/``<wkey>.json``.

    A concurrent saver with the same key writes identical bytes (the
    engine is deterministic), so the last rename winning is harmless.
    """
    warm = Path(warm_dir)
    warm.mkdir(parents=True, exist_ok=True)
    path = warm / f"{wkey}.json"
    doc = {
        "schema_version": 1,
        "kind": "warm-calibration",
        "program": cal.program,
        "inputs": dict(cal.inputs),
        "nprocs": cal.nprocs,
        "machine": cal.machine,
        "wparams": dict(cal.wparams),
        "profile": cal.profile.to_dict(),
        "elapsed": cal.elapsed,
    }
    with atomic_write(path) as fh:
        fh.write(canonical_json(doc))
    return path


def load_warm_calibration(
    warm_dir: str | Path, wkey: str, program: str | None = None
) -> Calibration | None:
    """Load a stored calibration, or ``None`` when absent or unusable.

    *program*, when given, cross-checks the entry against the app it
    is about to prime — a hash collision or hand-edited file must
    degrade to a cold start, never a silently wrong model.
    """
    path = Path(warm_dir) / f"{wkey}.json"
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        _log.warning("unusable warm calibration %s: %s", path, exc)
        return None
    if program is not None and doc.get("program") != program:
        _log.warning(
            "warm calibration %s is for %r, wanted %r; ignoring",
            path, doc.get("program"), program,
        )
        return None
    try:
        return Calibration(
            program=doc["program"],
            inputs={str(k): float(v) for k, v in doc["inputs"].items()},
            nprocs=int(doc["nprocs"]),
            machine=doc["machine"],
            wparams={str(k): float(v) for k, v in doc["wparams"].items()},
            profile=BranchProfile.from_dict(doc.get("profile", {})),
            elapsed=float(doc.get("elapsed", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        _log.warning("malformed warm calibration %s: %s", path, exc)
        return None


# -- warm-start compiled kernels --------------------------------------------

def save_warm_kernel(
    warm_dir: str | Path, *, program: str, fingerprint: str, source: str
) -> Path:
    """Atomically persist one generated kernel module's source.

    Keyed purely by the program IR *fingerprint*: the generated module
    is a deterministic function of the IR, so concurrent savers write
    identical bytes and the last rename winning is harmless.
    """
    warm = Path(warm_dir)
    warm.mkdir(parents=True, exist_ok=True)
    path = warm / f"kernel-{fingerprint}.json"
    doc = {
        "schema_version": 1,
        "kind": "warm-kernel",
        "program": program,
        "fingerprint": fingerprint,
        "source": source,
    }
    with atomic_write(path) as fh:
        fh.write(canonical_json(doc))
    return path


def load_warm_kernel(warm_dir: str | Path, fingerprint: str) -> str | None:
    """Load a stored kernel module's source, or ``None`` when absent.

    Returns the raw source text; callers hand it to
    :func:`repro.kernel.load_kernel_source`, which re-validates the
    embedded ``FINGERPRINT``/entry points — a corrupt entry degrades to
    a cold re-lower, never a wrong kernel.
    """
    path = Path(warm_dir) / f"kernel-{fingerprint}.json"
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        _log.warning("unusable warm kernel %s: %s", path, exc)
        return None
    source = doc.get("source")
    if doc.get("fingerprint") != fingerprint or not isinstance(source, str):
        _log.warning("warm kernel %s does not match its key; ignoring", path)
        return None
    return source
