"""Simulation-as-a-service: an asyncio HTTP/JSON front end on the store.

The paper's workflow is interactive at heart — Sec. 5 sweeps
configurations and asks *what-if* questions against the compiled
model, and the answer to any given question never changes: the engine
is deterministic under a fixed seed, so a run is a pure function of
``(request, execution context)``.  This module turns that purity into
a service: a long-lived process that answers campaign grids and
single what-if queries, deduplicating every run against the
content-addressed :class:`repro.store.ResultStore` so each distinct
question is simulated exactly once, ever.

Stdlib only, by design: the server is ``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 request parser (``Content-Length`` bodies,
``Connection: close``), the client is ``http.client``.  No new
dependencies.

Endpoints (all JSON, documents from :mod:`repro.api`):

``GET /healthz``
    liveness: ``{"status": "ok"}``.
``GET /v1/stats``
    store statistics (entries, bytes, hit/miss/eviction counters) and
    server counters (requests, in-flight, rejected).
``GET /v1/result/<ctx_hash>/<run_id>``
    one cached :class:`~repro.api.RunResult`, or 404.
``POST /v1/run``
    one what-if query: a ``run_request`` document, optionally wrapped
    as ``{"run": {...}, "machine": ..., "calib_procs": ...,
    "max_events": ..., ...}`` to pin the execution context.  Returns
    ``{"result": <run_result>, "cached": bool, "context": <hash>}``.
``POST /v1/campaign``
    a full campaign: either a typed ``campaign_request`` document
    (has ``"runs"``) or a declarative grid dict exactly as ``repro
    campaign`` accepts (``apps`` × ``modes`` × ``nprocs`` × ...).
    Cache hits are answered from the store; misses are batched onto
    one supervised :class:`~repro.workflow.campaign.CampaignRunner`
    (``--jobs`` fan-out) and stored as they complete.  Returns a
    :class:`~repro.api.CampaignResult`.

Admission control (:class:`TenantGovernor`) applies the budget-
watchdog idea at the front door: each tenant (``X-Tenant`` header) has
an in-flight cap and an events-per-second token bucket; a request over
either quota is rejected with 429 and a precise ``Retry-After``.
Event charges are post-paid — the currency is the same
``total_events`` the :class:`~repro.sim.budget.BudgetGuard` meters.

Results cached: only deterministic terminal outcomes (``ok``,
``deadlock``, ``budget``).  Wall-clock and environment-dependent
failures (``timeout``, ``error``, ``hung``, ``poison``) are returned
but never stored — re-asking re-runs them.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import shutil
import signal
import threading
import time
import urllib.parse
import uuid
from pathlib import Path

from .api import (
    ApiError,
    CampaignRequest,
    CampaignResult,
    RunRequest,
    RunResult,
    canonical_json,
)
from .obs.logging import get_logger
from .store import ResultStore
from .workflow.campaign import CampaignConfig, CampaignRunner, expand_grid

__all__ = [
    "TenantGovernor",
    "SimulationService",
    "ReproServer",
    "ServiceClient",
    "run_server",
    "CACHEABLE_OUTCOMES",
]

_log = get_logger("serve")

#: outcomes deterministic under a fixed seed — the only ones stored
CACHEABLE_OUTCOMES = ("ok", "deadlock", "budget")

_MAX_BODY = 8 * 1024 * 1024  # 8 MiB request-body cap
_MAX_HEADER = 64 * 1024


# -- admission control ---------------------------------------------------------


class TenantGovernor:
    """Per-tenant admission control: in-flight cap + event-rate bucket.

    The token bucket is denominated in simulator events (the unit the
    per-run :class:`~repro.sim.budget.BudgetGuard` meters) and charged
    *post-paid*: a request is admitted whenever the bucket is
    non-negative, and the events it actually cost are deducted when it
    finishes.  A tenant that just burned a huge campaign therefore
    drives its bucket deep below zero and is refused — with a
    ``retry_after`` telling it exactly when the refill clears the
    debt — until the bucket recovers.  Thread-safe; *clock* is
    injectable for tests.
    """

    def __init__(self, max_inflight: int = 4,
                 events_per_second: float | None = None,
                 burst_seconds: float = 10.0,
                 clock=time.monotonic):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if events_per_second is not None and events_per_second <= 0:
            raise ValueError(
                f"events_per_second must be positive, got {events_per_second}")
        self.max_inflight = max_inflight
        self.rate = events_per_second
        self.burst = (events_per_second or 0) * burst_seconds
        self.clock = clock
        self._lock = threading.Lock()
        self._inflight: dict[str, int] = {}
        self._tokens: dict[str, float] = {}
        self._stamp: dict[str, float] = {}
        self.rejected = 0

    def _refill(self, tenant: str) -> float:
        now = self.clock()
        tokens = self._tokens.get(tenant, self.burst)
        last = self._stamp.get(tenant, now)
        tokens = min(self.burst, tokens + (now - last) * (self.rate or 0))
        self._tokens[tenant] = tokens
        self._stamp[tenant] = now
        return tokens

    def admit(self, tenant: str) -> None:
        """Admit one request or raise ``ApiError`` (429, retry_after)."""
        with self._lock:
            inflight = self._inflight.get(tenant, 0)
            if inflight >= self.max_inflight:
                self.rejected += 1
                raise ApiError(
                    "quota_inflight",
                    f"tenant {tenant!r} already has {inflight} requests in "
                    f"flight (cap {self.max_inflight})",
                    http_status=429, retry_after=1.0,
                )
            if self.rate is not None:
                tokens = self._refill(tenant)
                if tokens < 0:
                    self.rejected += 1
                    wait = -tokens / self.rate
                    raise ApiError(
                        "quota_events",
                        f"tenant {tenant!r} is {-tokens:.0f} events over its "
                        f"{self.rate:g}/s budget",
                        http_status=429, retry_after=round(wait, 3),
                    )
            self._inflight[tenant] = inflight + 1

    def charge(self, tenant: str, events: int) -> None:
        """Post-paid deduction of the events a request actually cost."""
        if self.rate is None or events <= 0:
            return
        with self._lock:
            self._refill(tenant)
            self._tokens[tenant] -= events

    def release(self, tenant: str) -> None:
        with self._lock:
            count = self._inflight.get(tenant, 1) - 1
            if count <= 0:
                self._inflight.pop(tenant, None)
            else:
                self._inflight[tenant] = count


# -- the service core ----------------------------------------------------------


class SimulationService:
    """Store-backed execution of API requests (transport-agnostic).

    One instance is shared by every connection; batch execution is
    serialized by a lock (the batch itself fans out across *jobs*
    worker processes), while cache hits are answered concurrently.
    """

    def __init__(self, store: ResultStore, *, jobs: int = 1,
                 governor: TenantGovernor | None = None,
                 resolver=None, default_machine: str = "IBM-SP",
                 default_calib_procs: int | None = 2,
                 backend: str | None = None):
        self.store = store
        self.jobs = jobs
        self.governor = governor
        self.resolver = resolver
        self.default_machine = default_machine
        self.default_calib_procs = default_calib_procs
        # execution policy, not identity: backend never feeds the
        # context hash — stored results are byte-identical either way
        self.backend = backend
        self._exec_lock = threading.Lock()
        self.requests = 0
        self.executed_runs = 0
        self.executed_events = 0

    # -- request handling (called from worker threads) -----------------------
    def handle_run(self, doc: dict) -> dict:
        """Serve one what-if query; returns the response document."""
        if not isinstance(doc, dict):
            raise ApiError("bad_request", "request body must be a JSON object")
        if "run" in doc:
            run = RunRequest.from_json(doc["run"])
            context = {k: doc[k] for k in (
                "machine", "calib_procs", "max_events", "max_virtual_time",
                "max_wall_seconds", "retry_policy") if k in doc}
        else:
            run = RunRequest.from_json(doc)
            context = {}
        request = CampaignRequest.from_json({
            "kind": "campaign_request",
            "name": "adhoc",
            "machine": context.get("machine", self.default_machine),
            "calib_procs": context.get("calib_procs", self.default_calib_procs),
            "runs": [run.to_json()],
            **{k: v for k, v in context.items()
               if k not in ("machine", "calib_procs")},
        })
        result = self.serve_campaign(request)
        return {
            "result": result.results[0].to_json(),
            "cached": result.hits == 1,
            "context": request.context_hash(),
            "executed_events": result.executed_events,
        }

    def handle_campaign(self, doc: dict) -> dict:
        """Serve a typed campaign request or a declarative grid."""
        if not isinstance(doc, dict):
            raise ApiError("bad_request", "request body must be a JSON object")
        if "runs" in doc:
            request = CampaignRequest.from_json(doc)
        else:  # a grid, exactly as `repro campaign` reads it
            from .workflow.campaign import CampaignError

            grid = dict(doc)
            grid.pop("schema_version", None)
            grid.pop("kind", None)
            grid.setdefault("name", "grid")
            try:
                request = expand_grid(grid).to_request()
            except CampaignError as exc:
                raise ApiError("bad_request", str(exc)) from None
        return self.serve_campaign(request).to_json()

    # -- the dedupe-then-execute core ----------------------------------------
    def serve_campaign(self, request: CampaignRequest) -> CampaignResult:
        ctx = request.context_hash()
        results: dict[str, RunResult] = {}
        missing: list[RunRequest] = []
        for run in request.runs:
            doc = self.store.get(ctx, run.run_id)
            if doc is not None:
                results[run.run_id] = RunResult.from_json(doc)
            else:
                missing.append(run)
        hits = len(results)
        executed_events = 0
        if missing:
            executed_events = self._execute_batch(request, ctx, missing, results)
        ordered = tuple(results[r.run_id] for r in request.runs)
        return CampaignResult(
            name=request.name,
            config_hash=request.content_hash(),
            hits=hits,
            misses=len(missing),
            executed_events=executed_events,
            results=ordered,
        )

    def _execute_batch(self, request: CampaignRequest, ctx: str,
                       missing: list[RunRequest],
                       results: dict[str, RunResult]) -> int:
        """Run the cache-miss cells on one supervised campaign runner."""
        batch = CampaignConfig.from_request(
            request,
            calib_from_spec=True,  # purity: calibrate from each run's own spec
            warm_dir=str(self.store.warm_dir),
            backend=self.backend,
        )
        batch.specs = list(missing)
        workdir = self.store.work_dir / f"batch-{uuid.uuid4().hex[:12]}"
        executed_events = 0

        def on_progress(spec, rec, done, total):
            nonlocal executed_events
            res = RunResult.from_record(rec)
            results[spec.run_id] = res
            executed_events += res.events
            if rec.outcome in CACHEABLE_OUTCOMES:
                self.store.put(ctx, spec.run_id, res.to_json())

        with self._exec_lock:
            workdir.mkdir(parents=True, exist_ok=True)
            try:
                runner = CampaignRunner(
                    batch, out_dir=workdir, resolver=self.resolver,
                    progress=on_progress,
                )
                runner.execute(jobs=self.jobs)
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
        self.executed_runs += len(missing)
        self.executed_events += executed_events
        _log.info(
            "batch %s: %d runs executed (%d events) under context %s",
            request.name, len(missing), executed_events, ctx,
        )
        return executed_events

    def stats(self) -> dict:
        doc = {
            "store": self.store.stats(),
            "server": {
                "requests": self.requests,
                "executed_runs": self.executed_runs,
                "executed_events": self.executed_events,
            },
        }
        if self.governor is not None:
            doc["server"]["rejected"] = self.governor.rejected
        return doc


# -- the HTTP server -----------------------------------------------------------


def _response(status: int, doc: dict, extra_headers: dict | None = None) -> bytes:
    body = (canonical_json(doc) + "\n").encode()
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed", 413: "Payload Too Large",
              429: "Too Many Requests", 500: "Internal Server Error"}
    lines = [
        f"HTTP/1.1 {status} {reason.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for key, value in (extra_headers or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request: (method, path, headers, body)."""
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEADER:
        raise ApiError("bad_request", "request header too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ApiError("bad_request", f"malformed request line {lines[0]!r}") from None
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise ApiError(
            "bad_request", f"invalid Content-Length {raw_length!r}") from None
    if length < 0:
        raise ApiError(
            "bad_request", f"invalid Content-Length {raw_length!r}")
    if length > _MAX_BODY:
        raise ApiError("payload_too_large", f"request body {length} bytes "
                       f"exceeds cap {_MAX_BODY}", http_status=413)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


class ReproServer:
    """The asyncio HTTP front end binding a :class:`SimulationService`."""

    def __init__(self, service: SimulationService, host: str = "127.0.0.1",
                 port: int = 8642):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._inflight: set[asyncio.Task] = set()
        self.stopping = asyncio.Event()
        self.loop: asyncio.AbstractEventLoop | None = None  # set on start

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inflight.add(task)
        try:
            try:
                method, target, headers, body = await _read_request(reader)
            except ApiError as exc:
                writer.write(_response(exc.http_status, exc.to_json()))
                return
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    ConnectionError):
                return
            writer.write(await self._dispatch(method, target, headers, body))
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # client went away mid-reply
                pass
            if task is not None:
                self._inflight.discard(task)

    async def _dispatch(self, method: str, target: str, headers: dict,
                        body: bytes) -> bytes:
        self.service.requests += 1
        path = urllib.parse.urlsplit(target).path
        tenant = headers.get("x-tenant", "default")
        try:
            if method == "GET":
                return self._dispatch_get(path)
            if method != "POST":
                raise ApiError("method_not_allowed",
                               f"{method} not supported", http_status=405)
            if path == "/v1/run":
                handler = self.service.handle_run
            elif path == "/v1/campaign":
                handler = self.service.handle_campaign
            else:
                raise ApiError("not_found", f"no route {path!r}", http_status=404)
            try:
                doc = json.loads(body.decode() or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ApiError("bad_request",
                               f"request body is not valid JSON: {exc}") from None
            governor = self.service.governor
            if governor is not None:
                governor.admit(tenant)
            events = 0
            try:
                # to_thread: batches simulate for seconds; never block the loop
                out = await asyncio.to_thread(handler, doc)
                # post-paid charge from this request's own result — a
                # global-counter delta would bill concurrently admitted
                # tenants for each other's batches
                events = int(out.get("executed_events") or 0)
            finally:
                if governor is not None:
                    governor.charge(tenant, events)
                    governor.release(tenant)
            return _response(200, out)
        except ApiError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = f"{exc.retry_after:g}"
            return _response(exc.http_status, exc.to_json(), extra)
        except Exception as exc:  # noqa: BLE001 - the server must not die
            _log.exception("internal error serving %s %s", method, path)
            return _response(500, ApiError(
                "internal", f"{type(exc).__name__}: {exc}",
                http_status=500).to_json())

    def _dispatch_get(self, path: str) -> bytes:
        if path == "/healthz":
            return _response(200, {"status": "ok"})
        if path == "/v1/stats":
            return _response(200, self.service.stats())
        if path.startswith("/v1/result/"):
            parts = path[len("/v1/result/"):].split("/")
            if len(parts) != 2 or not all(parts):
                raise ApiError(
                    "bad_request",
                    "expected /v1/result/<context_hash>/<run_id>")
            doc = self.store_get(*parts)
            if doc is None:
                raise ApiError("not_found",
                               f"no stored result {parts[0]}/{parts[1]}",
                               http_status=404)
            return _response(200, doc)
        raise ApiError("not_found", f"no route {path!r}", http_status=404)

    def store_get(self, ctx: str, run_id: str) -> dict | None:
        return self.service.store.get(ctx, run_id)

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, flush the store."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._inflight if t is not asyncio.current_task()]
        if pending:
            _log.info("draining %d in-flight request(s)", len(pending))
            await asyncio.gather(*pending, return_exceptions=True)
        self.service.store.close()


async def _serve_async(server: ReproServer, ready=None) -> int:
    loop = asyncio.get_running_loop()
    server.loop = loop
    await server.start()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.stopping.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    print(f"listening on http://{server.host}:{server.port}", flush=True)
    if ready is not None:
        ready(server)
    await server.stopping.wait()
    _log.info("shutdown signal received; draining")
    await server.shutdown()
    print("shutdown complete", flush=True)
    return 0


def run_server(store_dir: str | Path, *, host: str = "127.0.0.1",
               port: int = 8642, jobs: int = 1, max_bytes: int | None = None,
               max_inflight: int = 4, events_per_second: float | None = None,
               resolver=None, ready=None, backend: str | None = None) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, then exit 0.

    *ready*, when given, is called with the started :class:`ReproServer`
    once the socket is bound (tests use it to learn an ephemeral port).
    """
    store = ResultStore(store_dir, max_bytes=max_bytes)
    governor = TenantGovernor(
        max_inflight=max_inflight, events_per_second=events_per_second)
    service = SimulationService(
        store, jobs=jobs, governor=governor, resolver=resolver, backend=backend)
    server = ReproServer(service, host=host, port=port)
    return asyncio.run(_serve_async(server, ready=ready))


# -- the client ----------------------------------------------------------------


class ServiceClient:
    """Minimal blocking client (``http.client``) for tests and ``repro query``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 tenant: str | None = None, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    def _request(self, method: str, path: str, doc: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        headers = {"Content-Type": "application/json"}
        if self.tenant:
            headers["X-Tenant"] = self.tenant
        body = canonical_json(doc).encode() if doc is not None else None
        try:
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read().decode()
            status = resp.status
            retry_after = resp.getheader("Retry-After")
        finally:
            conn.close()
        try:
            out = json.loads(payload)
        except json.JSONDecodeError:
            raise ApiError("bad_response",
                           f"server sent non-JSON ({status}): {payload[:200]!r}",
                           http_status=status) from None
        if status >= 400:
            err = ApiError.from_json(out, http_status=status)
            if err.retry_after is None and retry_after:
                err.retry_after = float(retry_after)
            raise err
        return out

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def result(self, context: str, run_id: str) -> RunResult:
        return RunResult.from_json(
            self._request("GET", f"/v1/result/{context}/{run_id}"))

    def run(self, request: RunRequest, **context) -> dict:
        doc = {"run": request.to_json(), **context} if context else request.to_json()
        return self._request("POST", "/v1/run", doc)

    def campaign(self, request: CampaignRequest | dict) -> CampaignResult:
        doc = request.to_json() if isinstance(request, CampaignRequest) else request
        return CampaignResult.from_json(self._request("POST", "/v1/campaign", doc))
