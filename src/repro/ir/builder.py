"""A fluent builder for writing IR programs readably.

The benchmark applications in :mod:`repro.apps` construct their IR with
this builder; nesting uses context managers::

    b = ProgramBuilder("shift", params=("N",))
    b.array("D", size=ceil_div(N, P) * N)
    b.assign("b", ceil_div(N, P))
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=(N - 2) * 8, array="D")
    with b.if_(Lt(myid, P - 1)):
        b.recv(source=myid + 1, nbytes=(N - 2) * 8, array="D")
    b.compute("loop_nest", work=..., ops_per_iter=4, arrays=("A", "D"))
    prog = b.build()
"""

from __future__ import annotations

from contextlib import contextmanager

from ..symbolic import Var
from ..symbolic.expr import ExprLike
from .nodes import (
    ArrayAssign,
    ArrayDecl,
    Assign,
    CollectiveStmt,
    CompBlock,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    RecvStmt,
    SendStmt,
    Stmt,
    WaitAllStmt,
)

__all__ = ["ProgramBuilder", "myid", "P"]

#: The implicit rank / size variables, for convenience in app code.
myid = Var("myid")
P = Var("P")


class ProgramBuilder:
    """Accumulates statements into a :class:`Program`."""

    def __init__(self, name: str, params: tuple[str, ...] = ()):
        self.name = name
        self.params = tuple(params)
        self._arrays: dict[str, ArrayDecl] = {}
        self._body: list[Stmt] = []
        self._stack: list[list[Stmt]] = [self._body]
        self._meta: dict = {}
        self._built = False

    # -- declarations ---------------------------------------------------------
    def array(self, name: str, size: ExprLike, itemsize: int = 8, materialize: bool = False) -> None:
        """Declare a per-process array of *size* elements."""
        from ..symbolic import as_expr

        if name in self._arrays:
            raise ValueError(f"array {name!r} declared twice")
        self._arrays[name] = ArrayDecl(name, as_expr(size), itemsize, materialize)

    def meta(self, **kwargs) -> None:
        """Attach metadata (e.g. branch-elimination directives)."""
        self._meta.update(kwargs)

    # -- statements ------------------------------------------------------------
    def _emit(self, stmt: Stmt) -> Stmt:
        self._stack[-1].append(stmt)
        return stmt

    def assign(self, var: str, expr: ExprLike) -> Stmt:
        """Emit ``var = expr``."""
        return self._emit(Assign(var, expr))

    def array_assign(self, array: str, kernel, reads=frozenset(), work: ExprLike = 0) -> Stmt:
        """Emit computation of a small materialized array."""
        return self._emit(ArrayAssign(array, kernel, reads, work))

    def compute(
        self,
        name: str,
        work: ExprLike,
        ops_per_iter: float = 1.0,
        arrays: tuple[str, ...] = (),
        reads=frozenset(),
        writes=frozenset(),
        kernel=None,
    ) -> Stmt:
        """Emit a computational task (one STG compute node)."""
        return self._emit(
            CompBlock(name, work, ops_per_iter, arrays, reads, writes, kernel)
        )

    def send(self, dest: ExprLike, nbytes: ExprLike, tag: int = 0, array: str | None = None) -> Stmt:
        """Emit a point-to-point send."""
        return self._emit(SendStmt(dest, nbytes, tag, array))

    def recv(self, source: ExprLike, nbytes: ExprLike, tag: int = 0, array: str | None = None) -> Stmt:
        """Emit a point-to-point receive."""
        return self._emit(RecvStmt(source, nbytes, tag, array))

    def isend(self, dest: ExprLike, nbytes: ExprLike, tag: int = 0,
              array: str | None = None, handle: str = "req") -> Stmt:
        """Emit a non-blocking send binding its handle to *handle*."""
        return self._emit(IsendStmt(dest, nbytes, tag, array, handle))

    def irecv(self, source: ExprLike, nbytes: ExprLike, tag: int = 0,
              array: str | None = None, handle: str = "req") -> Stmt:
        """Emit a non-blocking receive binding its handle to *handle*."""
        return self._emit(IrecvStmt(source, nbytes, tag, array, handle))

    def waitall(self, *handles: str) -> Stmt:
        """Emit a wait for the named handles (unbound names are skipped)."""
        return self._emit(WaitAllStmt(tuple(handles)))

    def barrier(self) -> Stmt:
        return self._emit(CollectiveStmt("barrier"))

    def bcast(self, nbytes: ExprLike, root: ExprLike = 0, array: str | None = None) -> Stmt:
        return self._emit(CollectiveStmt("bcast", nbytes, root, array))

    def allreduce(
        self,
        nbytes: ExprLike,
        contrib: ExprLike | None = None,
        result_var: str | None = None,
        reduce_kind: str = "sum",
    ) -> Stmt:
        return self._emit(
            CollectiveStmt(
                "allreduce", nbytes, contrib=contrib, result_var=result_var, reduce_kind=reduce_kind
            )
        )

    def reduce(
        self,
        nbytes: ExprLike,
        root: ExprLike = 0,
        contrib: ExprLike | None = None,
        result_var: str | None = None,
        reduce_kind: str = "sum",
    ) -> Stmt:
        return self._emit(
            CollectiveStmt(
                "reduce", nbytes, root, contrib=contrib, result_var=result_var, reduce_kind=reduce_kind
            )
        )

    def collective(self, op: str, nbytes: ExprLike = 0, root: ExprLike = 0, array: str | None = None) -> Stmt:
        """Emit an arbitrary collective (gather/scatter/alltoall ...)."""
        return self._emit(CollectiveStmt(op, nbytes, root, array))

    # -- structure ---------------------------------------------------------------
    @contextmanager
    def loop(self, var: str, lo: ExprLike, hi: ExprLike):
        """``for var = lo, hi`` (inclusive bounds) around the with-block."""
        body: list[Stmt] = []
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()
        self._emit(For(var, lo, hi, body))

    @contextmanager
    def if_(self, cond, data_dependent: bool = False):
        """``if cond`` around the with-block (attach ``else_`` right after)."""
        then: list[Stmt] = []
        self._stack.append(then)
        try:
            yield
        finally:
            self._stack.pop()
        self._emit(If(cond, then, [], data_dependent))

    @contextmanager
    def else_(self):
        """Else-arm for the immediately preceding ``if_``."""
        prev = self._stack[-1][-1] if self._stack[-1] else None
        if not isinstance(prev, If):
            raise ValueError("else_() must immediately follow an if_()")
        if getattr(prev, "_else_attached", False):
            raise ValueError("this if_() already has an else arm")
        prev._else_attached = True
        body: list[Stmt] = []
        self._stack.append(body)
        try:
            yield
        finally:
            self._stack.pop()
        prev.orelse = body

    # -- completion -----------------------------------------------------------------
    def build(self, validate: bool = True) -> Program:
        """Finalize: number statements, validate, return the Program."""
        if self._built:
            raise RuntimeError("build() called twice on the same builder")
        if len(self._stack) != 1:
            raise RuntimeError("unclosed loop()/if_() context")
        self._built = True
        prog = Program(self.name, self.params, self._arrays, self._body, self._meta)
        prog.number()
        if validate:
            prog.validate()
        return prog
