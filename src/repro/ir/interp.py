"""IR interpreter: executes a program on the simulation kernel.

One interpreter executes every program version:

* the original program under ``ExecMode.MEASURED`` (ground truth) or
  ``ExecMode.DE`` (the unoptimized direct-execution simulator);
* the timer-instrumented program under ``MEASURED`` (the parameter-
  measurement run of Fig. 2), feeding a :class:`MeasurementCollector`;
* the compiler-simplified program (delays + dummy buffer) under ``DE``
  pricing — which *is* MPI-SIM-AM.

The interpreter yields :mod:`repro.sim.requests` objects, so a
:class:`repro.sim.Simulator` can run one interpreter instance per rank.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

import numpy as np

from ..sim.requests import (
    Alloc,
    Collective,
    Compute,
    Delay,
    Irecv,
    Isend,
    Now,
    Recv,
    Request,
    Send,
    Wait,
)
from .nodes import (
    AllocStmt,
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    DelayStmt,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    ReadParams,
    RecvStmt,
    SendStmt,
    StartTimer,
    Stmt,
    StopTimer,
    WaitAllStmt,
)

__all__ = ["MeasurementCollector", "BranchProfile", "make_factory", "InterpreterError"]

_REDUCE_FNS = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
}


class InterpreterError(RuntimeError):
    """The program could not be executed (missing parameters, bad refs)."""


class MeasurementCollector:
    """Accumulates per-task elapsed time and work units across all ranks.

    The measured coefficient ``w_i = Σ elapsed / Σ work`` includes timer
    overhead and the calibration configuration's cache behaviour — the
    two approximation sources the paper discusses in Secs. 3.3 / 4.2.
    """

    def __init__(self):
        self._elapsed: dict[str, float] = defaultdict(float)
        self._work: dict[str, float] = defaultdict(float)
        self._samples: dict[str, int] = defaultdict(int)
        # per-sample rate statistics (Welford): n, mean, M2
        self._rate_acc: dict[str, list[float]] = defaultdict(lambda: [0.0, 0.0, 0.0])
        self._pending_work: dict[str, float] = defaultdict(float)

    def record_elapsed(self, task: str, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"negative elapsed time for {task!r}")
        self._elapsed[task] += dt
        self._samples[task] += 1
        work = self._pending_work.pop(task, 0.0)
        if work > 0:
            rate = dt / work
            acc = self._rate_acc[task]
            acc[0] += 1
            delta = rate - acc[1]
            acc[1] += delta / acc[0]
            acc[2] += delta * (rate - acc[1])

    def record_work(self, task: str, work: float) -> None:
        self._work[task] += work
        self._pending_work[task] += work

    def rate_stats(self, task: str) -> tuple[float, float, int]:
        """(mean, stddev, n) of the per-sample w rates for *task*.

        Exposes measurement *quality*: a large spread flags noisy or
        cache-regime-straddling samples before they are trusted for
        extrapolation (the paper's Sec. 4.2 concern, made inspectable).
        """
        n, mean, m2 = self._rate_acc.get(task, (0.0, 0.0, 0.0))
        n = int(n)
        if n == 0:
            raise InterpreterError(f"no paired samples recorded for task {task!r}")
        std = (m2 / (n - 1)) ** 0.5 if n > 1 else 0.0
        return mean, std, n

    def tasks(self) -> list[str]:
        return sorted(set(self._elapsed) | set(self._work))

    def w(self, task: str) -> float:
        """Per-iteration cost of *task* (seconds per work unit)."""
        work = self._work.get(task, 0.0)
        if work <= 0:
            raise InterpreterError(f"no work recorded for task {task!r}")
        return self._elapsed.get(task, 0.0) / work

    def params(self) -> dict[str, float]:
        """All measured coefficients, keyed by parameter name ``w_<task>``."""
        return {f"w_{t}": self.w(t) for t in self.tasks() if self._work.get(t, 0.0) > 0}

    def samples(self, task: str) -> int:
        return self._samples.get(task, 0)


class BranchProfile:
    """Taken/not-taken counts per branch statement (profiling support).

    The paper: "we can use profiling to estimate the branching
    probabilities of eliminated branches."
    """

    def __init__(self):
        self._counts: dict[int, list[int]] = defaultdict(lambda: [0, 0])

    def record(self, sid: int, taken: bool) -> None:
        c = self._counts[sid]
        c[1] += 1
        if taken:
            c[0] += 1

    def probability(self, sid: int, default: float = 0.5) -> float:
        """Fraction of executions in which branch *sid* was taken."""
        taken, total = self._counts.get(sid, (0, 0))
        if total == 0:
            return default
        return taken / total

    def observed(self, sid: int) -> bool:
        return self._counts.get(sid, (0, 0))[1] > 0

    def to_dict(self) -> dict[str, list[int]]:
        """JSON form: ``{statement id: [taken, total]}`` (warm start)."""
        return {str(sid): list(c) for sid, c in sorted(self._counts.items())}

    @classmethod
    def from_dict(cls, doc: dict) -> "BranchProfile":
        profile = cls()
        for sid, pair in doc.items():
            taken, total = pair
            profile._counts[int(sid)] = [int(taken), int(total)]
        return profile


def make_factory(
    program: Program,
    inputs: dict[str, float],
    wparams: dict[str, float] | None = None,
    collector: MeasurementCollector | None = None,
    profile: BranchProfile | None = None,
):
    """Build a ``factory(rank, size)`` for :class:`repro.sim.Simulator`.

    ``inputs`` binds the program's parameters; ``wparams`` supplies the
    measured task-time coefficients consumed by ``ReadParams`` (only
    needed for simplified programs); ``collector``/``profile`` receive
    measurements and branch statistics when given.
    """
    missing = set(program.params) - set(inputs)
    if missing:
        raise InterpreterError(f"{program.name}: missing input parameter(s) {sorted(missing)}")

    def factory(rank: int, size: int) -> Iterator[Request]:
        return _run(program, rank, size, inputs, wparams or {}, collector, profile)

    # Metadata for Simulator's backend resolution: the compiled backend
    # re-lowers the same program rather than wrapping this generator.
    factory._repro_program = program
    factory._repro_inputs = inputs
    factory._repro_wparams = wparams
    factory._repro_collector = collector
    factory._repro_profile = profile
    return factory


def _run(program, rank, size, inputs, wparams, collector, profile):
    env: dict = dict(inputs)
    env["myid"] = rank
    env["P"] = size
    arrays: dict[str, np.ndarray] = {}
    sizes: dict[str, int] = {}
    for decl in program.arrays.values():
        n = int(decl.size.evaluate(env))
        if n < 0:
            raise InterpreterError(f"array {decl.name!r} has negative size {n}")
        nbytes = n * decl.itemsize
        sizes[decl.name] = nbytes
        yield Alloc(decl.name, nbytes)
        if decl.materialize:
            arr = np.zeros(n)
            arrays[decl.name] = arr
            env[decl.name] = arr
    state = _State(program, rank, env, arrays, sizes, wparams, collector, profile)
    yield from _exec(program.body, state)


class _State:
    """Per-rank interpreter state shared across the statement walkers."""

    __slots__ = ("program", "rank", "env", "arrays", "sizes", "wparams",
                 "collector", "profile", "timers", "ws_cache")

    def __init__(self, program, rank, env, arrays, sizes, wparams, collector, profile):
        self.program = program
        self.rank = rank
        self.env = env
        self.arrays = arrays
        self.sizes = sizes
        self.wparams = wparams
        self.collector = collector
        self.profile = profile
        self.timers: dict[str, float] = {}
        self.ws_cache: dict[int, float] = {}


def _working_set(state: _State, block: CompBlock) -> float:
    ws = state.ws_cache.get(block.sid)
    if ws is None:
        try:
            ws = float(sum(state.sizes[a] for a in block.arrays))
        except KeyError as e:
            raise InterpreterError(
                f"task {block.name!r} references undeclared array {e.args[0]!r}"
            ) from None
        state.ws_cache[block.sid] = ws
    return ws


def _cfn(expr):
    """The compiled evaluator of *expr* (cached on the expression itself).

    Statements re-evaluate the same expression objects on every loop
    iteration and every rank; :meth:`repro.symbolic.Expr.compile` pays
    the tree walk once per expression instead.
    """
    try:
        return expr._compiled
    except AttributeError:
        return expr.compile()


def _exec(stmts: list[Stmt], state: _State):
    env = state.env
    for s in stmts:
        ty = type(s)
        if ty is Assign:
            env[s.var] = _cfn(s.expr)(env)
        elif ty is CompBlock:
            work = _cfn(s.work)(env)
            if work < 0:
                work = 0
            if s.kernel is not None:
                s.kernel(env, state.arrays)
            if work > 0:
                yield Compute(
                    ops=work * s.ops_per_iter,
                    working_set_bytes=_working_set(state, s),
                    task=s.name,
                )
            if state.collector is not None:
                state.collector.record_work(s.name, work)
        elif ty is For:
            lo = int(_cfn(s.lo)(env))
            hi = int(_cfn(s.hi)(env))
            body = s.body
            for i in range(lo, hi + 1):
                env[s.var] = i
                yield from _exec(body, state)
        elif ty is If:
            taken = bool(_cfn(s.cond)(env))
            if state.profile is not None:
                state.profile.record(s.profile_key, taken)
            yield from _exec(s.then if taken else s.orelse, state)
        elif ty is SendStmt:
            dest = int(_cfn(s.dest)(env))
            nbytes = int(_cfn(s.nbytes)(env))
            yield Send(dest=dest, nbytes=nbytes, tag=s.tag)
        elif ty is RecvStmt:
            source = int(_cfn(s.source)(env))
            nbytes = int(_cfn(s.nbytes)(env))
            yield Recv(source=source, tag=s.tag, nbytes_hint=nbytes)
        elif ty is IsendStmt:
            dest = int(_cfn(s.dest)(env))
            nbytes = int(_cfn(s.nbytes)(env))
            env[s.handle_var] = yield Isend(dest=dest, nbytes=nbytes, tag=s.tag)
        elif ty is IrecvStmt:
            source = int(_cfn(s.source)(env))
            nbytes = int(_cfn(s.nbytes)(env))
            env[s.handle_var] = yield Irecv(source=source, tag=s.tag, nbytes_hint=nbytes)
        elif ty is WaitAllStmt:
            handles = [env[v] for v in s.handle_vars if v in env]
            if handles:
                yield Wait(handles=tuple(handles))
            for v in s.handle_vars:
                env.pop(v, None)  # handles are single-use (MPI_REQUEST_NULL after wait)
        elif ty is CollectiveStmt:
            yield from _exec_collective(s, state)
        elif ty is DelayStmt:
            amount = _cfn(s.amount)(env)
            yield Delay(seconds=max(float(amount), 0.0), task=s.task)
        elif ty is ReadParams:
            yield from _exec_read_params(s, state)
        elif ty is StartTimer:
            t0 = yield Now(charge_timer=True)
            state.timers[s.task] = t0
        elif ty is StopTimer:
            try:
                t0 = state.timers.pop(s.task)
            except KeyError:
                raise InterpreterError(f"timer_stop({s.task!r}) without timer_start") from None
            t1 = yield Now(charge_timer=True)
            if state.collector is not None:
                state.collector.record_elapsed(s.task, t1 - t0)
        elif ty is ArrayAssign:
            if s.array not in state.arrays:
                raise InterpreterError(
                    f"ArrayAssign target {s.array!r} is not a materialized array"
                )
            s.kernel(env, state.arrays)
            work = _cfn(s.work)(env)
            if work > 0:
                yield Compute(ops=float(work), working_set_bytes=state.sizes[s.array])
        elif ty is AllocStmt:
            nbytes = int(_cfn(s.nbytes)(env))
            yield Alloc(s.name, nbytes)
            state.sizes[s.name] = nbytes
        else:
            raise InterpreterError(f"cannot execute statement of kind {ty.__name__}")


def _exec_collective(s: CollectiveStmt, state: _State):
    env = state.env
    nbytes = int(_cfn(s.nbytes)(env))
    root = int(_cfn(s.root)(env))
    contrib = _cfn(s.contrib)(env) if s.contrib is not None else None
    reduce_fn = _REDUCE_FNS[s.reduce_kind] if s.op in ("reduce", "allreduce") else None
    result = yield Collective(
        op=s.op, nbytes=nbytes, root=root, data=contrib, reduce_fn=reduce_fn
    )
    if s.result_var is not None:
        env[s.result_var] = result.data


def _exec_read_params(s: ReadParams, state: _State):
    env = state.env
    missing = [n for n in s.names if n not in state.wparams]
    if missing:
        raise InterpreterError(
            f"{state.program.name}: parameter file lacks {missing}; "
            "run the timer-instrumented version first (Fig. 2 workflow)"
        )
    payload = {n: state.wparams[n] for n in s.names} if state.rank == 0 else None
    result = yield Collective(op="bcast", nbytes=8 * len(s.names), root=0, data=payload)
    env.update(result.data)
