"""The message-passing program IR — the compiler's view of a benchmark.

This plays the role of dhpf's internal representation: a structured AST
with statement-level def/use information, symbolic loop bounds and
communication arguments.  The four benchmarks of the paper are written
in this IR (``repro.apps``); the static-task-graph synthesis
(``repro.stg``), program slicing (``repro.slicing``) and simplified-code
generation (``repro.codegen``) all operate on it; and the interpreter
(``repro.ir.interp``) executes any IR program — original, instrumented
or simplified — on the simulation kernel.

Statement kinds
---------------
``Assign``        scalar assignment (grid coordinates, block sizes ...)
``ArrayAssign``   small array computed by an attached Python kernel
                  (e.g. NAS SP's per-processor ``cell_size`` table)
``CompBlock``     a sequential computational task: symbolic iteration
                  count × constant ops/iteration, over named arrays
``For``           counted loop with symbolic inclusive bounds
``If``            branch; ``data_dependent`` marks conditions derived
                  from large-array values (Sweep3D's flux fixup)
``SendStmt`` / ``RecvStmt``  point-to-point communication
``CollectiveStmt``           collective communication
``DelayStmt``     generated: the simulator delay call (Sec. 2.2)
``ReadParams``    generated: read w_i parameters and broadcast them
``StartTimer`` / ``StopTimer``  generated: task-time instrumentation
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..symbolic import BoolExpr, Expr, as_bool_expr, as_expr
from ..symbolic.expr import ExprLike

__all__ = [
    "ArrayDecl",
    "Stmt",
    "Assign",
    "ArrayAssign",
    "CompBlock",
    "For",
    "If",
    "SendStmt",
    "RecvStmt",
    "IsendStmt",
    "IrecvStmt",
    "WaitAllStmt",
    "CollectiveStmt",
    "DelayStmt",
    "ReadParams",
    "StartTimer",
    "StopTimer",
    "AllocStmt",
    "Program",
    "BUILTIN_VARS",
    "walk",
    "IRValidationError",
]

#: Variables every process has implicitly (set by mpi_comm_rank/size).
BUILTIN_VARS = frozenset({"myid", "P"})


class IRValidationError(ValueError):
    """The program IR is malformed (undeclared names, bad structure ...)."""


@dataclass(frozen=True)
class ArrayDecl:
    """A program array.

    ``size`` is the per-process element count (symbolic: may involve
    ``myid``/``P``); ``itemsize`` the bytes per element.  ``materialize``
    marks small arrays whose *values* matter to parallel structure (loop
    bounds, communication arguments) and which the interpreter therefore
    backs with a real NumPy array; large data arrays are accounted for
    (memory) but never materialized — their values never influence
    timing, which is exactly the property the compiler exploits.
    """

    name: str
    size: Expr
    itemsize: int = 8
    materialize: bool = False

    def nbytes_expr(self) -> Expr:
        return self.size * self.itemsize


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base statement. ``sid`` is assigned by :meth:`Program.number`.

    ``origin`` links a statement in a *generated* program (instrumented
    or simplified) back to the statement it was copied from in the
    source program, so branch profiles and directives keyed on source
    statement ids apply across program versions.
    """

    sid: int = field(default=-1, init=False, compare=False)
    origin: int = field(default=-1, init=False, compare=False)

    @property
    def profile_key(self) -> int:
        """Stable identity across program versions (source sid)."""
        return self.origin if self.origin >= 0 else self.sid

    # def/use interface used by slicing and STG synthesis ------------------
    def reads(self) -> frozenset[str]:
        """Scalar variables and array names this statement reads."""
        return frozenset()

    def writes(self) -> frozenset[str]:
        """Scalar variables and array names this statement writes."""
        return frozenset()

    def children(self) -> tuple[list["Stmt"], ...]:
        """Nested statement lists (loops/branches)."""
        return ()

    def is_comm(self) -> bool:
        """Communication statements must survive simplification verbatim."""
        return False


@dataclass
class Assign(Stmt):
    """``var = expr`` over scalars (always cheap; candidate for slicing)."""

    var: str
    expr: Expr

    def __init__(self, var: str, expr: ExprLike):
        super().__init__()
        self.var = var
        self.expr = as_expr(expr)

    def reads(self):
        return self.expr.free_vars()

    def writes(self):
        return frozenset({self.var})


@dataclass
class ArrayAssign(Stmt):
    """Compute a small (materialized) array with an attached kernel.

    ``kernel(env, arrays)`` must fill ``arrays[array]``; ``reads_``
    declares its inputs (scalars and other arrays).  ``work`` prices the
    computation (usually negligible).
    """

    array: str
    kernel: Callable[[dict, dict], None]
    reads_: frozenset[str]
    work: Expr

    def __init__(self, array: str, kernel, reads: frozenset[str] | set[str], work: ExprLike = 0):
        super().__init__()
        self.array = array
        self.kernel = kernel
        self.reads_ = frozenset(reads)
        self.work = as_expr(work)

    def reads(self):
        return self.reads_ | self.work.free_vars()

    def writes(self):
        return frozenset({self.array})


@dataclass
class CompBlock(Stmt):
    """A sequential computational task (one STG compute node).

    ``work`` is the symbolic iteration count; ``ops_per_iter`` the
    abstract operations per iteration (the compiler's static estimate of
    the loop body).  ``arrays`` lists the arrays the task touches — the
    basis of the working-set estimate and of array liveness in slicing.
    ``kernel`` (optional) runs under direct execution and may write the
    scalars named in ``writes_`` (values that feed control flow or
    communication and which slicing may therefore need to retain).
    """

    name: str
    work: Expr
    ops_per_iter: float = 1.0
    arrays: tuple[str, ...] = ()
    reads_: frozenset[str] = frozenset()
    writes_: frozenset[str] = frozenset()
    kernel: Callable[[dict, dict], None] | None = None

    def __init__(
        self,
        name: str,
        work: ExprLike,
        ops_per_iter: float = 1.0,
        arrays: tuple[str, ...] = (),
        reads: frozenset[str] | set[str] = frozenset(),
        writes: frozenset[str] | set[str] = frozenset(),
        kernel=None,
    ):
        super().__init__()
        self.name = name
        self.work = as_expr(work)
        self.ops_per_iter = float(ops_per_iter)
        self.arrays = tuple(arrays)
        self.reads_ = frozenset(reads)
        self.writes_ = frozenset(writes)
        self.kernel = kernel

    def reads(self):
        return self.reads_ | self.work.free_vars() | frozenset(self.arrays)

    def writes(self):
        return self.writes_ | frozenset(self.arrays)


@dataclass
class For(Stmt):
    """Counted loop ``for var = lo, hi`` (inclusive, Fortran-style)."""

    var: str
    lo: Expr
    hi: Expr
    body: list[Stmt]

    def __init__(self, var: str, lo: ExprLike, hi: ExprLike, body: list[Stmt]):
        super().__init__()
        self.var = var
        self.lo = as_expr(lo)
        self.hi = as_expr(hi)
        self.body = body

    def reads(self):
        return self.lo.free_vars() | self.hi.free_vars()

    def writes(self):
        return frozenset({self.var})

    def children(self):
        return (self.body,)


@dataclass
class If(Stmt):
    """Two-armed branch.

    ``data_dependent`` marks conditions that (in the original program)
    test values of large arrays; the condensation pass may eliminate
    such branches statistically, weighting arm costs by the profiled
    ``taken`` probability (the paper's simpler approach), or per a user
    directive (the precise approach).
    """

    cond: BoolExpr
    then: list[Stmt]
    orelse: list[Stmt]
    data_dependent: bool = False

    def __init__(self, cond, then: list[Stmt], orelse: list[Stmt] | None = None, data_dependent: bool = False):
        super().__init__()
        self.cond = as_bool_expr(cond)
        self.then = then
        self.orelse = orelse if orelse is not None else []
        self.data_dependent = data_dependent

    def reads(self):
        return self.cond.free_vars()

    def children(self):
        return (self.then, self.orelse)


@dataclass
class SendStmt(Stmt):
    """Point-to-point send of ``nbytes`` (symbolic) to rank ``dest``."""

    dest: Expr
    nbytes: Expr
    tag: int = 0
    array: str | None = None  # the buffer array referenced by the call

    def __init__(self, dest: ExprLike, nbytes: ExprLike, tag: int = 0, array: str | None = None):
        super().__init__()
        self.dest = as_expr(dest)
        self.nbytes = as_expr(nbytes)
        self.tag = tag
        self.array = array

    def reads(self):
        r = self.dest.free_vars() | self.nbytes.free_vars()
        if self.array:
            r |= {self.array}
        return r

    def is_comm(self):
        return True


@dataclass
class RecvStmt(Stmt):
    """Point-to-point receive from rank ``source`` (symbolic)."""

    source: Expr
    nbytes: Expr
    tag: int = 0
    array: str | None = None

    def __init__(self, source: ExprLike, nbytes: ExprLike, tag: int = 0, array: str | None = None):
        super().__init__()
        self.source = as_expr(source)
        self.nbytes = as_expr(nbytes)
        self.tag = tag
        self.array = array

    def reads(self):
        return self.source.free_vars() | self.nbytes.free_vars()

    def writes(self):
        return frozenset({self.array}) if self.array else frozenset()

    def is_comm(self):
        return True


@dataclass
class IsendStmt(Stmt):
    """Non-blocking send; the handle is bound to ``handle_var``."""

    dest: Expr
    nbytes: Expr
    tag: int = 0
    array: str | None = None
    handle_var: str = "req"

    def __init__(self, dest: ExprLike, nbytes: ExprLike, tag: int = 0,
                 array: str | None = None, handle_var: str = "req"):
        super().__init__()
        self.dest = as_expr(dest)
        self.nbytes = as_expr(nbytes)
        self.tag = tag
        self.array = array
        self.handle_var = handle_var

    def reads(self):
        r = self.dest.free_vars() | self.nbytes.free_vars()
        if self.array:
            r |= {self.array}
        return r

    def writes(self):
        return frozenset({self.handle_var})

    def is_comm(self):
        return True


@dataclass
class IrecvStmt(Stmt):
    """Non-blocking receive; the handle is bound to ``handle_var``."""

    source: Expr
    nbytes: Expr
    tag: int = 0
    array: str | None = None
    handle_var: str = "req"

    def __init__(self, source: ExprLike, nbytes: ExprLike, tag: int = 0,
                 array: str | None = None, handle_var: str = "req"):
        super().__init__()
        self.source = as_expr(source)
        self.nbytes = as_expr(nbytes)
        self.tag = tag
        self.array = array
        self.handle_var = handle_var

    def reads(self):
        return self.source.free_vars() | self.nbytes.free_vars()

    def writes(self):
        out = {self.handle_var}
        if self.array:
            out.add(self.array)
        return frozenset(out)

    def is_comm(self):
        return True


@dataclass
class WaitAllStmt(Stmt):
    """Wait for the non-blocking operations bound to ``handle_vars``.

    Handle variables may legitimately be unbound on some ranks (a rank
    with no west neighbour never posted the west receive); unbound names
    are skipped, mirroring how generated MPI code waits on request
    arrays initialized to MPI_REQUEST_NULL.
    """

    handle_vars: tuple[str, ...]

    def __init__(self, handle_vars: tuple[str, ...]):
        super().__init__()
        self.handle_vars = tuple(handle_vars)

    def reads(self):
        # handle variables are deliberately NOT reported as reads: they may
        # be unbound on ranks whose guards skipped the post (MPI_REQUEST_NULL
        # semantics), and the static validator must not reject that
        return frozenset()

    def is_comm(self):
        return True


@dataclass
class CollectiveStmt(Stmt):
    """A collective operation.

    For reductions, ``contrib`` (an expression over scalars) is the
    local operand and ``result_var`` receives the combined value;
    ``reduce_kind`` picks the combiner.  Payload values never affect
    communication *pattern*, so they are not slicing criteria — but if a
    later retained statement reads ``result_var``, slicing will keep the
    producer of ``contrib``.
    """

    op: str
    nbytes: Expr
    root: Expr
    array: str | None = None
    contrib: Expr | None = None
    result_var: str | None = None
    reduce_kind: str = "sum"  # sum | max | min

    def __init__(
        self,
        op: str,
        nbytes: ExprLike = 0,
        root: ExprLike = 0,
        array: str | None = None,
        contrib: ExprLike | None = None,
        result_var: str | None = None,
        reduce_kind: str = "sum",
    ):
        super().__init__()
        self.op = op
        self.nbytes = as_expr(nbytes)
        self.root = as_expr(root)
        self.array = array
        self.contrib = as_expr(contrib) if contrib is not None else None
        self.result_var = result_var
        if reduce_kind not in ("sum", "max", "min"):
            raise IRValidationError(f"unknown reduce_kind {reduce_kind!r}")
        self.reduce_kind = reduce_kind

    def reads(self):
        r = self.nbytes.free_vars() | self.root.free_vars()
        if self.contrib is not None:
            r |= self.contrib.free_vars()
        if self.array:
            r |= {self.array}
        return r

    def writes(self):
        return frozenset({self.result_var}) if self.result_var else frozenset()

    def is_comm(self):
        return True


@dataclass
class DelayStmt(Stmt):
    """Generated: advance the clock by ``amount`` (a scaling function
    over retained variables and measured ``w_i`` parameters)."""

    amount: Expr
    task: str

    def __init__(self, amount: ExprLike, task: str):
        super().__init__()
        self.amount = as_expr(amount)
        self.task = task

    def reads(self):
        return self.amount.free_vars()


@dataclass
class ReadParams(Stmt):
    """Generated: rank 0 reads the named ``w_i`` parameters from the
    parameter file and broadcasts them (the paper's
    ``read_and_broadcast`` calls, Fig. 1(c))."""

    names: tuple[str, ...]

    def __init__(self, names: tuple[str, ...]):
        super().__init__()
        self.names = tuple(names)

    def writes(self):
        return frozenset(self.names)

    def is_comm(self):
        return True  # performs a broadcast


@dataclass
class StartTimer(Stmt):
    """Generated: start the instrumentation timer for ``task``."""

    task: str

    def __init__(self, task: str):
        super().__init__()
        self.task = task


@dataclass
class StopTimer(Stmt):
    """Generated: stop the instrumentation timer for ``task``."""

    task: str

    def __init__(self, task: str):
        super().__init__()
        self.task = task


@dataclass
class AllocStmt(Stmt):
    """Generated: allocate a named buffer of ``nbytes`` (symbolic) —
    the dummy communication buffer of the simplified program."""

    name: str
    nbytes: Expr

    def __init__(self, name: str, nbytes: ExprLike):
        super().__init__()
        self.name = name
        self.nbytes = as_expr(nbytes)

    def reads(self):
        return self.nbytes.free_vars()

    def writes(self):
        return frozenset({self.name})


# ---------------------------------------------------------------------------
# program container
# ---------------------------------------------------------------------------


def walk(stmts: list[Stmt]) -> Iterator[Stmt]:
    """Depth-first iteration over a statement list."""
    for s in stmts:
        yield s
        for block in s.children():
            yield from walk(block)


@dataclass
class Program:
    """A complete message-passing program.

    ``params`` are the input variables (problem size, iteration counts);
    ``myid`` and ``P`` are implicit.  ``arrays`` declare per-process
    data.  ``meta`` carries app-specific annotations (e.g. branch
    elimination directives).
    """

    name: str
    params: tuple[str, ...]
    arrays: dict[str, ArrayDecl]
    body: list[Stmt]
    meta: dict[str, Any] = field(default_factory=dict)

    def number(self) -> "Program":
        """Assign depth-first statement ids; returns self for chaining."""
        for i, s in enumerate(walk(self.body)):
            s.sid = i
        return self

    def statements(self) -> Iterator[Stmt]:
        """All statements, depth-first."""
        return walk(self.body)

    def find(self, sid: int) -> Stmt:
        for s in self.statements():
            if s.sid == sid:
                return s
        raise KeyError(f"no statement with sid {sid}")

    def comp_blocks(self) -> list[CompBlock]:
        return [s for s in self.statements() if isinstance(s, CompBlock)]

    def comm_stmts(self) -> list[Stmt]:
        return [s for s in self.statements() if s.is_comm()]

    def validate(self) -> None:
        """Check structural well-formedness; raises IRValidationError."""
        declared = set(self.arrays)
        defined = set(self.params) | BUILTIN_VARS

        def check_block(stmts: list[Stmt], scope: set[str]) -> set[str]:
            for s in stmts:
                arrays_touched = set()
                if isinstance(s, CompBlock):
                    arrays_touched = set(s.arrays)
                elif isinstance(s, (SendStmt, RecvStmt, CollectiveStmt)) and s.array:
                    arrays_touched = {s.array}
                elif isinstance(s, ArrayAssign):
                    arrays_touched = {s.array}
                # buffers introduced by AllocStmt (dummy_buf) live in scope
                missing_arrays = arrays_touched - declared - scope
                if missing_arrays:
                    raise IRValidationError(
                        f"{self.name}: statement references undeclared arrays {sorted(missing_arrays)}"
                    )
                undefined = (s.reads() - declared) - scope
                if undefined:
                    raise IRValidationError(
                        f"{self.name}: statement of kind {type(s).__name__} reads "
                        f"undefined variable(s) {sorted(undefined)}"
                    )
                if isinstance(s, For):
                    inner = set(scope)
                    inner.add(s.var)
                    check_block(s.body, inner)
                elif isinstance(s, If):
                    then_scope = check_block(s.then, set(scope))
                    else_scope = check_block(s.orelse, set(scope))
                    # conservatively, only names defined on both arms survive
                    scope |= then_scope & else_scope
                    continue
                else:
                    scope |= {w for w in s.writes() if w not in declared}
            return scope

        check_block(self.body, set(defined))

    def copy_shell(self, body: list[Stmt], arrays: dict[str, ArrayDecl] | None = None) -> "Program":
        """A new program with the same name/params but different body."""
        return Program(
            name=self.name,
            params=self.params,
            arrays=dict(self.arrays if arrays is None else arrays),
            body=body,
            meta=dict(self.meta),
        )
