"""Pretty-printer: renders IR programs as pseudo-Fortran/MPI text.

Used for debugging and for the documentation examples; also the easiest
way to eyeball what the simplifier did to a program (compare the
original and the generated code as in the paper's Fig. 1(a)/(c)).
"""

from __future__ import annotations

from .nodes import (
    AllocStmt,
    ArrayAssign,
    Assign,
    CollectiveStmt,
    CompBlock,
    DelayStmt,
    For,
    If,
    IrecvStmt,
    IsendStmt,
    Program,
    ReadParams,
    RecvStmt,
    SendStmt,
    StartTimer,
    Stmt,
    StopTimer,
    WaitAllStmt,
)

__all__ = ["format_program", "format_stmts"]


def format_program(prog: Program) -> str:
    """Render a whole program, declarations first."""
    lines = [f"program {prog.name}({', '.join(prog.params)})"]
    for decl in prog.arrays.values():
        mat = ", materialized" if decl.materialize else ""
        lines.append(f"  array {decl.name}[{decl.size}] x{decl.itemsize}B{mat}")
    lines.extend(format_stmts(prog.body, indent=1))
    lines.append("end")
    return "\n".join(lines)


def format_stmts(stmts: list[Stmt], indent: int = 0) -> list[str]:
    """Render a statement list as indented lines."""
    pad = "  " * indent
    out: list[str] = []
    for s in stmts:
        out.extend(_fmt(s, pad, indent))
    return out


def _fmt(s: Stmt, pad: str, indent: int) -> list[str]:
    if isinstance(s, Assign):
        return [f"{pad}{s.var} = {s.expr}"]
    if isinstance(s, ArrayAssign):
        return [f"{pad}{s.array}[:] = kernel({', '.join(sorted(s.reads_))})"]
    if isinstance(s, CompBlock):
        arrs = f" on {','.join(s.arrays)}" if s.arrays else ""
        return [f"{pad}compute {s.name}: {s.work} iters x {s.ops_per_iter} ops{arrs}"]
    if isinstance(s, For):
        out = [f"{pad}do {s.var} = {s.lo}, {s.hi}"]
        out.extend(format_stmts(s.body, indent + 1))
        out.append(f"{pad}enddo")
        return out
    if isinstance(s, If):
        tag = " [data-dependent]" if s.data_dependent else ""
        out = [f"{pad}if ({s.cond}) then{tag}"]
        out.extend(format_stmts(s.then, indent + 1))
        if s.orelse:
            out.append(f"{pad}else")
            out.extend(format_stmts(s.orelse, indent + 1))
        out.append(f"{pad}endif")
        return out
    if isinstance(s, SendStmt):
        buf = s.array or "<none>"
        return [f"{pad}SEND {buf}({s.nbytes} bytes) to {s.dest} tag {s.tag}"]
    if isinstance(s, RecvStmt):
        buf = s.array or "<none>"
        return [f"{pad}RECV {buf}({s.nbytes} bytes) from {s.source} tag {s.tag}"]
    if isinstance(s, IsendStmt):
        buf = s.array or "<none>"
        return [f"{pad}{s.handle_var} = ISEND {buf}({s.nbytes} bytes) to {s.dest} tag {s.tag}"]
    if isinstance(s, IrecvStmt):
        buf = s.array or "<none>"
        return [f"{pad}{s.handle_var} = IRECV {buf}({s.nbytes} bytes) from {s.source} tag {s.tag}"]
    if isinstance(s, WaitAllStmt):
        return [f"{pad}call mpi_waitall({', '.join(s.handle_vars)})"]
    if isinstance(s, CollectiveStmt):
        extra = ""
        if s.result_var:
            extra = f" -> {s.result_var} ({s.reduce_kind})"
        return [f"{pad}{s.op.upper()}({s.nbytes} bytes){extra}"]
    if isinstance(s, DelayStmt):
        return [f"{pad}call delay({s.amount})  ! task {s.task}"]
    if isinstance(s, ReadParams):
        return [f"{pad}call read_and_broadcast({', '.join(s.names)})"]
    if isinstance(s, StartTimer):
        return [f"{pad}call timer_start('{s.task}')"]
    if isinstance(s, StopTimer):
        return [f"{pad}call timer_stop('{s.task}')"]
    if isinstance(s, AllocStmt):
        return [f"{pad}allocate {s.name}({s.nbytes} bytes)"]
    return [f"{pad}<{type(s).__name__}>"]
