"""Interconnect topologies: hop-count-dependent message latency.

The paper's two platforms have structurally different interconnects —
the IBM SP's multistage switch (near-uniform latency) and the SGI
Origin 2000's hypercube-like NUMA fabric (latency grows with router
hops).  The base :class:`NetworkModel` treats latency as uniform; this
module supplies hop models so a machine can charge distance-dependent
latency instead, and the simulation kernel passes message endpoints
through for exactly that purpose.

Hop counts are computed on logical rank ids (the common modeling
simplification: process i on node i).
"""

from __future__ import annotations

import math

__all__ = ["hops", "TOPOLOGIES", "mean_hops"]


def _hops_crossbar(src: int, dst: int, nprocs: int) -> int:
    """Single-stage crossbar / idealized switch: one hop for everyone."""
    return 0 if src == dst else 1


def _hops_multistage(src: int, dst: int, nprocs: int) -> int:
    """Multistage (omega/butterfly) switch, as in the IBM SP: every
    remote message crosses ceil(log2 P) switch stages."""
    if src == dst:
        return 0
    return max(1, math.ceil(math.log2(max(nprocs, 2))))


def _hops_hypercube(src: int, dst: int, nprocs: int) -> int:
    """Hypercube routing distance: popcount of src xor dst (Origin-like)."""
    return bin(src ^ dst).count("1")


def _hops_torus2d(src: int, dst: int, nprocs: int) -> int:
    """2-D torus with near-square extents and wraparound routing."""
    if src == dst:
        return 0
    width = int(math.isqrt(nprocs))
    while nprocs % width != 0:
        width -= 1
    height = nprocs // width
    sx, sy = src % width, src // width
    dx, dy = dst % width, dst // width
    ddx = abs(sx - dx)
    ddy = abs(sy - dy)
    return min(ddx, width - ddx) + min(ddy, height - ddy)


TOPOLOGIES = {
    "crossbar": _hops_crossbar,
    "multistage": _hops_multistage,
    "hypercube": _hops_hypercube,
    "torus2d": _hops_torus2d,
}


def hops(kind: str, src: int, dst: int, nprocs: int) -> int:
    """Router hops between ranks *src* and *dst* on topology *kind*."""
    try:
        fn = TOPOLOGIES[kind]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGIES))
        raise KeyError(f"unknown topology {kind!r}; known: {known}") from None
    if not (0 <= src < nprocs and 0 <= dst < nprocs):
        raise ValueError(f"ranks ({src}, {dst}) out of range for {nprocs} processes")
    return fn(src, dst, nprocs)


def mean_hops(kind: str, nprocs: int) -> float:
    """Average hop count over all ordered pairs (for model sanity checks)."""
    if nprocs <= 1:
        return 0.0
    total = 0
    for s in range(nprocs):
        for d in range(nprocs):
            if s != d:
                total += hops(kind, s, d, nprocs)
    return total / (nprocs * (nprocs - 1))
