"""Parameter records describing target machines and simulation hosts.

The paper validates on two platforms: the distributed-memory IBM SP (up
to 128 processors) and the shared-memory SGI Origin 2000 (up to 8
processors, with MPI communication simulated rather than shared-memory
traffic).  We model a machine as

* a CPU (time per abstract operation, a two-level cache hierarchy whose
  working-set factor slows large tasks down, and a timer-call cost), and
* an interconnect (LogGP-flavoured: per-message latency, per-byte time,
  per-message CPU overhead, an eager/rendezvous threshold).

The *nominal* parameters are what MPI-Sim's communication model uses.
The *ground-truth* perturbation factors describe how the real machine
deviates from the nominal model (contention, OS noise, measured-versus-
modelled latency), which is what gives MPI-SIM-DE and MPI-SIM-AM their
non-zero validation errors — see DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CpuParams",
    "NetworkParams",
    "PerturbationParams",
    "HostParams",
    "MachineParams",
    "IBM_SP",
    "ORIGIN_2000",
    "TESTING_MACHINE",
    "get_machine",
]

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class CpuParams:
    """Processor timing parameters.

    ``time_per_op`` is the cost of one abstract operation — roughly one
    floating-point update including its share of loads/stores — when the
    working set fits in L1.  ``l2_factor`` / ``mem_factor`` multiply task
    time when the per-process working set falls out of L1 / L2; the
    factor is interpolated log-linearly between levels so that shrinking
    a working set (e.g. by adding processors) speeds tasks up smoothly,
    which is precisely the effect the paper's linear scaling functions do
    *not* model (Sec. 3.3).
    """

    time_per_op: float = 1.0e-8  # ~100 Mflop/s effective, a 1999-era CPU
    l1_bytes: int = 64 * KiB
    l2_bytes: int = 4 * MiB
    l2_factor: float = 1.12
    mem_factor: float = 1.30
    timer_overhead: float = 2.0e-6  # one timer read (start *or* stop)


@dataclass(frozen=True)
class NetworkParams:
    """Interconnect timing parameters (LogGP-flavoured).

    ``latency``: end-to-end time for a zero-byte message.
    ``per_byte``: inverse bandwidth.
    ``cpu_overhead``: CPU time charged to sender and receiver per message.
    ``eager_limit``: messages up to this size are buffered eagerly; larger
    messages rendezvous (the sender blocks until the receive is posted),
    as in MPI-Sim's communication model.
    """

    latency: float = 30.0e-6
    per_byte: float = 1.0 / (100 * MiB)  # ~100 MB/s
    cpu_overhead: float = 5.0e-6
    eager_limit: int = 16 * KiB
    rendezvous_latency: float = 15.0e-6  # extra handshake for large messages
    #: interconnect topology for hop-dependent latency; "crossbar" keeps
    #: the classic uniform model (see repro.machine.topology)
    topology: str = "crossbar"
    per_hop: float = 0.0  # extra latency per router hop beyond the first


@dataclass(frozen=True)
class PerturbationParams:
    """How the *real* machine deviates from the nominal network/CPU model.

    These feed only the ground-truth ("measured") runner: contention and
    protocol effects make real latency/bandwidth slightly worse than the
    simulator's analytic model, and both computation and communication
    carry multiplicative lognormal noise.
    """

    latency_factor: float = 1.10
    bandwidth_factor: float = 0.93  # effective bandwidth fraction under contention
    comm_noise_sigma: float = 0.05
    cpu_noise_sigma: float = 0.015
    collective_factor: float = 1.08


@dataclass(frozen=True)
class HostParams:
    """The machine the simulator itself runs on (host machine, Sec. 2.1).

    ``mem_bytes`` bounds what can be simulated: MPI-Sim's direct execution
    "implies that the memory [...] of the simulator is at least as large
    as that of the target application".  The per-event/per-message costs
    parameterize the simulator performance model of ``repro.parallel``.
    """

    mem_bytes: int = 16 * GiB  # aggregate host memory available to the simulator
    thread_overhead_bytes: int = 24 * KiB  # simulator kernel state per target thread
    event_overhead: float = 2.0e-6  # host cost of scheduling one event
    message_overhead: float = 6.0e-6  # host cost of simulating one message
    message_per_byte: float = 1.0e-8  # host cost of copying simulated payload (~100 MB/s)
    delay_call_overhead: float = 1.0e-6  # host cost of one delay() call
    direct_exec_factor: float = 2.0  # host slowdown re-executing target code (f2c, instrumentation)
    null_message_overhead: float = 4.0e-6  # conservative-protocol bookkeeping per cross-host message
    host_latency: float = 25.0e-6  # host interconnect latency (protocol messages)


@dataclass(frozen=True)
class MachineParams:
    """A complete named machine: CPU + network + truth perturbations + host."""

    name: str
    cpu: CpuParams
    net: NetworkParams
    truth: PerturbationParams
    host: HostParams

    def with_host(self, **kwargs) -> "MachineParams":
        """A copy with host parameters overridden (e.g. a memory budget)."""
        return replace(self, host=replace(self.host, **kwargs))


#: Distributed-memory IBM SP (the paper's main validation platform).
IBM_SP = MachineParams(
    name="IBM-SP",
    cpu=CpuParams(
        time_per_op=1.0e-8,
        l1_bytes=64 * KiB,
        l2_bytes=4 * MiB,
        l2_factor=1.12,
        mem_factor=1.30,
        timer_overhead=2.0e-6,
    ),
    net=NetworkParams(
        latency=30.0e-6,
        per_byte=1.0 / (100 * MiB),
        cpu_overhead=5.0e-6,
        eager_limit=16 * KiB,
        rendezvous_latency=15.0e-6,
    ),
    truth=PerturbationParams(),
    host=HostParams(),
)

#: Shared-memory SGI Origin 2000 (SAMPLE experiments; MPI traffic simulated).
ORIGIN_2000 = MachineParams(
    name="SGI-Origin-2000",
    cpu=CpuParams(
        time_per_op=8.0e-9,
        l1_bytes=32 * KiB,
        l2_bytes=8 * MiB,
        l2_factor=1.10,
        mem_factor=1.25,
        timer_overhead=1.5e-6,
    ),
    net=NetworkParams(
        latency=12.0e-6,
        per_byte=1.0 / (160 * MiB),
        cpu_overhead=3.0e-6,
        eager_limit=16 * KiB,
        rendezvous_latency=8.0e-6,
    ),
    truth=PerturbationParams(
        latency_factor=1.12,
        bandwidth_factor=0.90,
        comm_noise_sigma=0.06,
        cpu_noise_sigma=0.015,
        collective_factor=1.10,
    ),
    host=HostParams(host_latency=15.0e-6),
)

#: A small, fast machine for unit tests: exact (noise-free) ground truth.
TESTING_MACHINE = MachineParams(
    name="testing",
    cpu=CpuParams(time_per_op=1.0e-6, l2_factor=1.0, mem_factor=1.0, timer_overhead=0.0),
    net=NetworkParams(latency=1.0e-3, per_byte=1.0e-6, cpu_overhead=1.0e-4, eager_limit=1024),
    truth=PerturbationParams(
        latency_factor=1.0,
        bandwidth_factor=1.0,
        comm_noise_sigma=0.0,
        cpu_noise_sigma=0.0,
        collective_factor=1.0,
    ),
    host=HostParams(mem_bytes=1 * GiB),
)

_REGISTRY = {m.name: m for m in (IBM_SP, ORIGIN_2000, TESTING_MACHINE)}


def get_machine(name: str) -> MachineParams:
    """Look up a machine preset by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown machine {name!r}; known machines: {known}") from None
