"""CPU timing model: task times with cache-working-set effects.

The ground-truth machine and the direct-execution simulator both price a
sequential task as ``ops × time_per_op × cache_factor(working_set)``;
the ground truth additionally applies multiplicative lognormal noise.
The analytical-model simulator never calls this module for abstracted
tasks — that is the whole point of the paper — it uses measured ``w_i``
coefficients and the compiler's scaling functions instead.
"""

from __future__ import annotations

import math

import numpy as np

from .params import CpuParams

__all__ = ["CpuModel"]


class CpuModel:
    """Prices sequential computation on one processor.

    Parameters
    ----------
    params:
        Machine CPU description.
    noise_sigma:
        Sigma of multiplicative lognormal noise (0 disables noise and the
        model is deterministic — this is what the simulators use).
    rng:
        Source of randomness for the noisy (ground-truth) variant.
    """

    def __init__(self, params: CpuParams, noise_sigma: float = 0.0, rng: np.random.Generator | None = None):
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if noise_sigma > 0 and rng is None:
            raise ValueError("noisy CpuModel requires an rng")
        self.params = params
        self.noise_sigma = noise_sigma
        self._rng = rng

    def cache_factor(self, working_set_bytes: float) -> float:
        """Slowdown factor for a task touching *working_set_bytes* of data.

        1.0 inside L1, rising log-linearly to ``l2_factor`` at the L2
        capacity and to ``mem_factor`` at 16× L2 (after which it
        saturates).  Log-linear interpolation keeps the factor smooth so
        that halving a per-process working set (by doubling processors)
        yields a modest, realistic speedup rather than a cliff.
        """
        p = self.params
        ws = float(working_set_bytes)
        if ws <= p.l1_bytes:
            return 1.0
        if ws <= p.l2_bytes:
            t = math.log(ws / p.l1_bytes) / math.log(p.l2_bytes / p.l1_bytes)
            return 1.0 + t * (p.l2_factor - 1.0)
        saturation = 16.0 * p.l2_bytes
        if ws >= saturation:
            return p.mem_factor
        t = math.log(ws / p.l2_bytes) / math.log(saturation / p.l2_bytes)
        return p.l2_factor + t * (p.mem_factor - p.l2_factor)

    def task_time(self, ops: float, working_set_bytes: float = 0.0) -> float:
        """Execution time of a sequential task performing *ops* operations."""
        if ops < 0:
            raise ValueError(f"negative op count: {ops}")
        t = ops * self.params.time_per_op * self.cache_factor(working_set_bytes)
        if self.noise_sigma > 0.0 and t > 0.0:
            t *= float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        return t

    def timer_cost(self) -> float:
        """Cost of a single timer call (instrumented measurement runs)."""
        return self.params.timer_overhead
