"""CPU timing model: task times with cache-working-set effects.

The ground-truth machine and the direct-execution simulator both price a
sequential task as ``ops × time_per_op × cache_factor(working_set)``;
the ground truth additionally applies multiplicative lognormal noise.
The analytical-model simulator never calls this module for abstracted
tasks — that is the whole point of the paper — it uses measured ``w_i``
coefficients and the compiler's scaling functions instead.
"""

from __future__ import annotations

import math

import numpy as np

from .params import CpuParams

__all__ = ["CpuModel"]


class CpuModel:
    """Prices sequential computation on one processor.

    Parameters
    ----------
    params:
        Machine CPU description.
    noise_sigma:
        Sigma of multiplicative lognormal noise (0 disables noise and the
        model is deterministic — this is what the simulators use).
    rng:
        Source of randomness for the noisy (ground-truth) variant.
    """

    def __init__(self, params: CpuParams, noise_sigma: float = 0.0, rng: np.random.Generator | None = None):
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if noise_sigma > 0 and rng is None:
            raise ValueError("noisy CpuModel requires an rng")
        self.params = params
        self.noise_sigma = noise_sigma
        self._rng = rng
        # cache_factor is a pure function of the working-set size and
        # programs touch only a handful of distinct sizes; memoize it
        # (the bound keeps adversarial workloads from growing it forever)
        self._cf_cache: dict[float, float] = {}

    def cache_factor(self, working_set_bytes: float) -> float:
        """Slowdown factor for a task touching *working_set_bytes* of data.

        1.0 inside L1, rising log-linearly to ``l2_factor`` at the L2
        capacity and to ``mem_factor`` at 16× L2 (after which it
        saturates).  Log-linear interpolation keeps the factor smooth so
        that halving a per-process working set (by doubling processors)
        yields a modest, realistic speedup rather than a cliff.
        """
        ws = float(working_set_bytes)
        factor = self._cf_cache.get(ws)
        if factor is not None:
            return factor
        p = self.params
        if ws <= p.l1_bytes:
            factor = 1.0
        elif ws <= p.l2_bytes:
            t = math.log(ws / p.l1_bytes) / math.log(p.l2_bytes / p.l1_bytes)
            factor = 1.0 + t * (p.l2_factor - 1.0)
        else:
            saturation = 16.0 * p.l2_bytes
            if ws >= saturation:
                factor = p.mem_factor
            else:
                t = math.log(ws / p.l2_bytes) / math.log(saturation / p.l2_bytes)
                factor = p.l2_factor + t * (p.mem_factor - p.l2_factor)
        if len(self._cf_cache) < 4096:
            self._cf_cache[ws] = factor
        return factor

    def task_time(self, ops: float, working_set_bytes: float = 0.0) -> float:
        """Execution time of a sequential task performing *ops* operations."""
        if ops < 0:
            raise ValueError(f"negative op count: {ops}")
        t = ops * self.params.time_per_op * self.cache_factor(working_set_bytes)
        if self.noise_sigma > 0.0 and t > 0.0:
            t *= float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        return t

    def timer_cost(self) -> float:
        """Cost of a single timer call (instrumented measurement runs)."""
        return self.params.timer_overhead
