"""Target-machine and host-machine models (IBM SP, SGI Origin 2000).

Substitutes for the physical machines of the paper's evaluation: a CPU
timing model with cache-working-set effects, a LogGP-style interconnect
model with an eager/rendezvous protocol switch, perturbation parameters
that distinguish the *real* machine from the simulator's nominal model,
and host-machine parameters (memory, per-event costs) that bound and
price the simulator's own execution.
"""

from .cpu import CpuModel
from .fitting import fit_cpu_params, fit_machine, fit_network_params
from .network import COLLECTIVE_OPS, NetworkModel
from .topology import TOPOLOGIES, hops, mean_hops
from .params import (
    GiB,
    IBM_SP,
    KiB,
    MiB,
    ORIGIN_2000,
    TESTING_MACHINE,
    CpuParams,
    HostParams,
    MachineParams,
    NetworkParams,
    PerturbationParams,
    get_machine,
)

__all__ = [
    "CpuModel",
    "NetworkModel",
    "COLLECTIVE_OPS",
    "CpuParams",
    "NetworkParams",
    "PerturbationParams",
    "HostParams",
    "MachineParams",
    "IBM_SP",
    "ORIGIN_2000",
    "TESTING_MACHINE",
    "get_machine",
    "fit_network_params",
    "fit_cpu_params",
    "fit_machine",
    "hops",
    "mean_hops",
    "TOPOLOGIES",
    "KiB",
    "MiB",
    "GiB",
]
