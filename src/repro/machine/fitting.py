"""Fitting machine-model parameters from measurements.

MPI-Sim's communication model and the w_i task times are parameterized
"by direct measurement" (Sec. 1).  This module closes that loop for the
*machine* models: given ping-pong samples (message size, round-trip
time) and kernel timings (op count, working set, time), least-squares
fits recover the latency/bandwidth/overhead and CPU parameters of a
:class:`MachineParams` — so a user can calibrate the simulator against
their own cluster benchmarks instead of using the built-in presets.

scipy is used for the non-negative least squares / curve fits.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy import optimize

from .cpu import CpuModel
from .network import NetworkModel
from .params import CpuParams, MachineParams, NetworkParams

__all__ = [
    "fit_network_params",
    "fit_cpu_params",
    "fit_machine",
    "pingpong_samples",
    "kernel_samples",
]


def fit_network_params(
    sizes: np.ndarray, round_trips: np.ndarray, base: NetworkParams | None = None
) -> NetworkParams:
    """Fit (latency, per_byte, cpu_overhead) to ping-pong measurements.

    A ping-pong of *n* bytes costs ``2*(latency + n*per_byte) +
    4*cpu_overhead + 0.2*n*per_byte`` under the model (send + receive
    overheads on both ends); we fit the aggregate affine form
    ``rtt = a + b*n`` and attribute the intercept/slope back to the
    parameters using the model's fixed overhead-to-latency ratio.
    """
    sizes = np.asarray(sizes, dtype=float)
    round_trips = np.asarray(round_trips, dtype=float)
    if sizes.size < 2:
        raise ValueError("need at least two ping-pong samples")
    if np.any(sizes < 0) or np.any(round_trips <= 0):
        raise ValueError("sizes must be >= 0 and times > 0")
    A = np.vstack([np.ones_like(sizes), sizes]).T
    (a, b), *_ = np.linalg.lstsq(A, round_trips, rcond=None)
    a = max(a, 1e-9)
    b = max(b, 1e-15)
    base = base or NetworkParams()
    # model: rtt = 2*latency + 4*cpu_overhead + n*(2*per_byte + 0.2*per_byte)
    # keep the preset's overhead:latency proportion to split the intercept
    ratio = base.cpu_overhead / (base.latency + 2 * base.cpu_overhead)
    cpu_overhead = (a / 2) * ratio * 2 / 2  # overhead share of half the RTT intercept
    latency = a / 2 - 2 * cpu_overhead
    per_byte = b / 2.2
    return replace(
        base,
        latency=float(max(latency, 1e-9)),
        per_byte=float(per_byte),
        cpu_overhead=float(max(cpu_overhead, 0.0)),
    )


def fit_cpu_params(
    ops: np.ndarray,
    working_sets: np.ndarray,
    times: np.ndarray,
    base: CpuParams | None = None,
) -> CpuParams:
    """Fit (time_per_op, l2_factor, mem_factor) to kernel timings.

    The cache capacities are taken from *base* (they come from hardware
    documentation, not fitting); the per-op time and the two slowdown
    factors are found by bounded least squares on the model's predicted
    times.
    """
    ops = np.asarray(ops, dtype=float)
    working_sets = np.asarray(working_sets, dtype=float)
    times = np.asarray(times, dtype=float)
    if not (ops.size == working_sets.size == times.size):
        raise ValueError("ops, working_sets and times must have equal lengths")
    if ops.size < 3:
        raise ValueError("need at least three kernel samples")
    base = base or CpuParams()

    def predict(theta):
        t_op, l2f, memf = theta
        cpu = CpuModel(replace(base, time_per_op=t_op, l2_factor=l2f, mem_factor=memf))
        return np.array([cpu.task_time(o, w) for o, w in zip(ops, working_sets)])

    def resid(theta):
        return predict(theta) - times

    x0 = np.array([base.time_per_op, base.l2_factor, base.mem_factor])
    result = optimize.least_squares(
        resid,
        x0,
        bounds=([1e-12, 1.0, 1.0], [1e-5, 4.0, 8.0]),
    )
    t_op, l2f, memf = result.x
    if memf < l2f:  # enforce monotone hierarchy
        memf = l2f
    return replace(base, time_per_op=float(t_op), l2_factor=float(l2f), mem_factor=float(memf))


def fit_machine(
    name: str,
    pingpong: tuple[np.ndarray, np.ndarray],
    kernels: tuple[np.ndarray, np.ndarray, np.ndarray],
    base: MachineParams,
) -> MachineParams:
    """Fit a full machine preset from benchmark data (network + CPU)."""
    net = fit_network_params(*pingpong, base=base.net)
    cpu = fit_cpu_params(*kernels, base=base.cpu)
    return replace(base, name=name, net=net, cpu=cpu)


# ---------------------------------------------------------------------------
# synthetic benchmark generators (stand-ins for running on real hardware)
# ---------------------------------------------------------------------------


def pingpong_samples(
    machine: MachineParams, sizes=None, seed: int = 0, noisy: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Ping-pong benchmark data from a machine's *ground-truth* model —
    what running the microbenchmark on the real system would yield."""
    if sizes is None:
        sizes = np.array([0, 256, 1024, 4096, 16384, 65536, 262144])
    sizes = np.asarray(sizes)
    rng = np.random.default_rng(seed)
    net = NetworkModel(machine.net, machine.truth if noisy else None,
                       rng=rng if noisy else None)
    rtts = []
    for n in sizes:
        one_way = net.transit_time(int(n)) + net.send_overhead(int(n)) + net.recv_overhead(int(n))
        back = net.transit_time(int(n)) + net.send_overhead(int(n)) + net.recv_overhead(int(n))
        rtts.append(one_way + back)
    return sizes, np.array(rtts)


def kernel_samples(
    machine: MachineParams, configs=None, seed: int = 0, noisy: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Kernel-timing benchmark data from the ground-truth CPU model."""
    if configs is None:
        configs = [
            (10**5, 16 * 1024), (10**6, 16 * 1024),
            (10**6, 2 * 2**20), (10**7, 2 * 2**20),
            (10**6, 64 * 2**20), (10**7, 64 * 2**20), (10**8, 256 * 2**20),
        ]
    rng = np.random.default_rng(seed)
    cpu = CpuModel(
        machine.cpu,
        machine.truth.cpu_noise_sigma if noisy else 0.0,
        rng if noisy else None,
    )
    ops = np.array([o for o, _ in configs], dtype=float)
    ws = np.array([w for _, w in configs], dtype=float)
    times = np.array([cpu.task_time(o, w) for o, w in configs])
    return ops, ws, times
