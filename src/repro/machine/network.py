"""Interconnect timing model: point-to-point and collective communication.

MPI-Sim "traps" communication commands and "uses an appropriate model to
predict the execution time for the corresponding communication activity
on the target architecture" (Sec. 2.1).  This module is that model.

Two variants exist:

* the *nominal* model — what both MPI-SIM-DE and MPI-SIM-AM use to
  predict communication; deterministic, contention-free;
* the *ground-truth* model — the same structure with the machine's
  perturbation factors (contention-degraded latency/bandwidth) and
  per-message lognormal noise; this is what "direct measurement" of the
  application experiences.
"""

from __future__ import annotations

import math

import numpy as np

from .params import NetworkParams, PerturbationParams

__all__ = ["NetworkModel", "COLLECTIVE_OPS"]

#: Collective operations the model knows how to price.
COLLECTIVE_OPS = ("barrier", "bcast", "reduce", "allreduce", "gather", "scatter", "allgather", "alltoall")


class NetworkModel:
    """Prices MPI communication on the target interconnect."""

    def __init__(
        self,
        params: NetworkParams,
        perturbation: PerturbationParams | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.params = params
        self._pert = perturbation
        self._rng = rng
        if perturbation is not None:
            self._latency = params.latency * perturbation.latency_factor
            self._per_byte = params.per_byte / perturbation.bandwidth_factor
            self._coll_factor = perturbation.collective_factor
            self._sigma = perturbation.comm_noise_sigma
            if self._sigma > 0 and rng is None:
                raise ValueError("noisy NetworkModel requires an rng")
        else:
            self._latency = params.latency
            self._per_byte = params.per_byte
            self._coll_factor = 1.0
            self._sigma = 0.0
        # Memoized message costs (fast path).  Valid only when the model
        # is noise-free: every call with the same key then returns the
        # same value, so nominal DE/AM simulations — the hot case — pay
        # the hop/latency arithmetic once per distinct message shape.
        self._deterministic = self._sigma == 0.0
        self._transit_cache: dict = {}
        self._overhead_cache: dict = {}
        self._coll_cache: dict = {}

    # -- helpers ---------------------------------------------------------------
    def _noise(self) -> float:
        if self._sigma > 0.0:
            return float(np.exp(self._rng.normal(0.0, self._sigma)))
        return 1.0

    @property
    def eager_limit(self) -> int:
        """Messages up to this many bytes are sent eagerly (buffered)."""
        return self.params.eager_limit

    # -- point-to-point ----------------------------------------------------------
    def transit_time(self, nbytes: int, src: int | None = None,
                     dst: int | None = None, nprocs: int | None = None) -> float:
        """Wire time of one message: latency + size / bandwidth.

        With endpoints given and a non-crossbar topology configured,
        latency grows with router hops (``per_hop`` per hop beyond the
        first); without endpoints the uniform base latency is charged.
        """
        topo_sensitive = (
            self.params.per_hop > 0.0
            and src is not None
            and dst is not None
            and nprocs is not None
        )
        if self._deterministic:
            key = (nbytes, src, dst, nprocs) if topo_sensitive else nbytes
            cached = self._transit_cache.get(key)
            if cached is not None:
                return cached
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        base = self._latency + nbytes * self._per_byte
        if topo_sensitive:
            from .topology import hops

            h = hops(self.params.topology, src, dst, nprocs)
            if h > 1:
                extra = (h - 1) * self.params.per_hop
                if self._pert is not None:
                    extra *= self._pert.latency_factor
                base += extra
        if nbytes > self.params.eager_limit:
            base += self.params.rendezvous_latency * (
                self._pert.latency_factor if self._pert else 1.0
            )
        if self._deterministic:
            self._transit_cache[key] = base
            return base
        return base * self._noise()

    def send_overhead(self, nbytes: int) -> float:
        """CPU time the sender spends injecting one message."""
        cached = self._overhead_cache.get(nbytes)
        if cached is None:
            cached = self.params.cpu_overhead + 0.1 * nbytes * self._per_byte
            self._overhead_cache[nbytes] = cached
        return cached

    def recv_overhead(self, nbytes: int) -> float:
        """CPU time the receiver spends draining one message."""
        return self.send_overhead(nbytes)  # same deterministic formula

    def is_eager(self, nbytes: int) -> bool:
        """Eager (buffered) vs rendezvous (synchronizing) protocol choice."""
        return nbytes <= self.params.eager_limit

    def degradation_extra(
        self, nbytes: int, latency_factor: float, bandwidth_factor: float
    ) -> float:
        """Extra transit time of one message on a degraded link.

        A degraded link multiplies the (possibly perturbed) base latency
        by *latency_factor* and divides the bandwidth by
        *bandwidth_factor*; this returns the additional seconds over the
        healthy link, to be added on top of :meth:`transit_time`.
        Deterministic — fault plans replay identically.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        extra = self._latency * (latency_factor - 1.0)
        if bandwidth_factor > 0.0:
            extra += nbytes * self._per_byte * (1.0 / bandwidth_factor - 1.0)
        return extra

    # -- collectives ----------------------------------------------------------------
    def collective_time(self, op: str, nbytes: int, nprocs: int) -> float:
        """Completion time of a collective over *nprocs* processes.

        Tree-based models: log2(P) rounds for one-to-all/all-to-one,
        twice that for allreduce/allgather, (P-1) exchanges for alltoall.
        This is the "appropriate model" MPI-Sim substitutes for detailed
        packet simulation of collectives.
        """
        if self._deterministic:
            key = (op, nbytes, nprocs)
            cached = self._coll_cache.get(key)
            if cached is not None:
                return cached
        if op not in COLLECTIVE_OPS:
            raise ValueError(f"unknown collective {op!r}; known: {COLLECTIVE_OPS}")
        if nprocs < 1:
            raise ValueError(f"collective over {nprocs} processes")
        if nbytes < 0:
            raise ValueError(f"negative collective payload: {nbytes}")
        if nprocs == 1:
            return 0.0
        rounds = math.ceil(math.log2(nprocs))
        hop = self._latency + nbytes * self._per_byte
        if op == "barrier":
            t = rounds * self._latency
        elif op in ("bcast", "reduce", "gather", "scatter"):
            t = rounds * hop
        elif op in ("allreduce", "allgather"):
            t = 2 * rounds * hop
        else:  # alltoall
            t = (nprocs - 1) * hop
        t *= self._coll_factor
        if self._deterministic:
            self._coll_cache[key] = t
            return t
        return t * self._noise()
