"""Cross-cutting utilities shared by every layer (no repro imports)."""

from .atomic_io import AtomicJournal, atomic_append_lines, atomic_write, atomic_write_text

__all__ = [
    "atomic_write",
    "atomic_write_text",
    "atomic_append_lines",
    "AtomicJournal",
]
