"""Crash-consistent file writing: tmp + fsync + rename, everywhere.

Every whole-file artifact the system produces (Perfetto exports, CSV
reports, trace archives, campaign journals) funnels through this module
so that a crash — OOM, SIGKILL, power loss — mid-write can never leave
a truncated artifact under the final name.  (The one deliberate
exception is the high-frequency metrics JSONL sink, which uses plain
``O_APPEND`` writes and tolerates a torn final line; see
:class:`repro.obs.metrics.JsonlSink`.)  The protocol is the classic
one:

1. write the full content to ``<name>.tmp.<pid>.<counter>`` in the
   *same directory* (rename must not cross filesystems);
2. close the handle, then reopen and ``os.fsync`` the raw temporary
   file — closing first matters for compressed streams, whose trailer
   (e.g. the gzip CRC/length) is only written during ``close()``;
3. ``os.replace`` it over the final name (atomic on POSIX and Windows);
4. ``os.fsync`` the parent directory, so the rename itself survives
   power loss.

Readers therefore observe either the old complete file or the new
complete file, never a torn intermediate.  On any exception the
temporary file is removed and the final name untouched.

:class:`AtomicJournal` builds an append-only JSONL journal on top of the
same primitive: each appended record rewrites the journal atomically
(tmp + fsync + rename per record), so the on-disk journal is a complete,
parseable prefix of the logical one at every instant.  Journals are
small (one line per experiment run), so the rewrite cost is noise next
to the simulations they checkpoint.
"""

from __future__ import annotations

import gzip
import itertools
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "atomic_write",
    "atomic_write_text",
    "atomic_append_lines",
    "append_jsonl",
    "read_jsonl",
    "AtomicJournal",
]

#: process-wide counter so concurrent writers in one process never collide
_tmp_ids = itertools.count()


def _tmp_path(path: Path) -> Path:
    return path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_tmp_ids)}")


def _fsync_dir(dirpath: Path) -> None:
    """Best-effort fsync of a directory, making a rename in it durable."""
    try:
        fd = os.open(dirpath, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory opens
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems rejecting dir fsync
        pass
    finally:
        os.close(fd)


def _fsync_and_replace(fh, tmp: Path, path: Path) -> None:
    # Close before syncing: GzipFile writes its CRC/length trailer during
    # close(), so an fsync of the live handle would miss the file's tail.
    # Reopening the raw tmp file syncs the complete bytes for any opener.
    fh.close()
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    _fsync_dir(path.parent)


@contextmanager
def atomic_write(
    path: str | Path,
    mode: str = "w",
    newline: str | None = None,
    opener: Callable[[Path], Any] | None = None,
) -> Iterator[Any]:
    """Context manager yielding a file handle whose contents replace
    *path* atomically on success (and vanish without trace on error).

    *mode* is a text mode (``"w"``); paths ending in ``.gz`` are
    transparently gzip-compressed unless a custom *opener* is given.
    *opener* receives the temporary path and must return an open,
    writable handle backed by a real file descriptor (``fileno()``).
    """
    path = Path(path)
    tmp = _tmp_path(path)
    if opener is not None:
        fh = opener(tmp)
    elif str(path).endswith(".gz"):
        fh = gzip.open(tmp, mode + "t")
    else:
        fh = open(tmp, mode, newline=newline)
    try:
        yield fh
        _fsync_and_replace(fh, tmp, path)
    except BaseException:
        try:
            fh.close()
        finally:
            tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace *path*'s contents with *text*."""
    with atomic_write(path) as fh:
        fh.write(text)


def atomic_append_lines(path: str | Path, lines: Iterable[str]) -> None:
    """Append *lines* to *path* with full-file atomic replacement.

    Semantically an append, mechanically a rewrite: the existing content
    (if any) plus the new lines land under a temporary name and are
    renamed over *path*, so a crash mid-append leaves the previous
    complete file rather than a torn tail.  Lines must not contain
    newlines; one is added per line.

    Each call costs O(total file size), so this suits small files
    appended occasionally; for high-frequency streams where a torn
    final line is tolerable, a plain ``O_APPEND`` write is the right
    tool (see :class:`repro.obs.metrics.JsonlSink`).
    """
    path = Path(path)
    existing = path.read_text() if path.exists() else ""
    with atomic_write(path) as fh:
        fh.write(existing)
        for line in lines:
            fh.write(line + "\n")


def append_jsonl(path: str | Path, record: dict, fsync: bool = True) -> None:
    """Durably append one JSON record to *path* in O(record).

    The record lands in a single ``O_APPEND`` write (one line), followed
    by an ``fsync`` — so a crash mid-append can tear at most the final
    line, never an earlier one, and :func:`read_jsonl` drops exactly
    that torn tail.  This is the right primitive for high-volume
    streams (telemetry capsules, metrics) where the
    :class:`AtomicJournal` full-rewrite would cost O(n²) over a
    campaign; the trade is documented on the reader side.
    """
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    fd = os.open(Path(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode())
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


def read_jsonl(path: str | Path, strict: bool = False) -> list[dict]:
    """Read a JSONL file, tolerating the documented torn-final-line hazard.

    ``O_APPEND`` writers (:func:`append_jsonl`,
    :class:`repro.obs.metrics.JsonlSink`) guarantee every line but the
    last is complete; a crash mid-flush can leave one incomplete tail
    line.  This reader drops an unparseable *final* line with a logged
    warning and returns everything before it.  Corruption anywhere else
    — or any corruption at all under ``strict=True`` — still raises
    :class:`ValueError` with its ``path:line`` location, because a
    mangled middle means something other than a torn append happened.
    Non-object records raise in either mode.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ValueError(f"cannot read {path}: {exc}") from None
    lines = raw.splitlines()
    out: list[dict] = []
    last = len(lines)
    while last and not lines[last - 1].strip():
        last -= 1  # ignore blank tails
    for lineno, line in enumerate(lines[:last], start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == last and not strict:
                _warn_torn_line(path, lineno)
                break
            raise ValueError(
                f"{path}:{lineno}: corrupt JSONL record: {exc}"
            ) from None
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{lineno}: JSONL record is not a JSON object")
        out.append(record)
    return out


def _warn_torn_line(path: Path, lineno: int) -> None:
    # local import: atomic_io must stay importable before logging config
    from ..obs.logging import get_logger

    get_logger("util.atomic_io").warning(
        "%s:%d: skipping incomplete final line (torn O_APPEND write)", path, lineno
    )


class AtomicJournal:
    """Append-only JSONL journal with per-record atomic durability.

    Each record is one JSON object per line.  :meth:`append` makes the
    record durable before returning (tmp + fsync + rename of the whole
    journal), so after a crash the on-disk journal is exactly the
    sequence of records whose ``append`` calls completed.

    Since every write is a full-file atomic replace, a torn *final*
    line can only come from outside — an external editor, a copy taken
    mid-write, a foreign ``O_APPEND`` writer sharing the path.  That
    one case is recovered, not fatal: the incomplete tail is dropped
    with a logged warning at load time (so a later :meth:`append` never
    re-persists it).  Corruption anywhere earlier is still reported by
    :meth:`records` with its line number — a mangled middle means
    something worse than a torn append happened.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lines: list[str] = []
        if self.path.exists():
            self._lines = [
                line for line in self.path.read_text().splitlines() if line.strip()
            ]
            if self._lines:
                try:
                    json.loads(self._lines[-1])
                except json.JSONDecodeError:
                    _warn_torn_line(self.path, len(self._lines))
                    self._lines.pop()

    def __len__(self) -> int:
        return len(self._lines)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, record: dict) -> None:
        """Durably append one record (atomic rewrite + fsync)."""
        self._lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
        with atomic_write(self.path) as fh:
            for line in self._lines:
                fh.write(line + "\n")

    def records(self) -> list[dict]:
        """Parse and return every journal record.

        Raises :class:`ValueError` with ``path:line`` on malformed JSON
        or a non-object record.
        """
        out: list[dict] = []
        for lineno, line in enumerate(self._lines, start=1):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt journal record: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{self.path}:{lineno}: journal record is not a JSON object"
                )
            out.append(record)
        return out
