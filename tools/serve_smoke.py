#!/usr/bin/env python
"""CI smoke test for ``repro serve``: the dedupe and shutdown contract.

Starts a real server subprocess on an ephemeral port, submits the same
campaign grid twice, and demands:

* pass 1 executes every cell (all misses);
* pass 2 is served entirely from the content-addressed store — 100%
  hits, zero simulator events, byte-identical result documents;
* a single ``repro query`` against the warm server is a cache hit;
* SIGTERM produces a clean drain: exit code 0, "shutdown complete" on
  stdout, and no orphan processes holding the store.

Exit code 0 on success, 1 with a diagnostic on any violation.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

GRID = {
    "name": "serve-smoke",
    "app": "sample_nearest_neighbor",
    "modes": ["de"],
    "nprocs": [2, 4, 8],
    "calib_procs": 2,
}


def post(base, path, doc):
    req = urllib.request.Request(
        f"{base}{path}", data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=180) as resp:
        return json.loads(resp.read())


def fail(msg):
    print(f"serve-smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None,
                        help="store directory (default: a temp dir)")
    args = parser.parse_args()
    store = args.store or tempfile.mkdtemp(prefix="serve-smoke-")
    repo = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(repo / "src"), env.get("PYTHONPATH")) if p)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=repo, env=env)
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if not match:
            fail(f"no listening line: {line!r}")
        base = match.group(1)
        print(f"serve-smoke: server up at {base}, store {store}")

        cold = post(base, "/v1/campaign", GRID)
        if cold["misses"] != 3 or cold["hits"] != 0:
            fail(f"cold pass expected 3 misses: {cold}")
        if cold["executed_events"] <= 0:
            fail("cold pass executed no events")
        if cold["outcomes"] != {"ok": 3}:
            fail(f"cold outcomes: {cold['outcomes']}")
        print(f"serve-smoke: cold pass executed "
              f"{cold['executed_events']} events")

        warm = post(base, "/v1/campaign", GRID)
        if warm["hits"] != 3 or warm["misses"] != 0:
            fail(f"warm pass expected 3 hits: {warm}")
        if warm["executed_events"] != 0:
            fail(f"warm pass executed {warm['executed_events']} events")
        if warm["results"] != cold["results"]:
            fail("warm results are not byte-identical to the cold pass")
        print("serve-smoke: warm pass 3/3 hits, 0 events, byte-identical")

        query = subprocess.run(
            [sys.executable, "-m", "repro", "query",
             "sample_nearest_neighbor", "--nprocs", "4",
             "--server", base.removeprefix("http://")],
            capture_output=True, text=True, cwd=repo, env=env, timeout=120)
        if query.returncode != 0:
            fail(f"query exit {query.returncode}: {query.stderr}")
        if "cache hit" not in query.stdout:
            fail(f"query was not a cache hit: {query.stdout!r}")
        print(f"serve-smoke: {query.stdout.strip()}")

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        tail = proc.stdout.read()
        if rc != 0:
            fail(f"SIGTERM exit code {rc}: {tail}")
        if "shutdown complete" not in tail:
            fail(f"no shutdown message: {tail!r}")
        print("serve-smoke: SIGTERM -> exit 0, clean drain")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    index = Path(store) / "index.jsonl"
    if not index.is_file():
        fail("store index missing after shutdown")
    print("serve-smoke: OK")


if __name__ == "__main__":
    main()
