#!/usr/bin/env python
"""Regenerate the hand-verified seed cases of the regression corpus.

Run from the repository root::

    PYTHONPATH=src python tools/make_regressions.py

Each case is built with the ProgramBuilder, replayed through the
differential harness (so a broken case can never be committed), and
serialized into ``src/repro/apps/regressions/`` with the corpus
writer.  The script is deterministic: re-running it reproduces the
committed files byte for byte.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.gen.corpus import RegressionCase, save_case  # noqa: E402
from repro.gen.harness import DiffConfig, run_case  # noqa: E402
from repro.ir.builder import ProgramBuilder  # noqa: E402
from repro.symbolic import Const, Eq, Ge, Var  # noqa: E402

OUT = REPO / "src" / "repro" / "apps" / "regressions"


def wildcard_recv_order() -> RegressionCase:
    """Master/worker farm whose master receives in *arrival* order.

    Every worker sends one 4 KiB result to rank 0 with the same tag and
    the master posts ``P - 1`` wildcard (``MPI_ANY_SOURCE``) receives.
    The per-worker compute grain scales with the rank, so arrival order
    differs from rank order — the exact situation where an unstable
    wildcard-matching policy in the simulation kernel would produce
    run-to-run divergence.  Kept as the canonical guard for
    deterministic wildcard matching.
    """
    b = ProgramBuilder("regress_wildcard_recv_order")
    b.array("buf", size=1024, itemsize=8)
    myid, P = Var("myid"), Var("P")
    with b.if_(Eq(myid, Const(0))):
        with b.loop("w", 1, P - 1):
            b.recv(source=Const(-1), nbytes=Const(4096), tag=7, array="buf")
    with b.else_():
        b.compute("worker_grain", work=Const(3000) * myid)
        b.send(dest=Const(0), nbytes=Const(4096), tag=7, array="buf")
    b.bcast(nbytes=Const(64), root=0, array="buf")
    return RegressionCase(
        name="wildcard_recv_order",
        program=b.build(),
        expect="ok",
        nprocs=4,
        pattern="master_worker",
        reason=(
            "hand-verified: master drains P-1 same-tag results via "
            "MPI_ANY_SOURCE while rank-skewed compute scrambles arrival "
            "order; guards deterministic wildcard matching"
        ),
    )


def collective_in_branch() -> RegressionCase:
    """An allreduce nested in a (rank-uniform) branch inside a loop.

    The branch condition ``P >= 2`` is uniform across ranks, so every
    rank reaches the collective the same number of times — valid, but
    exactly the shape where a branch-elimination or condensation bug
    would drop the collective from some ranks' simplified programs and
    turn a clean run into stragglers.  Kept as the canonical guard for
    collective handling under control flow.
    """
    b = ProgramBuilder("regress_collective_in_branch")
    b.array("buf", size=1024, itemsize=8)
    with b.loop("it", 1, 3):
        b.compute("stencil_sweep", work=Const(9000))
        with b.if_(Ge(Var("P"), Const(2))):
            b.allreduce(nbytes=Const(8), contrib=Const(1), result_var="rsum")
            b.compute("use_sum", work=Const(500), reads=frozenset({"rsum"}))
    return RegressionCase(
        name="collective_in_branch",
        program=b.build(),
        expect="ok",
        nprocs=4,
        pattern="random_mix",
        reason=(
            "hand-verified: allreduce under a rank-uniform branch in a "
            "loop; guards collective handling across control flow in "
            "slicing/condensation"
        ),
    )


def main() -> int:
    cfg = DiffConfig()
    for case in (wildcard_recv_order(), collective_in_branch()):
        verdict = run_case(case.program, case.inputs, cfg, pattern=case.pattern)
        if not verdict.ok:
            print(f"REFUSING to write {case.name}: {verdict.failure}: {verdict.detail}")
            return 1
        path = OUT / f"{case.name}.json"
        save_case(case, path)
        print(f"wrote {path} (err_de {verdict.err_de:.2f}%, err_am {verdict.err_am:.2f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
