#!/usr/bin/env python
"""Chaos smoke test: SIGKILL a campaign worker mid-run, demand a clean recovery.

The supervised execution runtime (docs/robustness.md) promises that a
worker process dying — for any reason, at any moment — costs a campaign
nothing but a journaled strike record and a retry.  This script makes
that promise load-bearing in CI:

1. run a reference campaign sequentially (``--jobs 1``, no chaos);
2. run the same grid with ``--jobs 2`` under the supervised pool and
   SIGKILL the first worker process as soon as it has picked up a run;
3. assert the chaos campaign still exits 0, that the kill is journaled
   as an ``error``/``hung`` strike record naming the in-flight run, that
   every final outcome is ``ok``, and that ``results.csv`` is
   byte-identical to the reference — completed runs are never lost and
   the kill never shapes results.

Exit code 0 on success; 1 with a one-line diagnosis on any violation.
Linux-only (worker discovery walks ``/proc/<pid>/task/*/children``).
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Big enough that workers are busy for seconds when the kill lands
# (each cell drains ~nprocs * iters * 3 kernel events), small enough
# that the whole smoke finishes in well under a minute.
GRID = {
    "name": "chaos-smoke",
    "machine": "testing",
    "app": "sample_nearest_neighbor",
    "modes": ["de"],
    "nprocs": [4, 6, 8, 12],
    "inputs": {"grain": 1000, "msg": 2048, "iters": 4000},
    "supervision": {"heartbeat_timeout": 30.0},
}


def fail(msg: str) -> None:
    print(f"chaos-smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def children_of(pid: int) -> list[int]:
    kids: list[int] = []
    task_dir = Path(f"/proc/{pid}/task")
    try:
        for task in task_dir.iterdir():
            try:
                kids += [int(x) for x in (task / "children").read_text().split()]
            except (OSError, ValueError):
                continue
    except OSError:
        pass
    return kids


def campaign_cmd(grid: Path, out: Path, jobs: int) -> list[str]:
    return [
        sys.executable, "-m", "repro", "campaign",
        "--grid", str(grid), "--out", str(out),
        "--jobs", str(jobs), "--no-telemetry",
    ]


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="chaos-out", metavar="DIR",
                    help="scratch directory (default chaos-out)")
    ap.add_argument("--jobs", type=int, default=2,
                    help="workers for the chaos campaign (default 2)")
    args = ap.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    grid_path = out / "grid.json"
    grid_path.write_text(json.dumps(GRID, indent=2))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )

    print("chaos-smoke: reference campaign (sequential, no chaos)")
    ref = subprocess.run(campaign_cmd(grid_path, out / "ref", 1), env=env)
    if ref.returncode != 0:
        fail(f"reference campaign exited {ref.returncode}")

    print(f"chaos-smoke: chaos campaign (--jobs {args.jobs}) "
          f"with a SIGKILLed worker")
    proc = subprocess.Popen(campaign_cmd(grid_path, out / "chaos", args.jobs),
                            env=env)
    victim = None
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline and proc.poll() is None:
        kids = children_of(proc.pid)
        if kids:
            time.sleep(0.2)  # let the worker pick up a grid cell
            for pid in kids:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    continue  # finished already; try the next one
                victim = pid
                break
            if victim is None:
                continue
            print(f"chaos-smoke: SIGKILLed worker pid {victim}")
            break
        time.sleep(0.02)
    try:
        rc = proc.wait(timeout=600)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("chaos campaign wedged after the worker kill")
    if victim is None:
        fail("no worker process appeared to kill; grid too small?")
    if rc != 0:
        fail(f"chaos campaign exited {rc}; a worker death must be survivable")

    journal = out / "chaos" / "campaign.journal.jsonl"
    docs = [json.loads(line) for line in journal.read_text().splitlines()]
    runs = [d for d in docs if d.get("type") == "run"]
    strikes = [
        d for d in runs
        if d.get("outcome") in ("error", "hung")
        and ("worker process died" in (d.get("error") or "")
             or "no heartbeat" in (d.get("error") or ""))
    ]
    if not strikes:
        fail("the worker kill left no journaled strike record")
    print(f"chaos-smoke: kill journaled as {strikes[0]['outcome']!r}: "
          f"{strikes[0]['error']}")

    final: dict[str, str] = {}
    for d in runs:  # last record for a run wins
        final[d["run_id"]] = d["outcome"]
    bad = {rid: o for rid, o in final.items() if o != "ok"}
    if bad:
        fail(f"final outcomes not all ok: {bad}")
    if len(final) != len(GRID["nprocs"]):
        fail(f"expected {len(GRID['nprocs'])} runs, journal has {len(final)}")

    ref_csv = (out / "ref" / "results.csv").read_bytes()
    chaos_csv = (out / "chaos" / "results.csv").read_bytes()
    if ref_csv != chaos_csv:
        fail("results.csv differs from the sequential reference "
             "after a worker kill")
    print(f"chaos-smoke: OK — {len(final)} runs ok, results.csv "
          f"byte-identical to the sequential reference")


if __name__ == "__main__":
    main()
