"""Figure 10: Scalability of Sweep3D, 4×4×255 cells per processor.

Paper: "For the [4×4×255] problem size, memory requirements of the
direct execution model restricted the largest target architecture that
could be simulated to 2500 processors.  With the analytical model, it
was possible to simulate a target architecture with 10,000 processors!"
The plotted runtime is the *predicted target execution time* as the
machine (and total problem) grows, with measured values at small scale.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import build_sweep3d, sweep3d_per_proc_inputs
from repro.machine import IBM_SP, MiB
from repro.parallel import estimate_program_memory, max_feasible_procs
from repro.workflow import format_table

#: Host memory available to the simulator in this experiment.
BUDGET = 500 * MiB
CANDIDATES = [64, 100, 400, 900, 2500, 4900, 10000]
MEASURED_UP_TO = 64


def inputs_for(nprocs):
    return sweep3d_per_proc_inputs(4, 4, 255, nprocs, kb=2, ab=1, niter=1)


def test_fig10_sweep3d_scaling_small(benchmark, sweep3d_wf):
    prog = sweep3d_wf.program
    simplified = sweep3d_wf.compiled.simplified

    def experiment():
        de_max = max_feasible_procs(prog, inputs_for, BUDGET, IBM_SP.host, CANDIDATES)
        am_max = max_feasible_procs(simplified, inputs_for, BUDGET, IBM_SP.host, CANDIDATES)
        rows = []
        for p in CANDIDATES:
            inputs = inputs_for(p)
            am = sweep3d_wf.run_am(inputs, p).elapsed if p <= am_max else None
            de = sweep3d_wf.run_de(inputs, p).elapsed if p <= de_max else None
            meas = (
                sweep3d_wf.run_measured(inputs, p).elapsed if p <= MEASURED_UP_TO else None
            )
            mem_de = estimate_program_memory(prog, inputs, p, IBM_SP.host)
            rows.append((p, meas, de, am, mem_de))
        return de_max, am_max, rows

    de_max, am_max, rows = run_experiment(benchmark, experiment)

    checks = []
    assert de_max == 2500, f"DE should hit the memory wall at 2500 targets (got {de_max})"
    checks.append(f"MPI-SIM-DE memory-limited to {de_max} target processors (paper: 2500)")
    assert am_max == 10000
    checks.append(f"MPI-SIM-AM reaches {am_max} target processors (paper: 10,000!)")
    # where both run, they agree
    for p, meas, de, am, _ in rows:
        if de is not None and am is not None:
            assert abs(de - am) / de < 0.15
    checks.append("AM tracks DE within 15% wherever direct execution is feasible")

    table = format_table(
        ["target procs", "measured(s)", "MPI-SIM-DE(s)", "MPI-SIM-AM(s)", "DE sim memory"],
        [[p, m, d, a, f"{mem / 2**20:.0f}MiB"] for p, m, d, a, mem in rows],
        title=f"Sweep3D scalability, 4x4x255/proc, {BUDGET // 2**20}MiB host budget (Fig. 10)",
    )
    emit("fig10_sweep3d_scaling_small", table + "\n" + shape_note(checks))
