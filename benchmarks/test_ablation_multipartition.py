"""Ablation: multipartitioning vs 2-D grid pipelines for NAS SP.

NPB 2.3 SP uses diagonal *multipartitioning* — the decomposition that
keeps every processor busy at every ADI sweep stage — while a simpler
2-D processor grid pays pipeline fill/drain bubbles in x_solve and
y_solve.  (Supporting multipartitioning in generated code is a central
theme of the dhpf compiler work this paper builds on.)  This bench uses
the simulator as the measurement instrument the authors would have
wanted: same problem, same machine, two decompositions, one curve each.

Expected shape: multipartitioning wins at every processor count, and
its worst-rank utilization stays far above the grid pipeline's at scale
(block-rounding at awkward P keeps the *runtime* advantage roughly
flat rather than growing, but the utilization gap widens).
"""

from _common import emit, run_experiment, shape_note

from repro.apps import build_nas_sp, build_nas_sp_multipartition, sp_inputs, sp_multi_inputs
from repro.ir import make_factory
from repro.machine import IBM_SP
from repro.sim import ExecMode, Simulator
from repro.workflow import format_table

PROCS = [4, 16, 36, 64]
CLS = "A"


def test_ablation_multipartition(benchmark):
    grid_prog = build_nas_sp()
    multi_prog = build_nas_sp_multipartition()

    def experiment():
        rows = []
        for p in PROCS:
            grid = Simulator(
                p, make_factory(grid_prog, sp_inputs(CLS, p, niter=2)), IBM_SP,
                mode=ExecMode.DE,
            ).run()
            multi = Simulator(
                p, make_factory(multi_prog, sp_multi_inputs(CLS, niter=2)), IBM_SP,
                mode=ExecMode.DE,
            ).run()
            # utilization: compute share of elapsed, worst rank
            grid_util = min(pr.compute_time / pr.finish_time for pr in grid.stats.procs)
            multi_util = min(pr.compute_time / pr.finish_time for pr in multi.stats.procs)
            rows.append([p, grid.elapsed, multi.elapsed, grid.elapsed / multi.elapsed,
                         grid_util, multi_util])
        return rows

    rows = run_experiment(benchmark, experiment)

    checks = []
    speedups = [r[3] for r in rows]
    assert all(s > 1.1 for s in speedups), "multipartitioning must win at every P"
    checks.append(
        f"multipartitioning outruns the grid pipeline at every P "
        f"({speedups[0]:.2f}x at P=4 ... {speedups[-1]:.2f}x at P=64)"
    )
    grid_util_64 = rows[-1][4]
    multi_util_64 = rows[-1][5]
    assert multi_util_64 > grid_util_64
    checks.append(
        f"worst-rank compute utilization at P=64: {multi_util_64:.0%} (multi) vs "
        f"{grid_util_64:.0%} (grid) — the fill/drain bubbles multipartitioning removes"
    )

    table = format_table(
        ["procs", "grid 2-D (s)", "multipartition (s)", "grid/multi",
         "grid util", "multi util"],
        rows,
        title=f"Decomposition ablation: NAS SP class {CLS}, 2 steps (IBM SP)",
    )
    emit("ablation_multipartition", table + "\n" + shape_note(checks))
