"""Table 1: Memory usage of MPI-SIM-DE vs MPI-SIM-AM.

Paper rows (total simulator memory and reduction factor):
Sweep3D 4×4×255/proc @ 4900 procs (98×), Sweep3D @ 100 (96×),
Sweep3D 6×6×1000/proc @ 64 (1768×/1762×), SP class A @ 4 (1.9×... 14×),
SP class C @ 64 (5×), Tomcatv 2048² @ 64 (1993×).

Reproduced shape: two-to-three orders of magnitude application-memory
reduction for Sweep3D and Tomcatv, a visibly smaller factor for SP
(which must retain its ``cell_size`` tables, their producers, and a
large dummy buffer relative to its data), and reductions that *grow*
with the problem size.  Application memory isolates the compiler's
effect; totals including the kernel's per-thread state are also
reported.  One row is cross-checked against a live simulation.
"""

import pytest
from _common import emit, run_experiment, shape_note

from repro.apps import (
    build_nas_sp,
    build_sweep3d,
    build_tomcatv,
    sp_inputs,
    sweep3d_per_proc_inputs,
    tomcatv_inputs,
)
from repro.codegen import compile_program
from repro.ir import make_factory
from repro.machine import IBM_SP
from repro.parallel import estimate_program_memory
from repro.sim import ExecMode, Simulator
from repro.workflow import format_bytes, format_table

ROWS = [
    # (label, build, inputs_fn, nprocs); Sweep3D pipelines thin k-blocks
    # (mk ~ 5-10 planes, as the real kernel does), which is what keeps the
    # dummy communication buffer — the AM version's only sizable data — tiny
    ("Sweep3D 4x4x255/proc", build_sweep3d, lambda p: sweep3d_per_proc_inputs(4, 4, 255, p, kb=51), 4900),
    ("Sweep3D 4x4x255/proc", build_sweep3d, lambda p: sweep3d_per_proc_inputs(4, 4, 255, p, kb=51), 100),
    ("Sweep3D 6x6x1000/proc", build_sweep3d, lambda p: sweep3d_per_proc_inputs(6, 6, 1000, p, kb=100), 64),
    ("SP class A", build_nas_sp, lambda p: sp_inputs("A", p), 4),
    ("SP class C", build_nas_sp, lambda p: sp_inputs("C", p), 64),
    ("Tomcatv 2048x2048", build_tomcatv, lambda p: tomcatv_inputs(2048), 64),
]


def test_table1_memory(benchmark):
    def experiment():
        results = []
        compiled_cache = {}
        for label, build, inputs_fn, nprocs in ROWS:
            if build not in compiled_cache:
                prog = build()
                compiled_cache[build] = (prog, compile_program(prog))
            prog, compiled = compiled_cache[build]
            inputs = inputs_fn(nprocs)
            de_app = estimate_program_memory(prog, inputs, nprocs, IBM_SP.host, include_kernel=False)
            am_app = estimate_program_memory(
                compiled.simplified, inputs, nprocs, IBM_SP.host, include_kernel=False
            )
            de_tot = estimate_program_memory(prog, inputs, nprocs, IBM_SP.host)
            am_tot = estimate_program_memory(compiled.simplified, inputs, nprocs, IBM_SP.host)
            results.append((label, nprocs, de_app, am_app, de_tot, am_tot))
        return results, compiled_cache

    results, compiled_cache = run_experiment(benchmark, experiment)

    rows = []
    factors = {}
    for label, nprocs, de_app, am_app, de_tot, am_tot in results:
        factor = de_app / am_app
        factors[(label, nprocs)] = factor
        rows.append(
            [label, nprocs, format_bytes(de_app), format_bytes(am_app), round(factor),
             format_bytes(de_tot), format_bytes(am_tot)]
        )

    checks = []
    # 2-3 orders of magnitude for Sweep3D (large) and Tomcatv
    big = factors[("Sweep3D 6x6x1000/proc", 64)]
    assert big > 100
    checks.append(f"Sweep3D 6x6x1000/proc reduction {big:.0f}x (paper: 3 orders of magnitude)")
    tom = factors[("Tomcatv 2048x2048", 64)]
    assert tom > 100
    checks.append(f"Tomcatv reduction {tom:.0f}x (paper: 3 orders of magnitude)")
    small = factors[("Sweep3D 4x4x255/proc", 4900)]
    assert small > 10
    checks.append(f"Sweep3D 4x4x255/proc reduction {small:.0f}x (paper: ~2 orders)")
    # SP reductions are the smallest (cell_size machinery survives slicing)
    sp_a = factors[("SP class A", 4)]
    sp_c = factors[("SP class C", 64)]
    assert sp_a < tom and sp_a < big
    checks.append(f"SP reductions ({sp_a:.0f}x / {sp_c:.0f}x) smallest, as in the paper")
    # larger problems reduce more (paper: 98x -> 1768x between the sizes)
    assert big > small
    checks.append("the reduction factor grows with per-processor problem size")

    # cross-check one row against live memory accounting
    prog, compiled = compiled_cache[build_tomcatv]
    inputs = tomcatv_inputs(2048)
    live_de = Simulator(
        8, make_factory(prog, {**inputs, "itmax": 1}), IBM_SP, mode=ExecMode.DE
    ).run()
    est_de = estimate_program_memory(prog, {**inputs, "itmax": 1}, 8, IBM_SP.host)
    assert live_de.memory.total_bytes == est_de
    checks.append("static estimates match the kernel's live accounting exactly")

    table = format_table(
        ["configuration", "procs", "DE app mem", "AM app mem", "reduction",
         "DE total", "AM total"],
        rows,
        title="Memory usage, MPI-SIM-DE vs MPI-SIM-AM (Table 1)",
    )
    emit("table1_memory", table + "\n" + shape_note(checks))
