"""Session-scoped fixtures shared by the experiment benchmarks."""

from __future__ import annotations

import pytest

from repro.apps import (
    build_nas_sp,
    build_sweep3d,
    build_tomcatv,
    sp_inputs,
    sweep3d_inputs,
    tomcatv_inputs,
)
from repro.machine import IBM_SP
from repro.workflow import ModelingWorkflow

#: Calibration setup: the paper measures task times on 16 processors.
CALIB_PROCS = 16


@pytest.fixture(scope="session")
def tomcatv_wf() -> ModelingWorkflow:
    """Tomcatv on the IBM SP, calibrated at 16 processors (Figs. 3/7/13)."""
    wf = ModelingWorkflow(
        build_tomcatv(),
        IBM_SP,
        calib_inputs=tomcatv_inputs(512, itmax=5),
        calib_nprocs=CALIB_PROCS,
    )
    wf.calibrate()
    return wf


@pytest.fixture(scope="session")
def sweep3d_wf() -> ModelingWorkflow:
    """Sweep3D on the IBM SP, calibrated at 16 processors (Figs. 4/7/10/11/14/15/16)."""
    wf = ModelingWorkflow(
        build_sweep3d(),
        IBM_SP,
        calib_inputs=sweep3d_inputs(150, 150, 150, CALIB_PROCS, kb=4, ab=2, mmi=3, niter=2),
        calib_nprocs=CALIB_PROCS,
    )
    wf.calibrate()
    return wf


@pytest.fixture(scope="session")
def sp_wf() -> ModelingWorkflow:
    """NAS SP on the IBM SP; w_i from class A on 16 processors only —
    reused for every class, exactly as in the paper (Figs. 5/6/7/12)."""
    wf = ModelingWorkflow(
        build_nas_sp(),
        IBM_SP,
        calib_inputs=sp_inputs("A", CALIB_PROCS, niter=3),
        calib_nprocs=CALIB_PROCS,
    )
    wf.calibrate()
    return wf
