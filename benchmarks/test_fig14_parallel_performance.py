"""Figure 14: Parallel performance of MPI-Sim (Sweep3D 150³, 64 targets).

Paper: the runtime of both simulator versions as the number of *host*
processors grows from 1 to 64, against the measured application time.
"The data for the single processor MPI-SIM-DE simulation is not
available because the simulation exceeds the available memory.  Clearly,
both MPI-SIM-DE and MPI-SIM-AM scale well. [...] the runtime of
MPI-SIM-AM is on the average 5.4 times faster than that of MPI-SIM-DE."
"""

import pytest
from _common import emit, run_experiment, shape_note

from repro.apps import sweep3d_inputs
from repro.machine import IBM_SP, MiB
from repro.parallel import estimate_program_memory, simulate_host_execution
from repro.workflow import format_table

TARGETS = 64
HOSTS = [1, 2, 4, 8, 16, 32, 64]
#: Per-host memory in this experiment: small enough that one host cannot
#: hold all 64 target processes' data under direct execution.
HOST_MEM = 64 * MiB


@pytest.fixture(scope="module")
def fig14_data(sweep3d_wf):
    inputs = sweep3d_inputs(150, 150, 150, TARGETS, kb=4, ab=2, mmi=3, niter=2)
    meas = sweep3d_wf.run_measured(inputs, TARGETS).elapsed
    de_run = sweep3d_wf.run_de(inputs, TARGETS, collect_trace=True)
    am_run = sweep3d_wf.run_am(inputs, TARGETS, collect_trace=True)
    de_mem = estimate_program_memory(sweep3d_wf.program, inputs, TARGETS, IBM_SP.host)
    am_mem = estimate_program_memory(
        sweep3d_wf.compiled.simplified, inputs, TARGETS, IBM_SP.host
    )
    rows = []
    for h in HOSTS:
        de_ok = de_mem / h <= HOST_MEM
        am_ok = am_mem / h <= HOST_MEM
        de_t = simulate_host_execution(de_run.trace, h, IBM_SP).wall_time if de_ok else None
        am_t = simulate_host_execution(am_run.trace, h, IBM_SP).wall_time if am_ok else None
        rows.append((h, de_t, am_t, meas))
    return rows


def test_fig14_parallel_performance(benchmark, fig14_data):
    rows = run_experiment(benchmark, lambda: fig14_data)

    checks = []
    # DE @ 1 host exceeds memory (the paper's missing data point)
    assert rows[0][1] is None
    checks.append("single-host MPI-SIM-DE infeasible: the simulation exceeds host memory")
    assert all(am is not None for _, _, am, _ in rows)
    checks.append("MPI-SIM-AM runs even on a single host")
    # both scale: runtimes decrease with hosts
    de_times = [de for _, de, _, _ in rows if de is not None]
    am_times = [am for _, _, am, _ in rows]
    assert all(b < a for a, b in zip(de_times, de_times[1:]))
    assert all(b < a for a, b in zip(am_times, am_times[1:]))
    checks.append("both simulators' runtimes fall monotonically with host processors")
    # AM is several times faster than DE at every common host count
    ratios = [de / am for _, de, am, _ in rows if de is not None]
    avg_ratio = sum(ratios) / len(ratios)
    assert avg_ratio > 2.0
    checks.append(f"MPI-SIM-AM averages {avg_ratio:.1f}x faster than MPI-SIM-DE (paper: 5.4x)")

    table = format_table(
        ["host procs", "MPI-SIM-DE(s)", "MPI-SIM-AM(s)", "measured app(s)"],
        [list(r) for r in rows],
        title=f"Parallel performance, Sweep3D 150^3, {TARGETS} targets (Fig. 14)",
    )
    emit("fig14_parallel_performance", table + "\n" + shape_note(checks))
