"""Ablation: decomposing MPI-SIM-AM's prediction error.

Section 4.2 reasons about error sources indirectly ("the slightly
higher errors [...] must come from the errors in task time
estimation").  The machine model makes the decomposition explicit: by
switching off, one at a time, the ground truth's communication
perturbations and its cache-working-set dependence, each error source
can be isolated.

* full ground truth            → total AM error;
* no communication perturbation → remaining error ≈ task-time
  (cache-extrapolation + branch-averaging) component;
* flat cache                    → remaining error ≈ communication-model
  component;
* neither                       → residual (noise floor / branch jitter).
"""

from dataclasses import replace

from _common import emit, run_experiment, shape_note

from repro.apps import build_sweep3d, sweep3d_inputs
from repro.machine import IBM_SP, PerturbationParams
from repro.workflow import ModelingWorkflow, format_table

NPROCS = 4  # far from the 16-proc calibration: large cache extrapolation
CALIB = 16

NO_COMM_PERT = PerturbationParams(
    latency_factor=1.0, bandwidth_factor=1.0, comm_noise_sigma=0.0,
    cpu_noise_sigma=IBM_SP.truth.cpu_noise_sigma, collective_factor=1.0,
)
FLAT_CACHE_CPU = replace(IBM_SP.cpu, l2_factor=1.0, mem_factor=1.0)

VARIANTS = [
    ("full ground truth", IBM_SP),
    ("no comm perturbation", replace(IBM_SP, truth=NO_COMM_PERT)),
    ("flat cache", replace(IBM_SP, cpu=FLAT_CACHE_CPU)),
    ("neither", replace(IBM_SP, cpu=FLAT_CACHE_CPU, truth=NO_COMM_PERT)),
]


def test_ablation_error_sources(benchmark):
    def experiment():
        rows = []
        for label, machine in VARIANTS:
            wf = ModelingWorkflow(
                build_sweep3d(),
                machine,
                calib_inputs=sweep3d_inputs(96, 96, 96, CALIB, kb=4, ab=2, niter=1),
                calib_nprocs=CALIB,
            )
            wf.calibrate()
            inputs = sweep3d_inputs(96, 96, 96, NPROCS, kb=4, ab=2, niter=1)
            meas = wf.run_measured(inputs, NPROCS).elapsed
            am = wf.run_am(inputs, NPROCS).elapsed
            rows.append([label, meas, am, 100 * abs(am - meas) / meas])
        return rows

    rows = run_experiment(benchmark, experiment)
    err = {label: e for label, _, _, e in rows}

    checks = []
    # removing either source shrinks the error; removing both nearly zeroes it
    assert err["neither"] < err["full ground truth"]
    assert err["flat cache"] <= err["full ground truth"] + 1.0
    assert err["neither"] < 5.0  # CPU noise + fixup branch averaging remain
    checks.append(
        f"total {err['full ground truth']:.1f}% -> {err['no comm perturbation']:.1f}% "
        "without comm-model error (task-time component)"
    )
    checks.append(
        f"-> {err['flat cache']:.1f}% without cache effects (comm-model component)"
    )
    checks.append(f"-> {err['neither']:.1f}% residual with both removed (noise floor)")
    # at P=4 (far from calibration) the cache term dominates, per Sec. 4.2
    assert err["no comm perturbation"] > err["flat cache"]
    checks.append(
        "task-time estimation dominates far from the calibration point — the paper's "
        "Sec. 4.2 conclusion"
    )

    table = format_table(
        ["ground-truth variant", "measured(s)", "MPI-SIM-AM(s)", "%err"],
        rows,
        title="Ablation: decomposition of MPI-SIM-AM error (Sweep3D 96^3, P=4, calib @16)",
    )
    emit("ablation_error_sources", table + "\n" + shape_note(checks))
