"""Figure 16: Simulator performance for large systems (64 host procs).

Paper: Sweep3D with the 6×6×1000 per-processor size, 64 host
processors, target-system size growing (so the total problem grows
too): the optimized simulator's runtime stays clearly below the
original's — "in the best case [...] the runtime of the optimized
simulator is nearly half the runtime of the original simulator."
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sweep3d_per_proc_inputs
from repro.machine import IBM_SP
from repro.parallel import simulate_host_execution
from repro.workflow import format_table

HOSTS = 64
TARGETS = [16, 64, 144, 256, 400]


def test_fig16_large_system_perf(benchmark, sweep3d_wf):
    def experiment():
        rows = []
        for p in TARGETS:
            inputs = sweep3d_per_proc_inputs(6, 6, 1000, p, kb=2, ab=1, niter=1)
            de_run = sweep3d_wf.run_de(inputs, p, collect_trace=True)
            am_run = sweep3d_wf.run_am(inputs, p, collect_trace=True)
            de_t = simulate_host_execution(de_run.trace, HOSTS, IBM_SP).wall_time
            am_t = simulate_host_execution(am_run.trace, HOSTS, IBM_SP).wall_time
            rows.append((p, de_t, am_t))
        return rows

    rows = run_experiment(benchmark, experiment)

    checks = []
    assert all(am < de for _, de, am in rows)
    checks.append("MPI-SIM-AM is faster than MPI-SIM-DE at every target-system size")
    best = max(de / am for _, de, am in rows)
    assert best >= 1.8
    checks.append(f"best-case advantage {best:.1f}x (paper: 'nearly half the runtime' ~ 2x)")
    # both grow with the target system (total problem grows with it)
    de_times = [de for _, de, _ in rows]
    am_times = [am for _, _, am in rows]
    assert de_times[-1] > de_times[0] and am_times[-1] > am_times[0]
    checks.append("simulator runtimes grow with the simulated system size")

    table = format_table(
        ["target procs", "MPI-SIM-DE(s)", "MPI-SIM-AM(s)", "DE/AM"],
        [[p, de, am, de / am] for p, de, am in rows],
        title=f"Simulator runtime on {HOSTS} hosts, Sweep3D 6x6x1000/proc (Fig. 16)",
    )
    emit("fig16_large_system_perf", table + "\n" + shape_note(checks))
