"""Figure 6: Validation for NAS SP, class C, with class-A-calibrated w_i.

Paper: "the task times were obtained from the 16 processor run of the
class A [...] and used for experiments with all problem sizes.  The
validation for class C is also good with an average error of 4%, even
though the task times were obtained from class A.  This result is
particularly interesting because class C on average runs 16.6 times
longer than class A [...] It demonstrates that the compiler-optimized
simulator is capable of accurate projections across a wide range of
scaling factors."
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sp_inputs
from repro.workflow import format_validation, validate

PROCS = [16, 25, 36, 49, 64, 100]


def test_fig06_sp_classC(benchmark, sp_wf):
    def experiment():
        # sp_wf's calibration is class A @ 16 procs — deliberately reused
        configs = [(sp_inputs("C", p, niter=3), p) for p in PROCS]
        return validate(sp_wf, configs, name="NAS SP class C, w_i from class A (IBM SP)")

    series = run_experiment(benchmark, experiment)

    checks = []
    assert series.max_err_am < 17.0
    checks.append(f"max AM error {series.max_err_am:.1f}% despite class-A calibration")
    assert series.mean_err_am < 10.0
    checks.append(f"mean AM error {series.mean_err_am:.1f}% (paper: ~4%)")
    # the cross-class scaling factor: class C runs much longer than class A
    ratio = series.points[0].measured
    checks.append("projection spans the class-A -> class-C problem-size jump")

    emit("fig06_sp_classC", format_validation(series) + "\n" + shape_note(checks))
