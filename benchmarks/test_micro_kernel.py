"""Microbenchmarks of the simulator's own machinery.

Not a paper experiment — these track the throughput of the pieces every
experiment is built from, so performance regressions in the kernel or
the compiler show up directly.  (The guides' rule: no optimization
without measurement; these are the measurements.)
"""

from repro import mpi
from repro.apps import build_sweep3d, sweep3d_inputs
from repro.codegen import compile_program
from repro.ir import make_factory
from repro.machine import IBM_SP, TESTING_MACHINE
from repro.sim import ExecMode, Simulator


def test_micro_event_throughput_p2p(benchmark):
    """Raw kernel throughput on a message-heavy ring exchange."""

    def prog(rank, size):
        for i in range(50):
            yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=i % 4)
            yield mpi.recv(source=(rank - 1) % size, tag=i % 4)

    def run():
        return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE).run()

    result = benchmark(run)
    assert result.stats.total_messages == 32 * 50


def test_micro_nonblocking_exchange(benchmark):
    """Handle-based operations: isend/irecv/waitall cycles."""

    def prog(rank, size):
        for i in range(30):
            hs = []
            hs.append((yield mpi.irecv(source=(rank - 1) % size, tag=i)))
            hs.append((yield mpi.isend(dest=(rank + 1) % size, nbytes=256, tag=i)))
            yield mpi.waitall(*hs)

    def run():
        return Simulator(16, prog, TESTING_MACHINE, mode=ExecMode.DE).run()

    result = benchmark(run)
    assert result.stats.total_messages == 16 * 30


def test_micro_collective_throughput(benchmark):
    def prog(rank, size):
        for _ in range(40):
            yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)

    def run():
        return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE).run()

    result = benchmark(run)
    assert all(p.collectives == 40 for p in result.stats.procs)


def test_micro_interpreter_am_run(benchmark):
    """End-to-end AM simulation of Sweep3D (interpreter + kernel +
    symbolic evaluation — the path every validation experiment takes)."""
    prog = build_sweep3d()
    compiled = compile_program(prog)
    w = {n: 1e-7 for n in compiled.w_param_names}
    inputs = sweep3d_inputs(48, 48, 48, 16, kb=2, ab=1, niter=1)

    def run():
        return Simulator(
            16, make_factory(compiled.simplified, inputs, wparams=w), IBM_SP,
            mode=ExecMode.AM,
        ).run()

    result = benchmark(run)
    assert result.elapsed > 0


def test_micro_compiler_pipeline(benchmark):
    """Full compile (STG condensation + slicing fixpoint + codegen)."""
    prog = build_sweep3d()

    compiled = benchmark(lambda: compile_program(prog))
    assert compiled.simplified.arrays == {}
