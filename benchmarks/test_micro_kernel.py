"""Microbenchmarks of the simulator's own machinery.

Not a paper experiment — these track the throughput of the pieces every
experiment is built from, so performance regressions in the kernel or
the compiler show up directly.  (The guides' rule: no optimization
without measurement; these are the measurements.)

Each timed benchmark also records its statistics and events/sec to
``out/BENCH_experiments.json`` via :func:`_common.bench_timed`; the
committed repo-root ``BENCH_kernel.json`` holds the pre/post fast-path
baseline that ``perf_smoke.py`` gates CI against.
"""

import json
from pathlib import Path

from _common import bench_timed

from repro import mpi
from repro.apps import build_sweep3d, sweep3d_inputs
from repro.codegen import compile_program
from repro.ir import make_factory
from repro.machine import IBM_SP, TESTING_MACHINE
from repro.sim import ExecMode, Simulator
from repro.sim.engine import Simulator as _Engine

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_micro_event_throughput_p2p(benchmark):
    """Raw kernel throughput on a message-heavy ring exchange."""

    def prog(rank, size):
        for i in range(50):
            yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=i % 4)
            yield mpi.recv(source=(rank - 1) % size, tag=i % 4)

    def run():
        return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE).run()

    result = bench_timed(benchmark, run, extra={"events": 32 * 50 * 2})
    assert result.stats.total_messages == 32 * 50


def test_micro_nonblocking_exchange(benchmark):
    """Handle-based operations: isend/irecv/waitall cycles."""

    def prog(rank, size):
        for i in range(30):
            hs = []
            hs.append((yield mpi.irecv(source=(rank - 1) % size, tag=i)))
            hs.append((yield mpi.isend(dest=(rank + 1) % size, nbytes=256, tag=i)))
            yield mpi.waitall(*hs)

    def run():
        return Simulator(16, prog, TESTING_MACHINE, mode=ExecMode.DE).run()

    result = bench_timed(benchmark, run, extra={"events": 16 * 30 * 3})
    assert result.stats.total_messages == 16 * 30


def test_micro_collective_throughput(benchmark):
    def prog(rank, size):
        for _ in range(40):
            yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)

    def run():
        return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE).run()

    result = bench_timed(benchmark, run, extra={"events": 32 * 40})
    assert all(p.collectives == 40 for p in result.stats.procs)


def test_micro_interpreter_am_run(benchmark):
    """End-to-end AM simulation of Sweep3D (interpreter + kernel +
    symbolic evaluation — the path every validation experiment takes)."""
    prog = build_sweep3d()
    compiled = compile_program(prog)
    w = {n: 1e-7 for n in compiled.w_param_names}
    inputs = sweep3d_inputs(48, 48, 48, 16, kb=2, ab=1, niter=1)

    def run():
        return Simulator(
            16, make_factory(compiled.simplified, inputs, wparams=w), IBM_SP,
            mode=ExecMode.AM,
        ).run()

    result = bench_timed(benchmark, run)
    assert result.elapsed > 0


def test_micro_compiler_pipeline(benchmark):
    """Full compile (STG condensation + slicing fixpoint + codegen)."""
    prog = build_sweep3d()

    compiled = bench_timed(benchmark, lambda: compile_program(prog))
    assert compiled.simplified.arrays == {}


# -- fast-path guarantees ------------------------------------------------------


def test_observability_gated_once_per_run():
    """Disabled observability must cost zero per-event calls.

    The kernel checks ``TRACER.enabled``/``METRICS.enabled`` exactly once
    per ``run()`` and dispatches to the bare event loop; a regression
    that reintroduces per-event span or metrics calls shows up here as a
    call count that scales with the event count.
    """
    from repro.obs.metrics import METRICS
    from repro.obs.spans import TRACER

    assert not TRACER.enabled and not METRICS.enabled
    calls = {"span": 0, "counter": 0, "record_run": 0}
    orig_span, orig_counter = TRACER.span, METRICS.counter
    orig_record = METRICS.record_run

    def counting_span(*a, **kw):
        calls["span"] += 1
        return orig_span(*a, **kw)

    def counting_counter(*a, **kw):
        calls["counter"] += 1
        return orig_counter(*a, **kw)

    def counting_record(*a, **kw):
        calls["record_run"] += 1
        return orig_record(*a, **kw)

    TRACER.span = counting_span
    METRICS.counter = counting_counter
    METRICS.record_run = counting_record
    try:
        for iters in (5, 50):  # 10x the events, same (zero) overhead calls

            def prog(rank, size, iters=iters):
                for i in range(iters):
                    yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=0)
                    yield mpi.recv(source=(rank - 1) % size, tag=0)

            stats = Simulator(8, prog, TESTING_MACHINE, mode=ExecMode.DE).run().stats
            assert stats.total_events == 8 * iters * 2
            assert calls == {"span": 0, "counter": 0, "record_run": 0}
    finally:
        TRACER.span, METRICS.counter = orig_span, orig_counter
        METRICS.record_run = orig_record


def test_hot_loop_has_no_observability_indirection():
    """The event-loop bytecode itself must not reference TRACER/METRICS.

    Structural complement to the call-count test: the per-event hot
    paths (`_drain`, `_drain_budgeted`, `_resume`) may consult neither
    observability singleton — that decision belongs to `run()`, once.
    """
    for fn in (_Engine._drain, _Engine._drain_budgeted, _Engine._resume):
        names = fn.__code__.co_names
        assert "TRACER" not in names, fn.__qualname__
        assert "METRICS" not in names, fn.__qualname__


def test_committed_speedup_record():
    """BENCH_kernel.json must document >=1.5x events/sec over the
    pre-fast-path kernel for every workload (the PR's acceptance bar)."""
    book = json.loads((REPO_ROOT / "BENCH_kernel.json").read_text())
    for label, w in book["workloads"].items():
        ratio = w["post_events_per_sec"] / w["pre_events_per_sec"]
        assert ratio >= 1.5, f"{label}: committed speedup only {ratio:.2f}x"
