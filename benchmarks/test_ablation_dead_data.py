"""Ablation: where does the memory win come from?

The compiler applies two distinct memory optimizations: abstracting
computation (which by itself lets *unused* arrays go) and slicing-driven
*data elimination* (dropping array declarations and substituting the
dummy communication buffer).  This bench compares the simplified
program's footprint with data elimination on and off: without it, the
simplified program still allocates every application array, and almost
the whole of Table 1's reduction disappears — the paper's claim that the
savings come from eliminating data, not merely from skipping
computation.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import build_sweep3d, build_tomcatv, sweep3d_per_proc_inputs, tomcatv_inputs
from repro.codegen import compile_program
from repro.machine import IBM_SP
from repro.parallel import estimate_program_memory
from repro.workflow import format_bytes, format_table

CASES = [
    ("Sweep3D 6x6x1000/proc @64", build_sweep3d, lambda: sweep3d_per_proc_inputs(6, 6, 1000, 64, kb=100), 64),
    ("Tomcatv 2048 @64", build_tomcatv, lambda: tomcatv_inputs(2048), 64),
]


def test_ablation_dead_data(benchmark):
    def experiment():
        rows = []
        for label, build, inputs_fn, nprocs in CASES:
            prog = build()
            inputs = inputs_fn()
            full = compile_program(prog)
            no_elim = compile_program(prog, eliminate_dead_data=False)
            de = estimate_program_memory(prog, inputs, nprocs, IBM_SP.host, include_kernel=False)
            with_elim = estimate_program_memory(
                full.simplified, inputs, nprocs, IBM_SP.host, include_kernel=False
            )
            without_elim = estimate_program_memory(
                no_elim.simplified, inputs, nprocs, IBM_SP.host, include_kernel=False
            )
            rows.append((label, de, without_elim, with_elim))
        return rows

    rows = run_experiment(benchmark, experiment)

    checks = []
    for label, de, without_elim, with_elim in rows:
        factor_without = de / without_elim
        factor_with = de / with_elim
        # abstraction alone saves (almost) nothing; slicing does the work
        assert factor_without < 1.5
        assert factor_with > 50 * factor_without
        checks.append(
            f"{label}: reduction {factor_without:.1f}x without data elimination vs "
            f"{factor_with:.0f}x with it"
        )

    table = format_table(
        ["configuration", "original (DE)", "simplified, no data elim.", "simplified, full"],
        [[l, format_bytes(a), format_bytes(b), format_bytes(c)] for l, a, b, c in rows],
        title="Ablation: slicing-driven data elimination (application memory)",
    )
    emit("ablation_dead_data", table + "\n" + shape_note(checks))
