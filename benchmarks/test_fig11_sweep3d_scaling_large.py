"""Figure 11: Scalability of Sweep3D, 6×6×1000 cells per processor.

Paper: "For the [6×6×1000] problem size, direct execution could not be
used with more than 400 processors, whereas the analytical model scaled
up to 6400 processors.  Note that instead of scaling the system size,
we could scale the problem size instead [...], in order to simulate
much larger problems."
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sweep3d_per_proc_inputs
from repro.machine import IBM_SP, MiB
from repro.parallel import max_feasible_procs
from repro.workflow import format_table

BUDGET = 700 * MiB
CANDIDATES = [100, 400, 900, 1600, 2500, 4900, 6400, 10000]
RUN_POINTS = [64, 400, 1600, 6400]  # points actually simulated for the curve


def inputs_for(nprocs):
    return sweep3d_per_proc_inputs(6, 6, 1000, nprocs, kb=2, ab=1, niter=1)


def test_fig11_sweep3d_scaling_large(benchmark, sweep3d_wf):
    prog = sweep3d_wf.program
    simplified = sweep3d_wf.compiled.simplified

    def experiment():
        de_max = max_feasible_procs(prog, inputs_for, BUDGET, IBM_SP.host, CANDIDATES)
        am_max = max_feasible_procs(simplified, inputs_for, BUDGET, IBM_SP.host, CANDIDATES)
        rows = []
        for p in RUN_POINTS:
            inputs = inputs_for(p)
            am = sweep3d_wf.run_am(inputs, p).elapsed if p <= am_max else None
            de = sweep3d_wf.run_de(inputs, p).elapsed if p <= de_max else None
            meas = sweep3d_wf.run_measured(inputs, p).elapsed if p <= 64 else None
            rows.append((p, meas, de, am))
        return de_max, am_max, rows

    de_max, am_max, rows = run_experiment(benchmark, experiment)

    checks = []
    assert de_max == 400, f"DE should cap at 400 targets (got {de_max})"
    checks.append(f"MPI-SIM-DE memory-limited to {de_max} target processors (paper: 400)")
    assert am_max == 6400
    checks.append(f"MPI-SIM-AM reaches {am_max} target processors (paper: 6400)")
    # total problem at the AM limit: 6x6x1000 x 6400 = 230M cells
    cells = 6 * 6 * 1000 * am_max
    checks.append(f"largest simulated problem: {cells / 1e6:.0f}M cells on {am_max} targets")
    for p, meas, de, am in rows:
        if de is not None and am is not None:
            assert abs(de - am) / de < 0.15
    checks.append("AM tracks DE within 15% on the commonly-feasible points")

    table = format_table(
        ["target procs", "measured(s)", "MPI-SIM-DE(s)", "MPI-SIM-AM(s)"],
        [list(r) for r in rows],
        title=f"Sweep3D scalability, 6x6x1000/proc, {BUDGET // 2**20}MiB host budget (Fig. 11)",
    )
    emit("fig11_sweep3d_scaling_large", table + "\n" + shape_note(checks))
