"""Figure 4: Validation of Sweep3D on the IBM SP, fixed 150³ total size.

Paper: "the predicted and measured values are again very close and
differ by at most 7%" for up to 64 processors.  Reproduced shape: AM
within the paper's overall 17% envelope (target ≲ 7–10%), DE closer
still, runtime decreasing with processor count.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sweep3d_inputs
from repro.workflow import format_validation, validate

PROCS = [4, 8, 16, 32, 64]


def test_fig04_sweep3d_validation(benchmark, sweep3d_wf):
    def experiment():
        configs = [
            (sweep3d_inputs(150, 150, 150, p, kb=4, ab=2, mmi=3, niter=2), p) for p in PROCS
        ]
        return validate(sweep3d_wf, configs, name="Sweep3D 150x150x150 (IBM SP)")

    series = run_experiment(benchmark, experiment)

    checks = []
    assert series.max_err_am < 17.0, "AM must stay inside the paper's 17% envelope"
    assert series.mean_err_am < 8.0
    checks.append(
        f"max AM error {series.max_err_am:.1f}%, mean {series.mean_err_am:.1f}% "
        "(paper: <=7% on this app; <17% overall)"
    )
    assert series.max_err_de < 8.0
    checks.append(f"max DE error {series.max_err_de:.1f}% — close to measurement")
    times = [p.measured for p in series.points]
    assert all(b < a for a, b in zip(times, times[1:]))
    checks.append("fixed-size runtime decreases monotonically with processors")

    emit("fig04_sweep3d_validation", format_validation(series) + "\n" + shape_note(checks))
