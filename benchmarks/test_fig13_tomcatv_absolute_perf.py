"""Figure 13: Absolute performance of MPI-Sim for Tomcatv (2048×2048).

Paper: "Even more dramatic results were obtained with Tomcatv, where
the runtime of MPI-SIM-AM does not exceed 2 seconds for all processor
configurations as compared to the runtime of the application which
ranges from 13 to 100 seconds."  Reproduced shape: AM's simulator
runtime is a small, nearly-flat fraction of the application runtime at
every processor count; DE's is above the application's.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import tomcatv_inputs
from repro.machine import IBM_SP
from repro.parallel import simulate_host_execution
from repro.workflow import format_table

PROCS = [4, 8, 16, 32, 64]


def test_fig13_tomcatv_absolute_perf(benchmark, tomcatv_wf):
    def experiment():
        rows = []
        inputs = tomcatv_inputs(2048, itmax=3)
        for p in PROCS:
            meas = tomcatv_wf.run_measured(inputs, p).elapsed
            de_trace = tomcatv_wf.run_de(inputs, p, collect_trace=True).trace
            am_trace = tomcatv_wf.run_am(inputs, p, collect_trace=True).trace
            de_host = simulate_host_execution(de_trace, p, IBM_SP).wall_time
            am_host = simulate_host_execution(am_trace, p, IBM_SP).wall_time
            rows.append((p, meas, de_host, am_host))
        return rows

    rows = run_experiment(benchmark, experiment)

    checks = []
    assert all(de > meas for _, meas, de, _ in rows)
    checks.append("MPI-SIM-DE is slower than the application at every size")
    assert all(am < meas / 10 for _, meas, _, am in rows)
    checks.append("MPI-SIM-AM is far below the application runtime at every size")
    # AM nearly flat: its max/min across sizes stays within a small factor
    am_times = [am for *_, am in rows]
    meas_times = [meas for _, meas, _, _ in rows]
    assert max(am_times) / min(am_times) < (max(meas_times) / min(meas_times))
    checks.append(
        f"AM runtime varies {max(am_times) / min(am_times):.1f}x across sizes vs "
        f"{max(meas_times) / min(meas_times):.1f}x for the application (paper: '<2s for all')"
    )

    table = format_table(
        ["procs (host=target)", "application(s)", "MPI-SIM-DE(s)", "MPI-SIM-AM(s)"],
        [list(r) for r in rows],
        title="Absolute performance of MPI-Sim, Tomcatv 2048x2048 (Fig. 13)",
    )
    emit("fig13_tomcatv_absolute_perf", table + "\n" + shape_note(checks))
