"""Ablation: statistical elimination of data-dependent branches.

The paper chooses between two treatments of branches that test large-
array values (Sec. 3.1): eliminate them and use "the statistical
average execution time of each iteration", or take a user directive.
Elimination preserves *total* work exactly, but replaces a random
per-stage cost with its mean — and in a pipelined (wavefront) code the
execution time depends on the *sequence* of stage times, not just their
sum.  This bench quantifies that: as the eliminated branch's weight
grows, MPI-SIM-AM's error on a wavefront pipeline grows too, which is
why the paper notes the approach is safe only for branches whose
"impact on execution time is relatively negligible".
"""

from _common import emit, run_experiment, shape_note

from repro.ir import ProgramBuilder, myid, P
from repro.machine import IBM_SP
from repro.symbolic import Gt, Lt, Var
from repro.workflow import ModelingWorkflow, format_table

NPROCS = 16
STAGES = 40
BASE_WORK = 20000

#: Branch weight = extra work (as a fraction of the stage) when taken.
WEIGHTS = [0.05, 0.25, 1.0, 4.0]
TAKEN_RATE = 0.3


def build_pipeline(weight: float):
    """A 1-D wavefront whose stages randomly trigger extra work."""

    def probe(env, arrays):
        h = (env["myid"] * 2654435761 + env["stage"] * 9973) & 0xFFFFFFFF
        env["trig"] = 1 if (h % 1000) < TAKEN_RATE * 1000 else 0

    b = ProgramBuilder(f"pipe_w{weight}", params=("stages",))
    b.array("data", size=BASE_WORK)
    with b.loop("stage", 1, Var("stages")):
        with b.if_(Gt(myid, 0)):
            b.recv(source=myid - 1, nbytes=1024, tag=1, array="data")
        b.compute("stage_work", work=BASE_WORK, arrays=("data",), writes={"trig"}, kernel=probe)
        with b.if_(Gt(Var("trig"), 0), data_dependent=True):
            b.compute("extra", work=int(BASE_WORK * weight), arrays=("data",))
        with b.if_(Lt(myid, P - 1)):
            b.send(dest=myid + 1, nbytes=1024, tag=1, array="data")
    return b.build()


def test_ablation_branch_elimination(benchmark):
    def experiment():
        rows = []
        for weight in WEIGHTS:
            prog = build_pipeline(weight)
            wf = ModelingWorkflow(
                prog, IBM_SP, calib_inputs={"stages": STAGES}, calib_nprocs=NPROCS
            )
            wf.calibrate()
            inputs = {"stages": STAGES}
            meas = wf.run_measured(inputs, NPROCS).elapsed
            am = wf.run_am(inputs, NPROCS).elapsed
            err = 100 * abs(am - meas) / meas
            rows.append([weight, meas, am, err])
        return rows

    rows = run_experiment(benchmark, experiment)

    errors = [r[3] for r in rows]
    checks = []
    assert errors[0] < 5.0
    checks.append(f"negligible branch (5% of stage): {errors[0]:.1f}% error — safe to eliminate")
    assert errors[-1] > errors[0]
    assert errors[-1] > 8.0
    checks.append(
        f"heavyweight branch (4x stage): {errors[-1]:.1f}% error — averaging a random "
        "branch hides pipeline jitter, so heavy branches should use directives/pinning"
    )
    # AM always *underestimates*: the mean smooths the pipeline
    assert all(am <= meas for _, meas, am, _ in rows)
    checks.append("elimination always under-predicts (the mean smooths pipeline bubbles)")

    table = format_table(
        ["branch weight", "measured(s)", "MPI-SIM-AM(s)", "%err"],
        rows,
        title="Ablation: statistical branch elimination on a wavefront pipeline",
    )
    emit("ablation_branch_elimination", table + "\n" + shape_note(checks))
