"""Figure 7: Percent error incurred by MPI-SIM-AM across applications.

Paper: "Figure 7 summarizes the errors that MPI-Sim with analytical
models incurred when simulating the three applications.  All the errors
are within 16%."  One row per (application, processor count): the AM
error against direct measurement for SP class C, Tomcatv and Sweep3D.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sp_inputs, sweep3d_inputs, tomcatv_inputs
from repro.workflow import format_table, validate

PROCS = [4, 16, 64]


def test_fig07_error_summary(benchmark, tomcatv_wf, sweep3d_wf, sp_wf):
    def experiment():
        series = {}
        series["SP, Class C"] = validate(
            sp_wf, [(sp_inputs("C", p, niter=2), p) for p in (16, 64)], labels=["16", "64"]
        )
        series["Tomcatv"] = validate(
            tomcatv_wf, [(tomcatv_inputs(512, itmax=4), p) for p in PROCS]
        )
        series["Sweep3D (150 cubed)"] = validate(
            sweep3d_wf,
            [(sweep3d_inputs(150, 150, 150, p, kb=4, ab=2, mmi=3, niter=1), p) for p in PROCS],
        )
        return series

    all_series = run_experiment(benchmark, experiment)

    rows = []
    worst = 0.0
    for app, series in all_series.items():
        for point in series.points:
            rows.append([app, point.nprocs, point.err_am])
            worst = max(worst, point.err_am)

    assert worst < 17.0, f"an AM error of {worst:.1f}% escapes the paper's 16% envelope"
    checks = [f"worst AM error across all apps/configs: {worst:.1f}% (paper: all within 16%)"]

    table = format_table(
        ["application", "procs", "%err MPI-SIM-AM"], rows,
        title="Percent error of MPI-SIM-AM vs measurement (Fig. 7)",
    )
    emit("fig07_error_summary", table + "\n" + shape_note(checks))
