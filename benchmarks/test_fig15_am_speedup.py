"""Figure 15: Speedup of MPI-SIM-AM (Sweep3D 150³, 64 target processors).

Paper: "The steep slope of the curve for up to 8 processors indicates
good parallel efficiency.  For more than 8 processors the speedup is
not as good, reaching about 15 for 64 processors.  This is due to the
decreased computation to communication ratio in the application."
"""

from _common import emit, run_experiment, shape_note

from repro.workflow import format_table
from test_fig14_parallel_performance import HOSTS, fig14_data  # noqa: F401


def test_fig15_am_speedup(benchmark, fig14_data):  # noqa: F811
    rows = run_experiment(benchmark, lambda: fig14_data)

    am1 = rows[0][2]
    speedups = [(h, am1 / am) for h, _, am, _ in rows]

    checks = []
    # monotone increasing
    vals = [s for _, s in speedups]
    assert all(b > a for a, b in zip(vals, vals[1:]))
    checks.append("speedup increases monotonically with host processors")
    # good efficiency in the steep region (<= 8 hosts)
    s8 = dict(speedups)[8]
    assert s8 > 4.0
    checks.append(f"speedup {s8:.1f} at 8 hosts: good parallel efficiency in the steep region")
    # saturation: well below ideal at 64 hosts (paper: ~15)
    s64 = dict(speedups)[64]
    assert 5.0 < s64 < 45.0
    checks.append(f"speedup saturates at {s64:.1f} on 64 hosts (paper: about 15)")

    table = format_table(
        ["host procs", "MPI-SIM-AM speedup"],
        [[h, s] for h, s in speedups],
        title="Speedup of MPI-SIM-AM, Sweep3D 150^3, 64 targets (Fig. 15)",
    )
    emit("fig15_am_speedup", table + "\n" + shape_note(checks))
