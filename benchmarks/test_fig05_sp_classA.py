"""Figure 5: Validation for NAS SP, class A, on the IBM SP.

Paper: task times from the 16-processor class-A run; "the validation
for class A is good (the errors are less than 7%)".  Square process
counts up to 100.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sp_inputs
from repro.workflow import format_validation, validate

PROCS = [4, 9, 16, 25, 36, 49, 64, 100]


def test_fig05_sp_classA(benchmark, sp_wf):
    def experiment():
        configs = [(sp_inputs("A", p, niter=3), p) for p in PROCS]
        return validate(sp_wf, configs, name="NAS SP class A (IBM SP)")

    series = run_experiment(benchmark, experiment)

    checks = []
    assert series.max_err_am < 12.0, "class A AM errors should be small (paper: <7%)"
    checks.append(f"max AM error {series.max_err_am:.1f}% (paper: <7%)")
    times = [p.measured for p in series.points]
    assert times[-1] < times[0]
    checks.append("runtime shrinks from 4 to 100 processors")

    emit("fig05_sp_classA", format_validation(series) + "\n" + shape_note(checks))
