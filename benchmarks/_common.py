"""Shared infrastructure for the experiment benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Sec. 4): it runs the relevant estimators, prints the same
rows/series the paper reports, writes them to ``benchmarks/out/``, and
asserts the qualitative shape (who wins, by roughly what factor, where
crossovers fall).  Absolute numbers differ from the paper — the
substrate is a machine *model*, not the authors' IBM SP — but the
shapes are the reproduced result.

Timing data is persisted too: every ``run_experiment``/``bench_timed``
call appends its pytest-benchmark statistics to
``benchmarks/out/BENCH_experiments.json``, so a benchmark run leaves a
machine-readable record alongside the tables (see docs/performance.md).
"""

from __future__ import annotations

import json
from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"
STATS_NAME = "BENCH_experiments.json"


def _capture_stats(benchmark, extra: dict | None = None) -> dict | None:
    """Extract one benchmark's timing statistics as a plain dict.

    Returns None when pytest-benchmark is disabled (``--benchmark-disable``
    or ``-p no:benchmark``): the fixture then never builds a Stats object.
    """
    meta = getattr(benchmark, "stats", None)
    stats = getattr(meta, "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return None
    entry = {
        "name": getattr(benchmark, "name", "?"),
        "group": getattr(benchmark, "group", None),
        "rounds": stats.rounds,
        "min_s": stats.min,
        "max_s": stats.max,
        "mean_s": stats.mean,
        "stddev_s": stats.stddev if stats.rounds > 1 else 0.0,
    }
    if extra:
        entry.update(extra)
    return entry


def record_stats(benchmark, extra: dict | None = None) -> dict | None:
    """Append *benchmark*'s statistics to ``out/BENCH_experiments.json``.

    The file is a name-keyed JSON object, rewritten atomically-enough for
    a single pytest process (benchmarks never run in parallel workers).
    """
    entry = _capture_stats(benchmark, extra)
    if entry is None:
        return None
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / STATS_NAME
    try:
        book = json.loads(path.read_text())
    except (OSError, ValueError):
        book = {}
    book[entry["name"]] = entry
    path.write_text(json.dumps(book, indent=1, sort_keys=True) + "\n")
    return entry


def run_experiment(benchmark, fn, extra: dict | None = None):
    """Run *fn* exactly once under pytest-benchmark and return its result.

    The experiments are full simulation campaigns (tens of seconds); one
    timed round is both sufficient and what keeps ``--benchmark-only``
    runs tractable.  The measured statistics are persisted to
    ``out/BENCH_experiments.json`` instead of being discarded — *extra*
    lets callers attach workload metadata (event counts, nprocs) so the
    JSON is interpretable on its own.
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    record_stats(benchmark, extra)
    return result


def bench_timed(benchmark, fn, extra: dict | None = None):
    """Run *fn* under pytest-benchmark's adaptive timer (many rounds).

    For microbenchmarks where a single round is too noisy; statistics
    are persisted exactly like :func:`run_experiment`.
    """
    result = benchmark(fn)
    record_stats(benchmark, extra)
    return result


def emit(name: str, text: str) -> None:
    """Print an experiment's table and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def shape_note(lines: list[str]) -> str:
    """Format the qualitative-shape checks appended to each table."""
    return "\n".join(f"  [shape] {ln}" for ln in lines)
