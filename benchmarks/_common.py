"""Shared infrastructure for the experiment benchmarks.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Sec. 4): it runs the relevant estimators, prints the same
rows/series the paper reports, writes them to ``benchmarks/out/``, and
asserts the qualitative shape (who wins, by roughly what factor, where
crossovers fall).  Absolute numbers differ from the paper — the
substrate is a machine *model*, not the authors' IBM SP — but the
shapes are the reproduced result.
"""

from __future__ import annotations

from pathlib import Path

OUT_DIR = Path(__file__).parent / "out"


def run_experiment(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its result.

    The experiments are full simulation campaigns (tens of seconds); one
    timed round is both sufficient and what keeps ``--benchmark-only``
    runs tractable.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit(name: str, text: str) -> None:
    """Print an experiment's table and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def shape_note(lines: list[str]) -> str:
    """Format the qualitative-shape checks appended to each table."""
    return "\n".join(f"  [shape] {ln}" for ln in lines)
