"""Figure 9: Effect of the communication-to-computation ratio on accuracy.

Paper: "the percentage variation in the predicted time as compared with
the measured values [...] the predictions are very accurate when the
ratio of computation to communication is large, which is typical of
many real-world applications"; error grows toward ~15% as communication
dominates.  Reproduced shape: AM error at the communication-heavy end
exceeds the compute-heavy end for both patterns.
"""

import pytest
from _common import emit, run_experiment, shape_note

from repro.workflow import format_table
from test_fig08_sample_validation import RATIOS, run_sample_sweep, sample_wfs  # noqa: F401


def test_fig09_sample_error(benchmark, sample_wfs):  # noqa: F811
    data = run_experiment(benchmark, lambda: run_sample_sweep(sample_wfs, iters=12))

    errors = {
        key: 100 * abs(am - meas) / meas for key, (meas, am) in data.items()
    }
    rows = [
        [pattern, ratio, errors[(pattern, ratio)]]
        for (pattern, ratio) in sorted(errors)
    ]

    checks = []
    for pattern in ("wavefront", "nearest_neighbor"):
        lo_end = max(errors[(pattern, r)] for r in RATIOS[:2])  # compute-bound
        hi_end = max(errors[(pattern, r)] for r in RATIOS[-2:])  # comm-bound
        assert lo_end < 5.0, f"{pattern}: compute-bound error should be tiny (paper: <5%)"
        assert hi_end > lo_end, f"{pattern}: error must grow with communication share"
        assert hi_end < 15.0
        checks.append(
            f"{pattern}: error grows from {lo_end:.1f}% (compute-bound) to "
            f"{hi_end:.1f}% (comm-bound), below the paper's 15%"
        )

    table = format_table(
        ["pattern", "comm:comp", "% variation from measured"],
        rows,
        title="SAMPLE: prediction error vs communication share (Fig. 9)",
    )
    emit("fig09_sample_error", table + "\n" + shape_note(checks))
