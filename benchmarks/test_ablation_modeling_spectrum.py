"""Ablation: the POEMS modeling spectrum on one application.

The paper's conclusion: "Within POEMS, we aim to support any combination
of analytical modeling, simulation modeling and measurement for the
sequential tasks and the communication code."  This bench lines up the
whole spectrum implemented here, from most to least detailed, on the
same Sweep3D configuration:

1. direct measurement (ground truth);
2. MPI-SIM-DE — simulation for computation and communication;
3. MPI-SIM-AM — analytical tasks + simulated communication (the paper);
4. task-graph analysis — analytical tasks + precedence-only analytical
   communication (longest path, no event simulation);
5. per-rank summation — fully analytical, no cross-process coupling.

Expected shape: accuracy degrades monotonically as modeling detail is
removed, with the big cliff at the loss of precedence (4 → 5) for this
pipelined code — while cost drops by orders of magnitude.
"""

import time

from _common import emit, run_experiment, shape_note

from repro.analytic import analytic_predict, taskgraph_predict
from repro.apps import sweep3d_inputs
from repro.machine import IBM_SP
from repro.workflow import format_table

NPROCS = 16


def test_ablation_modeling_spectrum(benchmark, sweep3d_wf):
    inputs = sweep3d_inputs(96, 96, 96, NPROCS, kb=4, ab=2, niter=1)

    def experiment():
        rows = []
        meas = sweep3d_wf.run_measured(inputs, NPROCS).elapsed

        def timed(label, fn):
            t0 = time.perf_counter()
            predicted = fn()
            cost = time.perf_counter() - t0
            rows.append([label, predicted, 100 * abs(predicted - meas) / meas, cost])

        rows.append(["measured (ground truth)", meas, 0.0, None])
        timed("MPI-SIM-DE (sim + sim)", lambda: sweep3d_wf.run_de(inputs, NPROCS).elapsed)
        timed("MPI-SIM-AM (analytic + sim)", lambda: sweep3d_wf.run_am(inputs, NPROCS).elapsed)
        timed(
            "task graph (analytic + precedence)",
            lambda: taskgraph_predict(
                sweep3d_wf.compiled.simplified, inputs, NPROCS, IBM_SP, sweep3d_wf.wparams
            ).elapsed,
        )
        timed(
            "per-rank sum (fully analytic)",
            lambda: analytic_predict(
                sweep3d_wf.compiled.simplified, inputs, NPROCS, IBM_SP, sweep3d_wf.wparams
            ).elapsed,
        )
        return rows

    rows = run_experiment(benchmark, experiment)

    errs = {label: err for label, _, err, _ in rows}
    checks = []
    assert errs["MPI-SIM-DE (sim + sim)"] < errs["MPI-SIM-AM (analytic + sim)"] + 2.0
    assert errs["MPI-SIM-AM (analytic + sim)"] < 17.0
    checks.append(
        f"DE {errs['MPI-SIM-DE (sim + sim)']:.1f}% <= AM "
        f"{errs['MPI-SIM-AM (analytic + sim)']:.1f}% < 17%"
    )
    assert errs["task graph (analytic + precedence)"] < 20.0
    checks.append(
        f"task-graph analysis holds at {errs['task graph (analytic + precedence)']:.1f}% "
        "(precedence captures the wavefront)"
    )
    assert errs["per-rank sum (fully analytic)"] > errs["task graph (analytic + precedence)"]
    checks.append(
        f"dropping precedence costs accuracy: {errs['per-rank sum (fully analytic)']:.1f}% "
        "error for the per-rank sum — the cliff the paper avoids by simulating communication"
    )

    table = format_table(
        ["modeling paradigm", "predicted(s)", "%err", "predictor cost(s)"],
        rows,
        title=f"The POEMS modeling spectrum on Sweep3D 96^3, P={NPROCS}",
    )
    emit("ablation_modeling_spectrum", table + "\n" + shape_note(checks))
