"""Ablation: detailed vs abstract communication simulation.

The paper's conclusions propose "an abstract model of the communication
(based on message size, message destination, etc.)" as an alternative
to detailed simulation.  This bench runs that alternative
(``repro.codegen.generate_abstract_comm``) next to MPI-SIM-AM and shows
why the paper keeps communication detailed: the abstract model is fine
for loosely-coupled exchanges (Tomcatv) but collapses the wavefront
pipeline of Sweep3D, where execution time is *made of* message-enforced
waiting.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sweep3d_inputs, tomcatv_inputs
from repro.codegen import generate_abstract_comm
from repro.ir import make_factory
from repro.machine import IBM_SP
from repro.sim import ExecMode, Simulator
from repro.workflow import format_table


def _three_way(wf, inputs, nprocs):
    meas = wf.run_measured(inputs, nprocs).elapsed
    am = wf.run_am(inputs, nprocs).elapsed
    abstract_prog = generate_abstract_comm(wf.compiled.simplified, IBM_SP)
    abstract = Simulator(
        nprocs, make_factory(abstract_prog, inputs, wparams=wf.wparams), IBM_SP,
        mode=ExecMode.AM,
    ).run().elapsed
    return meas, am, abstract


def test_ablation_abstract_comm(benchmark, tomcatv_wf, sweep3d_wf):
    def experiment():
        rows = []
        for label, wf, inputs, nprocs in [
            ("Tomcatv 512 (loose coupling)", tomcatv_wf, tomcatv_inputs(512, itmax=4), 16),
            (
                "Sweep3D 150^3 (wavefront)",
                sweep3d_wf,
                sweep3d_inputs(150, 150, 150, 16, kb=4, ab=2, niter=1),
                16,
            ),
        ]:
            meas, am, abstract = _three_way(wf, inputs, nprocs)
            rows.append(
                [
                    label,
                    meas,
                    am,
                    abstract,
                    100 * abs(am - meas) / meas,
                    100 * abs(abstract - meas) / meas,
                ]
            )
        return rows

    rows = run_experiment(benchmark, experiment)

    tom, sweep = rows
    checks = []
    assert tom[5] < 25.0
    checks.append(f"loosely-coupled Tomcatv survives comm abstraction ({tom[5]:.1f}% error)")
    assert sweep[5] > 2 * sweep[4]
    assert sweep[5] > 10.0
    checks.append(
        f"wavefront Sweep3D does not: {sweep[5]:.1f}% vs {sweep[4]:.1f}% with detailed "
        "communication — the premise of the paper's design"
    )

    table = format_table(
        ["application", "measured(s)", "AM detailed(s)", "AM abstract-comm(s)",
         "%err detailed", "%err abstract"],
        rows,
        title="Ablation: detailed vs abstract communication modeling",
    )
    emit("ablation_abstract_comm", table + "\n" + shape_note(checks))
