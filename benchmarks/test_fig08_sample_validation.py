"""Figure 8: Validation of SAMPLE on the SGI Origin 2000.

Paper: wavefront and nearest-neighbour patterns, communication-to-
computation ratio swept from 1:10000 to 1:1; measured vs MPI-SIM-AM
execution times.  "The predictions are very accurate when the ratio of
computation to communication is large [...] As the amount of
communication in the program increased, the simulator incurs larger
errors with the predicted values differing by at most 15%."
"""

import pytest
from _common import emit, run_experiment, shape_note

from repro.apps import build_sample, sample_inputs_for_ratio
from repro.machine import ORIGIN_2000
from repro.workflow import ModelingWorkflow, format_table

RATIOS = [0.0001, 0.001, 0.01, 0.1, 1.0]
NPROCS = 8


@pytest.fixture(scope="module")
def sample_wfs():
    wfs = {}
    for pattern in ("wavefront", "nearest_neighbor"):
        wf = ModelingWorkflow(
            build_sample(pattern),
            ORIGIN_2000,
            calib_inputs=sample_inputs_for_ratio(0.01, ORIGIN_2000, iters=10),
            calib_nprocs=NPROCS,
        )
        wf.calibrate()
        wfs[pattern] = wf
    return wfs


def run_sample_sweep(sample_wfs, iters=10):
    """(pattern, ratio) -> (measured, am) execution times."""
    out = {}
    for pattern, wf in sample_wfs.items():
        for i, ratio in enumerate(RATIOS):
            inputs = sample_inputs_for_ratio(ratio, ORIGIN_2000, iters=iters)
            meas = wf.run_measured(inputs, NPROCS, seed=31 + i)
            am = wf.run_am(inputs, NPROCS)
            out[(pattern, ratio)] = (meas.elapsed, am.elapsed)
    return out


def test_fig08_sample_validation(benchmark, sample_wfs):
    data = run_experiment(benchmark, lambda: run_sample_sweep(sample_wfs))

    rows = []
    for (pattern, ratio), (meas, am) in sorted(data.items()):
        rows.append([pattern, ratio, meas, am, 100 * abs(am - meas) / meas])

    # shape: runtime falls as the ratio rises (less computation per step)
    for pattern in ("wavefront", "nearest_neighbor"):
        times = [data[(pattern, r)][0] for r in RATIOS]
        assert all(b < a for a, b in zip(times, times[1:])), pattern
    # predictions track measurement within the paper's 15% at every point
    worst = max(100 * abs(am - m) / m for m, am in data.values())
    assert worst < 15.0

    checks = [
        "runtime decreases monotonically as comm:comp ratio grows (both patterns)",
        f"worst AM deviation {worst:.1f}% (paper: at most 15%)",
    ]
    table = format_table(
        ["pattern", "comm:comp", "measured(s)", "MPI-SIM-AM(s)", "%err"],
        rows,
        title="SAMPLE validation on the Origin 2000 (Fig. 8)",
    )
    emit("fig08_sample_validation", table + "\n" + shape_note(checks))
