"""Kernel performance smoke check: measure events/sec, gate regressions.

Standalone (no pytest) so CI can run it cheaply and fail fast::

    PYTHONPATH=src python benchmarks/perf_smoke.py --output BENCH_kernel.json

It runs the same four workloads as ``test_micro_kernel.py`` — blocking
point-to-point, non-blocking handles, collectives, and an end-to-end
Sweep3D AM run — takes the best of ``--reps`` repetitions (the best is
the least-noisy estimator of kernel cost on shared CI runners), writes a
fresh ``BENCH_kernel.json`` artifact, and exits non-zero if any
workload's events/sec drops more than ``--tolerance`` (default 30%)
below the committed baseline at the repo root.

Every invocation also *appends* one timestamped record per workload to
``--history`` (default ``BENCH_history.jsonl``, crash-consistent
O_APPEND writes), so throughput over time is a ``jq``-able series
rather than a single overwritten snapshot.  CI uploads the file as an
artifact next to ``BENCH_kernel.json``.

The committed baseline also records the *pre*-fast-path throughput, so
the speedup that motivated the fast path stays auditable:
``post_events_per_sec / pre_events_per_sec`` is the claimed factor.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import mpi  # noqa: E402
from repro.apps import build_sweep3d, sweep3d_inputs  # noqa: E402
from repro.codegen import compile_program  # noqa: E402
from repro.ir import make_factory  # noqa: E402
from repro.machine import IBM_SP, TESTING_MACHINE  # noqa: E402
from repro.sim import ExecMode, Simulator  # noqa: E402

from repro.util.atomic_io import append_jsonl  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_kernel.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


def _p2p_ring():
    def prog(rank, size):
        for i in range(50):
            yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=i % 4)
            yield mpi.recv(source=(rank - 1) % size, tag=i % 4)

    return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE)


def _nonblocking():
    def prog(rank, size):
        for i in range(30):
            hs = []
            hs.append((yield mpi.irecv(source=(rank - 1) % size, tag=i)))
            hs.append((yield mpi.isend(dest=(rank + 1) % size, nbytes=256, tag=i)))
            yield mpi.waitall(*hs)

    return Simulator(16, prog, TESTING_MACHINE, mode=ExecMode.DE)


def _collective():
    def prog(rank, size):
        for _ in range(40):
            yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)

    return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE)


def _sweep3d_am():
    compiled = compile_program(build_sweep3d())
    w = {n: 1e-7 for n in compiled.w_param_names}
    inputs = sweep3d_inputs(48, 48, 48, 16, kb=2, ab=1, niter=1)
    factory = make_factory(compiled.simplified, inputs, wparams=w)
    return lambda: Simulator(16, factory, IBM_SP, mode=ExecMode.AM)


#: label -> zero-arg callable returning a fresh Simulator
WORKLOADS = {
    "p2p_ring_de": lambda: _p2p_ring,
    "nonblocking_de": lambda: _nonblocking,
    "collective_de": lambda: _collective,
    "sweep3d_am": _sweep3d_am,
}


def measure(label: str, reps: int) -> dict:
    """Best-of-*reps* events/sec for one workload."""
    make_sim = WORKLOADS[label]()  # one-time setup (compile etc.) excluded
    best = float("inf")
    events = 0
    for _ in range(reps):
        sim = make_sim()
        t0 = time.perf_counter()
        stats = sim.run().stats
        dt = time.perf_counter() - t0
        best = min(best, dt)
        events = stats.total_events
    return {
        "label": label,
        "events": events,
        "best_s": round(best, 6),
        "events_per_sec": int(events / best),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", default="BENCH_kernel.json",
                    help="where to write the fresh measurement artifact")
    ap.add_argument("--baseline", default=str(BASELINE_PATH),
                    help="committed baseline file (repo-root BENCH_kernel.json)")
    ap.add_argument("--history", default=str(HISTORY_PATH),
                    help="JSONL file to append one timestamped record per "
                         "workload to (empty string disables)")
    ap.add_argument("--reps", type=int, default=5,
                    help="repetitions per workload; best-of is reported")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop below baseline (default 0.30)")
    args = ap.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    results = {label: measure(label, args.reps) for label in WORKLOADS}

    artifact = {
        "description": "kernel events/sec measured by benchmarks/perf_smoke.py",
        "reps": args.reps,
        "workloads": results,
    }
    Path(args.output).write_text(json.dumps(artifact, indent=1) + "\n")

    if args.history:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        for label, res in results.items():
            append_jsonl(Path(args.history), {
                "timestamp": stamp,
                "reps": args.reps,
                **res,
            })

    failed = False
    print(f"{'workload':24s} {'baseline':>10s} {'measured':>10s} {'ratio':>7s}")
    for label, res in results.items():
        base = baseline["workloads"][label]["post_events_per_sec"]
        ratio = res["events_per_sec"] / base
        flag = ""
        if ratio < 1.0 - args.tolerance:
            flag = "  REGRESSION"
            failed = True
        print(f"{label:24s} {base:>10d} {res['events_per_sec']:>10d} {ratio:>6.2f}x{flag}")
    if failed:
        print(
            f"\nFAIL: events/sec dropped more than {args.tolerance:.0%} below "
            f"the committed baseline ({args.baseline}).\n"
            "If the slowdown is intentional, re-measure on a quiet machine "
            "and update the baseline in the same change."
        )
        return 1
    print("\nOK: all workloads within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
