"""Kernel performance smoke check: measure events/sec, gate regressions.

Standalone (no pytest) so CI can run it cheaply and fail fast::

    PYTHONPATH=src python benchmarks/perf_smoke.py --output BENCH_kernel.json

It runs the same four workloads as ``test_micro_kernel.py`` — blocking
point-to-point, non-blocking handles, collectives, and an end-to-end
Sweep3D AM run — on **both** simulation kernels:

* ``interpreted`` — the generator-interpreter engine, measured on the
  exact factories the original baseline used (raw generators for the
  micro workloads);
* ``compiled`` — the per-program lowered event loop
  (:mod:`repro.kernel`), measured on IR-built equivalents of the micro
  workloads (the compiled backend lowers IR programs, not raw Python
  generators — which is also the interesting case: ``backend="auto"``
  falls back to interpreted for raw factories).

Each backend takes the best of ``--reps`` repetitions (the best is the
least-noisy estimator of kernel cost on shared CI runners), a fresh
``BENCH_kernel.json`` artifact is written, and the check exits non-zero
when either backend drops more than its tolerance below the committed
baseline at the repo root (``--tolerance`` for interpreted,
``--compiled-tolerance`` for compiled, both default 30%).  Before
timing, each IR workload is run once on both backends and the per-rank
statistics must be byte-identical — a perf number for a kernel that
diverges is meaningless.

Every invocation also *appends* one timestamped record per workload and
backend to ``--history`` (default ``BENCH_history.jsonl``,
crash-consistent O_APPEND writes), so throughput over time is a
``jq``-able series rather than a single overwritten snapshot.  CI
uploads the file as an artifact next to ``BENCH_kernel.json``.

The committed baseline records three generations per workload, so every
claimed speedup stays auditable: ``pre`` (before the interpreter
fast-path work), ``post`` (after), and ``compiled`` (the lowered
backend).  ``compiled_events_per_sec / post_events_per_sec`` is the
compiled backend's claimed factor.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import mpi  # noqa: E402
from repro.apps import build_sweep3d, sweep3d_inputs  # noqa: E402
from repro.codegen import compile_program  # noqa: E402
from repro.ir import make_factory  # noqa: E402
from repro.ir.builder import P, ProgramBuilder, myid  # noqa: E402
from repro.machine import IBM_SP, TESTING_MACHINE  # noqa: E402
from repro.sim import ExecMode, Simulator  # noqa: E402
from repro.symbolic import Var  # noqa: E402
from repro.util.atomic_io import append_jsonl  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_kernel.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"


# -- interpreted micro workloads (raw generators, as originally baselined) ----

def _p2p_ring():
    def prog(rank, size):
        for i in range(50):
            yield mpi.send(dest=(rank + 1) % size, nbytes=64, tag=i % 4)
            yield mpi.recv(source=(rank - 1) % size, tag=i % 4)

    return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE)


def _nonblocking():
    def prog(rank, size):
        for i in range(30):
            hs = []
            hs.append((yield mpi.irecv(source=(rank - 1) % size, tag=i)))
            hs.append((yield mpi.isend(dest=(rank + 1) % size, nbytes=256, tag=i)))
            yield mpi.waitall(*hs)

    return Simulator(16, prog, TESTING_MACHINE, mode=ExecMode.DE)


def _collective():
    def prog(rank, size):
        for _ in range(40):
            yield mpi.allreduce(nbytes=8, data=1, reduce_fn=lambda a, b: a + b)

    return Simulator(32, prog, TESTING_MACHINE, mode=ExecMode.DE)


# -- IR equivalents (what the compiled backend lowers) ------------------------

def _ir_ring():
    b = ProgramBuilder("bench_p2p_ring", params=("iters",))
    with b.loop("i", 1, Var("iters")):
        b.send(dest=(myid + 1) % P, nbytes=64, tag=0)
        b.recv(source=(myid - 1) % P, nbytes=64, tag=0)
    return make_factory(b.build(), {"iters": 50}), 32, TESTING_MACHINE, ExecMode.DE


def _ir_nonblocking():
    b = ProgramBuilder("bench_nonblocking", params=("iters",))
    with b.loop("i", 1, Var("iters")):
        b.irecv(source=(myid - 1) % P, nbytes=256, tag=0, handle="hr")
        b.isend(dest=(myid + 1) % P, nbytes=256, tag=0, handle="hs")
        b.waitall("hr", "hs")
    return make_factory(b.build(), {"iters": 30}), 16, TESTING_MACHINE, ExecMode.DE


def _ir_collective():
    b = ProgramBuilder("bench_collective", params=("iters",))
    with b.loop("i", 1, Var("iters")):
        b.allreduce(nbytes=8, contrib=1, result_var="acc")
    return make_factory(b.build(), {"iters": 40}), 32, TESTING_MACHINE, ExecMode.DE


def _ir_sweep3d():
    compiled = compile_program(build_sweep3d())
    w = {n: 1e-7 for n in compiled.w_param_names}
    inputs = sweep3d_inputs(48, 48, 48, 16, kb=2, ab=1, niter=1)
    factory = make_factory(compiled.simplified, inputs, wparams=w)
    return factory, 16, IBM_SP, ExecMode.AM


def _sweep3d_am():
    factory, nprocs, machine, mode = _ir_sweep3d()
    return lambda: Simulator(nprocs, factory, machine, mode=mode)


def _ir_sim(ir_setup, backend):
    factory, nprocs, machine, mode = ir_setup()
    return lambda: Simulator(nprocs, factory, machine, mode=mode, backend=backend)


#: label -> {backend -> zero-arg callable returning a fresh-Simulator factory}
WORKLOADS = {
    "p2p_ring_de": {
        "interpreted": lambda: _p2p_ring,
        "compiled": lambda: _ir_sim(_ir_ring, "compiled"),
        "identity": _ir_ring,
    },
    "nonblocking_de": {
        "interpreted": lambda: _nonblocking,
        "compiled": lambda: _ir_sim(_ir_nonblocking, "compiled"),
        "identity": _ir_nonblocking,
    },
    "collective_de": {
        "interpreted": lambda: _collective,
        "compiled": lambda: _ir_sim(_ir_collective, "compiled"),
        "identity": _ir_collective,
    },
    "sweep3d_am": {
        "interpreted": _sweep3d_am,
        "compiled": lambda: _ir_sim(_ir_sweep3d, "compiled"),
        "identity": _ir_sweep3d,
    },
}


def _stats_fingerprint(result) -> str:
    return json.dumps(
        [p.to_dict() for p in result.stats.procs], sort_keys=True, separators=(",", ":")
    )


def check_identity(label: str) -> None:
    """Both backends must produce byte-identical statistics on the IR
    workload before either is worth timing."""
    factory, nprocs, machine, mode = WORKLOADS[label]["identity"]()
    interp = Simulator(nprocs, factory, machine, mode=mode).run()
    compiled = Simulator(nprocs, factory, machine, mode=mode, backend="compiled").run()
    if _stats_fingerprint(interp) != _stats_fingerprint(compiled):
        raise SystemExit(
            f"FAIL: {label}: compiled backend statistics diverge from interpreted; "
            "refusing to benchmark a non-identical kernel"
        )


def measure(label: str, backend: str, reps: int) -> dict:
    """Best-of-*reps* events/sec for one workload on one backend."""
    make_sim = WORKLOADS[label][backend]()  # one-time setup (lowering etc.) excluded
    best = float("inf")
    events = 0
    for _ in range(reps):
        sim = make_sim()
        t0 = time.perf_counter()
        stats = sim.run().stats
        dt = time.perf_counter() - t0
        best = min(best, dt)
        events = stats.total_events
    return {
        "label": label,
        "backend": backend,
        "events": events,
        "best_s": round(best, 6),
        "events_per_sec": int(events / best),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", default="BENCH_kernel.json",
                    help="where to write the fresh measurement artifact")
    ap.add_argument("--baseline", default=str(BASELINE_PATH),
                    help="committed baseline file (repo-root BENCH_kernel.json)")
    ap.add_argument("--history", default=str(HISTORY_PATH),
                    help="JSONL file to append one timestamped record per "
                         "workload and backend to (empty string disables)")
    ap.add_argument("--reps", type=int, default=5,
                    help="repetitions per workload and backend; best-of is reported")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop below the interpreted "
                         "baseline (default 0.30)")
    ap.add_argument("--compiled-tolerance", type=float, default=0.30,
                    help="allowed fractional drop below the compiled "
                         "baseline (default 0.30)")
    args = ap.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    for label in WORKLOADS:
        check_identity(label)
    results = {
        label: {
            "interpreted": measure(label, "interpreted", args.reps),
            "compiled": measure(label, "compiled", args.reps),
        }
        for label in WORKLOADS
    }

    artifact = {
        "description": "kernel events/sec per backend, "
                       "measured by benchmarks/perf_smoke.py",
        "reps": args.reps,
        "workloads": {
            label: {
                "events": r["interpreted"]["events"],
                "events_per_sec": r["interpreted"]["events_per_sec"],
                "compiled_events_per_sec": r["compiled"]["events_per_sec"],
                "compiled_speedup": round(
                    r["compiled"]["events_per_sec"]
                    / r["interpreted"]["events_per_sec"], 2),
            }
            for label, r in results.items()
        },
    }
    Path(args.output).write_text(json.dumps(artifact, indent=1) + "\n")

    if args.history:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        for label, per_backend in results.items():
            for res in per_backend.values():
                append_jsonl(Path(args.history), {
                    "timestamp": stamp,
                    "reps": args.reps,
                    **res,
                })

    failed = False
    print(f"{'workload':24s} {'backend':12s} {'baseline':>10s} "
          f"{'measured':>10s} {'ratio':>7s}")
    for label, per_backend in results.items():
        gates = (
            ("interpreted", "post_events_per_sec", args.tolerance),
            ("compiled", "compiled_events_per_sec", args.compiled_tolerance),
        )
        for backend, key, tolerance in gates:
            base = baseline["workloads"][label][key]
            measured = per_backend[backend]["events_per_sec"]
            ratio = measured / base
            flag = ""
            if ratio < 1.0 - tolerance:
                flag = "  REGRESSION"
                failed = True
            print(f"{label:24s} {backend:12s} {base:>10d} {measured:>10d} "
                  f"{ratio:>6.2f}x{flag}")
    if failed:
        print(
            "\nFAIL: events/sec dropped more than the allowed tolerance below "
            f"the committed baseline ({args.baseline}).\n"
            "If the slowdown is intentional, re-measure on a quiet machine "
            "and update the baseline in the same change."
        )
        return 1
    print("\nOK: all workloads and backends within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
