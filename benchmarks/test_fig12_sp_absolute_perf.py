"""Figure 12: Absolute performance of MPI-Sim for NAS SP class A.

Paper (#host processors = #target processors): "MPI-SIM-DE is running
about twice slower than the application it is predicting.  However,
MPI-SIM-AM is able to run much faster than the application [...] The
relative performance of MPI-SIM-AM decreases as the number of
processors increases because the amount of computation in the
application decreases [...] and thus the savings from abstracting the
computation are decreased."
"""

from _common import emit, run_experiment, shape_note

from repro.apps import sp_inputs
from repro.machine import IBM_SP
from repro.parallel import simulate_host_execution
from repro.workflow import format_table

PROCS = [4, 9, 16, 25, 36, 64, 100]


def test_fig12_sp_absolute_perf(benchmark, sp_wf):
    def experiment():
        rows = []
        for p in PROCS:
            inputs = sp_inputs("A", p, niter=2)
            meas = sp_wf.run_measured(inputs, p).elapsed
            de_trace = sp_wf.run_de(inputs, p, collect_trace=True).trace
            am_trace = sp_wf.run_am(inputs, p, collect_trace=True).trace
            de_host = simulate_host_execution(de_trace, p, IBM_SP).wall_time
            am_host = simulate_host_execution(am_trace, p, IBM_SP).wall_time
            rows.append((p, meas, de_host, am_host))
        return rows

    rows = run_experiment(benchmark, experiment)

    checks = []
    # DE is slower than the application it predicts (paper: ~2x slower)
    de_ratios = [de / meas for _, meas, de, _ in rows]
    assert all(r > 1.0 for r in de_ratios)
    assert 1.2 < sum(de_ratios) / len(de_ratios) < 4.0
    checks.append(
        f"MPI-SIM-DE runs {min(de_ratios):.1f}-{max(de_ratios):.1f}x slower than the "
        "application (paper: about 2x)"
    )
    # AM is faster than the application, despite detailed communication
    am_adv = [meas / am for _, meas, _, am in rows]
    assert all(a > 1.0 for a in am_adv)
    checks.append(
        f"MPI-SIM-AM runs {min(am_adv):.1f}-{max(am_adv):.1f}x faster than the application"
    )
    # the AM advantage shrinks as processors increase (less abstracted work)
    assert am_adv[-1] < am_adv[0]
    checks.append(
        f"AM's advantage decreases with processors ({am_adv[0]:.1f}x at P=4 -> "
        f"{am_adv[-1]:.1f}x at P=100), as in the paper"
    )

    table = format_table(
        ["procs (host=target)", "measured app(s)", "MPI-SIM-DE(s)", "MPI-SIM-AM(s)"],
        [list(r) for r in rows],
        title="Absolute performance of MPI-Sim, NAS SP class A (Fig. 12)",
    )
    emit("fig12_sp_absolute_perf", table + "\n" + shape_note(checks))
