"""Figure 3: Validation of MPI-Sim for Tomcatv on the IBM SP.

Paper: 512² Tomcatv, 4–64 processors; MPI-SIM-DE tracks measurement
closely, MPI-SIM-AM "error was below 16% with an average error of
11.3%".  Reproduced shape: both simulators track the measured curve,
AM's error stays under the paper's 17% envelope and exceeds DE's.
"""

from _common import emit, run_experiment, shape_note

from repro.apps import tomcatv_inputs
from repro.workflow import format_validation, validate

PROCS = [4, 8, 16, 32, 64]


def test_fig03_tomcatv_validation(benchmark, tomcatv_wf):
    def experiment():
        configs = [(tomcatv_inputs(512, itmax=5), p) for p in PROCS]
        return validate(tomcatv_wf, configs, name="Tomcatv 512x512 (IBM SP)")

    series = run_experiment(benchmark, experiment)

    checks = []
    assert series.max_err_am < 17.0, "AM error must stay within the paper's 17% bound"
    checks.append(f"max AM error {series.max_err_am:.1f}% < 17% (paper: <16%)")
    assert series.max_err_de < series.max_err_am + 5.0
    checks.append(
        f"DE max error {series.max_err_de:.1f}% <= AM max error (DE is the tighter estimator)"
    )
    # execution time decreases with more processors (strong scaling)
    times = [p.measured for p in series.points]
    assert all(b < a for a, b in zip(times, times[1:]))
    checks.append("measured runtime strictly decreases from 4 to 64 processors")

    emit("fig03_tomcatv_validation", format_validation(series) + "\n" + shape_note(checks))
