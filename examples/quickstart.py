#!/usr/bin/env python
"""Quickstart: predict a parallel application's performance in four steps.

This walks the paper's Fig. 2 workflow on Tomcatv:

1. build the application's IR program;
2. calibrate — run the timer-instrumented version at a small
   configuration on the (modelled) real machine to measure the ``w_i``
   task-time coefficients;
3. compile — condense the static task graph, slice, and emit the
   simplified MPI program;
4. predict — run MPI-SIM-AM for configurations you never measured.

Run:  python examples/quickstart.py
"""

from repro.apps import build_tomcatv, tomcatv_inputs
from repro.machine import IBM_SP
from repro.workflow import ModelingWorkflow, format_table


def main() -> None:
    # 1. the application (an IR program, as the dhpf front-end would emit)
    program = build_tomcatv()
    print(f"application: {program.name}, arrays: {sorted(program.arrays)}")

    # 2 + 3. the workflow owns calibration and compilation
    workflow = ModelingWorkflow(
        program,
        IBM_SP,
        calib_inputs=tomcatv_inputs(512, itmax=5),
        calib_nprocs=16,
    )
    cal = workflow.calibrate()
    print("\nmeasured task-time coefficients (w_i), 16 procs, 512x512:")
    for name, value in sorted(cal.wparams.items()):
        print(f"  {name} = {value:.3e} s/iteration")

    print("\nwhat the compiler did:")
    print(workflow.compiled.summary())

    # 4. predict configurations that were never measured
    rows = []
    for nprocs in (4, 16, 64, 256):
        inputs = tomcatv_inputs(1024, itmax=5)
        am = workflow.run_am(inputs, nprocs)
        rows.append(
            [nprocs, am.elapsed, f"{am.memory.total_bytes / 2**20:.1f} MiB"]
        )
    print()
    print(
        format_table(
            ["target procs", "predicted time (s)", "simulator memory"],
            rows,
            title="MPI-SIM-AM predictions for Tomcatv 1024x1024",
        )
    )

    # sanity: compare one prediction against the (modelled) real machine
    inputs = tomcatv_inputs(1024, itmax=5)
    measured = workflow.run_measured(inputs, 64)
    am = workflow.run_am(inputs, 64)
    err = 100 * abs(am.elapsed - measured.elapsed) / measured.elapsed
    print(f"\ncheck @ 64 procs: measured {measured.elapsed:.4f}s, "
          f"predicted {am.elapsed:.4f}s ({err:.1f}% error)")


if __name__ == "__main__":
    main()
