#!/usr/bin/env python
"""A tour of the compiler: Fig. 1 of the paper, reproduced live.

Builds the paper's example MPI program (a shift communication followed
by a computational loop nest), then shows each compiler stage:

* the static task graph with its symbolic process sets and the
  ``{[p] -> [q] : q = p-1, p >= 1}`` communication mapping;
* condensation — the loop nest collapsed into one task with a symbolic
  scaling function;
* program slicing — ``b = ceil(N/P)`` retained because the
  communication size and the scaling function need it; arrays A and D
  eliminated;
* the generated simplified MPI program (Fig. 1(c)): ``read_and_broadcast``,
  the dummy communication buffer, and the ``delay(...)`` call.

Run:  python examples/compiler_tour.py
"""

from repro.codegen import compile_program
from repro.ir import ProgramBuilder, format_program, myid, P
from repro.stg import synthesize_stg
from repro.symbolic import Gt, Lt, Max, Min, Var, ceil_div


def build_fig1_program():
    """The paper's Fig. 1(a) example."""
    N = Var("N")
    b = ProgramBuilder("fig1_shift", params=("N",))
    b.array("A", size=N * ceil_div(N, P))
    b.array("D", size=N * ceil_div(N, P))
    b.assign("b", ceil_div(N, P))
    with b.if_(Gt(myid, 0)):
        b.send(dest=myid - 1, nbytes=(N - 2) * 2 * 8, array="D")
    with b.if_(Lt(myid, P - 1)):
        b.recv(source=myid + 1, nbytes=(N - 2) * 2 * 8, array="D")
    bv = Var("b")
    work = (N - 2) * (Min.make(N, myid * bv + bv) - Max.make(2, myid * bv + 1))
    b.compute("loop_nest", work=work, ops_per_iter=2, arrays=("A", "D"))
    return b.build()


def main() -> None:
    program = build_fig1_program()

    print("=" * 72)
    print("Fig. 1(a): the original MPI program")
    print("=" * 72)
    print(format_program(program))

    print()
    print("=" * 72)
    print("Fig. 1(b): the static task graph")
    print("=" * 72)
    stg = synthesize_stg(program)
    print(stg)

    compiled = compile_program(program)

    print()
    print("=" * 72)
    print("Condensation + slicing")
    print("=" * 72)
    print(compiled.summary())
    for region in compiled.plan.regions:
        print(f"\nscaling function of condensed task {region.name}:")
        print(f"  delay = {region.cost}")

    print()
    print("=" * 72)
    print("Fig. 1(c): the generated simplified MPI program")
    print("=" * 72)
    print(format_program(compiled.simplified))

    print()
    print("=" * 72)
    print("The timer-instrumented program (measurement branch of Fig. 2)")
    print("=" * 72)
    print(format_program(compiled.instrumented))


if __name__ == "__main__":
    main()
